//! Differential test: the dense `MnemonicId`-indexed [`Stats`] must be
//! observably identical to the string-keyed `BTreeMap` implementation it
//! replaced. `RefStats` below is that old implementation, kept verbatim
//! as the reference model; both are driven with the same deterministic
//! pseudo-random event streams over every stable mnemonic and compared
//! on totals, per-row counts, report ordering, CSV, and Display output.

use rnnasip_isa::MnemonicId;
use rnnasip_rng::StdRng;
use rnnasip_sim::{Row, Stats};
use std::collections::BTreeMap;
use std::fmt;

/// The seed repository's `Stats`: rows keyed by mnemonic string in a
/// `BTreeMap`, upserted on every event. Logic copied unchanged.
#[derive(Clone, Default, Debug)]
struct RefStats {
    rows: BTreeMap<&'static str, Row>,
    total_instrs: u64,
    total_cycles: u64,
    stall_cycles: u64,
    mac_ops: u64,
}

impl RefStats {
    fn record(&mut self, mnemonic: &'static str, cycles: u64, macs: u32) {
        let row = self.rows.entry(mnemonic).or_default();
        row.instrs += 1;
        row.cycles += cycles;
        self.total_instrs += 1;
        self.total_cycles += cycles;
        self.mac_ops += macs as u64;
    }

    fn attribute_stall(&mut self, mnemonic: &'static str) {
        let row = self.rows.entry(mnemonic).or_default();
        row.cycles += 1;
        self.total_cycles += 1;
        self.stall_cycles += 1;
    }

    fn row(&self, mnemonic: &str) -> Row {
        self.rows.get(mnemonic).copied().unwrap_or_default()
    }

    fn rows_by_cycles(&self) -> Vec<(&'static str, Row)> {
        let mut v: Vec<_> = self.rows.iter().map(|(&k, &r)| (k, r)).collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
        v
    }

    fn iter(&self) -> impl Iterator<Item = (&'static str, Row)> + '_ {
        self.rows.iter().map(|(&k, &r)| (k, r))
    }

    fn merge(&mut self, other: &RefStats) {
        for (k, r) in &other.rows {
            let row = self.rows.entry(k).or_default();
            row.instrs += r.instrs;
            row.cycles += r.cycles;
        }
        self.total_instrs += other.total_instrs;
        self.total_cycles += other.total_cycles;
        self.stall_cycles += other.stall_cycles;
        self.mac_ops += other.mac_ops;
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("mnemonic,cycles,instrs\n");
        for (name, row) in self.rows_by_cycles() {
            out.push_str(&format!("{},{},{}\n", name, row.cycles, row.instrs));
        }
        out.push_str(&format!(
            "TOTAL,{},{}\n",
            self.total_cycles, self.total_instrs
        ));
        out
    }
}

impl fmt::Display for RefStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>12} {:>12}", "Instr.", "cycles", "instrs")?;
        for (name, row) in self.rows_by_cycles() {
            writeln!(f, "{:<12} {:>12} {:>12}", name, row.cycles, row.instrs)?;
        }
        writeln!(
            f,
            "{:<12} {:>12} {:>12}",
            "Total", self.total_cycles, self.total_instrs
        )
    }
}

/// Asserts every observable surface of the two implementations agrees.
fn assert_equivalent(new: &Stats, reference: &RefStats) {
    assert_eq!(new.cycles(), reference.total_cycles, "total cycles");
    assert_eq!(new.instrs(), reference.total_instrs, "total instrs");
    assert_eq!(new.stall_cycles(), reference.stall_cycles, "stall cycles");
    assert_eq!(new.mac_ops(), reference.mac_ops, "mac ops");
    for id in MnemonicId::ALL {
        assert_eq!(
            new.row(id.name()),
            reference.row(id.name()),
            "row {}",
            id.name()
        );
    }
    assert_eq!(
        new.rows_by_cycles(),
        reference.rows_by_cycles(),
        "rows_by_cycles order and content"
    );
    assert_eq!(
        new.iter().collect::<Vec<_>>(),
        reference.iter().collect::<Vec<_>>(),
        "iter order and content"
    );
    assert_eq!(new.to_csv(), reference.to_csv(), "CSV serialization");
    assert_eq!(new.to_string(), reference.to_string(), "Display output");
}

/// Drives one pseudo-random event stream into both implementations.
fn random_pair(rng: &mut StdRng, events: usize) -> (Stats, RefStats) {
    let mut new = Stats::new();
    let mut reference = RefStats::default();
    for _ in 0..events {
        let id = MnemonicId::from_index((rng.next_u64() % MnemonicId::COUNT as u64) as usize)
            .expect("index in range");
        // ~1 in 8 events is a stall, matching the load-use-bubble rate of
        // a busy kernel; the rest retire with realistic cycle counts.
        if rng.next_u64().is_multiple_of(8) {
            new.attribute_stall(id);
            reference.attribute_stall(id.name());
        } else {
            let cycles = 1 + rng.next_u64() % 33; // step() cost range
            let macs = (rng.next_u64() % 5) as u32;
            new.record(id, cycles, macs);
            reference.record(id.name(), cycles, macs);
        }
    }
    (new, reference)
}

#[test]
fn randomized_streams_match_reference() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e1);
    for round in 0..16 {
        // Sparse streams exercise ties and absent rows; dense ones hit
        // every mnemonic.
        let events = if round % 2 == 0 { 40 } else { 4000 };
        let (new, reference) = random_pair(&mut rng, events);
        assert_equivalent(&new, &reference);
    }
}

#[test]
fn merge_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e2);
    let (mut new_a, mut ref_a) = random_pair(&mut rng, 500);
    let (new_b, ref_b) = random_pair(&mut rng, 700);
    new_a.merge(&new_b);
    ref_a.merge(&ref_b);
    assert_equivalent(&new_a, &ref_a);
}

#[test]
fn clear_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e3);
    let (mut new, _) = random_pair(&mut rng, 300);
    new.clear();
    assert_equivalent(&new, &RefStats::default());
}

#[test]
fn every_mnemonic_roundtrips_by_name() {
    // The dense table panics on unknown names; every stable mnemonic the
    // decoder can emit must therefore be a known `MnemonicId`.
    let mut new = Stats::new();
    let mut reference = RefStats::default();
    for id in MnemonicId::ALL {
        new.record_name(id.name(), 2, 1);
        new.attribute_stall_name(id.name());
        reference.record(id.name(), 2, 1);
        reference.attribute_stall(id.name());
    }
    assert_equivalent(&new, &reference);
}

#[test]
fn tie_breaking_is_name_order() {
    // Equal cycle counts must fall back to byte-wise name order, exactly
    // as the BTreeMap reference does.
    let mut new = Stats::new();
    let mut reference = RefStats::default();
    for name in ["xor", "add", "p.mac", "pv.add", "lw", "sub"] {
        new.record_name(name, 7, 0);
        reference.record(name, 7, 0);
    }
    assert_equivalent(&new, &reference);
    let order: Vec<&str> = new.rows_by_cycles().iter().map(|(n, _)| *n).collect();
    assert_eq!(order, ["add", "lw", "p.mac", "pv.add", "sub", "xor"]);
}
