//! `Display` round-trips for every [`SimError`] variant: the fault
//! campaign serializes error strings into its JSON report, so the exact
//! renderings are part of the deterministic-output contract.

use rnnasip_sim::{ExitReason, SimError};

#[test]
fn sim_error_display_covers_every_variant() {
    let cases: Vec<(SimError, &str)> = vec![
        (
            SimError::FetchFault { pc: 0x104 },
            "instruction fetch fault at 0x00000104",
        ),
        (
            SimError::MemOutOfBounds {
                addr: 0x4000_0000,
                size: 4,
            },
            "4-byte access out of bounds at 0x40000000",
        ),
        (
            SimError::Misaligned { addr: 0x3, size: 2 },
            "misaligned 2-byte access at 0x00000003",
        ),
        (
            SimError::Watchdog { max_cycles: 64 },
            "watchdog expired after 64 cycles",
        ),
        (
            SimError::BadHwLoop { level: 1 },
            "hardware loop 1 configured with start >= end",
        ),
    ];
    for (err, expected) in cases {
        assert_eq!(err.to_string(), expected);
        // Clone/Eq round-trip: campaign classification compares variants.
        assert_eq!(err.clone(), err);
    }
}

#[test]
fn exit_reason_is_debug_stable() {
    assert_eq!(format!("{:?}", ExitReason::Ecall), "Ecall");
}
