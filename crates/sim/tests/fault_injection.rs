//! Deterministic unit coverage of the fault-injection API: each
//! [`FaultSite`] kind, the recorded [`FaultEffect`]s, forced watchdogs,
//! and the interaction with rewind/reload — on both execution paths.

use rnnasip_isa::{AluImmOp, Instr, LoadOp, Reg};
use rnnasip_sim::{
    ExitReason, Fault, FaultEffect, FaultPlan, FaultSite, Machine, Memory, Program, SimError,
};

fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
    Instr::OpImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

/// addi a0, zero, 5 ; addi a0, a0, 1 ; ecall — every test below corrupts
/// some part of this three-instruction program or its data.
fn counting_prog() -> Program {
    Program::from_instrs(
        0,
        vec![
            addi(Reg::A0, Reg::ZERO, 5),
            addi(Reg::A0, Reg::A0, 1),
            Instr::Ecall,
        ],
    )
}

fn machine_with(prog: &Program) -> Machine {
    let mut m = Machine::new(4096);
    m.load_program(prog);
    m
}

/// Runs the same plan on both paths and asserts identical outcome, a0,
/// and fault logs; returns the uop-path machine for further inspection.
fn run_both(
    prog: &Program,
    plan: &FaultPlan,
    max_cycles: u64,
) -> (Machine, Result<ExitReason, SimError>) {
    let mut legacy = machine_with(prog);
    let mut uop = machine_with(prog);
    legacy.arm_faults(plan);
    uop.arm_faults(plan);
    let rl = legacy.run_legacy(max_cycles);
    let ru = uop.run(max_cycles);
    assert_eq!(rl, ru, "exit");
    assert_eq!(legacy.core().pc, uop.core().pc, "pc");
    assert_eq!(legacy.core().cycle, uop.core().cycle, "cycle");
    assert_eq!(legacy.core().reg(Reg::A0), uop.core().reg(Reg::A0), "a0");
    assert_eq!(legacy.fault_log(), uop.fault_log(), "fault log");
    (uop, ru)
}

#[test]
fn register_flip_changes_result_and_is_logged() {
    let prog = counting_prog();
    // Flip bit 1 of a0 after the first addi retires: 5 -> 7 -> +1 = 8.
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 1,
        site: FaultSite::RegBit {
            reg: Reg::A0,
            bit: 1,
        },
    });
    let (m, r) = run_both(&prog, &plan, 1000);
    assert_eq!(r, Ok(ExitReason::Ecall));
    assert_eq!(m.core().reg(Reg::A0), 8);
    let log = m.fault_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].instret, 1);
    assert_eq!(log[0].pc, 4);
    assert_eq!(log[0].effect, FaultEffect::FlippedReg { reg: Reg::A0 });
}

#[test]
fn x0_flip_is_no_target() {
    let prog = counting_prog();
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::RegBit {
            reg: Reg::ZERO,
            bit: 5,
        },
    });
    let (m, r) = run_both(&prog, &plan, 1000);
    assert_eq!(r, Ok(ExitReason::Ecall));
    assert_eq!(m.core().reg(Reg::A0), 6, "x0 stays zero");
    assert_eq!(m.fault_log()[0].effect, FaultEffect::NoTarget);
}

#[test]
fn memory_flip_corrupts_a_later_load() {
    // lw a0, 0x100(zero) ; ecall — with 41 staged at 0x100 and bit 3 of
    // byte 0x100 flipped before the load, a0 reads 41 ^ 8 = 33.
    let prog = Program::from_instrs(
        0,
        vec![
            Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                offset: 0x100,
            },
            Instr::Ecall,
        ],
    );
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: 0x100,
            bit: 3,
            silent: false,
        },
    });
    let mut legacy = machine_with(&prog);
    let mut uop = machine_with(&prog);
    for m in [&mut legacy, &mut uop] {
        m.mem_mut().write_u32(0x100, 41).unwrap();
        m.arm_faults(&plan);
    }
    legacy.run_legacy(1000).unwrap();
    uop.run(1000).unwrap();
    assert_eq!(legacy.core().reg(Reg::A0), 33);
    assert_eq!(uop.core().reg(Reg::A0), 33);
    assert_eq!(legacy.fault_log(), uop.fault_log());
    assert_eq!(
        uop.fault_log()[0].effect,
        FaultEffect::FlippedMem {
            addr: 0x100,
            silent: false
        }
    );
}

#[test]
fn out_of_bounds_memory_flip_is_no_target() {
    let prog = counting_prog();
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: 1 << 30,
            bit: 0,
            silent: false,
        },
    });
    let (m, _) = run_both(&prog, &plan, 1000);
    assert_eq!(m.fault_log()[0].effect, FaultEffect::NoTarget);
}

#[test]
fn silent_memory_flip_evades_rewind_but_not_rebuild() {
    let mut mem = Memory::new(256);
    mem.write_u32(0x40, 0xAAAA_5555).unwrap();
    let image = mem.image();
    mem.load_image(&image);

    // Tracked flip: dirty, undone by restore.
    assert!(mem.flip_bit(0x40, 0, false));
    assert_eq!(mem.dirty_bytes(), 64);
    mem.restore_image(&image);
    assert_eq!(mem.read_u32(0x40).unwrap(), 0xAAAA_5555);

    // Silent flip: invisible to the bitmap, survives restore, healed
    // only by a full image load.
    assert!(mem.flip_bit(0x40, 0, true));
    assert_eq!(mem.dirty_bytes(), 0);
    mem.restore_image(&image);
    assert_eq!(mem.read_u32(0x40).unwrap(), 0xAAAA_5554, "flip survived");
    mem.load_image(&image);
    assert_eq!(mem.read_u32(0x40).unwrap(), 0xAAAA_5555, "rebuild heals");

    // Out of bounds: refused.
    assert!(!mem.flip_bit(4096, 0, false));
}

#[test]
fn instruction_patch_changes_semantics() {
    let prog = counting_prog();
    // Bit 20 is imm[0] of the I-type encoding: addi a0, a0, 1 becomes
    // addi a0, a0, 0, so a0 ends at 5 instead of 6.
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::InstrBit { pc: 4, bit: 20 },
    });
    let (m, r) = run_both(&prog, &plan, 1000);
    assert_eq!(r, Ok(ExitReason::Ecall));
    assert_eq!(m.core().reg(Reg::A0), 5);
    assert_eq!(m.fault_log()[0].effect, FaultEffect::PatchedInstr { pc: 4 });
}

#[test]
fn instruction_width_change_becomes_fetch_fault() {
    let prog = counting_prog();
    // ecall is 0x00000073; flipping bit 0 clears the 32-bit-width marker,
    // a width-class change that removes the slot instead of patching it.
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::InstrBit { pc: 8, bit: 0 },
    });
    let (m, r) = run_both(&prog, &plan, 1000);
    assert_eq!(r, Err(SimError::FetchFault { pc: 8 }));
    assert_eq!(m.fault_log()[0].effect, FaultEffect::RemovedInstr { pc: 8 });
    // The corruption is persistent: clearing fault state and resetting
    // does not heal the slot...
    let mut m = m;
    m.clear_faults();
    m.reset_core();
    assert_eq!(m.run(1000), Err(SimError::FetchFault { pc: 8 }));
    // ...but reloading the pristine program does.
    m.load_program(&prog);
    assert_eq!(m.run(1000), Ok(ExitReason::Ecall));
    assert_eq!(m.core().reg(Reg::A0), 6);
}

#[test]
fn instr_flip_outside_program_is_no_target() {
    let prog = counting_prog();
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::InstrBit { pc: 0x400, bit: 0 },
    });
    let (m, r) = run_both(&prog, &plan, 1000);
    assert_eq!(r, Ok(ExitReason::Ecall));
    assert_eq!(m.fault_log()[0].effect, FaultEffect::NoTarget);
}

#[test]
fn forced_watchdog_caps_the_budget_identically() {
    // jal zero, 0 — an infinite loop; the plan's watchdog (100) must
    // override the caller's ample budget on both paths, and the error
    // reports the effective (forced) budget.
    let prog = Program::from_instrs(
        0,
        vec![Instr::Jal {
            rd: Reg::ZERO,
            offset: 0,
        }],
    );
    let plan = FaultPlan::new().with_watchdog(100);
    let (m, r) = run_both(&prog, &plan, 1_000_000);
    assert_eq!(r, Err(SimError::Watchdog { max_cycles: 100 }));
    assert!(m.core().cycle > 100);
    assert!(m.core().cycle <= 102, "overshoot bounded by one step");
}

#[test]
fn armed_faults_survive_rewind_and_die_on_reload() {
    let prog = counting_prog();
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 1,
        site: FaultSite::RegBit {
            reg: Reg::A0,
            bit: 1,
        },
    });
    let mut m = machine_with(&prog);
    let image = m.mem().image();
    m.arm_faults(&plan);
    // The engine pattern: rewind after arming, then run — the fault must
    // still fire.
    m.rewind(&image);
    m.run(1000).unwrap();
    assert_eq!(m.core().reg(Reg::A0), 8);
    assert_eq!(m.fault_log().len(), 1);
    // Reloading the program disarms everything.
    m.arm_faults(&plan);
    m.load_program(&prog);
    m.run(1000).unwrap();
    assert_eq!(m.core().reg(Reg::A0), 6);
    assert!(m.fault_log().is_empty());
}

#[test]
fn multi_fault_plans_apply_in_instret_order() {
    let prog = counting_prog();
    // Scheduled out of order; the log must come out sorted by trigger.
    let plan = FaultPlan::new()
        .with_fault(Fault {
            at_instret: 2,
            site: FaultSite::RegBit {
                reg: Reg::A0,
                bit: 4,
            },
        })
        .with_fault(Fault {
            at_instret: 0,
            site: FaultSite::RegBit {
                reg: Reg::A0,
                bit: 0,
            },
        });
    let (m, _) = run_both(&prog, &plan, 1000);
    let log = m.fault_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].instret, 0);
    assert_eq!(log[1].instret, 2);
    // a0: 0^1=1 is overwritten by addi (5), +1 = 6, then 6^16 = 22.
    assert_eq!(m.core().reg(Reg::A0), 22);
}
