//! Regression tests for the straight-run coalescing threshold.
//!
//! `MIN_RUN_LEN` is 4: a straight-line stretch of exactly four eligible
//! micro-ops must form one bulk `StraightRun`, while three must not —
//! and in both cases the micro-op path must stay bit-identical to the
//! per-step legacy interpreter, per-mnemonic statistics rows included.

use rnnasip_isa::{AluImmOp, Instr, Reg};
use rnnasip_sim::{ExitReason, Machine, Program, Row, UopProgram};
use std::collections::BTreeMap;

/// A program of `n` eligible straight-line ALU ops followed by `ecall`
/// (`ecall` terminates run recognition, so the stretch length is `n`).
fn straight_prog(n: usize) -> Program {
    let mut instrs: Vec<Instr> = (0..n)
        .map(|i| Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: (i + 1) as i32,
        })
        .collect();
    instrs.push(Instr::Ecall);
    Program::from_instrs(0x0, instrs)
}

fn rows(m: &Machine) -> BTreeMap<&'static str, Row> {
    m.stats().iter().collect()
}

/// Runs `prog` on both paths and asserts bit-identity of the register
/// result, cycles, instret, and every stats row. Returns the uop
/// machine's final a0.
fn assert_paths_identical(prog: &Program) -> u32 {
    let mut uop = Machine::new(64 * 1024);
    uop.load_program(prog);
    assert_eq!(uop.run(1_000_000).unwrap(), ExitReason::Ecall);

    let mut legacy = Machine::new(64 * 1024);
    legacy.load_program(prog);
    assert_eq!(legacy.run_legacy(1_000_000).unwrap(), ExitReason::Ecall);

    assert_eq!(uop.core().reg(Reg::A0), legacy.core().reg(Reg::A0));
    assert_eq!(uop.core().instret, legacy.core().instret);
    assert_eq!(uop.stats().cycles(), legacy.stats().cycles());
    assert_eq!(uop.stats().instrs(), legacy.stats().instrs());
    assert_eq!(rows(&uop), rows(&legacy), "per-mnemonic rows diverge");
    assert_eq!(uop.stats().to_csv(), legacy.stats().to_csv());
    uop.core().reg(Reg::A0)
}

#[test]
fn run_forms_at_exactly_min_run_len() {
    let prog = straight_prog(4);
    let uops = UopProgram::translate(&prog);
    assert_eq!(
        uops.straight_runs(),
        1,
        "four eligible ops must coalesce into one run"
    );
    let a0 = assert_paths_identical(&prog);
    assert_eq!(a0, 1 + 2 + 3 + 4);
}

#[test]
fn no_run_forms_one_below_min_run_len() {
    let prog = straight_prog(3);
    let uops = UopProgram::translate(&prog);
    assert_eq!(
        uops.straight_runs(),
        0,
        "three eligible ops must stay un-coalesced"
    );
    let a0 = assert_paths_identical(&prog);
    assert_eq!(a0, 1 + 2 + 3);
}
