//! Micro-validation of the timing patterns behind Table I and Table II:
//! the per-iteration cycle counts of each optimization level's inner
//! loop, measured on hand-built loops in isolation.

use rnnasip_isa::*;
use rnnasip_sim::{Machine, Program};

const ITERS: u32 = 64;

/// Builds a machine with weights/inputs staged and the given loop body
/// inside an `ITERS`-iteration hardware loop; returns total cycles spent
/// in the body (total minus prologue/epilogue).
fn run_loop(prologue: Vec<Instr>, body: Vec<Instr>) -> u64 {
    let mut instrs = vec![
        // a0 = weight stream, a1 = input stream, t2 = count.
        Instr::Lui {
            rd: Reg::A0,
            imm20: 0x1,
        },
        Instr::Lui {
            rd: Reg::A1,
            imm20: 0x2,
        },
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::T2,
            rs1: Reg::ZERO,
            imm: ITERS as i32,
        },
    ];
    let prologue_len = prologue.len();
    instrs.extend(prologue);
    let body_bytes = (body.len() * 4) as u32;
    instrs.push(Instr::LpSetup {
        l: LoopIdx::L0,
        rs1: Reg::T2,
        uimm: (body_bytes + 4) / 2,
    });
    instrs.extend(body);
    instrs.push(Instr::Ecall);
    let mut m = Machine::new(1 << 20);
    // Plenty of readable data on both streams.
    for k in 0..(ITERS * 16) {
        m.mem_mut().write_u32(0x1000 + 4 * k, 0x0001_0002).unwrap();
        m.mem_mut().write_u32(0x2000 + 4 * k, 0x0003_0004).unwrap();
    }
    m.load_program(&Program::from_instrs(0, instrs));
    m.run(1_000_000).unwrap();
    // Subtract the non-loop instructions (all single-cycle here except
    // any stall they might incur — prologue is stall-free by
    // construction): 3 setup + prologue + lp.setup + ecall.
    m.stats().cycles() - (3 + prologue_len as u64 + 1 + 1)
}

fn lw_post(rd: Reg, rs1: Reg) -> Instr {
    Instr::LoadPostInc {
        op: LoadOp::Lw,
        rd,
        rs1,
        offset: 4,
    }
}

fn pv_sdot(rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
    Instr::PvDot {
        op: DotOp::SdotSp,
        size: SimdSize::Half,
        rd,
        rs1,
        rs2,
    }
}

fn pl_sdot(spr: u8, rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
    Instr::PlSdotsp {
        spr,
        size: SimdSize::Half,
        rd,
        rs1,
        rs2,
    }
}

/// Level (b) inner loop: `lw! w ; lw! x ; pv.sdotsp` — 3 instructions
/// but 4 cycles, because the input load feeds the very next instruction
/// (the stall Table Ib shows as `lw!` at 2 432 kcyc / 1 621 kinstr).
#[test]
fn xpulp_loop_is_four_cycles_per_iteration() {
    let cycles = run_loop(
        vec![],
        vec![
            lw_post(Reg::GP, Reg::A0),
            lw_post(Reg::T0, Reg::A1),
            pv_sdot(Reg::A4, Reg::GP, Reg::T0),
        ],
    );
    assert_eq!(cycles, 4 * ITERS as u64);
}

/// Level (c) inner loop with a 4-output tile: `lw! x ; 4×(lw! w)
/// interleaved with 4×pv.sdotsp` — 9 instructions, 9 cycles (stall-free:
/// every load sits two instructions ahead of its consumer).
#[test]
fn ofm_loop_is_stall_free() {
    let cycles = run_loop(
        vec![],
        vec![
            lw_post(Reg::T0, Reg::A1), // x
            lw_post(Reg::GP, Reg::A0), // w0
            lw_post(Reg::TP, Reg::A0), // w1
            pv_sdot(Reg::A4, Reg::GP, Reg::T0),
            lw_post(Reg::GP, Reg::A0), // w2
            pv_sdot(Reg::A5, Reg::TP, Reg::T0),
            lw_post(Reg::TP, Reg::A0), // w3
            pv_sdot(Reg::A6, Reg::GP, Reg::T0),
            pv_sdot(Reg::A7, Reg::TP, Reg::T0),
        ],
    );
    assert_eq!(cycles, 9 * ITERS as u64);
}

/// Level (d) inner loop (Table II right): `lw! x ; 4×pl.sdotsp.h` —
/// 5 instructions, 6 cycles: the single bubble after the input load is
/// exactly the paper's "bubble rB dependency" comment.
#[test]
fn sdotsp_loop_has_exactly_one_bubble() {
    let cycles = run_loop(
        vec![
            pl_sdot(0, Reg::ZERO, Reg::A0, Reg::ZERO),
            pl_sdot(1, Reg::ZERO, Reg::A0, Reg::ZERO),
        ],
        vec![
            lw_post(Reg::T0, Reg::A1),
            pl_sdot(0, Reg::A4, Reg::A0, Reg::T0),
            pl_sdot(1, Reg::A5, Reg::A0, Reg::T0),
            pl_sdot(0, Reg::A6, Reg::A0, Reg::T0),
            pl_sdot(1, Reg::A7, Reg::A0, Reg::T0),
        ],
    );
    assert_eq!(cycles, 6 * ITERS as u64);
}

/// Level (e) inner loop: two input loads then 8 merged MACs — 10
/// instructions, 10 cycles, zero stalls (the whole point of input-FM
/// tiling, Table Ie).
#[test]
fn ifm_loop_removes_the_bubble() {
    let cycles = run_loop(
        vec![
            pl_sdot(0, Reg::ZERO, Reg::A0, Reg::ZERO),
            pl_sdot(1, Reg::ZERO, Reg::A0, Reg::ZERO),
        ],
        vec![
            lw_post(Reg::T0, Reg::A1),
            lw_post(Reg::T1, Reg::A1),
            pl_sdot(0, Reg::A4, Reg::A0, Reg::T0),
            pl_sdot(1, Reg::A5, Reg::A0, Reg::T0),
            pl_sdot(0, Reg::A6, Reg::A0, Reg::T0),
            pl_sdot(1, Reg::A7, Reg::A0, Reg::T0),
            pl_sdot(0, Reg::A4, Reg::A0, Reg::T1),
            pl_sdot(1, Reg::A5, Reg::A0, Reg::T1),
            pl_sdot(0, Reg::A6, Reg::A0, Reg::T1),
            pl_sdot(1, Reg::A7, Reg::A0, Reg::T1),
        ],
    );
    assert_eq!(cycles, 10 * ITERS as u64);
}

/// The factored per-MAC costs of the four loops reproduce the paper's
/// cascade: 2.0 -> 1.125 -> 0.75 -> 0.625 cycles/MAC in steady state.
#[test]
fn steady_state_cycles_per_mac_cascade() {
    // From the loops above: (b) 4 cyc / 2 MACs, (c) 9 / 8, (d) 6 / 8,
    // (e) 10 / 16.
    let b: f64 = 4.0 / 2.0;
    let c: f64 = 9.0 / 8.0;
    let d: f64 = 6.0 / 8.0;
    let e: f64 = 10.0 / 16.0;
    assert!(b > c && c > d && d > e);
    assert!((b / c - 1.78).abs() < 0.01, "OFM factor ~1.8x");
    assert!(
        (c / d - 1.5).abs() < 0.01,
        "sdotsp factor 1.5x steady-state"
    );
    assert!((d / e - 1.2).abs() < 0.01, "IFM factor 1.2x steady-state");
}
