// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Cross-validation of the ISA's static operand metadata against the
//! simulator's actual behaviour: executing any instruction may only
//! modify the registers its `defs()` declares. The load-use stall model
//! (and hence every Table I number) is built on this metadata, so a
//! mismatch would silently skew the paper's reproduction.

use proptest::prelude::*;
use rnnasip_isa::{decode, Instr, Reg};
use rnnasip_sim::{Machine, Program};

/// Runs `instr` once from a randomized-but-safe register state; returns
/// the set of changed GPRs, or `None` if the instruction faulted
/// (e.g. a wild memory address — not what this test is about).
fn changed_regs(instr: Instr, seed: u32) -> Option<Vec<Reg>> {
    let mut m = Machine::new(1 << 16);
    m.load_program(&Program::from_instrs(0, [instr, Instr::Ecall]));
    // Safe register values: small word-aligned addresses inside memory,
    // different per register so moves are observable.
    let mut before = [0u32; 32];
    for r in Reg::all() {
        let v = 0x100 + 8 * (r.num() as u32) + (seed % 7) * 8;
        m.core_mut().set_reg(r, v);
        before[r.num() as usize] = m.core().reg(r);
    }
    // Give loads something to read everywhere we point.
    for r in &before {
        let _ = m.mem_mut().write_u32(*r & !3, 0xA5A5_0000 | *r);
    }
    if m.step().is_err() {
        return None;
    }
    Some(
        Reg::all()
            .filter(|&r| m.core().reg(r) != before[r.num() as usize])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn executed_writes_are_subset_of_declared_defs(word in any::<u32>(), seed in any::<u32>()) {
        let Ok(instr) = decode(word) else { return Ok(()) };
        // Control flow would jump away from the ecall; the register
        // contract still holds but the harness can't easily observe it.
        if instr.is_control_flow() || matches!(instr, Instr::Ecall | Instr::Ebreak) {
            return Ok(());
        }
        let Some(changed) = changed_regs(instr, seed) else { return Ok(()) };
        let defs = instr.defs();
        for r in &changed {
            prop_assert!(
                defs.contains(*r),
                "{instr} modified {r} but defs() = {defs:?}"
            );
        }
    }

    /// And conversely: an instruction never reads a register outside its
    /// declared uses() — verified by perturbing non-used registers and
    /// checking the architectural result is unchanged.
    #[test]
    fn results_depend_only_on_declared_uses(word in any::<u32>(), seed in any::<u32>()) {
        let Ok(instr) = decode(word) else { return Ok(()) };
        if instr.is_control_flow()
            || matches!(instr, Instr::Ecall | Instr::Ebreak | Instr::Csr { .. })
            || instr.is_load()
            || instr.is_store()
        {
            // Memory ops' *data* results legitimately depend on memory
            // contents addressed through used regs; skip the heavyweight
            // setup and keep this property to pure register ops.
            return Ok(());
        }
        let uses = instr.uses();
        let defs = instr.defs();
        let run = |perturb: bool| -> Option<Vec<u32>> {
            let mut m = Machine::new(1 << 16);
            m.load_program(&Program::from_instrs(0, [instr, Instr::Ecall]));
            for r in Reg::all() {
                let mut v = 0x100 + 8 * (r.num() as u32) + (seed % 7) * 8;
                if perturb && !uses.contains(r) && !defs.contains(r) {
                    v ^= 0xDEAD_0000;
                }
                m.core_mut().set_reg(r, v);
            }
            if m.step().is_err() {
                return None;
            }
            Some(defs.iter().map(|r| m.core().reg(r)).collect())
        };
        let (a, b) = (run(false), run(true));
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a, b, "{} result depends on a register outside uses()", instr);
        }
    }
}
