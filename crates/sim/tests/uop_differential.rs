//! Randomized differential test: the pre-decoded micro-op execution path
//! (`Machine::run`) against the per-step reference interpreter
//! (`Machine::run_legacy`).
//!
//! Programs are generated from a vocabulary biased toward the features
//! where the two paths genuinely diverge in mechanism: hardware loops
//! (specializable straight-line bodies, nested loops sharing an end
//! address, bodies with control flow or CSR reads that must fall back),
//! post-increment load/store streams, `pl.sdotsp` SPR pipelines, taken
//! and untaken branches, `jalr`, serial divides, and pointer streams
//! that eventually fault mid-loop. Every seed is run under several cycle
//! budgets so the watchdog fires inside bulk loop runs too.
//!
//! After both paths run the same program on identically staged machines,
//! *everything observable* must match: the `Result`, all 32 registers,
//! PC, cycle and instret counters, hardware-loop and SPR state, every
//! per-mnemonic statistics row, and the full memory image.

use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, Csr, CsrOp, DotOp, Instr, LoadOp, LoopIdx, MulDivOp, PvAluOp, Reg,
    SimdMode, SimdSize, StoreOp,
};
use rnnasip_rng::StdRng;
use rnnasip_sim::{Fault, FaultPlan, FaultSite, Machine, Memory, Program};

/// Small memory so runaway pointer streams fault within a few hundred
/// iterations instead of never.
const MEM_BYTES: usize = 2048;

const REG_POOL: [Reg; 8] = [
    Reg::A0,
    Reg::A3,
    Reg::A4,
    Reg::T0,
    Reg::T1,
    Reg::S0,
    Reg::S1,
    Reg::ZERO,
];

/// `a1` is the load/`pl.sdotsp` pointer, `a2` the store pointer — kept
/// out of the general pool so streams stay mostly in bounds.
const PTR_LOAD: Reg = Reg::A1;
const PTR_STORE: Reg = Reg::A2;

struct Gen {
    rng: StdRng,
}

impl Gen {
    fn u(&mut self, n: u32) -> u32 {
        self.rng.gen::<u32>() % n
    }

    fn reg(&mut self) -> Reg {
        REG_POOL[self.u(REG_POOL.len() as u32) as usize]
    }

    fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> Instr {
        let _ = self;
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    /// One straight-line (loop-body-eligible) instruction.
    fn body_instr(&mut self) -> Instr {
        match self.u(12) {
            0 | 1 => {
                let (rd, rs1) = (self.reg(), self.reg());
                let imm = self.u(64) as i32 - 32;
                self.addi(rd, rs1, imm)
            }
            2 => Instr::Op {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And][self.u(4) as usize],
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            3 => Instr::Mac {
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            4 => Instr::PvDot {
                op: [DotOp::SdotSp, DotOp::DotUp, DotOp::SdotUsp][self.u(3) as usize],
                size: if self.u(2) == 0 {
                    SimdSize::Half
                } else {
                    SimdSize::Byte
                },
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            5 => Instr::PvAlu {
                op: [PvAluOp::Add, PvAluOp::Max, PvAluOp::Sra][self.u(3) as usize],
                size: SimdSize::Half,
                mode: match self.u(3) {
                    0 => SimdMode::Vv,
                    1 => SimdMode::Sc,
                    _ => SimdMode::Sci(self.u(63) as i8 - 31),
                },
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            6 | 7 => Instr::LoadPostInc {
                op: LoadOp::Lw,
                rd: self.reg(),
                rs1: PTR_LOAD,
                offset: 4,
            },
            8 => Instr::StorePostInc {
                op: StoreOp::Sw,
                rs2: self.reg(),
                rs1: PTR_STORE,
                offset: 4,
            },
            9 => Instr::PlSdotsp {
                spr: self.u(2) as u8,
                size: SimdSize::Half,
                rd: self.reg(),
                rs1: PTR_LOAD,
                rs2: self.reg(),
            },
            10 => Instr::MulDiv {
                op: [MulDivOp::Mul, MulDivOp::Mulh, MulDivOp::Div, MulDivOp::Remu]
                    [self.u(4) as usize],
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            _ => Instr::PlTanh {
                rd: self.reg(),
                rs1: self.reg(),
            },
        }
    }

    /// A hardware loop over a body of `body_len` generated instructions.
    fn emit_loop(&mut self, out: &mut Vec<Instr>) {
        let body_len = 1 + self.u(4);
        let nested = self.u(4) == 0;
        let poison = self.u(5) == 0; // body gets a fallback-forcing op
        if nested {
            let outer = 1 + self.u(4);
            let inner = 1 + self.u(24);
            // Outer body = inner setup + shared body; both loops end at
            // the same address (the canonical RI5CY nesting pattern).
            out.push(Instr::LpSetupi {
                l: LoopIdx::L1,
                count: outer,
                uimm: 2 + 2 * (body_len + 1),
            });
            out.push(Instr::LpSetupi {
                l: LoopIdx::L0,
                count: inner,
                uimm: 2 + 2 * body_len,
            });
        } else {
            let count = self.u(48);
            let l = if self.u(2) == 0 {
                LoopIdx::L0
            } else {
                LoopIdx::L1
            };
            if self.u(2) == 0 {
                out.push(self.addi(Reg::T2, Reg::ZERO, count as i32));
                out.push(Instr::LpSetup {
                    l,
                    rs1: Reg::T2,
                    uimm: 2 + 2 * body_len,
                });
            } else {
                out.push(Instr::LpSetupi {
                    l,
                    count,
                    uimm: 2 + 2 * body_len,
                });
            }
        }
        for k in 0..body_len {
            if poison && k == body_len / 2 {
                // A branch or CSR read in the body defeats specialization
                // at translate time; the generic path must handle the
                // loop identically.
                out.push(if self.u(2) == 0 {
                    Instr::Branch {
                        op: BranchOp::Bne,
                        rs1: Reg::ZERO,
                        rs2: Reg::ZERO,
                        offset: 8, // never taken
                    }
                } else {
                    Instr::Csr {
                        op: CsrOp::Csrrs,
                        rd: self.reg(),
                        rs1: Reg::ZERO,
                        csr: Csr::Mcycle,
                    }
                });
            } else {
                out.push(self.body_instr());
            }
        }
    }

    fn emit_chunk(&mut self, out: &mut Vec<Instr>) {
        match self.u(10) {
            0..=1 => {
                for _ in 0..=self.u(3) {
                    let i = self.body_instr();
                    out.push(i);
                }
            }
            2 => {
                // Forward branch over filler instructions.
                let skip = 1 + self.u(3);
                out.push(Instr::Branch {
                    op: [BranchOp::Beq, BranchOp::Bne, BranchOp::Blt, BranchOp::Bgeu]
                        [self.u(4) as usize],
                    rs1: self.reg(),
                    rs2: self.reg(),
                    offset: 4 * (1 + skip as i32),
                });
                for _ in 0..=skip {
                    let (rd, rs1) = (self.reg(), self.reg());
                    let i = self.addi(rd, rs1, 1);
                    out.push(i);
                }
            }
            3..=5 => self.emit_loop(out),
            6 => {
                // pl.sdotsp stream with a spacer, the paper's idiom.
                for _ in 0..2 + self.u(3) {
                    out.push(Instr::PlSdotsp {
                        spr: self.u(2) as u8,
                        size: SimdSize::Half,
                        rd: self.reg(),
                        rs1: PTR_LOAD,
                        rs2: self.reg(),
                    });
                    if self.u(2) == 0 {
                        let i = self.addi(Reg::ZERO, Reg::ZERO, 0);
                        out.push(i);
                    }
                }
            }
            7 => {
                // auipc + jalr: a register-indirect jump to a known-good
                // forward target (auipc addr + 8 or + 12).
                let skip = self.u(2); // 0 or 1 filler skipped
                out.push(Instr::Auipc {
                    rd: Reg::T2,
                    imm20: 0,
                });
                out.push(Instr::Jalr {
                    rd: Reg::RA,
                    rs1: Reg::T2,
                    offset: 8 + 4 * skip as i32,
                });
                for _ in 0..=skip {
                    let i = self.addi(Reg::ZERO, Reg::ZERO, 0);
                    out.push(i);
                }
            }
            8 => {
                // Load/store pairs through the pointer regs, with a
                // halfword variant that de-aligns the word stream.
                out.push(Instr::LoadPostInc {
                    op: if self.u(5) == 0 {
                        LoadOp::Lh
                    } else {
                        LoadOp::Lw
                    },
                    rd: self.reg(),
                    rs1: PTR_LOAD,
                    offset: if self.u(5) == 0 { 2 } else { 4 },
                });
                out.push(Instr::Store {
                    op: StoreOp::Sw,
                    rs2: self.reg(),
                    rs1: PTR_STORE,
                    offset: 4 * self.u(8) as i32,
                });
                out.push(Instr::LoadReg {
                    op: LoadOp::Lbu,
                    rd: self.reg(),
                    rs1: PTR_LOAD,
                    rs2: Reg::ZERO,
                });
            }
            _ => match self.u(5) {
                // Rarities: manual loop CSR setup, a degenerate lp.setupi
                // (start >= end -> BadHwLoop), fence, CSR reads, and a
                // backward jal (infinite loop -> watchdog).
                0 => {
                    out.push(Instr::LpCounti {
                        l: LoopIdx::L0,
                        uimm: self.u(4),
                    });
                    out.push(Instr::LpStarti {
                        l: LoopIdx::L0,
                        uimm: self.u(8),
                    });
                    out.push(Instr::LpEndi {
                        l: LoopIdx::L0,
                        uimm: self.u(8),
                    });
                    let i = self.body_instr();
                    out.push(i);
                    let i = self.body_instr();
                    out.push(i);
                }
                1 => out.push(Instr::LpSetupi {
                    l: LoopIdx::L1,
                    count: 1 + self.u(4),
                    uimm: self.u(2),
                }),
                2 => out.push(Instr::Fence),
                3 => out.push(Instr::Csr {
                    op: CsrOp::Csrrs,
                    rd: self.reg(),
                    rs1: Reg::ZERO,
                    csr: [Csr::Mcycle, Csr::Minstret, Csr::LpCount0][self.u(3) as usize],
                }),
                _ => out.push(Instr::Jal {
                    rd: Reg::ZERO,
                    offset: -8,
                }),
            },
        }
    }

    fn program(&mut self) -> Program {
        let mut v = Vec::new();
        // Pointer setup: word-aligned, usually low (streams stay in
        // bounds), sometimes near the top of memory (streams fault).
        let load_base = if self.u(4) == 0 {
            (MEM_BYTES as u32 - 64) & !3
        } else {
            4 * self.u(200)
        };
        v.push(self.addi(PTR_LOAD, Reg::ZERO, load_base as i32));
        let store_base = 4 * (100 + self.u(100)) as i32;
        v.push(self.addi(PTR_STORE, Reg::ZERO, store_base));
        // Seed a couple of pool registers with data.
        for _ in 0..3 {
            let rd = self.reg();
            let imm = self.u(4096) as i32 - 2048;
            let i = self.addi(rd, Reg::ZERO, imm);
            v.push(i);
        }
        for _ in 0..4 + self.u(6) {
            self.emit_chunk(&mut v);
        }
        v.push(Instr::Ecall);
        Program::from_instrs(0, v)
    }
}

/// Builds a machine with deterministically patterned memory.
fn staged_machine(prog: &Program, seed: u64) -> Machine {
    let mut mem = Memory::new(MEM_BYTES);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    for a in (0..MEM_BYTES as u32).step_by(4) {
        mem.write_u32(a, rng.gen::<u32>()).unwrap();
    }
    // The patterned image is the baseline; the dirty bitmap tracks the
    // program's own writes from here.
    let image = mem.image();
    mem.load_image(&image);
    let mut m = Machine::with_memory(mem);
    m.load_program(prog);
    m
}

fn assert_identical(seed: u64, max_cycles: u64, prog: &Program) {
    assert_identical_with_plan(seed, max_cycles, prog, None);
}

fn assert_identical_with_plan(
    seed: u64,
    max_cycles: u64,
    prog: &Program,
    plan: Option<&FaultPlan>,
) {
    let mut legacy = staged_machine(prog, seed);
    let mut uop = staged_machine(prog, seed);
    if let Some(plan) = plan {
        legacy.arm_faults(plan);
        uop.arm_faults(plan);
    }
    let r_legacy = legacy.run_legacy(max_cycles);
    let r_uop = uop.run(max_cycles);
    let ctx = format!("seed {seed}, budget {max_cycles}");

    assert_eq!(legacy.fault_log(), uop.fault_log(), "fault log ({ctx})");

    assert_eq!(r_legacy, r_uop, "exit ({ctx})");
    let (cl, cu) = (legacy.core(), uop.core());
    assert_eq!(cl.pc, cu.pc, "pc ({ctx})");
    assert_eq!(cl.cycle, cu.cycle, "cycle ({ctx})");
    assert_eq!(cl.instret, cu.instret, "instret ({ctx})");
    for r in Reg::all() {
        assert_eq!(cl.reg(r), cu.reg(r), "reg {r} ({ctx})");
    }
    for l in 0..2 {
        assert_eq!(cl.hwloop[l].start, cu.hwloop[l].start, "lpstart{l} ({ctx})");
        assert_eq!(cl.hwloop[l].end, cu.hwloop[l].end, "lpend{l} ({ctx})");
        assert_eq!(cl.hwloop[l].count, cu.hwloop[l].count, "lpcount{l} ({ctx})");
    }
    assert_eq!(cl.spr, cu.spr, "spr ({ctx})");

    let (sl, su) = (legacy.stats(), uop.stats());
    assert_eq!(sl.cycles(), su.cycles(), "total cycles ({ctx})");
    assert_eq!(sl.instrs(), su.instrs(), "total instrs ({ctx})");
    assert_eq!(sl.stall_cycles(), su.stall_cycles(), "stalls ({ctx})");
    assert_eq!(sl.mac_ops(), su.mac_ops(), "macs ({ctx})");
    for ((name_l, row_l), (name_u, row_u)) in sl.iter().zip(su.iter()) {
        assert_eq!(name_l, name_u, "row order ({ctx})");
        assert_eq!(row_l, row_u, "row {name_l} ({ctx})");
    }

    assert_eq!(
        legacy.mem().image().as_bytes(),
        uop.mem().image().as_bytes(),
        "memory ({ctx})"
    );
}

#[test]
fn randomized_programs_match_reference_bit_exactly() {
    let mut halts = 0u32;
    let mut errors = 0u32;
    for seed in 0..400u64 {
        let mut g = Gen {
            rng: StdRng::seed_from_u64(seed),
        };
        let prog = g.program();
        // Several budgets per program: tiny (watchdog mid-loop, often
        // mid-bulk), small, and ample (normal termination).
        for max_cycles in [60, 700, 20_000] {
            assert_identical(seed, max_cycles, &prog);
        }
        let mut probe = staged_machine(&prog, seed);
        match probe.run(20_000) {
            Ok(_) => halts += 1,
            Err(_) => errors += 1,
        }
    }
    // The generator must keep both populations healthy, or the test
    // quietly stops covering one side.
    assert!(halts >= 100, "only {halts} seeds halted cleanly");
    assert!(errors >= 40, "only {errors} seeds faulted");
}

/// A seeded fault plan aimed at a program of `prog_len` 4-byte
/// instructions based at 0: a few bit-flips across all three site kinds,
/// sometimes with a forced watchdog.
fn fault_plan(seed: u64, prog_len: usize) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let mut u = move |n: u32| rng.gen::<u32>() % n;
    let mut plan = FaultPlan::new();
    for _ in 0..1 + u(3) {
        // Mostly early triggers (many generated programs retire only a
        // few dozen instructions); occasionally deep into a loop.
        let at_instret = u64::from(if u(4) == 0 { u(1500) } else { u(40) });
        let site = match u(4) {
            0 => FaultSite::MemBit {
                // Slightly past the end sometimes, exercising NoTarget.
                addr: u(MEM_BYTES as u32 + 64),
                bit: u(8),
                silent: u(4) == 0,
            },
            1 => FaultSite::RegBit {
                reg: REG_POOL[u(REG_POOL.len() as u32) as usize],
                bit: u(32),
            },
            2 => FaultSite::InstrBit {
                pc: 4 * u(prog_len as u32 + 2),
                bit: u(32),
            },
            _ => FaultSite::MemBit {
                addr: 4 * u(MEM_BYTES as u32 / 4),
                bit: u(8),
                silent: false,
            },
        };
        plan = plan.with_fault(Fault { at_instret, site });
    }
    if u(4) == 0 {
        plan = plan.with_watchdog(u64::from(200 + u(4_000)));
    }
    plan
}

/// Satellite of the fault-injection subsystem: under identical injected
/// fault plans — memory/register bit-flips, instruction corruption,
/// forced watchdogs — both execution paths must report the same error
/// variant, faulting PC, cycle count, fault log, and full machine state.
#[test]
fn fault_plans_match_reference_bit_exactly() {
    let mut applied = 0usize;
    let mut corrupted = 0usize;
    let mut errors = 0u32;
    for seed in 0..150u64 {
        let mut g = Gen {
            rng: StdRng::seed_from_u64(seed),
        };
        let prog = g.program();
        let plan = fault_plan(seed, prog.len());
        for max_cycles in [700, 20_000] {
            assert_identical_with_plan(seed, max_cycles, &prog, Some(&plan));
        }
        let mut probe = staged_machine(&prog, seed);
        probe.arm_faults(&plan);
        if probe.run(20_000).is_err() {
            errors += 1;
        }
        applied += probe.fault_log().len();
        corrupted += probe
            .fault_log()
            .iter()
            .filter(|r| {
                matches!(
                    r.effect,
                    rnnasip_sim::FaultEffect::PatchedInstr { .. }
                        | rnnasip_sim::FaultEffect::RemovedInstr { .. }
                )
            })
            .count();
    }
    // Population health: the plans must actually strike, corrupt code,
    // and produce detected crashes, or the differential stops covering
    // the interesting paths.
    assert!(applied >= 100, "only {applied} faults applied");
    assert!(corrupted >= 10, "only {corrupted} instruction corruptions");
    assert!(errors >= 20, "only {errors} seeds faulted under injection");
}

#[test]
fn specialized_loops_are_actually_exercised() {
    // Guard against the generator drifting to programs whose loops never
    // specialize — the whole point is differential coverage of the bulk
    // runner.
    let mut specialized = 0usize;
    for seed in 0..100u64 {
        let mut g = Gen {
            rng: StdRng::seed_from_u64(seed),
        };
        let prog = g.program();
        let mut m = Machine::new(MEM_BYTES);
        m.load_program(&prog);
        specialized += m.uop_program().loop_bodies();
    }
    assert!(
        specialized >= 50,
        "only {specialized} specialized loop bodies across 100 seeds"
    );
}
