//! Execution-semantics coverage: SIMD byte/scalar/immediate modes,
//! clips, sign extensions, division corner cases, compressed program
//! execution, and the SPR staleness window of `pl.sdotsp`.

use rnnasip_isa::*;
use rnnasip_sim::{Machine, Program};

fn machine_with(instrs: Vec<Instr>) -> Machine {
    let mut m = Machine::new(4096);
    m.load_program(&Program::from_instrs(0, instrs));
    m
}

fn run(instrs: Vec<Instr>) -> Machine {
    let mut m = machine_with(instrs);
    m.run(100_000).expect("program halts");
    m
}

fn li32(rd: Reg, value: u32) -> Vec<Instr> {
    // lui+addi sequence valid for any 32-bit constant.
    let upper = (value.wrapping_add(0x800) >> 12) as i32;
    let lower = (value as i32).wrapping_sub(upper << 12);
    let mut v = vec![Instr::Lui {
        rd,
        imm20: upper & 0xFFFFF,
    }];
    if lower != 0 {
        v.push(Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rd,
            imm: lower,
        });
    }
    v
}

#[test]
fn simd_byte_add_wraps_per_lane() {
    // lanes a = [0x7F, 0x01, 0xFF, 0x80], b = [0x01, 0x01, 0x01, 0x01]
    let a = u32::from_le_bytes([0x7F, 0x01, 0xFF, 0x80]);
    let b = u32::from_le_bytes([0x01, 0x01, 0x01, 0x01]);
    let mut prog = li32(Reg::A0, a);
    prog.extend(li32(Reg::A1, b));
    prog.push(Instr::PvAlu {
        op: PvAluOp::Add,
        size: SimdSize::Byte,
        mode: SimdMode::Vv,
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    // 0x7F+1 wraps to 0x80; 0xFF+1 wraps to 0x00; 0x80+1 = 0x81.
    assert_eq!(
        m.core().reg(Reg::A2).to_le_bytes(),
        [0x80, 0x02, 0x00, 0x81]
    );
}

#[test]
fn simd_scalar_replication_mode() {
    // pv.max.sc.h replicates rs2's low half into both lanes.
    let a = (1000u32 << 16) | (0xF000u32); // lanes [-4096, 1000]
    let mut prog = li32(Reg::A0, a);
    prog.extend(li32(Reg::A1, 5));
    prog.push(Instr::PvAlu {
        op: PvAluOp::Max,
        size: SimdSize::Half,
        mode: SimdMode::Sc,
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    assert_eq!(m.core().reg(Reg::A2), (1000u32 << 16) | 5);
}

#[test]
fn simd_immediate_replication_mode() {
    // pv.sra.sci.h shifts both lanes by the immediate.
    let a = (0x8000u32 << 16) | 0x0100; // lanes [256, -32768]
    let mut prog = li32(Reg::A0, a);
    prog.push(Instr::PvAlu {
        op: PvAluOp::Sra,
        size: SimdSize::Half,
        mode: SimdMode::Sci(4),
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::ZERO,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    let lanes = m.core().reg(Reg::A2);
    assert_eq!(lanes as u16 as i16, 16);
    assert_eq!((lanes >> 16) as u16 as i16, -2048);
}

#[test]
fn clip_bounds() {
    let mut prog = li32(Reg::A0, 100_000);
    prog.push(Instr::Clip {
        rd: Reg::A1,
        rs1: Reg::A0,
        bits: 16,
    });
    prog.extend(li32(Reg::A2, (-100_000i32) as u32));
    prog.push(Instr::Clip {
        rd: Reg::A3,
        rs1: Reg::A2,
        bits: 16,
    });
    prog.push(Instr::ClipU {
        rd: Reg::A4,
        rs1: Reg::A2,
        bits: 8,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    assert_eq!(m.core().reg(Reg::A1) as i32, 32767);
    assert_eq!(m.core().reg(Reg::A3) as i32, -32768);
    assert_eq!(m.core().reg(Reg::A4), 0, "clipu clamps negatives to zero");
}

#[test]
fn sign_extensions() {
    let v: u32 = 0x0001_80FF; // halfword 0x80FF, byte 0xFF
    let mut prog = li32(Reg::A0, v);
    prog.push(Instr::ExtHs {
        rd: Reg::A1,
        rs1: Reg::A0,
    });
    prog.push(Instr::ExtHz {
        rd: Reg::A2,
        rs1: Reg::A0,
    });
    prog.push(Instr::ExtBs {
        rd: Reg::A3,
        rs1: Reg::A0,
    });
    prog.push(Instr::ExtBz {
        rd: Reg::A4,
        rs1: Reg::A0,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    assert_eq!(m.core().reg(Reg::A1) as i32, 0x80FFu16 as i16 as i32);
    assert_eq!(m.core().reg(Reg::A2), 0x80FF);
    assert_eq!(m.core().reg(Reg::A3) as i32, -1);
    assert_eq!(m.core().reg(Reg::A4), 0xFF);
}

#[test]
fn division_corner_cases() {
    // div by zero -> all ones; MIN / -1 -> MIN; rem by zero -> dividend.
    let mut prog = li32(Reg::A0, i32::MIN as u32);
    prog.extend(li32(Reg::A1, (-1i32) as u32));
    prog.push(Instr::MulDiv {
        op: MulDivOp::Div,
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    prog.push(Instr::MulDiv {
        op: MulDivOp::Div,
        rd: Reg::A3,
        rs1: Reg::A0,
        rs2: Reg::ZERO,
    });
    prog.push(Instr::MulDiv {
        op: MulDivOp::Rem,
        rd: Reg::A4,
        rs1: Reg::A0,
        rs2: Reg::ZERO,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    assert_eq!(m.core().reg(Reg::A2), i32::MIN as u32);
    assert_eq!(m.core().reg(Reg::A3), u32::MAX);
    assert_eq!(m.core().reg(Reg::A4), i32::MIN as u32);
    // Divides are multi-cycle.
    assert!(m.stats().row("div").cycles > 2 * m.stats().row("div").instrs);
}

#[test]
fn compressed_program_executes_with_correct_pcs() {
    // Mix 2- and 4-byte instructions; verify results and code size.
    let mut p = Program::new(0);
    p.push(
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: 5,
        },
        2,
    ); // c.li
    p.push(
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 10,
        },
        2,
    ); // c.addi
    p.push(
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A1,
            rs1: Reg::A0,
            imm: 1000,
        },
        4,
    );
    p.push(Instr::Ecall, 4);
    assert_eq!(p.code_size(), 12);
    let mut m = Machine::new(64);
    m.load_program(&p);
    m.run(100).expect("halts");
    assert_eq!(m.core().reg(Reg::A1), 1015);
}

#[test]
fn spr_write_not_visible_to_immediately_following_same_spr_read() {
    // Two back-to-back pl.sdotsp.h.0: the second reads the *old* SPR0
    // (zero at reset), because the load issued by the first lands two
    // instructions later. This staleness window is exactly why the
    // kernels alternate .0/.1.
    let mut m = Machine::new(4096);
    m.mem_mut().write_u32(0x100, (3u32 << 16) | 2).unwrap(); // weights (2,3)
    m.mem_mut().write_u32(0x104, (5u32 << 16) | 4).unwrap();
    let x = (1u32 << 16) | 1; // ones
    let mut prog = li32(Reg::A0, 0x100);
    prog.extend(li32(Reg::A1, x));
    prog.push(Instr::PlSdotsp {
        spr: 0,
        size: SimdSize::Half,
        rd: Reg::T0,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    prog.push(Instr::PlSdotsp {
        spr: 0,
        size: SimdSize::Half,
        rd: Reg::T1,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    // Third one sees the first load's data (2+3 = 5).
    prog.push(Instr::PlSdotsp {
        spr: 0,
        size: SimdSize::Half,
        rd: Reg::T2,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    prog.push(Instr::Ecall);
    let mut mach = Machine::new(4096);
    mach.mem_mut().write_u32(0x100, (3u32 << 16) | 2).unwrap();
    mach.mem_mut().write_u32(0x104, (5u32 << 16) | 4).unwrap();
    mach.mem_mut().write_u32(0x108, 0).unwrap();
    mach.load_program(&Program::from_instrs(0, prog));
    mach.run(1000).unwrap();
    assert_eq!(mach.core().reg(Reg::T0), 0, "SPR0 starts empty");
    assert_eq!(mach.core().reg(Reg::T1), 0, "first load not visible yet");
    assert_eq!(mach.core().reg(Reg::T2), 5, "first load visible at +2");
    let _ = m;
}

#[test]
fn bit_manipulation_semantics() {
    let mut prog = li32(Reg::A0, 0b0001_1000);
    prog.push(Instr::Ff1 {
        rd: Reg::A1,
        rs1: Reg::A0,
    });
    prog.push(Instr::Fl1 {
        rd: Reg::A2,
        rs1: Reg::A0,
    });
    prog.push(Instr::Cnt {
        rd: Reg::A3,
        rs1: Reg::A0,
    });
    prog.push(Instr::Ff1 {
        rd: Reg::A4,
        rs1: Reg::ZERO,
    });
    prog.extend(li32(Reg::T0, 5));
    prog.push(Instr::Ror {
        rd: Reg::A5,
        rs1: Reg::A0,
        rs2: Reg::T0,
    });
    prog.extend(li32(Reg::T1, 0xFFFF_FF00));
    prog.push(Instr::Clb {
        rd: Reg::A6,
        rs1: Reg::T1,
    });
    prog.push(Instr::Ecall);
    let m = run(prog);
    assert_eq!(m.core().reg(Reg::A1), 3, "ff1 finds bit 3");
    assert_eq!(m.core().reg(Reg::A2), 4, "fl1 finds bit 4");
    assert_eq!(m.core().reg(Reg::A3), 2, "two bits set");
    assert_eq!(m.core().reg(Reg::A4), 32, "ff1 of zero is 32");
    assert_eq!(m.core().reg(Reg::A5), 0b0001_1000u32.rotate_right(5));
    // 0xFFFFFF00: 24 leading ones -> 23 redundant sign bits.
    assert_eq!(m.core().reg(Reg::A6), 23);
}

#[test]
fn golden_trace_snapshot() {
    // A pinned execution trace documents the exact fetch/retire behavior
    // (addresses, loop re-execution, cycle accounting) of a tiny kernel.
    let mut prog = vec![
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::T2,
            rs1: Reg::ZERO,
            imm: 2,
        },
        Instr::LpSetup {
            l: LoopIdx::L0,
            rs1: Reg::T2,
            uimm: 4,
        },
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::Ecall,
    ];
    let mut m = Machine::new(64);
    m.load_program(&Program::from_instrs(0, std::mem::take(&mut prog)));
    let text = m.run_to_trace_text(1000).unwrap();
    let expect = concat!(
        "       1 0x00000000  addi t2, zero, 2\n",
        "       2 0x00000004  lp.setup 0, t2, 4\n",
        "       3 0x00000008  addi a0, a0, 1\n",
        "       4 0x00000008  addi a0, a0, 1\n",
        "       5 0x0000000c  ecall\n",
    );
    assert_eq!(text, expect);
}
