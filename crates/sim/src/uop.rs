//! Pre-decoded micro-op programs.
//!
//! [`UopProgram::translate`] lowers a decoded [`Program`] *once* into a
//! dense linear array of micro-ops ([`Uop`]): operands extracted out of
//! the [`Instr`] enum, immediates pre-combined (LUI/AUIPC constants,
//! SIMD scalar-immediate replication, clip bounds), the [`MnemonicId`]
//! and static timing class folded into a per-op cycle constant, the
//! load-use source set flattened to a register bitmask, and direct
//! branch/jump targets resolved to micro-op *indices*. `Machine::run`
//! then drives execution off this array instead of re-matching the
//! `Instr` enum per step; `Machine::step` keeps the original
//! interpretation loop as the bit-identical reference path.
//!
//! On top of the linear lowering, `lp.setup`/`lp.setupi` instructions
//! whose body is straight-line (no control flow, no CSR access, no loop
//! configuration) get a [`LoopBody`] descriptor: the per-iteration cycle
//! cost, per-mnemonic retire rows and load-use stall pattern are all
//! static, so the hardware-loop block runner in `machine.rs` can execute
//! iterations as a tight data-only host loop and account statistics in
//! bulk. See `DESIGN.md` § "Micro-op pipeline" for the exact lowering
//! rules and fallback conditions.

use crate::error::ExitReason;
use crate::program::Program;
use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, Csr, DotOp, Instr, LoadOp, MnemonicId, MulDivOp, PvAluOp, Reg,
    SimdMode, SimdSize, StoreOp, TimingClass,
};

/// Sentinel micro-op index: "this address is not an instruction start".
/// Stepping onto it raises the same fetch fault the legacy path raises.
pub(crate) const NO_IDX: u32 = u32::MAX;

/// Sentinel loop-body index: "no specializable loop body ends here".
pub(crate) const NO_BODY: u32 = u32::MAX;

/// Sentinel straight-line-run index: "no specialized run starts here".
pub(crate) const NO_RUN: u32 = u32::MAX;

/// Sentinel shortcut-region index: "no installed kernel-shortcut region
/// starts here".
pub(crate) const NO_SC: u32 = u32::MAX;

/// Minimum micro-op count for materializing a [`StraightRun`]: below
/// this, the per-entry trigger checks and bulk row updates cost about as
/// much as the generic bookkeeping they replace.
const MIN_RUN_LEN: usize = 4;

/// Extra latency of the serial divider beyond the base cycle (RI5CY
/// takes 2–32 cycles; the model charges the flat worst case).
pub(crate) const DIV_EXTRA_CYCLES: u64 = 31;

/// Extra latency of the `mulh*` high-half multiplies (RI5CY: 5 cycles).
pub(crate) const MULH_EXTRA_CYCLES: u64 = 4;

/// A pre-resolved direct control-flow target.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Target {
    /// Byte address of the target (what the PC is set to).
    pub addr: u32,
    /// Micro-op index of the target, or [`NO_IDX`] when the address does
    /// not start an instruction — the *next* step then fetch-faults,
    /// exactly as the legacy path does.
    pub idx: u32,
}

/// One lowered unary ALU operation (see [`UopKind::Unary`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum UnaryOp {
    /// `p.exths` — sign-extend halfword.
    ExtHs,
    /// `p.exthz` — zero-extend halfword.
    ExtHz,
    /// `p.extbs` — sign-extend byte.
    ExtBs,
    /// `p.extbz` — zero-extend byte.
    ExtBz,
    /// `p.abs`.
    Abs,
    /// `p.ff1` — find first set bit.
    Ff1,
    /// `p.fl1` — find last set bit.
    Fl1,
    /// `p.cnt` — population count.
    Cnt,
    /// `p.clb` — count leading redundant sign bits.
    Clb,
    /// `pl.tanh` — the RNN extension's tanh unit.
    Tanh,
    /// `pl.sig` — the RNN extension's sigmoid unit.
    Sig,
}

/// The operation of a micro-op, with every operand pre-extracted.
///
/// Relative to [`Instr`], immediates that the legacy interpreter
/// re-derived per retire are folded at translation time: LUI/AUIPC
/// produce a finished constant, SIMD scalar immediates are replicated
/// into a packed word, clip bounds are materialized, hardware-loop
/// start/end addresses are absolute, and direct jump targets carry their
/// micro-op index.
#[derive(Clone, Copy, Debug)]
pub(crate) enum UopKind {
    /// Write a pre-computed constant (`lui`, `auipc`).
    SetReg {
        rd: Reg,
        val: u32,
    },
    /// `jal` — link value is the op's fall-through address.
    Jal {
        rd: Reg,
        target: Target,
    },
    /// `jalr` — target depends on `rs1`, resolved at run time.
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: u32,
    },
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: Target,
    },
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: u32,
    },
    LoadPostInc {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: u32,
    },
    LoadReg {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Store {
        op: StoreOp,
        rs2: Reg,
        rs1: Reg,
        offset: u32,
    },
    StorePostInc {
        op: StoreOp,
        rs2: Reg,
        rs1: Reg,
        offset: u32,
    },
    OpImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fence` — a timing-only no-op on the single-hart TCDM core.
    Nop,
    /// `ecall` / `ebreak`.
    Halt(ExitReason),
    /// CSR read (writes are accepted and discarded by the model).
    CsrRead {
        rd: Reg,
        csr: Csr,
    },
    /// `lp.starti` / `lp.endi` with the absolute address pre-computed.
    LpSetAddr {
        l: u8,
        is_end: bool,
        addr: u32,
    },
    LpCount {
        l: u8,
        rs1: Reg,
    },
    LpCounti {
        l: u8,
        count: u32,
    },
    /// `lp.setup` with start/end addresses pre-computed.
    LpSetup {
        l: u8,
        rs1: Reg,
        start: u32,
        end: u32,
    },
    /// `lp.setupi` — like [`UopKind::LpSetup`] with an immediate count.
    LpSetupi {
        l: u8,
        count: u32,
        start: u32,
        end: u32,
    },
    Mac {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Msu {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `p.clip` with the clamp bounds materialized.
    Clip {
        rd: Reg,
        rs1: Reg,
        lo: i32,
        hi: i32,
    },
    /// `p.clipu` (lower bound is always zero).
    ClipU {
        rd: Reg,
        rs1: Reg,
        hi: i32,
    },
    Unary {
        op: UnaryOp,
        rd: Reg,
        rs1: Reg,
    },
    PMin {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    PMax {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Ror {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Packed SIMD ALU, vector-vector mode.
    PvAluVv {
        op: PvAluOp,
        size: SimdSize,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Packed SIMD ALU, replicated-scalar mode.
    PvAluSc {
        op: PvAluOp,
        size: SimdSize,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Packed SIMD ALU, scalar-immediate mode with the replicated packed
    /// operand pre-computed.
    PvAluImm {
        op: PvAluOp,
        size: SimdSize,
        rd: Reg,
        rs1: Reg,
        b: u32,
    },
    PvDot {
        op: DotOp,
        size: SimdSize,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `pl.sdotsp.h.{0,1}` — merged MAC + next-weight load through SPR.
    PlSdotsp {
        spr: u8,
        size: SimdSize,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
}

/// One pre-decoded micro-op: the lowered operation plus everything the
/// retire path needs without touching the `Instr` enum again.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Uop {
    pub kind: UopKind,
    /// Byte address of the source instruction.
    pub addr: u32,
    /// Fall-through address (`addr + encoded size`).
    pub next_addr: u32,
    /// Statistics row this op retires into.
    pub id: MnemonicId,
    /// Registers read, as a bitmask (bit `n` ⇔ `xn`) — the load-use
    /// stall test is one `and`.
    pub uses_mask: u32,
    /// Static retire cost: 1 base cycle plus the timing-class extra.
    /// Dynamic costs (taken branch, load-use bubble) are added at run
    /// time.
    pub base_cycles: u8,
    /// 16-bit MACs retired by this op.
    pub mac_ops: u8,
    /// Register number a pending load-use hazard is tracked for (0 when
    /// the op is not a load or loads into `x0`).
    pub load_rd: u8,
    /// Head of the [`LoopBody`] chain of specializable hardware loops
    /// whose *last body op* this is — or, on an `lp.setup`/`lp.setupi`
    /// op, the chain containing its own loop's descriptor (for bulk
    /// entry from the top). [`NO_BODY`] otherwise.
    pub body: u32,
    /// Index of the [`StraightRun`] whose *first op* this is, or
    /// [`NO_RUN`].
    pub run: u32,
    /// Index of the installed [`ShortcutRegion`] whose *first op* this
    /// is, or [`NO_SC`].
    ///
    /// [`ShortcutRegion`]: crate::shortcut::ShortcutRegion
    pub shortcut: u32,
}

/// A specializable hardware-loop body, recognized at translation time.
///
/// Bodies are straight-line micro-op runs `[start_idx, start_idx+len)`
/// covering addresses `[start_addr, end_addr)` with a fully static
/// timing profile: the per-iteration cycle cost, per-mnemonic retire
/// rows and the load-use stall pattern (including the wrap-around stall
/// from the last op's load into the first op of the next iteration) are
/// pre-computed here, so the block runner executes only data semantics
/// per iteration and accounts `n` iterations with one bulk update per
/// row.
#[derive(Clone, Debug)]
pub(crate) struct LoopBody {
    /// First body address (`lp.setup` PC + 4).
    pub start_addr: u32,
    /// Address just past the body (the loop's `lpend`).
    pub end_addr: u32,
    /// Micro-op index of the first body op.
    pub start_idx: u32,
    /// Body length in micro-ops.
    pub len: u32,
    /// Total cycles of one steady-state iteration: base cycles plus
    /// static load-use stalls. Never zero (bodies have ≥ 1 op).
    pub iter_cycles: u64,
    /// Per-mnemonic retire totals for one iteration:
    /// `(id, instrs, cycles, macs)`.
    pub retire_rows: Vec<(MnemonicId, u64, u64, u64)>,
    /// Per-mnemonic stall-cycle totals for one iteration.
    pub stall_rows: Vec<(MnemonicId, u64)>,
    /// For body op `j`: the mnemonic to charge a load-use stall to when
    /// entering op `j`, or `None` if no stall. Entry 0 is the
    /// wrap-around stall (previous iteration's last op → this
    /// iteration's first). Used for exact accounting of a faulting
    /// partial iteration.
    pub stall_in: Vec<Option<MnemonicId>>,
    /// Next descriptor sharing the same last body op, or [`NO_BODY`].
    pub next: u32,
}

/// A maximal straight-line micro-op run, recognized at translation time.
///
/// Same idea as a [`LoopBody`], executed once per entry instead of per
/// iteration: kernel scaffolding between loops (requantize/activate
/// epilogues, pointer setup) is straight-line too, and its timing is
/// just as static. The block runner may execute a run in bulk only when
/// no *armed* hardware loop's end address falls on one of the run's
/// fall-through addresses — a runtime condition checked per entry; the
/// generic per-op path handles every other case bit-identically.
#[derive(Clone, Debug)]
pub(crate) struct StraightRun {
    /// Address of the first op.
    pub start_addr: u32,
    /// Fall-through address of the last op.
    pub end_addr: u32,
    /// Micro-op index of the first op.
    pub start_idx: u32,
    /// Run length in micro-ops.
    pub len: u32,
    /// Total cycles of one pass: base cycles plus static internal
    /// load-use stalls (the entry stall from a load *before* the run is
    /// dynamic and charged by the caller).
    pub cycles: u64,
    /// Per-mnemonic retire totals: `(id, instrs, cycles, macs)`.
    pub retire_rows: Vec<(MnemonicId, u64, u64, u64)>,
    /// Per-mnemonic stall-cycle totals.
    pub stall_rows: Vec<(MnemonicId, u64)>,
    /// For run op `j`: the mnemonic to charge a load-use stall to when
    /// entering op `j` (`None` for op 0 — there is no wrap-around). Used
    /// for exact accounting of a faulting partial pass.
    pub stall_in: Vec<Option<MnemonicId>>,
}

/// A [`Program`] lowered to micro-ops — build once with
/// [`translate`](Self::translate), execute many times.
///
/// Micro-op `i` is the lowering of the program's `i`-th instruction
/// (the program image is contiguous, so `Program::index_of` doubles as
/// the PC → micro-op mapping). The translation is purely derived state:
/// executing through it is bit-identical — cycles, per-mnemonic rows,
/// fault points and all — to stepping the decoded instructions.
#[derive(Clone, Debug, Default)]
pub struct UopProgram {
    pub(crate) uops: Vec<Uop>,
    pub(crate) bodies: Vec<LoopBody>,
    pub(crate) runs: Vec<StraightRun>,
    pub(crate) shortcuts: Vec<crate::shortcut::ShortcutRegion>,
}

impl UopProgram {
    /// Lowers `program` into micro-ops and recognizes specializable
    /// hardware-loop bodies.
    pub fn translate(program: &Program) -> Self {
        Self::translate_with_shortcuts(program, &[])
    }

    /// Like [`translate`](Self::translate), additionally verifying the
    /// given kernel-region descriptors against the lowered micro-op
    /// stream and installing the ones that pass as native shortcut
    /// regions (see the [`shortcut`](crate::shortcut) module docs).
    ///
    /// Descriptors that fail verification are silently skipped — the
    /// region then executes on the generic micro-op path, which is
    /// bit-identical. An installed region's first op also terminates
    /// straight-run coalescing from ops before it, so execution always
    /// reaches the shortcut trigger; translation is otherwise unchanged.
    pub fn translate_with_shortcuts(
        program: &Program,
        regions: &[crate::shortcut::KernelRegion],
    ) -> Self {
        let mut uops: Vec<Uop> = program
            .iter()
            .map(|item| lower(program, item.addr, item.size as u32, &item.instr))
            .collect();
        let mut bodies: Vec<LoopBody> = Vec::new();
        for i in 0..uops.len() {
            let (start, end) = match uops[i].kind {
                UopKind::LpSetup { start, end, .. } | UopKind::LpSetupi { start, end, .. } => {
                    (start, end)
                }
                _ => continue,
            };
            if let Some(body) = recognize_body(&uops, program, start, end) {
                let last = (body.start_idx + body.len - 1) as usize;
                // Identical descriptors from several lp.setups over the
                // same range would be redundant; keep one. The setup op
                // itself also carries the chain head, so the block runner
                // can enter in bulk from the top (iteration 0) as well as
                // from a jump-back.
                if chain_contains(&bodies, uops[last].body, start, end) {
                    uops[i].body = uops[last].body;
                    continue;
                }
                let chained = LoopBody {
                    next: uops[last].body,
                    ..body
                };
                uops[last].body = bodies.len() as u32;
                uops[i].body = bodies.len() as u32;
                bodies.push(chained);
            }
        }

        // Verify and install the declared kernel-shortcut regions, each
        // marked on its first op — before run recognition, so region
        // starts can act as run barriers below.
        let mut shortcuts: Vec<crate::shortcut::ShortcutRegion> = Vec::new();
        for r in regions {
            if let Some(sc) = crate::shortcut::install(&uops, program, r) {
                // install() proved start_addr maps to an op.
                let start = program.index_of(r.start_addr).unwrap();
                if uops[start].shortcut == NO_SC {
                    uops[start].shortcut = shortcuts.len() as u32;
                    shortcuts.push(sc);
                }
            }
        }

        // Straight-line runs: maximal sequences of eligible ops, marked
        // on their first op. Loop bodies are a subrange of some run; the
        // run trigger defers to the armed-loop check at execution time.
        // An installed shortcut region's first op ends the preceding run:
        // bulking across it would skip the shortcut trigger.
        let mut runs: Vec<StraightRun> = Vec::new();
        let mut i = 0usize;
        while i < uops.len() {
            if !body_eligible(&uops[i].kind) {
                i += 1;
                continue;
            }
            let start = i;
            i += 1;
            while i < uops.len() && body_eligible(&uops[i].kind) && uops[i].shortcut == NO_SC {
                i += 1;
            }
            let len = i - start;
            if len < MIN_RUN_LEN {
                continue;
            }
            let (retire_rows, stall_rows, stall_in, cycles) = aggregate(&uops[start..i], false);
            let (start_addr, end_addr) = (uops[start].addr, uops[i - 1].next_addr);
            uops[start].run = runs.len() as u32;
            runs.push(StraightRun {
                start_addr,
                end_addr,
                start_idx: start as u32,
                len: len as u32,
                cycles,
                retire_rows,
                stall_rows,
                stall_in,
            });
        }
        Self {
            uops,
            bodies,
            runs,
            shortcuts,
        }
    }

    /// Number of micro-ops (= number of program instructions).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program lowered to no micro-ops.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Number of hardware-loop bodies the translator specialized.
    pub fn loop_bodies(&self) -> usize {
        self.bodies.len()
    }

    /// Number of straight-line runs the translator specialized.
    pub fn straight_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of kernel-shortcut regions verified and installed by
    /// [`translate_with_shortcuts`](Self::translate_with_shortcuts).
    pub fn shortcut_regions(&self) -> usize {
        self.shortcuts.len()
    }
}

/// Whether the descriptor chain starting at `head` already covers the
/// loop range `[start, end)`.
fn chain_contains(bodies: &[LoopBody], mut head: u32, start: u32, end: u32) -> bool {
    while head != NO_BODY {
        let b = &bodies[head as usize];
        if b.start_addr == start && b.end_addr == end {
            return true;
        }
        head = b.next;
    }
    false
}

/// Whether a micro-op may appear in a specialized loop body.
///
/// Excluded: control flow (a straight-line body is what makes the
/// per-iteration timing static), halts, CSR access (reads the live
/// cycle/instret counters; writes could retarget the loop CSRs), and
/// hardware-loop configuration. Loads and stores — including the
/// faultable `pl.sdotsp` weight stream — stay eligible: the block
/// runner executes every memory access through the same checked path
/// and falls back to exact per-op accounting on a fault.
fn body_eligible(kind: &UopKind) -> bool {
    !matches!(
        kind,
        UopKind::Jal { .. }
            | UopKind::Jalr { .. }
            | UopKind::Branch { .. }
            | UopKind::Halt(_)
            | UopKind::CsrRead { .. }
            | UopKind::LpSetAddr { .. }
            | UopKind::LpCount { .. }
            | UopKind::LpCounti { .. }
            | UopKind::LpSetup { .. }
            | UopKind::LpSetupi { .. }
    )
}

/// Builds the [`LoopBody`] descriptor for the range `[start, end)`, or
/// `None` when the body is not specializable: `start` does not map to an
/// instruction, the body is empty or ends mid-instruction (the jump-back
/// would never trigger), or an op fails [`body_eligible`].
fn recognize_body(uops: &[Uop], program: &Program, start: u32, end: u32) -> Option<LoopBody> {
    let start_idx = program.index_of(start)?;
    let mut len = 0usize;
    while start_idx + len < uops.len() && uops[start_idx + len].addr < end {
        if !body_eligible(&uops[start_idx + len].kind) {
            return None;
        }
        len += 1;
    }
    if len == 0 || uops[start_idx + len - 1].next_addr != end {
        return None;
    }
    let (retire_rows, stall_rows, stall_in, iter_cycles) =
        aggregate(&uops[start_idx..start_idx + len], true);

    Some(LoopBody {
        start_addr: start,
        end_addr: end,
        start_idx: start_idx as u32,
        len: len as u32,
        iter_cycles,
        retire_rows,
        stall_rows,
        stall_in,
        next: NO_BODY,
    })
}

/// The static timing profile of a straight-line micro-op slice:
/// per-mnemonic retire rows, per-mnemonic stall totals, the per-op
/// stall-on-entry pattern, and the total cycles of one pass.
///
/// Op `j` stalls on entry iff the previous op loads a register `j`
/// reads. With `wrap` (loop bodies), op 0's predecessor is the last op —
/// steady-state iterations follow one another directly; without it
/// (straight runs), op 0 never stalls statically — a stall from a load
/// *before* the slice is the caller's to charge.
type SliceProfile = (
    Vec<(MnemonicId, u64, u64, u64)>,
    Vec<(MnemonicId, u64)>,
    Vec<Option<MnemonicId>>,
    u64,
);

fn aggregate(slice: &[Uop], wrap: bool) -> SliceProfile {
    let len = slice.len();
    let stall_in: Vec<Option<MnemonicId>> = (0..len)
        .map(|j| {
            if j == 0 && !wrap {
                return None;
            }
            let p = &slice[if j == 0 { len - 1 } else { j - 1 }];
            (p.load_rd != 0 && slice[j].uses_mask & (1u32 << p.load_rd) != 0).then_some(p.id)
        })
        .collect();

    let mut retire_rows: Vec<(MnemonicId, u64, u64, u64)> = Vec::new();
    for u in slice {
        match retire_rows.iter_mut().find(|r| r.0 == u.id) {
            Some(r) => {
                r.1 += 1;
                r.2 += u64::from(u.base_cycles);
                r.3 += u64::from(u.mac_ops);
            }
            None => retire_rows.push((u.id, 1, u64::from(u.base_cycles), u64::from(u.mac_ops))),
        }
    }
    let mut stall_rows: Vec<(MnemonicId, u64)> = Vec::new();
    for id in stall_in.iter().flatten() {
        match stall_rows.iter_mut().find(|r| r.0 == *id) {
            Some(r) => r.1 += 1,
            None => stall_rows.push((*id, 1)),
        }
    }
    let cycles =
        retire_rows.iter().map(|r| r.2).sum::<u64>() + stall_rows.iter().map(|r| r.1).sum::<u64>();
    (retire_rows, stall_rows, stall_in, cycles)
}

/// Resolves a direct branch/jump target to address + micro-op index.
fn resolve(program: &Program, addr: u32) -> Target {
    Target {
        addr,
        idx: program.index_of(addr).map_or(NO_IDX, |i| i as u32),
    }
}

/// Replicates a SIMD scalar immediate into a packed word — the
/// translation-time image of the legacy `simd_operand` for
/// [`SimdMode::Sci`].
fn replicate_imm(size: SimdSize, imm: i8) -> u32 {
    match size {
        SimdSize::Half => {
            let h = imm as i16 as u16 as u32;
            h | (h << 16)
        }
        SimdSize::Byte => {
            let b = imm as u8 as u32;
            b | (b << 8) | (b << 16) | (b << 24)
        }
    }
}

/// Lowers one placed instruction to a micro-op.
fn lower(program: &Program, pc: u32, size: u32, instr: &Instr) -> Uop {
    let kind = match *instr {
        Instr::Lui { rd, imm20 } => UopKind::SetReg {
            rd,
            val: (imm20 as u32) << 12,
        },
        Instr::Auipc { rd, imm20 } => UopKind::SetReg {
            rd,
            val: pc.wrapping_add((imm20 as u32) << 12),
        },
        Instr::Jal { rd, offset } => UopKind::Jal {
            rd,
            target: resolve(program, pc.wrapping_add(offset as u32)),
        },
        Instr::Jalr { rd, rs1, offset } => UopKind::Jalr {
            rd,
            rs1,
            offset: offset as u32,
        },
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => UopKind::Branch {
            op,
            rs1,
            rs2,
            target: resolve(program, pc.wrapping_add(offset as u32)),
        },
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => UopKind::Load {
            op,
            rd,
            rs1,
            offset: offset as u32,
        },
        Instr::LoadPostInc {
            op,
            rd,
            rs1,
            offset,
        } => UopKind::LoadPostInc {
            op,
            rd,
            rs1,
            offset: offset as u32,
        },
        Instr::LoadReg { op, rd, rs1, rs2 } => UopKind::LoadReg { op, rd, rs1, rs2 },
        Instr::Store {
            op,
            rs2,
            rs1,
            offset,
        } => UopKind::Store {
            op,
            rs2,
            rs1,
            offset: offset as u32,
        },
        Instr::StorePostInc {
            op,
            rs2,
            rs1,
            offset,
        } => UopKind::StorePostInc {
            op,
            rs2,
            rs1,
            offset: offset as u32,
        },
        Instr::OpImm { op, rd, rs1, imm } => UopKind::OpImm { op, rd, rs1, imm },
        Instr::Op { op, rd, rs1, rs2 } => UopKind::Op { op, rd, rs1, rs2 },
        Instr::MulDiv { op, rd, rs1, rs2 } => UopKind::MulDiv { op, rd, rs1, rs2 },
        Instr::Fence => UopKind::Nop,
        Instr::Ecall => UopKind::Halt(ExitReason::Ecall),
        Instr::Ebreak => UopKind::Halt(ExitReason::Ebreak),
        Instr::Csr { rd, csr, .. } => UopKind::CsrRead { rd, csr },
        Instr::LpStarti { l, uimm } => UopKind::LpSetAddr {
            l: l.index() as u8,
            is_end: false,
            addr: pc.wrapping_add(2 * uimm),
        },
        Instr::LpEndi { l, uimm } => UopKind::LpSetAddr {
            l: l.index() as u8,
            is_end: true,
            addr: pc.wrapping_add(2 * uimm),
        },
        Instr::LpCount { l, rs1 } => UopKind::LpCount {
            l: l.index() as u8,
            rs1,
        },
        Instr::LpCounti { l, uimm } => UopKind::LpCounti {
            l: l.index() as u8,
            count: uimm,
        },
        Instr::LpSetup { l, rs1, uimm } => UopKind::LpSetup {
            l: l.index() as u8,
            rs1,
            start: pc.wrapping_add(4),
            end: pc.wrapping_add(2 * uimm),
        },
        Instr::LpSetupi { l, count, uimm } => UopKind::LpSetupi {
            l: l.index() as u8,
            count,
            start: pc.wrapping_add(4),
            end: pc.wrapping_add(2 * uimm),
        },
        Instr::Mac { rd, rs1, rs2 } => UopKind::Mac { rd, rs1, rs2 },
        Instr::Msu { rd, rs1, rs2 } => UopKind::Msu { rd, rs1, rs2 },
        Instr::Clip { rd, rs1, bits } => {
            let b = bits.clamp(1, 32) as u32;
            let (lo, hi) = if b == 32 {
                (i32::MIN, i32::MAX)
            } else {
                (-(1i32 << (b - 1)), (1i32 << (b - 1)) - 1)
            };
            UopKind::Clip { rd, rs1, lo, hi }
        }
        Instr::ClipU { rd, rs1, bits } => {
            let b = bits.clamp(1, 32) as u32;
            let hi = if b == 32 {
                i32::MAX
            } else {
                (1i32 << (b - 1)) - 1
            };
            UopKind::ClipU { rd, rs1, hi }
        }
        Instr::ExtHs { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::ExtHs,
            rd,
            rs1,
        },
        Instr::ExtHz { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::ExtHz,
            rd,
            rs1,
        },
        Instr::ExtBs { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::ExtBs,
            rd,
            rs1,
        },
        Instr::ExtBz { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::ExtBz,
            rd,
            rs1,
        },
        Instr::PAbs { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Abs,
            rd,
            rs1,
        },
        Instr::Ff1 { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Ff1,
            rd,
            rs1,
        },
        Instr::Fl1 { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Fl1,
            rd,
            rs1,
        },
        Instr::Cnt { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Cnt,
            rd,
            rs1,
        },
        Instr::Clb { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Clb,
            rd,
            rs1,
        },
        Instr::PlTanh { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Tanh,
            rd,
            rs1,
        },
        Instr::PlSig { rd, rs1 } => UopKind::Unary {
            op: UnaryOp::Sig,
            rd,
            rs1,
        },
        Instr::PMin { rd, rs1, rs2 } => UopKind::PMin { rd, rs1, rs2 },
        Instr::PMax { rd, rs1, rs2 } => UopKind::PMax { rd, rs1, rs2 },
        Instr::Ror { rd, rs1, rs2 } => UopKind::Ror { rd, rs1, rs2 },
        Instr::PvAlu {
            op,
            size,
            mode,
            rd,
            rs1,
            rs2,
        } => match mode {
            SimdMode::Vv => UopKind::PvAluVv {
                op,
                size,
                rd,
                rs1,
                rs2,
            },
            SimdMode::Sc => UopKind::PvAluSc {
                op,
                size,
                rd,
                rs1,
                rs2,
            },
            SimdMode::Sci(imm) => UopKind::PvAluImm {
                op,
                size,
                rd,
                rs1,
                b: replicate_imm(size, imm),
            },
        },
        Instr::PvDot {
            op,
            size,
            rd,
            rs1,
            rs2,
        } => UopKind::PvDot {
            op,
            size,
            rd,
            rs1,
            rs2,
        },
        Instr::PlSdotsp {
            spr,
            size,
            rd,
            rs1,
            rs2,
        } => UopKind::PlSdotsp {
            spr: spr & 1,
            size,
            rd,
            rs1,
            rs2,
        },
    };

    let extra = match instr.timing_class() {
        TimingClass::Single => 0,
        TimingClass::HighMultiply => MULH_EXTRA_CYCLES,
        TimingClass::SerialDivide => DIV_EXTRA_CYCLES,
    };
    let load_rd = match *instr {
        Instr::Load { rd, .. } | Instr::LoadPostInc { rd, .. } | Instr::LoadReg { rd, .. } => {
            rd.num()
        }
        _ => 0,
    };
    Uop {
        kind,
        addr: pc,
        next_addr: pc.wrapping_add(size),
        id: instr.mnemonic_id(),
        uses_mask: instr.uses_mask(),
        base_cycles: (1 + extra) as u8,
        mac_ops: instr.mac_ops() as u8,
        load_rd,
        body: NO_BODY,
        run: NO_RUN,
        shortcut: NO_SC,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_isa::{CsrOp, LoopIdx};

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    #[test]
    fn lowering_is_one_to_one_and_contiguous() {
        let prog = Program::from_instrs(
            0x100,
            [
                addi(Reg::A0, Reg::ZERO, 5),
                Instr::Jal {
                    rd: Reg::ZERO,
                    offset: -4,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.len(), 3);
        assert_eq!(t.uops[0].addr, 0x100);
        assert_eq!(t.uops[0].next_addr, 0x104);
        // The backward jal resolves to micro-op 0.
        match t.uops[1].kind {
            UopKind::Jal { target, .. } => {
                assert_eq!(target.addr, 0x100);
                assert_eq!(target.idx, 0);
            }
            ref k => panic!("expected jal, got {k:?}"),
        }
    }

    #[test]
    fn unmapped_target_gets_sentinel_index() {
        let prog = Program::from_instrs(
            0,
            [Instr::Jal {
                rd: Reg::ZERO,
                offset: 0x400,
            }],
        );
        let t = UopProgram::translate(&prog);
        match t.uops[0].kind {
            UopKind::Jal { target, .. } => {
                assert_eq!(target.addr, 0x400);
                assert_eq!(target.idx, NO_IDX);
            }
            ref k => panic!("expected jal, got {k:?}"),
        }
    }

    #[test]
    fn straight_line_loop_body_is_specialized() {
        // lp.setupi over a 2-op body: p.lw! then addi using the load.
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 6,
                },
                Instr::LoadPostInc {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 4,
                },
                addi(Reg::A2, Reg::A0, 1),
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.loop_bodies(), 1);
        let b = &t.bodies[0];
        assert_eq!((b.start_addr, b.end_addr), (4, 12));
        assert_eq!((b.start_idx, b.len), (1, 2));
        // 2 base cycles + 1 load-use stall into the addi.
        assert_eq!(b.iter_cycles, 3);
        assert_eq!(b.stall_in, vec![None, Some(MnemonicId::PLwPost)]);
        // The descriptor hangs off the last body op.
        assert_eq!(t.uops[2].body, 0);
    }

    #[test]
    fn wrap_around_stall_is_recognized() {
        // Single-op body: p.lw! a0, 4(a1) — next iteration reads a1, not
        // a0, so no wrap stall...
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 4,
                },
                Instr::LoadPostInc {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 4,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.bodies[0].stall_in, vec![None]);

        // ...but loading the pointer register itself stalls every
        // iteration on the wrap.
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 4,
                },
                Instr::LoadPostInc {
                    op: LoadOp::Lw,
                    rd: Reg::A1,
                    rs1: Reg::A1,
                    offset: 4,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.bodies[0].stall_in, vec![Some(MnemonicId::PLwPost)]);
        assert_eq!(t.bodies[0].iter_cycles, 2);
    }

    #[test]
    fn control_flow_in_body_prevents_specialization() {
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 6,
                },
                addi(Reg::A0, Reg::A0, 1),
                Instr::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    offset: -4,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.loop_bodies(), 0);
    }

    #[test]
    fn csr_read_in_body_prevents_specialization() {
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 4,
                },
                Instr::Csr {
                    op: CsrOp::Csrrs,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    csr: Csr::Mcycle,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.loop_bodies(), 0);
    }

    #[test]
    fn body_ending_mid_instruction_prevents_specialization() {
        // lpend = 10 falls inside the 4-byte addi at 8.
        let prog = Program::from_instrs(
            0,
            [
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    count: 8,
                    uimm: 5,
                },
                addi(Reg::A0, Reg::A0, 1),
                addi(Reg::A1, Reg::A1, 1),
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(t.loop_bodies(), 0);
    }

    #[test]
    fn clip_bounds_are_materialized() {
        let prog = Program::from_instrs(
            0,
            [
                Instr::Clip {
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    bits: 8,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        match t.uops[0].kind {
            UopKind::Clip { lo, hi, .. } => {
                assert_eq!((lo, hi), (-128, 127));
            }
            ref k => panic!("expected clip, got {k:?}"),
        }
    }

    #[test]
    fn div_gets_static_extra_cycles() {
        let prog = Program::from_instrs(
            0,
            [
                Instr::MulDiv {
                    op: MulDivOp::Div,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                Instr::MulDiv {
                    op: MulDivOp::Mulh,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                Instr::Ecall,
            ],
        );
        let t = UopProgram::translate(&prog);
        assert_eq!(u64::from(t.uops[0].base_cycles), 1 + DIV_EXTRA_CYCLES);
        assert_eq!(u64::from(t.uops[1].base_cycles), 1 + MULH_EXTRA_CYCLES);
    }
}
