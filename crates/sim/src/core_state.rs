//! Architectural state of the core.

use rnnasip_isa::Reg;

/// One hardware-loop register set (`lpstart`, `lpend`, `lpcount`).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct HwLoop {
    /// First instruction of the loop body.
    pub start: u32,
    /// Address just past the last instruction of the body.
    pub end: u32,
    /// Remaining iterations; the loop is inactive when zero.
    pub count: u32,
}

impl HwLoop {
    /// Whether the loop is currently armed.
    pub fn active(&self) -> bool {
        self.count > 0
    }
}

/// Architectural state: GPRs, PC, hardware loops, the RNN extension's
/// special-purpose register pair, and the machine counters.
///
/// Kept separate from the [`Machine`](crate::Machine) so state can be
/// snapshotted, inspected and asserted on in tests without dragging the
/// memory image along.
#[derive(Clone, Debug)]
pub struct Core {
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// The two hardware-loop register sets.
    pub hwloop: [HwLoop; 2],
    /// The two special-purpose registers feeding `pl.sdotsp.h.{0,1}`.
    pub spr: [u32; 2],
    /// Cycle counter (`mcycle`).
    pub cycle: u64,
    /// Retired-instruction counter (`minstret`).
    pub instret: u64,
}

impl Core {
    /// Creates a reset core: all registers zero, PC at `entry`.
    pub fn new(entry: u32) -> Self {
        Self {
            regs: [0; 32],
            pc: entry,
            hwloop: [HwLoop::default(); 2],
            spr: [0; 2],
            cycle: 0,
            instret: 0,
        }
    }

    /// Reads a general-purpose register (`x0` always reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Writes a general-purpose register (writes to `x0` are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.num() as usize] = value;
        }
    }

    /// Reads a register as a signed value.
    #[inline]
    pub fn reg_i32(&self, r: Reg) -> i32 {
        self.reg(r) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut c = Core::new(0);
        c.set_reg(Reg::ZERO, 123);
        assert_eq!(c.reg(Reg::ZERO), 0);
        c.set_reg(Reg::A0, 123);
        assert_eq!(c.reg(Reg::A0), 123);
    }

    #[test]
    fn loops_inactive_at_reset() {
        let c = Core::new(0x100);
        assert_eq!(c.pc, 0x100);
        assert!(!c.hwloop[0].active());
        assert!(!c.hwloop[1].active());
    }
}
