//! Cycle-approximate instruction-set simulator for the RNN-extended
//! RISC-V core of the RNNASIP reproduction.
//!
//! The simulated machine models the paper's extended RI5CY
//! micro-architecture at the level its evaluation depends on:
//!
//! * single-issue, in-order execution with a **1 cycle / instruction**
//!   base cost,
//! * **+1 cycle** for taken branches and jumps (matching the `bltu` and
//!   `jal` rows of Table I),
//! * a **load-use stall** of one cycle when the instruction immediately
//!   after a load consumes the loaded register — attributed to the *load's*
//!   statistics row, which is how Table I reports `lw!` at 2 432 kcycles
//!   for 1 621 k instructions and how the `pl.sdotsp` bubble of Table II
//!   appears,
//! * **zero-overhead hardware loops** (two nesting levels),
//! * the RNN extension: `pl.sdotsp.h.0/1` with the two special-purpose
//!   registers and their two-instruction visibility latency, and the
//!   single-cycle `pl.tanh` / `pl.sig` unit (shared with the golden models
//!   through [`rnnasip_fixed::pla`]),
//! * a single-cycle, contention-free TCDM data memory.
//!
//! Per-mnemonic instruction and cycle statistics ([`Stats`]) are collected
//! for every run; they are the raw material for the paper's Table I and
//! Fig. 3 reproductions.
//!
//! # Example
//!
//! ```
//! use rnnasip_isa::{AluImmOp, Instr, Reg};
//! use rnnasip_sim::{Machine, Program};
//!
//! // addi a0, zero, 5 ; addi a0, a0, 37 ; ecall
//! let prog = Program::from_instrs(0x0, [
//!     Instr::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 5 },
//!     Instr::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm: 37 },
//!     Instr::Ecall,
//! ]);
//! let mut m = Machine::new(64 * 1024);
//! m.load_program(&prog);
//! let exit = m.run(1_000)?;
//! assert_eq!(exit, rnnasip_sim::ExitReason::Ecall);
//! assert_eq!(m.core().reg(Reg::A0), 42);
//! # Ok::<(), rnnasip_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod core_state;
mod error;
mod fault;
mod guard;
mod machine;
mod mem;
mod program;
mod shortcut;
mod stats;
mod trace;
mod uop;

pub use cluster::{Cluster, ClusterKernel, ClusterPhase, ClusterProgram, DmaXfer, TcdmConfig};
pub use core_state::{Core, HwLoop};
pub use error::{ExitReason, SimError};
pub use fault::{Fault, FaultEffect, FaultPlan, FaultRecord, FaultSite, ParseFaultError};
pub use guard::{GuardReport, GuardSpec, RegionGuard};
pub use machine::{Machine, StepOutcome};
pub use mem::{MemImage, Memory, TrackedMem};
pub use program::{ProgItem, Program};
pub use shortcut::{KernelRegion, ShortcutAct, ShortcutPtr};
pub use stats::{Row, Stats};
pub use trace::TraceEntry;
pub use uop::UopProgram;
