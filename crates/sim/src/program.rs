//! Loadable program images.

use rnnasip_isa::{compress, decode, decode_compressed, is_compressed, DecodeError, Instr};

/// One placed instruction of a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgItem {
    /// Byte address of the instruction.
    pub addr: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Encoded size in bytes: 2 (compressed) or 4.
    pub size: u8,
}

/// A program image: decoded instructions placed at byte addresses.
///
/// The simulator fetches directly from this decoded representation (the
/// core has a deterministic instruction memory; modelling fetch bytes
/// would add nothing to the paper's evaluation). The *encoded* form is
/// still available — see [`Program::to_bytes`] — and
/// [`Program::from_bytes`] round-trips it, which the integration tests
/// exercise.
///
/// # Example
///
/// ```
/// use rnnasip_isa::{AluImmOp, Instr, Reg};
/// use rnnasip_sim::Program;
///
/// let prog = Program::from_instrs(0x100, [
///     Instr::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 },
///     Instr::Ecall,
/// ]);
/// assert_eq!(prog.entry(), 0x100);
/// assert_eq!(prog.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Program {
    base: u32,
    items: Vec<ProgItem>,
    /// Direct-mapped fetch table, one slot per halfword of the image:
    /// slot `(addr - base) >> 1` holds `item index + 1`, or 0 for a
    /// halfword that is not an instruction start (the interior of a
    /// 4-byte instruction). Fetch is therefore a bounds-checked array
    /// load — every address outside `[base, end)`, odd, or mid-
    /// instruction falls out as `None` with no map probe.
    slots: Vec<u32>,
    cursor: u32,
}

impl Program {
    /// Creates an empty program whose first instruction will be at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not halfword-aligned.
    pub fn new(base: u32) -> Self {
        assert!(
            base.is_multiple_of(2),
            "program base must be halfword-aligned"
        );
        Self {
            base,
            items: Vec::new(),
            slots: Vec::new(),
            cursor: base,
        }
    }

    /// Builds a program of uncompressed (4-byte) instructions.
    pub fn from_instrs<I: IntoIterator<Item = Instr>>(base: u32, instrs: I) -> Self {
        let mut p = Self::new(base);
        for i in instrs {
            p.push(i, 4);
        }
        p
    }

    /// Appends an instruction with the given encoded size (2 or 4 bytes)
    /// and returns its address.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 2 or 4.
    pub fn push(&mut self, instr: Instr, size: u8) -> u32 {
        assert!(size == 2 || size == 4, "instruction size must be 2 or 4");
        let addr = self.cursor;
        self.slots.push(self.items.len() as u32 + 1);
        if size == 4 {
            self.slots.push(0); // interior halfword of a 4-byte instruction
        }
        self.items.push(ProgItem { addr, instr, size });
        self.cursor += size as u32;
        addr
    }

    /// Entry point (the base address).
    pub fn entry(&self) -> u32 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// First address past the last instruction.
    pub fn end(&self) -> u32 {
        self.cursor
    }

    /// Total encoded code size in bytes (the paper's code-size metric).
    pub fn code_size(&self) -> u32 {
        self.cursor - self.base
    }

    /// Fetches the instruction at `addr`, if one starts there.
    ///
    /// Returns `None` for any address that is not an instruction start:
    /// below `base` or at/past [`end`](Self::end), halfword-misaligned,
    /// or pointing into the interior of a 4-byte instruction. The
    /// machine turns that into a fetch fault, so a PC that walks off
    /// either end of the image halts deterministically instead of
    /// executing garbage.
    #[inline]
    pub fn fetch(&self, addr: u32) -> Option<&ProgItem> {
        self.index_of(addr).map(|i| &self.items[i])
    }

    /// The instruction *index* (position in [`iter`](Self::iter) order) of
    /// the instruction starting at `addr`, with the same boundary
    /// semantics as [`fetch`](Self::fetch).
    ///
    /// Because [`push`](Self::push) keeps the image contiguous, this index
    /// doubles as the address→micro-op mapping of the pre-decoded
    /// execution path: micro-op `i` is the lowering of instruction `i`.
    #[inline]
    pub fn index_of(&self, addr: u32) -> Option<usize> {
        // `wrapping_sub` folds `addr < base` into a huge offset that the
        // bounds check below rejects, keeping the fast path branch-lean.
        let off = addr.wrapping_sub(self.base);
        if off & 1 != 0 {
            return None;
        }
        match self.slots.get((off >> 1) as usize) {
            Some(&slot) if slot != 0 => Some((slot - 1) as usize),
            _ => None,
        }
    }

    /// Iterates the placed instructions in address order.
    pub fn iter(&self) -> impl Iterator<Item = &ProgItem> {
        self.items.iter()
    }

    /// Replaces the instruction starting at `addr` in place, keeping its
    /// encoded size. Returns `false` (and changes nothing) when no
    /// instruction starts at `addr`.
    ///
    /// This is the instruction-corruption primitive of the fault-injection
    /// API: the caller decodes the bit-flipped word with the *same-width*
    /// decoder, so a 2-byte item only ever receives an instruction that
    /// still has a compressed form and [`to_bytes`](Self::to_bytes)
    /// stays well-defined.
    pub fn patch(&mut self, addr: u32, instr: Instr) -> bool {
        match self.index_of(addr) {
            Some(i) => {
                self.items[i].instr = instr;
                true
            }
            None => false,
        }
    }

    /// Encodes the program to its binary image (little-endian), starting
    /// at the base address.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.code_size() as usize);
        for item in &self.items {
            match item.size {
                2 => {
                    let half =
                        compress(&item.instr).expect("2-byte item must have a compressed form");
                    out.extend_from_slice(&half.to_le_bytes());
                }
                _ => {
                    out.extend_from_slice(&rnnasip_isa::encode(&item.instr).to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a binary image back into a program.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered. A trailing lone
    /// halfword that is not a compressed instruction is also an error.
    pub fn from_bytes(base: u32, bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut p = Self::new(base);
        let mut off = 0usize;
        while off + 1 < bytes.len() {
            let half = u16::from_le_bytes([bytes[off], bytes[off + 1]]);
            if is_compressed(half) {
                p.push(decode_compressed(half)?, 2);
                off += 2;
            } else {
                if off + 3 >= bytes.len() {
                    return Err(DecodeError {
                        word: half as u32,
                        reason: "truncated 32-bit instruction",
                    });
                }
                let word = u32::from_le_bytes([
                    bytes[off],
                    bytes[off + 1],
                    bytes[off + 2],
                    bytes[off + 3],
                ]);
                p.push(decode(word)?, 4);
                off += 4;
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_isa::{AluImmOp, Reg};

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    #[test]
    fn addresses_advance_by_size() {
        let mut p = Program::new(0x80);
        let a0 = p.push(addi(Reg::A0, Reg::A0, 1), 2);
        let a1 = p.push(addi(Reg::A0, Reg::A0, 1000), 4);
        let a2 = p.push(Instr::Ecall, 4);
        assert_eq!((a0, a1, a2), (0x80, 0x82, 0x86));
        assert_eq!(p.end(), 0x8A);
        assert_eq!(p.code_size(), 10);
    }

    #[test]
    fn fetch_finds_only_instruction_starts() {
        let p = Program::from_instrs(0, [addi(Reg::A0, Reg::A0, 1), Instr::Ecall]);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(2).is_none());
        assert!(p.fetch(4).is_some());
        assert!(p.fetch(8).is_none());
    }

    #[test]
    fn fetch_boundary_semantics() {
        // base 0x80: a 2-byte instr at 0x80, a 4-byte at 0x82, end 0x86.
        let mut p = Program::new(0x80);
        p.push(addi(Reg::A0, Reg::A0, 1), 2);
        p.push(addi(Reg::A1, Reg::SP, 1234), 4);
        // Below base (including the word just under it and address 0).
        assert!(p.fetch(0).is_none());
        assert!(p.fetch(0x7E).is_none());
        assert!(p.fetch(0x7F).is_none());
        // Instruction starts resolve.
        assert_eq!(p.fetch(0x80).unwrap().addr, 0x80);
        assert_eq!(p.fetch(0x82).unwrap().addr, 0x82);
        // Interior halfword of the 4-byte instruction is not a start.
        assert!(p.fetch(0x84).is_none());
        // Odd (halfword-misaligned) PCs never resolve, even in range.
        assert!(p.fetch(0x81).is_none());
        assert!(p.fetch(0x83).is_none());
        // At and past the end of the image.
        assert_eq!(p.end(), 0x86);
        assert!(p.fetch(0x86).is_none());
        assert!(p.fetch(0x88).is_none());
        assert!(p.fetch(u32::MAX - 1).is_none());
    }

    #[test]
    fn binary_round_trip_mixed_sizes() {
        let mut p = Program::new(0x40);
        p.push(addi(Reg::A0, Reg::A0, 1), 2); // compressible
        p.push(addi(Reg::A1, Reg::SP, 1234), 4);
        p.push(Instr::Ecall, 4);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 10);
        let q = Program::from_bytes(0x40, &bytes).unwrap();
        let a: Vec<_> = p.iter().collect();
        let b: Vec<_> = q.iter().collect();
        assert_eq!(a, b);
    }
}
