//! Execution tracing.

use crate::machine::{Machine, StepOutcome};
use crate::SimError;
use rnnasip_isa::Instr;

/// One retired instruction as seen by a trace callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Cycle counter *after* retiring it.
    pub cycle: u64,
    /// Retired-instruction counter *after* retiring it.
    pub instret: u64,
}

impl Machine {
    /// Runs until halt, invoking `on_retire` after every retired
    /// instruction — the standard way to produce an execution trace or
    /// feed a custom profiler.
    ///
    /// Tracing deliberately drives the generic per-step interpreter, not
    /// the micro-op fast path: hardware-loop bodies that [`Machine::run`]
    /// would execute through the specialized block runner retire here one
    /// instruction at a time, so the callback observes every iteration.
    /// Cycle counts, instret and statistics are bit-identical either way
    /// (see `traced_run_matches_untraced_uop_run`).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    ///
    /// # Example
    ///
    /// ```
    /// use rnnasip_isa::{AluImmOp, Instr, Reg};
    /// use rnnasip_sim::{Machine, Program};
    ///
    /// let prog = Program::from_instrs(0, [
    ///     Instr::OpImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 },
    ///     Instr::Ecall,
    /// ]);
    /// let mut m = Machine::new(64);
    /// m.load_program(&prog);
    /// let mut lines = Vec::new();
    /// m.run_with_trace(1_000, |e| lines.push(format!("{:#06x}: {}", e.pc, e.instr)))?;
    /// assert_eq!(lines.len(), 2);
    /// assert!(lines[0].contains("addi"));
    /// # Ok::<(), rnnasip_sim::SimError>(())
    /// ```
    pub fn run_with_trace<F>(
        &mut self,
        max_cycles: u64,
        mut on_retire: F,
    ) -> Result<crate::ExitReason, SimError>
    where
        F: FnMut(&TraceEntry),
    {
        loop {
            let pc = self.core().pc;
            let instr = self.fetch_instr(pc).ok_or(SimError::FetchFault { pc })?;
            let outcome = self.step()?;
            on_retire(&TraceEntry {
                pc,
                instr,
                cycle: self.core().cycle,
                instret: self.core().instret,
            });
            match outcome {
                StepOutcome::Halted(reason) => return Ok(reason),
                StepOutcome::Continue => {
                    if self.core().cycle > max_cycles {
                        return Err(SimError::Watchdog { max_cycles });
                    }
                }
            }
        }
    }

    /// Runs until halt and returns the whole disassembled trace as text
    /// (one line per retired instruction) — convenient for debugging
    /// generated kernels and for golden-trace tests.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_to_trace_text(&mut self, max_cycles: u64) -> Result<String, SimError> {
        let mut out = String::new();
        self.run_with_trace(max_cycles, |e| {
            out.push_str(&format!("{:>8} {:#010x}  {}\n", e.cycle, e.pc, e.instr));
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;
    use rnnasip_isa::{AluImmOp, LoopIdx, Reg};

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    #[test]
    fn trace_sees_loop_iterations() {
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A0, Reg::ZERO, 3),
                Instr::LpSetup {
                    l: LoopIdx::L0,
                    rs1: Reg::A0,
                    uimm: 4,
                },
                addi(Reg::A1, Reg::A1, 1),
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(64);
        m.load_program(&prog);
        let mut body_count = 0;
        m.run_with_trace(1000, |e| {
            if e.pc == 8 {
                body_count += 1;
            }
        })
        .unwrap();
        assert_eq!(body_count, 3, "hardware loop body retires three times");
    }

    /// A trace forces per-step execution; `Machine::run` executes the
    /// same hardware loops through the specialized bulk runner. The two
    /// must agree on every architectural counter and statistics row.
    #[test]
    fn traced_run_matches_untraced_uop_run() {
        use rnnasip_isa::{DotOp, LoadOp, SimdSize};
        // A loop body heavy enough to specialize: post-inc load, dot
        // product, mac — 64 iterations dominated by the bulk runner.
        let instrs = vec![
            addi(Reg::A1, Reg::ZERO, 256),
            addi(Reg::A0, Reg::ZERO, 64),
            Instr::LpSetup {
                l: LoopIdx::L0,
                rs1: Reg::A0,
                uimm: 8,
            },
            Instr::LoadPostInc {
                op: LoadOp::Lw,
                rd: Reg::A2,
                rs1: Reg::A1,
                offset: 4,
            },
            Instr::PvDot {
                op: DotOp::SdotSp,
                size: SimdSize::Half,
                rd: Reg::A4,
                rs1: Reg::A2,
                rs2: Reg::A2,
            },
            Instr::Mac {
                rd: Reg::A5,
                rs1: Reg::A2,
                rs2: Reg::A4,
            },
            Instr::Ecall,
        ];
        let prog = Program::from_instrs(0, instrs);

        let mut traced = Machine::new(2048);
        traced.load_program(&prog);
        let mut retired = 0u64;
        let exit_traced = traced.run_with_trace(100_000, |_| retired += 1).unwrap();

        let mut plain = Machine::new(2048);
        plain.load_program(&prog);
        let exit_plain = plain.run(100_000).unwrap();

        assert_eq!(exit_traced, exit_plain);
        assert_eq!(retired, traced.core().instret);
        assert_eq!(traced.core().cycle, plain.core().cycle);
        assert_eq!(traced.core().instret, plain.core().instret);
        for r in Reg::all() {
            assert_eq!(traced.core().reg(r), plain.core().reg(r));
        }
        let rows_t: Vec<_> = traced.stats().iter().collect();
        let rows_p: Vec<_> = plain.stats().iter().collect();
        assert_eq!(rows_t, rows_p);
        assert_eq!(traced.stats().stall_cycles(), plain.stats().stall_cycles());
        assert_eq!(traced.stats().mac_ops(), plain.stats().mac_ops());
    }

    #[test]
    fn trace_text_is_ordered_and_complete() {
        let prog = Program::from_instrs(0, vec![addi(Reg::A0, Reg::ZERO, 7), Instr::Ecall]);
        let mut m = Machine::new(64);
        m.load_program(&prog);
        let text = m.run_to_trace_text(100).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("addi a0, zero, 7"));
        assert!(lines[1].contains("ecall"));
    }
}
