//! The simulation engine: fetch, execute, time, account.

use crate::core_state::{Core, HwLoop};
use crate::error::{ExitReason, SimError};
use crate::fault::{Fault, FaultEffect, FaultPlan, FaultRecord, FaultSite};
use crate::guard::{GuardReport, GuardSpec, GuardUnit};
use crate::mem::{MemImage, Memory};
use crate::program::Program;
use crate::shortcut::{read_load, ExitVal, ShortcutRegion};
use crate::stats::Stats;
use crate::uop::{
    Target, UnaryOp, Uop, UopKind, UopProgram, DIV_EXTRA_CYCLES, MULH_EXTRA_CYCLES, NO_BODY,
    NO_IDX, NO_RUN, NO_SC,
};
use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, Csr, CsrOp, DotOp, Instr, LoadOp, MnemonicId, MulDivOp, PvAluOp,
    Reg, SimdMode, SimdSize, StoreOp,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Result of a single [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues.
    Continue,
    /// The program halted (`ecall`/`ebreak`).
    Halted(ExitReason),
}

/// Outcome of one micro-op step inside [`Machine::run`].
enum UStep {
    /// One instruction retired; at most `MAX_CYCLES_PER_STEP` consumed.
    Cont,
    /// A bulk hardware-loop run advanced the cycle counter by more than
    /// one step's worth; the run loop must re-derive its watchdog block.
    Bulk,
    /// The program halted.
    Halt(ExitReason),
}

/// Control-flow result of a micro-op's data semantics
/// ([`Machine::exec_uop`]); the retire bookkeeping maps it to the next
/// PC/index and the taken-branch cycle.
enum Flow {
    /// Fall through to the next micro-op.
    Fall,
    /// Redirect to a (pre- or run-time-resolved) target.
    Jump(Target),
    /// `ecall`/`ebreak`.
    Halt(ExitReason),
}

/// Upper bound on the cycles one [`Machine::step`] can consume, used by
/// [`Machine::run`] to size watchdog-check-free blocks.
///
/// The true worst case is `1 + DIV_EXTRA_CYCLES + 1` (base cycle, serial
/// divide, load-use bubble) = 33; a power-of-two bound above it keeps the
/// block arithmetic a shift and leaves headroom if a costlier instruction
/// is ever modelled.
const MAX_CYCLES_PER_STEP: u64 = 64;

/// The simulated machine: core + memory + loaded program + statistics.
///
/// See the [crate docs](crate) for the timing model. Construct with
/// [`Machine::new`], load a [`Program`] and data, then [`run`](Self::run).
#[derive(Debug)]
pub struct Machine {
    core: Core,
    mem: Memory,
    /// The loaded program. `Arc`-shared so cluster phase switches cost a
    /// reference count, not a copy; only fault-injected instruction
    /// patching clones it (copy-on-write via [`Arc::make_mut`]).
    program: Arc<Program>,
    /// The program lowered to micro-ops — [`Machine::run`]'s execution
    /// format. `Arc`-shared so a compiled artifact can hand one
    /// translation to any number of machines.
    uops: Arc<UopProgram>,
    stats: Stats,
    /// Destination of the immediately preceding load, for the load-use
    /// stall rule, with the mnemonic the stall is attributed to.
    pending_load: Option<(Reg, MnemonicId)>,
    /// SPR writes in flight: (instruction index at issue, SPR index, data).
    spr_pending: VecDeque<(u64, usize, u32)>,
    halted: Option<ExitReason>,
    /// Instructions retired through the bulk block runners (loop bodies
    /// and straight-line runs), for coverage diagnostics. One addition
    /// per bulk entry, not per op.
    bulk_instrs: u64,
    /// Instructions retired through installed kernel-shortcut regions
    /// (the native execution tier), for coverage diagnostics. One
    /// addition per region entry, not per op.
    shortcut_instrs: u64,
    /// Scratch buffer for shortcut-region outputs, kept across entries
    /// to avoid per-entry allocation.
    shortcut_outs: Vec<i32>,
    /// Scheduled faults not yet applied, in `at_instret` order.
    armed_faults: VecDeque<Fault>,
    /// Forced watchdog budget from the armed [`FaultPlan`], capping the
    /// budget of every run until cleared.
    forced_watchdog: Option<u64>,
    /// Faults applied since the plan was armed.
    fault_log: Vec<FaultRecord>,
    /// Instruction addresses corrupted into invalid encodings; fetching
    /// one raises [`SimError::FetchFault`]. Persists across
    /// [`rewind`](Self::rewind) — program corruption is only healed by
    /// reloading the program.
    corrupted_pcs: Vec<u32>,
    /// Armed ABFT region guards (see [`arm_guards`](Self::arm_guards)),
    /// `None` when unguarded — the common case, so the hot loop pays one
    /// pointer test.
    guards: Option<Box<GuardUnit>>,
}

impl Machine {
    /// Creates a machine with `mem_size` bytes of zeroed TCDM and no
    /// program.
    pub fn new(mem_size: usize) -> Self {
        Self::with_memory(Memory::new(mem_size))
    }

    /// Creates a machine around an existing memory (e.g. one built with
    /// [`Memory::from_image`]) and no program.
    pub fn with_memory(mem: Memory) -> Self {
        Self {
            core: Core::new(0),
            mem,
            program: Arc::new(Program::default()),
            uops: Arc::new(UopProgram::default()),
            stats: Stats::new(),
            pending_load: None,
            spr_pending: VecDeque::new(),
            halted: None,
            bulk_instrs: 0,
            shortcut_instrs: 0,
            shortcut_outs: Vec::new(),
            armed_faults: VecDeque::new(),
            forced_watchdog: None,
            fault_log: Vec::new(),
            corrupted_pcs: Vec::new(),
            guards: None,
        }
    }

    /// Instructions retired through the specialized block runners rather
    /// than the generic per-op path, since construction. The
    /// bulk-coverage ratio `bulk_instrs() / core().instret` is the main
    /// diagnostic for micro-op-path throughput.
    pub fn bulk_instrs(&self) -> u64 {
        self.bulk_instrs
    }

    /// Instructions retired through installed kernel-shortcut regions
    /// (the native execution tier). Cleared with the statistics
    /// ([`rewind`](Self::rewind) / [`clear_stats`](Self::clear_stats)),
    /// so after a warm engine run it reflects that run alone. Zero
    /// whenever the tier is disarmed — armed faults, tracing, or a
    /// program with no verifiable kernel regions.
    pub fn shortcut_instrs(&self) -> u64 {
        self.shortcut_instrs
    }

    /// Rewinds the machine for another run of the loaded program:
    /// restores memory from `image` (dirty blocks only — see
    /// [`Memory::restore_image`]), clears the accumulated statistics and
    /// resets the core to the program entry. Returns the number of
    /// memory bytes restored.
    ///
    /// After a `rewind`, a [`run`](Self::run) is bit-identical to the
    /// first run from a freshly image-loaded machine, provided `image`
    /// is the snapshot this machine last started from.
    ///
    /// # Panics
    ///
    /// Panics if the image size differs from the memory size.
    pub fn rewind(&mut self, image: &MemImage) -> usize {
        let restored = self.mem.restore_image(image);
        self.stats.clear();
        self.shortcut_instrs = 0;
        if let Some(g) = &mut self.guards {
            g.reset_run();
        }
        self.reset_core();
        restored
    }

    /// Loads a program and resets the core to its entry point.
    ///
    /// The program is lowered to micro-ops here, once; [`run`](Self::run)
    /// executes the lowered form. Memory contents and accumulated
    /// statistics are preserved, so data can be staged before or after
    /// loading code.
    pub fn load_program(&mut self, program: &Program) {
        self.program = Arc::new(program.clone());
        self.uops = Arc::new(UopProgram::translate(program));
        self.clear_faults();
        self.corrupted_pcs.clear();
        // Guard boundary indices belong to the replaced program.
        self.guards = None;
        self.reset_core();
    }

    /// Loads a program together with an already-translated micro-op
    /// image, skipping re-translation — the compile-once/run-many path
    /// used by engines that instantiate several machines from one
    /// compiled artifact.
    ///
    /// `uops` must be [`UopProgram::translate`]\(`program`\) (or a clone
    /// of the `Arc` another machine got from the same program); anything
    /// else breaks the PC ↔ micro-op correspondence `run` relies on.
    pub fn load_program_shared(&mut self, program: &Program, uops: Arc<UopProgram>) {
        debug_assert_eq!(
            uops.len(),
            program.len(),
            "micro-op image must be the translation of the loaded program"
        );
        self.program = Arc::new(program.clone());
        self.uops = uops;
        self.clear_faults();
        self.corrupted_pcs.clear();
        self.guards = None;
        self.reset_core();
    }

    /// Switches to the next phase program of a partitioned (cluster)
    /// run **without** disturbing the run in progress: the cycle and
    /// retired-instruction counters, accumulated statistics, and any
    /// armed faults all carry over, while the control state (PC to the
    /// new entry, registers, pending load / SPR pipeline, halt flag) is
    /// reset as a real barrier-and-dispatch would leave it.
    ///
    /// Contrast [`load_program_shared`](Self::load_program_shared),
    /// which starts a machine over from scratch. Both take a shared
    /// micro-op image; here the program is also taken by `Arc`, so a
    /// phase switch is two reference-count bumps.
    ///
    /// Instruction slots corrupted by an earlier fault belong to the
    /// previous phase's program and are dropped with it.
    pub fn load_phase_program(&mut self, program: &Arc<Program>, uops: &Arc<UopProgram>) {
        debug_assert_eq!(
            uops.len(),
            program.len(),
            "micro-op image must be the translation of the loaded program"
        );
        self.program = Arc::clone(program);
        self.uops = Arc::clone(uops);
        self.corrupted_pcs.clear();
        let (cycle, instret) = (self.core.cycle, self.core.instret);
        self.reset_core();
        self.core.cycle = cycle;
        self.core.instret = instret;
    }

    /// Exchanges this machine's data memory with `other`.
    ///
    /// This is the cluster's core-multiplexing primitive: one shared
    /// TCDM [`Memory`] is swapped into whichever core's machine is
    /// advancing through the current phase, so all cores observe (and
    /// dirty-track) the same bytes without copying.
    pub fn swap_memory(&mut self, other: &mut Memory) {
        std::mem::swap(&mut self.mem, other);
    }

    /// The loaded program's micro-op translation (shareable via
    /// [`load_program_shared`](Self::load_program_shared)).
    pub fn uop_program(&self) -> &Arc<UopProgram> {
        &self.uops
    }

    /// Resets the architectural core state (PC to program entry, registers
    /// and micro-architectural state cleared). Memory and statistics are
    /// untouched.
    pub fn reset_core(&mut self) {
        self.core = Core::new(self.program.entry());
        self.pending_load = None;
        self.spr_pending.clear();
        self.halted = None;
    }

    /// The architectural state.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable architectural state (e.g. to pass kernel arguments in
    /// registers before running).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// The data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (for staging inputs and reading back outputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The decoded instruction at `addr`, if the loaded program has one.
    pub fn fetch_instr(&self, addr: u32) -> Option<Instr> {
        self.program.fetch(addr).map(|item| item.instr)
    }

    /// Clears the accumulated statistics (including the shortcut-tier
    /// retire counter).
    pub fn clear_stats(&mut self) {
        self.stats.clear();
        self.shortcut_instrs = 0;
        if let Some(g) = &mut self.guards {
            g.reset_run();
        }
    }

    /// Arms ABFT checksum guards for the loaded program's kernel regions:
    /// from now on every run verifies each region's exit (see the
    /// [`guard`](crate::guard) module) and [`guard_report`](Self::guard_report)
    /// snapshots the verdicts. Guards are pure observers — outputs,
    /// cycles, `instret` and per-mnemonic rows are untouched — but they
    /// disable the bulk block runners (a host-throughput cost only; the
    /// kernel-shortcut tier stays armed, its entries checked the same
    /// way). Call **after** the program is loaded; region boundaries are
    /// resolved against the current micro-op image.
    pub fn arm_guards(&mut self, specs: Arc<Vec<GuardSpec>>) {
        let program = &self.program;
        self.guards = Some(Box::new(GuardUnit::new(specs, |a| {
            program.index_of(a).map(|i| i as u32)
        })));
    }

    /// Removes armed guards (per-run counters included).
    pub fn disarm_guards(&mut self) {
        self.guards = None;
    }

    /// Whether ABFT guards are armed.
    pub fn guards_armed(&self) -> bool {
        self.guards.is_some()
    }

    /// Snapshot of the current run's guard verdicts, `None` when no
    /// guards are armed. A guard still pending mid-region (the run
    /// halted or faulted inside it) counts as a failed exit.
    pub fn guard_report(&self) -> Option<GuardReport> {
        self.guards.as_ref().map(|g| g.report())
    }

    /// Records `halfwords` halfwords at `base` in the guard ledger (the
    /// produced-window freshness record — used by the engine to cover
    /// the freshly patched input window). No-op when guards are off.
    pub fn guard_note_range(&mut self, base: u32, halfwords: u32) {
        if let Some(g) = self.guards.as_deref_mut() {
            g.note_range(&self.mem, base, halfwords);
        }
    }

    /// Re-checks a ledger window against current memory: `Some(false)`
    /// means the bytes changed since they were recorded. `None` when
    /// guards are off or no entry with this exact base/extent exists.
    pub fn guard_verify_range(&self, base: u32, halfwords: u32) -> Option<bool> {
        self.guards
            .as_deref()?
            .verify_range(&self.mem, base, halfwords)
    }

    /// Arms a fault plan: replaces any pending faults with the plan's
    /// (sorted by trigger `instret`), installs its forced watchdog and
    /// clears the fault log.
    ///
    /// Armed faults survive [`reset_core`](Self::reset_core) and
    /// [`rewind`](Self::rewind) — a plan armed before a run fires during
    /// that run even though the engine rewinds first. They are cleared
    /// by [`clear_faults`](Self::clear_faults) or by loading a program.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        let mut faults = plan.faults.clone();
        faults.sort_by_key(|f| f.at_instret);
        self.armed_faults = faults.into();
        self.forced_watchdog = plan.watchdog;
        self.fault_log.clear();
    }

    /// Disarms pending faults and the forced watchdog, and clears the
    /// fault log. Does *not* undo damage already applied: flipped
    /// memory/register bits and corrupted instruction slots persist
    /// until state is restored or the program reloaded.
    pub fn clear_faults(&mut self) {
        self.armed_faults.clear();
        self.forced_watchdog = None;
        self.fault_log.clear();
    }

    /// Faults applied since the current plan was armed, in application
    /// order.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Whether fault state (pending faults or corrupted instruction
    /// slots) currently disables the bulk block runners. Exposed for
    /// diagnostics; the generic per-op path is bit-identical, so this
    /// only affects host-side throughput.
    pub fn bulk_ok(&self) -> bool {
        self.armed_faults.is_empty() && self.corrupted_pcs.is_empty()
    }

    /// The run budget after applying the armed plan's forced watchdog.
    #[inline]
    fn effective_budget(&self, max_cycles: u64) -> u64 {
        match self.forced_watchdog {
            Some(w) => w.min(max_cycles),
            None => max_cycles,
        }
    }

    /// Applies every armed fault whose trigger `instret` has been
    /// reached, recording each application.
    fn apply_due_faults(&mut self) {
        while let Some(&f) = self.armed_faults.front() {
            if f.at_instret > self.core.instret {
                break;
            }
            self.armed_faults.pop_front();
            let effect = self.apply_fault(f.site);
            self.fault_log.push(FaultRecord {
                fault: f,
                pc: self.core.pc,
                cycle: self.core.cycle,
                instret: self.core.instret,
                effect,
            });
        }
    }

    fn apply_fault(&mut self, site: FaultSite) -> FaultEffect {
        match site {
            FaultSite::MemBit { addr, bit, silent } => {
                if self.mem.flip_bit(addr, bit, silent) {
                    FaultEffect::FlippedMem { addr, silent }
                } else {
                    FaultEffect::NoTarget
                }
            }
            FaultSite::RegBit { reg, bit } => {
                if reg.is_zero() {
                    return FaultEffect::NoTarget;
                }
                let v = self.core.reg(reg) ^ (1 << (bit & 31));
                self.core.set_reg(reg, v);
                FaultEffect::FlippedReg { reg }
            }
            FaultSite::InstrBit { pc, bit } => self.corrupt_instr(pc, bit),
        }
    }

    /// Flips one bit of the encoded instruction at `pc` and re-decodes
    /// the corrupted word with the same-width decoder. A still-valid
    /// encoding is patched into the program (and the micro-op image
    /// retranslated); an invalid one — or a width-class change, which
    /// would shift every following instruction — turns the slot into a
    /// permanent fetch fault instead.
    fn corrupt_instr(&mut self, pc: u32, bit: u32) -> FaultEffect {
        if self.corrupted_pcs.contains(&pc) {
            return FaultEffect::NoTarget;
        }
        let Some(item) = self.program.fetch(pc).copied() else {
            return FaultEffect::NoTarget;
        };
        let patched = if item.size == 2 {
            match rnnasip_isa::compress(&item.instr) {
                Some(half) => {
                    let flipped = half ^ (1 << (bit & 15));
                    if rnnasip_isa::is_compressed(flipped) {
                        rnnasip_isa::decode_compressed(flipped).ok()
                    } else {
                        None
                    }
                }
                None => return FaultEffect::NoTarget,
            }
        } else {
            let flipped = rnnasip_isa::encode(&item.instr) ^ (1 << (bit & 31));
            if rnnasip_isa::is_compressed(flipped as u16) {
                None
            } else {
                rnnasip_isa::decode(flipped).ok()
            }
        };
        match patched {
            Some(instr) => {
                Arc::make_mut(&mut self.program).patch(pc, instr);
                self.uops = Arc::new(UopProgram::translate(&self.program));
                FaultEffect::PatchedInstr { pc }
            }
            None => {
                self.corrupted_pcs.push(pc);
                FaultEffect::RemovedInstr { pc }
            }
        }
    }

    /// Runs until the program halts via `ecall`/`ebreak`.
    ///
    /// Execution is driven off the pre-decoded micro-op array built by
    /// [`load_program`](Self::load_program): the hot loop tracks the
    /// micro-op *index* alongside the PC, so sequential flow is an index
    /// increment and direct jumps use their pre-resolved target index.
    /// Straight-line hardware-loop bodies recognized at translation time
    /// run through a specialized block runner that executes only data
    /// semantics per iteration and accounts cycles and statistics in
    /// bulk. Everything observable — cycle counts, per-mnemonic rows,
    /// trace-visible state, fault points — is bit-identical to the
    /// reference loop [`run_legacy`](Self::run_legacy).
    ///
    /// Steps are executed in watchdog-check-free blocks: while the cycle
    /// budget left exceeds `block · MAX_CYCLES_PER_STEP`, no step in the
    /// block can push the counter past `max_cycles`, so the per-step
    /// budget comparison (and the halted re-check it guards) is hoisted
    /// out of the hot loop. Once the budget gets close the loop falls
    /// back to per-step checking, making the watchdog fire on exactly
    /// the same cycle as the naive step-and-check loop. A bulk loop run
    /// never overshoots: its iteration count is capped by the remaining
    /// budget, and the block size is re-derived right after it.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if `max_cycles` elapse first, or any
    /// fetch/memory error raised by the program.
    pub fn run(&mut self, max_cycles: u64) -> Result<ExitReason, SimError> {
        let max_cycles = self.effective_budget(max_cycles);
        if let Some(reason) = self.halted {
            return Ok(reason);
        }
        // Fault mode: an armed instruction-corruption fault can replace
        // the micro-op image mid-run, so while faults are pending, step
        // with a freshly derived `Arc`/index each iteration (the bulk
        // runners are disabled via `bulk_ok`, keeping every step on the
        // bit-identical generic path). Falls through to the fast loop
        // once the queue drains.
        while !self.armed_faults.is_empty() {
            self.apply_due_faults();
            let uops = Arc::clone(&self.uops);
            let mut idx = self
                .program
                .index_of(self.core.pc)
                .map_or(NO_IDX, |i| i as u32);
            match self.uop_step(&uops, &mut idx, max_cycles)? {
                UStep::Halt(reason) => return Ok(reason),
                UStep::Cont | UStep::Bulk => {
                    if self.core.cycle > max_cycles {
                        return Err(SimError::Watchdog { max_cycles });
                    }
                }
            }
        }
        let uops = Arc::clone(&self.uops);
        let mut idx = self
            .program
            .index_of(self.core.pc)
            .map_or(NO_IDX, |i| i as u32);
        loop {
            let remaining = max_cycles.saturating_sub(self.core.cycle);
            let mut block = remaining / MAX_CYCLES_PER_STEP;
            if block == 0 {
                match self.uop_step(&uops, &mut idx, max_cycles)? {
                    UStep::Halt(reason) => return Ok(reason),
                    UStep::Cont | UStep::Bulk => {
                        if self.core.cycle > max_cycles {
                            return Err(SimError::Watchdog { max_cycles });
                        }
                    }
                }
            } else {
                while block > 0 {
                    match self.uop_step(&uops, &mut idx, max_cycles)? {
                        UStep::Halt(reason) => return Ok(reason),
                        // The cycle counter jumped by a whole loop run;
                        // leave the inner loop to re-size the block.
                        UStep::Bulk => break,
                        UStep::Cont => block -= 1,
                    }
                }
            }
        }
    }

    /// The reference run loop: identical contract to [`run`](Self::run),
    /// executed by re-matching the decoded [`Instr`] stream one
    /// [`step`](Self::step) at a time. Kept as the bit-identity oracle
    /// the differential tests compare the micro-op path against.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_legacy(&mut self, max_cycles: u64) -> Result<ExitReason, SimError> {
        let max_cycles = self.effective_budget(max_cycles);
        if let Some(reason) = self.halted {
            return Ok(reason);
        }
        // Armed faults are applied inside `step`, but the watchdog must
        // be re-checked after every step while they can fire (mirroring
        // `run`'s fault-mode loop) rather than once per block.
        while !self.armed_faults.is_empty() {
            match self.step()? {
                StepOutcome::Halted(reason) => return Ok(reason),
                StepOutcome::Continue => {
                    if self.core.cycle > max_cycles {
                        return Err(SimError::Watchdog { max_cycles });
                    }
                }
            }
        }
        loop {
            let remaining = max_cycles.saturating_sub(self.core.cycle);
            let block = remaining / MAX_CYCLES_PER_STEP;
            if block == 0 {
                // Near the budget: step one at a time, checking the
                // watchdog after every retire exactly as the paper's
                // original run loop did.
                match self.step()? {
                    StepOutcome::Halted(reason) => return Ok(reason),
                    StepOutcome::Continue => {
                        if self.core.cycle > max_cycles {
                            return Err(SimError::Watchdog { max_cycles });
                        }
                    }
                }
            } else {
                for _ in 0..block {
                    if let StepOutcome::Halted(reason) = self.step()? {
                        return Ok(reason);
                    }
                }
            }
        }
    }

    /// Executes one micro-op: the pre-decoded image of [`step`]\(Self::step).
    ///
    /// `idx` is the micro-op index of the current PC (or [`NO_IDX`] when
    /// the PC does not start an instruction), maintained across calls so
    /// the common case never consults the fetch table.
    fn uop_step(
        &mut self,
        uops: &UopProgram,
        idx: &mut u32,
        max_cycles: u64,
    ) -> Result<UStep, SimError> {
        if !self.spr_pending.is_empty() {
            self.drain_spr();
        }

        // An instruction slot corrupted into an invalid encoding fetch-
        // faults exactly where `step` would (after SPR drain, before the
        // load-use stall charge).
        if !self.corrupted_pcs.is_empty() && self.corrupted_pcs.contains(&self.core.pc) {
            return Err(SimError::FetchFault { pc: self.core.pc });
        }

        let Some(&u) = uops.uops.get(*idx as usize) else {
            return Err(SimError::FetchFault { pc: self.core.pc });
        };
        debug_assert_eq!(u.addr, self.core.pc, "micro-op index out of sync with PC");

        // ABFT guard boundary: finish a pending guard whose region ends
        // at this dispatch, then arm one if a region starts here — before
        // the shortcut attempt below, so both execution tiers check the
        // same entries at the same boundaries.
        if let Some(g) = self.guards.as_deref_mut() {
            g.boundary(&self.mem, *idx);
        }

        // Load-use stall: one bubble, charged to the producing load.
        if let Some((reg, id)) = self.pending_load.take() {
            if u.uses_mask & (1u32 << reg.num()) != 0 {
                self.stats.attribute_stall(id);
                self.core.cycle += 1;
            }
        }

        // An installed kernel-shortcut region starts here: execute the
        // whole region natively if the runtime preconditions hold. The
        // entry stall above is already charged either way.
        if u.shortcut != NO_SC && self.try_shortcut(uops, u.shortcut, idx, max_cycles)? {
            return Ok(UStep::Bulk);
        }

        // A specialized straight-line run starts here: execute the whole
        // run in bulk if the runtime preconditions hold (no armed loop
        // end inside, enough watchdog budget). The entry stall above is
        // already charged either way.
        if u.run != NO_RUN && self.run_straight(uops, u.run, idx, max_cycles)? {
            return Ok(UStep::Bulk);
        }

        let flow = self.exec_uop(&u)?;
        let (mut next_addr, mut next_idx, extra, halted) = match flow {
            Flow::Fall => (u.next_addr, *idx + 1, 0, None),
            Flow::Jump(t) => (t.addr, t.idx, 1, None),
            Flow::Halt(reason) => (u.next_addr, *idx + 1, 0, Some(reason)),
        };

        // Hardware loops: zero-cycle jump-back when the fall-through PC
        // reaches an armed loop's end. Inner loop (level 0) has priority.
        let mut hw_jump = false;
        let mut jump_level = 0usize;
        if matches!(flow, Flow::Fall) {
            for level in 0..2 {
                let lp = &mut self.core.hwloop[level];
                if lp.count > 0 && next_addr == lp.end {
                    if lp.count > 1 {
                        lp.count -= 1;
                        next_addr = lp.start;
                        hw_jump = true;
                        jump_level = level;
                        break;
                    }
                    // Inner loop expired: fall through so an outer loop
                    // sharing the same end address gets its jump-back.
                    lp.count = 0;
                }
            }
        }
        if hw_jump {
            next_idx = self
                .program
                .index_of(next_addr)
                .map_or(NO_IDX, |i| i as u32);
        }

        let cycles = u64::from(u.base_cycles) + extra;
        self.stats.record(u.id, cycles, u32::from(u.mac_ops));
        self.core.cycle += cycles;
        self.core.instret += 1;
        self.core.pc = next_addr;
        *idx = next_idx;
        if u.load_rd != 0 {
            self.pending_load = Some((Reg::from_bits(u32::from(u.load_rd)), u.id));
        }

        if let Some(reason) = halted {
            self.halted = Some(reason);
            return Ok(UStep::Halt(reason));
        }
        if hw_jump {
            if u.body != NO_BODY
                && self.run_loop_body(uops, u.body, jump_level, max_cycles, false)?
            {
                return Ok(UStep::Bulk);
            }
        } else if u.body != NO_BODY {
            // An lp.setup/lp.setupi that just armed a specializable loop:
            // the fall-through PC is the body start, so iteration 0 can
            // run in bulk too (top entry).
            if let UopKind::LpSetup { l, .. } | UopKind::LpSetupi { l, .. } = u.kind {
                if self.run_loop_body(uops, u.body, usize::from(l), max_cycles, true)? {
                    return Ok(UStep::Bulk);
                }
            }
        }
        Ok(UStep::Cont)
    }

    /// Attempts to execute the installed kernel-shortcut region `si`,
    /// whose first op the PC sits on, as one native computation.
    ///
    /// Returns `Ok(false)` to decline — the interpreted path then
    /// executes the region bit-identically. Declines when bulk execution
    /// is disabled (armed faults / corrupted slots), when
    /// micro-architectural state is live at the region boundary (SPR
    /// writes in flight, armed hardware loops), when the watchdog budget
    /// cannot cover the whole region, or when the per-entry admission
    /// check fails (pointer cells unresolvable, operand/output ranges
    /// out of bounds, misaligned, or overlapping).
    ///
    /// On `Ok(true)` the region was executed natively: outputs written
    /// through the dirty-block bitmap, exit-live registers / SPR state /
    /// hardware-loop state reconstructed, and the pre-aggregated cycle,
    /// instret and per-mnemonic statistics retired in bulk — exactly the
    /// state the interpreted path would have produced.
    fn try_shortcut(
        &mut self,
        uops: &UopProgram,
        si: u32,
        idx: &mut u32,
        max_cycles: u64,
    ) -> Result<bool, SimError> {
        if !self.bulk_ok() || !self.spr_pending.is_empty() {
            return Ok(false);
        }
        if self.core.hwloop[0].count != 0 || self.core.hwloop[1].count != 0 {
            return Ok(false);
        }
        let sc = &uops.shortcuts[si as usize];
        if sc.total_cycles > max_cycles.saturating_sub(self.core.cycle) {
            return Ok(false);
        }
        let Some((x_base, out_base)) = sc.check_entry(&self.mem) else {
            return Ok(false);
        };
        let mut outs = std::mem::take(&mut self.shortcut_outs);
        outs.clear();
        if !sc.compute(&self.mem, x_base, &mut outs) {
            self.shortcut_outs = outs;
            return Ok(false);
        }
        // Resolve every exit value before mutating any state, so a
        // failure here still declines cleanly to the interpreted path.
        // Exit-value loads re-read operand memory the region read; the
        // admission check proved those ranges store-disjoint, so the
        // values are entry-time values regardless of commit order.
        let entry_instret = self.core.instret;
        let Some((reg_vals, spr_vals, pend_vals)) = self.resolve_exit(sc, &outs, entry_instret)
        else {
            self.shortcut_outs = outs;
            return Ok(false);
        };

        for (k, &v) in outs.iter().enumerate() {
            let addr = out_base.wrapping_add(k as u32 * sc.desc.out_stride);
            self.mem
                .write_u16(addr, v as u16)
                .expect("shortcut output range was admission-checked");
        }
        for (r, v) in reg_vals {
            self.core.set_reg(r, v);
        }
        for (s, v) in spr_vals.into_iter().enumerate() {
            if let Some(v) = v {
                self.core.spr[s] = v;
            }
        }
        for e in pend_vals {
            self.spr_pending.push_back(e);
        }
        for (l, h) in sc.exit_hwloop.iter().enumerate() {
            if let Some(h) = h {
                self.core.hwloop[l] = HwLoop {
                    start: h.start,
                    end: h.end,
                    count: h.count,
                };
            }
        }
        self.pending_load = sc
            .exit_pending_load
            .map(|(r, id)| (Reg::from_bits(u32::from(r)), id));
        self.core.cycle += sc.total_cycles;
        self.core.instret += sc.total_instrs;
        self.shortcut_instrs += sc.total_instrs;
        for &(id, instrs, cycles, macs) in &sc.retire_rows {
            self.stats.record_many(id, instrs, cycles, macs);
        }
        for &(id, n) in &sc.stall_rows {
            self.stats.attribute_stalls(id, n);
        }
        self.core.pc = sc.desc.end_addr;
        *idx = sc.end_idx;
        self.shortcut_outs = outs;
        Ok(true)
    }

    /// Resolves a shortcut region's exit-live values against current
    /// memory: final register values, final SPR slot contents, and the
    /// still-in-flight SPR writes (re-keyed to absolute `instret`).
    #[allow(clippy::type_complexity)]
    fn resolve_exit(
        &self,
        sc: &ShortcutRegion,
        outs: &[i32],
        entry_instret: u64,
    ) -> Option<(Vec<(Reg, u32)>, [Option<u32>; 2], Vec<(u64, usize, u32)>)> {
        let mut reg_vals = Vec::with_capacity(sc.exit_regs.len());
        for &(r, ev) in &sc.exit_regs {
            let v = match ev {
                ExitVal::Const(v) => v,
                ExitVal::CellAdd { cell, off } => self.mem.read_u32(cell).ok()?.wrapping_add(off),
                ExitVal::Load { op, addr } => read_load(&self.mem, op, addr.resolve(&self.mem)?)?,
                ExitVal::Out(k) => outs[k as usize] as u32,
            };
            reg_vals.push((Reg::from_bits(u32::from(r)), v));
        }
        let mut spr_vals = [None, None];
        for (s, a) in sc.exit_spr.iter().enumerate() {
            if let Some(a) = a {
                spr_vals[s] = Some(self.mem.read_u32(a.resolve(&self.mem)?).ok()?);
            }
        }
        let mut pend_vals = Vec::with_capacity(sc.exit_pending.len());
        for &(rel, slot, a) in &sc.exit_pending {
            let v = self.mem.read_u32(a.resolve(&self.mem)?).ok()?;
            pend_vals.push((entry_instret + rel, slot, v));
        }
        Some((reg_vals, spr_vals, pend_vals))
    }

    /// Attempts a bulk run of the specialized loop body chain starting at
    /// descriptor `head`, with the PC on the body's first op — either
    /// just after a generic jump-back of hardware loop `level`
    /// (`top_entry == false`) or just after the loop's `lp.setup` armed
    /// it (`top_entry == true`, running from iteration 0).
    ///
    /// Returns `Ok(false)` when no descriptor matches the armed loop or
    /// the preconditions for bulk execution don't hold (fewer than two
    /// iterations left, a conflicting other-level loop, no cycle budget)
    /// — the caller then continues on the generic path, which handles
    /// those cases bit-identically. On `Ok(true)`, whole iterations were
    /// executed and accounted in bulk; the machine state (PC, counters,
    /// statistics, pending load) is exactly what the generic path would
    /// have produced. A mid-body fault unwinds to exact per-op
    /// accounting before returning the error.
    fn run_loop_body(
        &mut self,
        uops: &UopProgram,
        head: u32,
        level: usize,
        max_cycles: u64,
        top_entry: bool,
    ) -> Result<bool, SimError> {
        // Bulk execution retires many ops without fault or corrupted-slot
        // checks; fall back to the generic path while any are live. Armed
        // guards also disable it: bulk retirement skips the per-dispatch
        // guard boundary hook (host-throughput cost only — the per-op
        // path is bit-identical).
        if !self.bulk_ok() || self.guards.is_some() {
            return Ok(false);
        }
        let lp = self.core.hwloop[level];
        let mut bi = head;
        let body = loop {
            if bi == NO_BODY {
                return Ok(false);
            }
            let b = &uops.bodies[bi as usize];
            if b.start_addr == lp.start && b.end_addr == lp.end {
                break b;
            }
            bi = b.next;
        };
        // The final iteration (count == 1) must run generically: its
        // jump-back check falls through and may hand over to an outer
        // loop sharing the end address.
        if lp.count < 2 {
            return Ok(false);
        }
        // Steady-state iterations pay the wrap-around stall into op 0;
        // iteration 0 does not (nothing can be pending after lp.setup).
        // Bulk accounting charges every iteration identically, so top
        // entry is only valid when that stall is statically absent.
        if top_entry && body.stall_in[0].is_some() {
            return Ok(false);
        }
        // The other loop level must not be able to trigger anywhere in
        // the body. Its end address strictly inside the body always
        // conflicts; an end equal to this body's end conflicts only when
        // the other level is the *inner* one (level 0 has priority).
        let other = self.core.hwloop[1 - level];
        if other.count > 0
            && other.end > body.start_addr
            && (other.end < body.end_addr || (level == 1 && other.end == body.end_addr))
        {
            return Ok(false);
        }
        let budget = max_cycles.saturating_sub(self.core.cycle);
        let iters = (budget / body.iter_cycles).min(u64::from(lp.count - 1));
        if iters == 0 {
            return Ok(false);
        }

        let slice = &uops.uops[body.start_idx as usize..(body.start_idx + body.len) as usize];
        let (done, fault) = self.exec_bulk(slice, iters);

        // Bulk-account the completed iterations: cycles, loop count and
        // one row update per mnemonic. PC stays at the body start — every
        // completed iteration ended in a jump-back (count never dropped
        // below 2 before its decrement, by the `iters` cap).
        self.core.cycle += done * body.iter_cycles;
        self.core.hwloop[level].count -= done as u32;
        self.bulk_instrs += done * u64::from(body.len);
        for &(id, instrs, cycles, macs) in &body.retire_rows {
            self.stats
                .record_many(id, instrs * done, cycles * done, macs * done);
        }
        for &(id, n) in &body.stall_rows {
            self.stats.attribute_stalls(id, n * done);
        }

        match fault {
            None => {
                // The generic path would have retired the body's last op
                // just before returning here, leaving its load pending.
                let last = slice[slice.len() - 1];
                self.pending_load =
                    (last.load_rd != 0).then(|| (Reg::from_bits(u32::from(last.load_rd)), last.id));
                Ok(true)
            }
            Some((k, e)) => {
                // A fault in op `k` of the partial iteration: retire ops
                // 0..k individually (their register/memory effects are
                // already applied), charge the stall the faulting op
                // suffered on entry, and leave the PC on the faulting op
                // — exactly the state the generic path faults with.
                for (j, u) in slice.iter().take(k).enumerate() {
                    if let Some(id) = body.stall_in[j] {
                        self.stats.attribute_stall(id);
                        self.core.cycle += 1;
                    }
                    self.stats
                        .record(u.id, u64::from(u.base_cycles), u32::from(u.mac_ops));
                    self.core.cycle += u64::from(u.base_cycles);
                }
                if let Some(id) = body.stall_in[k] {
                    self.stats.attribute_stall(id);
                    self.core.cycle += 1;
                }
                self.pending_load = None;
                self.core.pc = slice[k].addr;
                Err(e)
            }
        }
    }

    /// Attempts a bulk pass of straight-line run `ri`, whose first op the
    /// PC sits on.
    ///
    /// Returns `Ok(false)` when the preconditions don't hold: an *armed*
    /// hardware loop's end address lies on one of the run's fall-through
    /// addresses (the generic path would divert control there), or the
    /// watchdog budget can't cover the whole run. On `Ok(true)` the run
    /// was executed and accounted in bulk, leaving exactly the state the
    /// generic path would have produced; a mid-run fault unwinds to exact
    /// per-op accounting before returning the error.
    fn run_straight(
        &mut self,
        uops: &UopProgram,
        ri: u32,
        idx: &mut u32,
        max_cycles: u64,
    ) -> Result<bool, SimError> {
        // See `run_loop_body`: no bulk retirement while fault state or
        // guards are live (a straight run can cross a region's
        // fall-through exit, skipping the guard boundary hook).
        if !self.bulk_ok() || self.guards.is_some() {
            return Ok(false);
        }
        let run = &uops.runs[ri as usize];
        for lp in &self.core.hwloop {
            if lp.count > 0 && lp.end > run.start_addr && lp.end <= run.end_addr {
                return Ok(false);
            }
        }
        if run.cycles > max_cycles.saturating_sub(self.core.cycle) {
            return Ok(false);
        }

        let slice = &uops.uops[run.start_idx as usize..(run.start_idx + run.len) as usize];
        let (_, fault) = self.exec_bulk(slice, 1);

        match fault {
            None => {
                self.core.cycle += run.cycles;
                self.bulk_instrs += u64::from(run.len);
                for &(id, instrs, cycles, macs) in &run.retire_rows {
                    self.stats.record_many(id, instrs, cycles, macs);
                }
                for &(id, n) in &run.stall_rows {
                    self.stats.attribute_stalls(id, n);
                }
                let last = slice[slice.len() - 1];
                self.pending_load =
                    (last.load_rd != 0).then(|| (Reg::from_bits(u32::from(last.load_rd)), last.id));
                self.core.pc = run.end_addr;
                *idx = run.start_idx + run.len;
                Ok(true)
            }
            Some((k, e)) => {
                // Retire ops 0..k individually (their register/memory
                // effects are already applied) and charge the faulting
                // op's entry stall, leaving the PC on the faulting op —
                // exactly the state the generic path faults with. (The
                // *run* entry stall was charged by the caller.)
                for (j, u) in slice.iter().take(k).enumerate() {
                    if let Some(id) = run.stall_in[j] {
                        self.stats.attribute_stall(id);
                        self.core.cycle += 1;
                    }
                    self.stats
                        .record(u.id, u64::from(u.base_cycles), u32::from(u.mac_ops));
                    self.core.cycle += u64::from(u.base_cycles);
                }
                if let Some(id) = run.stall_in[k] {
                    self.stats.attribute_stall(id);
                    self.core.cycle += 1;
                }
                self.pending_load = None;
                self.core.pc = slice[k].addr;
                Err(e)
            }
        }
    }

    /// Executes `iters` passes over `slice` — data semantics and
    /// `instret` retirement only, no cycle or statistics accounting.
    ///
    /// The SPR write pipeline lives in host locals for the whole pass:
    /// the `issued + 2 <= instret` visibility rule bounds the in-flight
    /// set to two writes, so a two-slot array replaces the shared
    /// `spr_pending` deque and `pl.sdotsp` — the dominant op in the O3
    /// kernels — executes without any deque traffic or `drain_spr`
    /// calls. Writes land at exactly the same retirement points as on
    /// the generic path, and the deque is reconstructed verbatim (same
    /// `instret` keys) on exit, so machine state stays bit-identical.
    ///
    /// Returns the number of completed passes and, for a partial pass,
    /// the faulting op's slice index with the error. The faulting op
    /// does not retire; earlier ops of the partial pass do.
    fn exec_bulk(&mut self, slice: &[Uop], iters: u64) -> (u64, Option<(usize, SimError)>) {
        let mut spr = self.core.spr;
        let mut instret = self.core.instret;
        // In-flight SPR writes, oldest first. Every path drains before
        // executing an op, so at most the two most recent retirements
        // can still have a write pending.
        assert!(self.spr_pending.len() <= 2);
        let mut q = [(0u64, 0usize, 0u32); 2];
        let mut qn = 0usize;
        while let Some(e) = self.spr_pending.pop_front() {
            q[qn] = e;
            qn += 1;
        }

        let mut done = 0u64;
        let mut fault: Option<(usize, SimError)> = None;
        'passes: for _ in 0..iters {
            for (k, u) in slice.iter().enumerate() {
                // Writes issued two or more retirements ago land now —
                // the same drain point as `uop_step` / `step`.
                while qn > 0 && q[0].0 + 2 <= instret {
                    spr[q[0].1] = q[0].2;
                    q[0] = q[1];
                    qn -= 1;
                }
                if let UopKind::PlSdotsp {
                    spr: s,
                    size,
                    rd,
                    rs1,
                    rs2,
                } = u.kind
                {
                    // `spr` was masked to 0/1 at translation; re-masking
                    // here lets the compiler drop the bounds checks.
                    let sl = usize::from(s & 1);
                    let w = spr[sl];
                    let x = self.core.reg(rs2);
                    // Specialized signed×signed dot: lane products fit in
                    // i32, and wrapping i32 sums equal the generic i64
                    // accumulation truncated to 32 bits.
                    let dot = match size {
                        SimdSize::Half => {
                            let p0 = (w as i16 as i32) * (x as i16 as i32);
                            let p1 = ((w >> 16) as i16 as i32) * ((x >> 16) as i16 as i32);
                            p0.wrapping_add(p1) as u32
                        }
                        SimdSize::Byte => {
                            let mut sum = 0i32;
                            for sh in [0u32, 8, 16, 24] {
                                sum += ((w >> sh) as i8 as i32) * ((x >> sh) as i8 as i32);
                            }
                            sum as u32
                        }
                    };
                    debug_assert_eq!(dot, exec_dot(DotOp::SdotSp, size, w, x));
                    let acc = self.core.reg(rd).wrapping_add(dot);
                    let addr = self.core.reg(rs1);
                    match self.mem.read_u32(addr) {
                        Ok(value) => {
                            // After aging, at most the previous op's
                            // write is still in flight, so qn <= 1.
                            debug_assert!(qn < 2);
                            q[qn & 1] = (instret, sl, value);
                            qn += 1;
                            self.core.set_reg(rd, acc);
                            self.core.set_reg(rs1, addr.wrapping_add(4));
                        }
                        Err(e) => {
                            fault = Some((k, e));
                            break 'passes;
                        }
                    }
                } else {
                    // Only `pl.sdotsp` reads or writes the SPR state and
                    // only the (body-ineligible) CSR reads observe
                    // `instret`, so the locals can stay stale across
                    // this call.
                    match self.exec_uop(u) {
                        Ok(flow) => debug_assert!(matches!(flow, Flow::Fall)),
                        Err(e) => {
                            fault = Some((k, e));
                            break 'passes;
                        }
                    }
                }
                instret += 1;
            }
            done += 1;
        }

        self.core.spr = spr;
        self.core.instret = instret;
        for &e in q.iter().take(qn) {
            self.spr_pending.push_back(e);
        }
        (done, fault)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Fetch faults, memory faults, or hardware-loop misconfiguration.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        if let Some(reason) = self.halted {
            return Ok(StepOutcome::Halted(reason));
        }

        // Due faults strike at the instruction boundary, before anything
        // of this step executes — the same point `run`'s fault-mode loop
        // applies them for the micro-op path.
        if !self.armed_faults.is_empty() {
            self.apply_due_faults();
        }

        // SPR writes issued two or more instructions ago become visible.
        // The deque is empty except inside `pl.sdotsp` streams, so guard
        // the drain with the cheap length check.
        if !self.spr_pending.is_empty() {
            self.drain_spr();
        }

        let pc = self.core.pc;
        if !self.corrupted_pcs.is_empty() && self.corrupted_pcs.contains(&pc) {
            return Err(SimError::FetchFault { pc });
        }
        let item = *self.program.fetch(pc).ok_or(SimError::FetchFault { pc })?;
        let instr = item.instr;
        let size = item.size as u32;

        // Load-use stall: one bubble, charged to the producing load.
        if let Some((reg, id)) = self.pending_load.take() {
            if instr.uses().contains(reg) {
                self.stats.attribute_stall(id);
                self.core.cycle += 1;
            }
        }

        let mut next_pc = pc.wrapping_add(size);
        let mut extra_cycles: u64 = 0;
        let mut redirected = false;
        let mut halted = None;

        macro_rules! take_branch {
            ($target:expr) => {{
                next_pc = $target;
                extra_cycles += 1;
                redirected = true;
            }};
        }

        match instr {
            Instr::Lui { rd, imm20 } => {
                self.core.set_reg(rd, (imm20 as u32) << 12);
            }
            Instr::Auipc { rd, imm20 } => {
                self.core.set_reg(rd, pc.wrapping_add((imm20 as u32) << 12));
            }
            Instr::Jal { rd, offset } => {
                self.core.set_reg(rd, pc.wrapping_add(size));
                take_branch!(pc.wrapping_add(offset as u32));
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.core.reg(rs1).wrapping_add(offset as u32) & !1;
                self.core.set_reg(rd, pc.wrapping_add(size));
                take_branch!(target);
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i32) < (b as i32),
                    BranchOp::Bge => (a as i32) >= (b as i32),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    take_branch!(pc.wrapping_add(offset as u32));
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1).wrapping_add(offset as u32);
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rd, value);
                if !rd.is_zero() {
                    self.pending_load = Some((rd, instr.mnemonic_id()));
                }
            }
            Instr::LoadPostInc {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1);
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rs1, addr.wrapping_add(offset as u32));
                self.core.set_reg(rd, value);
                if !rd.is_zero() {
                    self.pending_load = Some((rd, instr.mnemonic_id()));
                }
            }
            Instr::LoadReg { op, rd, rs1, rs2 } => {
                let addr = self.core.reg(rs1).wrapping_add(self.core.reg(rs2));
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rd, value);
                if !rd.is_zero() {
                    self.pending_load = Some((rd, instr.mnemonic_id()));
                }
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1).wrapping_add(offset as u32);
                self.store_value(op, addr, self.core.reg(rs2))?;
            }
            Instr::StorePostInc {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1);
                self.store_value(op, addr, self.core.reg(rs2))?;
                self.core.set_reg(rs1, addr.wrapping_add(offset as u32));
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.core.reg(rs1);
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => ((a as i32) < imm) as u32,
                    AluImmOp::Sltiu => (a < imm as u32) as u32,
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a << (imm & 0x1F),
                    AluImmOp::Srli => a >> (imm & 0x1F),
                    AluImmOp::Srai => ((a as i32) >> (imm & 0x1F)) as u32,
                };
                self.core.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 0x1F),
                    AluOp::Slt => ((a as i32) < (b as i32)) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 0x1F),
                    AluOp::Sra => ((a as i32) >> (b & 0x1F)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.core.set_reg(rd, v);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let v = match op {
                    MulDivOp::Mul => a.wrapping_mul(b),
                    MulDivOp::Mulh => {
                        extra_cycles += MULH_EXTRA_CYCLES;
                        ((a as i32 as i64 * b as i32 as i64) >> 32) as u32
                    }
                    MulDivOp::Mulhsu => {
                        extra_cycles += MULH_EXTRA_CYCLES;
                        ((a as i32 as i64 * b as u64 as i64) >> 32) as u32
                    }
                    MulDivOp::Mulhu => {
                        extra_cycles += MULH_EXTRA_CYCLES;
                        ((a as u64 * b as u64) >> 32) as u32
                    }
                    MulDivOp::Div => {
                        extra_cycles += DIV_EXTRA_CYCLES;
                        match (a as i32, b as i32) {
                            (_, 0) => u32::MAX,
                            (i32::MIN, -1) => i32::MIN as u32,
                            (x, y) => x.wrapping_div(y) as u32,
                        }
                    }
                    MulDivOp::Divu => {
                        extra_cycles += DIV_EXTRA_CYCLES;
                        // RISC-V defines x/0 = all-ones (no trap).
                        a.checked_div(b).unwrap_or(u32::MAX)
                    }
                    MulDivOp::Rem => {
                        extra_cycles += DIV_EXTRA_CYCLES;
                        match (a as i32, b as i32) {
                            (x, 0) => x as u32,
                            (i32::MIN, -1) => 0,
                            (x, y) => x.wrapping_rem(y) as u32,
                        }
                    }
                    MulDivOp::Remu => {
                        extra_cycles += DIV_EXTRA_CYCLES;
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.core.set_reg(rd, v);
            }
            Instr::Fence => {}
            Instr::Ecall => halted = Some(ExitReason::Ecall),
            Instr::Ebreak => halted = Some(ExitReason::Ebreak),
            Instr::Csr { op, rd, rs1, csr } => {
                let old = self.read_csr(csr);
                // Counter CSRs are read-only in this model; writes are
                // accepted and discarded.
                let _ = (op, rs1);
                self.core.set_reg(rd, old);
                if matches!(op, CsrOp::Csrrw | CsrOp::Csrrs | CsrOp::Csrrc) {
                    // No writable CSR state is modelled.
                }
            }
            Instr::LpStarti { l, uimm } => {
                self.core.hwloop[l.index()].start = pc.wrapping_add(2 * uimm);
            }
            Instr::LpEndi { l, uimm } => {
                self.core.hwloop[l.index()].end = pc.wrapping_add(2 * uimm);
            }
            Instr::LpCount { l, rs1 } => {
                self.core.hwloop[l.index()].count = self.core.reg(rs1);
            }
            Instr::LpCounti { l, uimm } => {
                self.core.hwloop[l.index()].count = uimm;
            }
            Instr::LpSetup { l, rs1, uimm } => {
                let count = self.core.reg(rs1);
                let lp = &mut self.core.hwloop[l.index()];
                lp.start = pc.wrapping_add(4);
                lp.end = pc.wrapping_add(2 * uimm);
                lp.count = count;
                if lp.count > 0 && lp.start >= lp.end {
                    return Err(SimError::BadHwLoop { level: l.index() });
                }
            }
            Instr::LpSetupi { l, count, uimm } => {
                let lp = &mut self.core.hwloop[l.index()];
                lp.start = pc.wrapping_add(4);
                lp.end = pc.wrapping_add(2 * uimm);
                lp.count = count;
                if lp.count > 0 && lp.start >= lp.end {
                    return Err(SimError::BadHwLoop { level: l.index() });
                }
            }
            Instr::Mac { rd, rs1, rs2 } => {
                let v = self.core.reg(rd).wrapping_add(
                    (self.core.reg_i32(rs1).wrapping_mul(self.core.reg_i32(rs2))) as u32,
                );
                self.core.set_reg(rd, v);
            }
            Instr::Msu { rd, rs1, rs2 } => {
                let v = self.core.reg(rd).wrapping_sub(
                    (self.core.reg_i32(rs1).wrapping_mul(self.core.reg_i32(rs2))) as u32,
                );
                self.core.set_reg(rd, v);
            }
            Instr::Clip { rd, rs1, bits } => {
                let b = bits.clamp(1, 32) as u32;
                let (lo, hi) = if b == 32 {
                    (i32::MIN as i64, i32::MAX as i64)
                } else {
                    (-(1i64 << (b - 1)), (1i64 << (b - 1)) - 1)
                };
                let v = (self.core.reg_i32(rs1) as i64).clamp(lo, hi);
                self.core.set_reg(rd, v as i32 as u32);
            }
            Instr::ClipU { rd, rs1, bits } => {
                let b = bits.clamp(1, 32) as u32;
                let hi = if b == 32 {
                    i32::MAX as i64
                } else {
                    (1i64 << (b - 1)) - 1
                };
                let v = (self.core.reg_i32(rs1) as i64).clamp(0, hi);
                self.core.set_reg(rd, v as i32 as u32);
            }
            Instr::ExtHs { rd, rs1 } => {
                self.core
                    .set_reg(rd, self.core.reg(rs1) as u16 as i16 as i32 as u32);
            }
            Instr::ExtHz { rd, rs1 } => {
                self.core.set_reg(rd, self.core.reg(rs1) & 0xFFFF);
            }
            Instr::ExtBs { rd, rs1 } => {
                self.core
                    .set_reg(rd, self.core.reg(rs1) as u8 as i8 as i32 as u32);
            }
            Instr::ExtBz { rd, rs1 } => {
                self.core.set_reg(rd, self.core.reg(rs1) & 0xFF);
            }
            Instr::PAbs { rd, rs1 } => {
                self.core
                    .set_reg(rd, self.core.reg_i32(rs1).wrapping_abs() as u32);
            }
            Instr::PMin { rd, rs1, rs2 } => {
                self.core.set_reg(
                    rd,
                    self.core.reg_i32(rs1).min(self.core.reg_i32(rs2)) as u32,
                );
            }
            Instr::Ff1 { rd, rs1 } => {
                let v = self.core.reg(rs1);
                self.core
                    .set_reg(rd, if v == 0 { 32 } else { v.trailing_zeros() });
            }
            Instr::Fl1 { rd, rs1 } => {
                let v = self.core.reg(rs1);
                self.core
                    .set_reg(rd, if v == 0 { 32 } else { 31 - v.leading_zeros() });
            }
            Instr::Cnt { rd, rs1 } => {
                self.core.set_reg(rd, self.core.reg(rs1).count_ones());
            }
            Instr::Clb { rd, rs1 } => {
                let v = self.core.reg(rs1);
                // Count of leading bits equal to the sign bit, minus one
                // (redundant sign bits); zero input yields 0 per RI5CY.
                let r = if v == 0 {
                    0
                } else if (v as i32) < 0 {
                    (!v).leading_zeros() - 1
                } else {
                    v.leading_zeros() - 1
                };
                self.core.set_reg(rd, r);
            }
            Instr::Ror { rd, rs1, rs2 } => {
                let amount = self.core.reg(rs2) & 31;
                self.core
                    .set_reg(rd, self.core.reg(rs1).rotate_right(amount));
            }
            Instr::PMax { rd, rs1, rs2 } => {
                self.core.set_reg(
                    rd,
                    self.core.reg_i32(rs1).max(self.core.reg_i32(rs2)) as u32,
                );
            }
            Instr::PvAlu {
                op,
                size,
                mode,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.core.reg(rs1);
                let b = self.simd_operand(size, mode, rs2);
                let v = exec_pv_alu(op, size, a, b);
                self.core.set_reg(rd, v);
            }
            Instr::PvDot {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let dot = exec_dot(op, size, a, b);
                let v = if op.accumulates() {
                    self.core.reg(rd).wrapping_add(dot)
                } else {
                    dot
                };
                self.core.set_reg(rd, v);
            }
            Instr::PlSdotsp {
                spr,
                size,
                rd,
                rs1,
                rs2,
            } => {
                // MAC with the weight currently in SPR[spr]...
                let w = self.core.spr[spr as usize & 1];
                let x = self.core.reg(rs2);
                let dot = exec_dot(DotOp::SdotSp, size, w, x);
                let acc = self.core.reg(rd).wrapping_add(dot);
                // ...while the LSU fetches the next weight into the same
                // SPR (visible two instructions later) and post-increments
                // the stream pointer.
                let addr = self.core.reg(rs1);
                let value = self.mem.read_u32(addr)?;
                self.spr_pending
                    .push_back((self.core.instret, spr as usize & 1, value));
                self.core.set_reg(rd, acc);
                self.core.set_reg(rs1, addr.wrapping_add(4));
            }
            Instr::PlTanh { rd, rs1 } => {
                let x = rnnasip_fixed::Q3p12::from_raw(self.core.reg(rs1) as u16 as i16);
                self.core
                    .set_reg(rd, rnnasip_fixed::hw_tanh(x).raw() as i32 as u32);
            }
            Instr::PlSig { rd, rs1 } => {
                let x = rnnasip_fixed::Q3p12::from_raw(self.core.reg(rs1) as u16 as i16);
                self.core
                    .set_reg(rd, rnnasip_fixed::hw_sig(x).raw() as i32 as u32);
            }
        }

        // Hardware loops: zero-cycle jump-back when the fall-through PC
        // reaches an armed loop's end. Inner loop (level 0) has priority.
        if !redirected && halted.is_none() {
            for level in 0..2 {
                let lp = &mut self.core.hwloop[level];
                if lp.count > 0 && next_pc == lp.end {
                    if lp.count > 1 {
                        lp.count -= 1;
                        next_pc = lp.start;
                        break;
                    }
                    // Inner loop expired: fall through so an outer loop
                    // sharing the same end address gets its jump-back.
                    lp.count = 0;
                }
            }
        }

        let cycles = 1 + extra_cycles;
        self.stats
            .record(instr.mnemonic_id(), cycles, instr.mac_ops());
        self.core.cycle += cycles;
        self.core.instret += 1;
        self.core.pc = next_pc;

        if let Some(reason) = halted {
            self.halted = Some(reason);
            return Ok(StepOutcome::Halted(reason));
        }
        Ok(StepOutcome::Continue)
    }

    /// Makes SPR writes issued two or more instructions ago visible.
    /// Visibility is keyed on `instret`, so the micro-op bulk runner —
    /// which defers *cycle* accounting but retires `instret` per op —
    /// drains at exactly the same points as the per-step path.
    #[inline]
    fn drain_spr(&mut self) {
        while let Some(&(issued, idx, value)) = self.spr_pending.front() {
            if issued + 2 <= self.core.instret {
                self.core.spr[idx] = value;
                self.spr_pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Executes a micro-op's data semantics: register/memory/SPR effects
    /// only. Timing, statistics, PC update, hardware-loop jump-back and
    /// the pending-load hand-off are the caller's responsibility, which
    /// is what lets the loop-body runner share this with `uop_step` while
    /// accounting time in bulk.
    fn exec_uop(&mut self, u: &Uop) -> Result<Flow, SimError> {
        match u.kind {
            UopKind::SetReg { rd, val } => self.core.set_reg(rd, val),
            UopKind::Jal { rd, target } => {
                self.core.set_reg(rd, u.next_addr);
                return Ok(Flow::Jump(target));
            }
            UopKind::Jalr { rd, rs1, offset } => {
                let addr = self.core.reg(rs1).wrapping_add(offset) & !1;
                self.core.set_reg(rd, u.next_addr);
                return Ok(Flow::Jump(Target {
                    addr,
                    idx: self.program.index_of(addr).map_or(NO_IDX, |i| i as u32),
                }));
            }
            UopKind::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i32) < (b as i32),
                    BranchOp::Bge => (a as i32) >= (b as i32),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    return Ok(Flow::Jump(target));
                }
            }
            UopKind::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1).wrapping_add(offset);
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rd, value);
            }
            UopKind::LoadPostInc {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1);
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rs1, addr.wrapping_add(offset));
                self.core.set_reg(rd, value);
            }
            UopKind::LoadReg { op, rd, rs1, rs2 } => {
                let addr = self.core.reg(rs1).wrapping_add(self.core.reg(rs2));
                let value = self.load_value(op, addr)?;
                self.core.set_reg(rd, value);
            }
            UopKind::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1).wrapping_add(offset);
                self.store_value(op, addr, self.core.reg(rs2))?;
            }
            UopKind::StorePostInc {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.core.reg(rs1);
                self.store_value(op, addr, self.core.reg(rs2))?;
                self.core.set_reg(rs1, addr.wrapping_add(offset));
            }
            UopKind::OpImm { op, rd, rs1, imm } => {
                let a = self.core.reg(rs1);
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => ((a as i32) < imm) as u32,
                    AluImmOp::Sltiu => (a < imm as u32) as u32,
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a << (imm & 0x1F),
                    AluImmOp::Srli => a >> (imm & 0x1F),
                    AluImmOp::Srai => ((a as i32) >> (imm & 0x1F)) as u32,
                };
                self.core.set_reg(rd, v);
            }
            UopKind::Op { op, rd, rs1, rs2 } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 0x1F),
                    AluOp::Slt => ((a as i32) < (b as i32)) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 0x1F),
                    AluOp::Sra => ((a as i32) >> (b & 0x1F)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.core.set_reg(rd, v);
            }
            UopKind::MulDiv { op, rd, rs1, rs2 } => {
                // Value semantics only: the mulh/div extra latency is
                // folded into the op's static `base_cycles`.
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let v = match op {
                    MulDivOp::Mul => a.wrapping_mul(b),
                    MulDivOp::Mulh => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
                    MulDivOp::Mulhsu => ((a as i32 as i64 * b as u64 as i64) >> 32) as u32,
                    MulDivOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
                    MulDivOp::Div => match (a as i32, b as i32) {
                        (_, 0) => u32::MAX,
                        (i32::MIN, -1) => i32::MIN as u32,
                        (x, y) => x.wrapping_div(y) as u32,
                    },
                    MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                    MulDivOp::Rem => match (a as i32, b as i32) {
                        (x, 0) => x as u32,
                        (i32::MIN, -1) => 0,
                        (x, y) => x.wrapping_rem(y) as u32,
                    },
                    MulDivOp::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.core.set_reg(rd, v);
            }
            UopKind::Nop => {}
            UopKind::Halt(reason) => return Ok(Flow::Halt(reason)),
            UopKind::CsrRead { rd, csr } => {
                let v = self.read_csr(csr);
                self.core.set_reg(rd, v);
            }
            UopKind::LpSetAddr { l, is_end, addr } => {
                let lp = &mut self.core.hwloop[l as usize];
                if is_end {
                    lp.end = addr;
                } else {
                    lp.start = addr;
                }
            }
            UopKind::LpCount { l, rs1 } => {
                self.core.hwloop[l as usize].count = self.core.reg(rs1);
            }
            UopKind::LpCounti { l, count } => {
                self.core.hwloop[l as usize].count = count;
            }
            UopKind::LpSetup { l, rs1, start, end } => {
                let count = self.core.reg(rs1);
                let lp = &mut self.core.hwloop[l as usize];
                lp.start = start;
                lp.end = end;
                lp.count = count;
                if lp.count > 0 && lp.start >= lp.end {
                    return Err(SimError::BadHwLoop { level: l as usize });
                }
            }
            UopKind::LpSetupi {
                l,
                count,
                start,
                end,
            } => {
                let lp = &mut self.core.hwloop[l as usize];
                lp.start = start;
                lp.end = end;
                lp.count = count;
                if lp.count > 0 && lp.start >= lp.end {
                    return Err(SimError::BadHwLoop { level: l as usize });
                }
            }
            UopKind::Mac { rd, rs1, rs2 } => {
                let v = self.core.reg(rd).wrapping_add(
                    (self.core.reg_i32(rs1).wrapping_mul(self.core.reg_i32(rs2))) as u32,
                );
                self.core.set_reg(rd, v);
            }
            UopKind::Msu { rd, rs1, rs2 } => {
                let v = self.core.reg(rd).wrapping_sub(
                    (self.core.reg_i32(rs1).wrapping_mul(self.core.reg_i32(rs2))) as u32,
                );
                self.core.set_reg(rd, v);
            }
            UopKind::Clip { rd, rs1, lo, hi } => {
                let v = self.core.reg_i32(rs1).clamp(lo, hi);
                self.core.set_reg(rd, v as u32);
            }
            UopKind::ClipU { rd, rs1, hi } => {
                let v = self.core.reg_i32(rs1).clamp(0, hi);
                self.core.set_reg(rd, v as u32);
            }
            UopKind::Unary { op, rd, rs1 } => {
                let a = self.core.reg(rs1);
                let v = match op {
                    UnaryOp::ExtHs => a as u16 as i16 as i32 as u32,
                    UnaryOp::ExtHz => a & 0xFFFF,
                    UnaryOp::ExtBs => a as u8 as i8 as i32 as u32,
                    UnaryOp::ExtBz => a & 0xFF,
                    UnaryOp::Abs => (a as i32).wrapping_abs() as u32,
                    UnaryOp::Ff1 => {
                        if a == 0 {
                            32
                        } else {
                            a.trailing_zeros()
                        }
                    }
                    UnaryOp::Fl1 => {
                        if a == 0 {
                            32
                        } else {
                            31 - a.leading_zeros()
                        }
                    }
                    UnaryOp::Cnt => a.count_ones(),
                    UnaryOp::Clb => {
                        // Count of leading bits equal to the sign bit,
                        // minus one; zero input yields 0 per RI5CY.
                        if a == 0 {
                            0
                        } else if (a as i32) < 0 {
                            (!a).leading_zeros() - 1
                        } else {
                            a.leading_zeros() - 1
                        }
                    }
                    UnaryOp::Tanh => {
                        let x = rnnasip_fixed::Q3p12::from_raw(a as u16 as i16);
                        rnnasip_fixed::hw_tanh(x).raw() as i32 as u32
                    }
                    UnaryOp::Sig => {
                        let x = rnnasip_fixed::Q3p12::from_raw(a as u16 as i16);
                        rnnasip_fixed::hw_sig(x).raw() as i32 as u32
                    }
                };
                self.core.set_reg(rd, v);
            }
            UopKind::PMin { rd, rs1, rs2 } => {
                self.core.set_reg(
                    rd,
                    self.core.reg_i32(rs1).min(self.core.reg_i32(rs2)) as u32,
                );
            }
            UopKind::PMax { rd, rs1, rs2 } => {
                self.core.set_reg(
                    rd,
                    self.core.reg_i32(rs1).max(self.core.reg_i32(rs2)) as u32,
                );
            }
            UopKind::Ror { rd, rs1, rs2 } => {
                let amount = self.core.reg(rs2) & 31;
                self.core
                    .set_reg(rd, self.core.reg(rs1).rotate_right(amount));
            }
            UopKind::PvAluVv {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                self.core.set_reg(rd, exec_pv_alu(op, size, a, b));
            }
            UopKind::PvAluSc {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.core.reg(rs1);
                let b = self.simd_operand(size, SimdMode::Sc, rs2);
                self.core.set_reg(rd, exec_pv_alu(op, size, a, b));
            }
            UopKind::PvAluImm {
                op,
                size,
                rd,
                rs1,
                b,
            } => {
                let a = self.core.reg(rs1);
                self.core.set_reg(rd, exec_pv_alu(op, size, a, b));
            }
            UopKind::PvDot {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let a = self.core.reg(rs1);
                let b = self.core.reg(rs2);
                let dot = exec_dot(op, size, a, b);
                let v = if op.accumulates() {
                    self.core.reg(rd).wrapping_add(dot)
                } else {
                    dot
                };
                self.core.set_reg(rd, v);
            }
            UopKind::PlSdotsp {
                spr,
                size,
                rd,
                rs1,
                rs2,
            } => {
                // MAC with the weight currently in SPR[spr], while the
                // LSU fetches the next weight into the same SPR (visible
                // two instructions later) and post-increments the stream
                // pointer. `spr` was masked to 0/1 at translation.
                let w = self.core.spr[spr as usize];
                let x = self.core.reg(rs2);
                let dot = exec_dot(DotOp::SdotSp, size, w, x);
                let acc = self.core.reg(rd).wrapping_add(dot);
                let addr = self.core.reg(rs1);
                let value = self.mem.read_u32(addr)?;
                self.spr_pending
                    .push_back((self.core.instret, spr as usize, value));
                self.core.set_reg(rd, acc);
                self.core.set_reg(rs1, addr.wrapping_add(4));
            }
        }
        Ok(Flow::Fall)
    }

    fn load_value(&mut self, op: LoadOp, addr: u32) -> Result<u32, SimError> {
        Ok(match op {
            LoadOp::Lb => self.mem.read_u8(addr)? as i8 as i32 as u32,
            LoadOp::Lbu => self.mem.read_u8(addr)? as u32,
            LoadOp::Lh => self.mem.read_u16(addr)? as i16 as i32 as u32,
            LoadOp::Lhu => self.mem.read_u16(addr)? as u32,
            LoadOp::Lw => self.mem.read_u32(addr)?,
        })
    }

    fn store_value(&mut self, op: StoreOp, addr: u32, value: u32) -> Result<(), SimError> {
        match op {
            StoreOp::Sb => self.mem.write_u8(addr, value as u8),
            StoreOp::Sh => self.mem.write_u16(addr, value as u16),
            StoreOp::Sw => self.mem.write_u32(addr, value),
        }
    }

    /// Second SIMD operand after mode resolution (vector / replicated
    /// scalar / replicated immediate).
    fn simd_operand(&self, size: SimdSize, mode: SimdMode, rs2: Reg) -> u32 {
        match mode {
            SimdMode::Vv => self.core.reg(rs2),
            SimdMode::Sc => {
                let r = self.core.reg(rs2);
                match size {
                    SimdSize::Half => {
                        let h = r & 0xFFFF;
                        h | (h << 16)
                    }
                    SimdSize::Byte => {
                        let b = r & 0xFF;
                        b | (b << 8) | (b << 16) | (b << 24)
                    }
                }
            }
            SimdMode::Sci(imm) => match size {
                SimdSize::Half => {
                    let h = imm as i16 as u16 as u32;
                    h | (h << 16)
                }
                SimdSize::Byte => {
                    let b = imm as u8 as u32;
                    b | (b << 8) | (b << 16) | (b << 24)
                }
            },
        }
    }

    fn read_csr(&self, csr: Csr) -> u32 {
        match csr {
            Csr::Mcycle => self.core.cycle as u32,
            Csr::Mcycleh => (self.core.cycle >> 32) as u32,
            Csr::Minstret => self.core.instret as u32,
            Csr::Minstreth => (self.core.instret >> 32) as u32,
            Csr::LpStart0 => self.core.hwloop[0].start,
            Csr::LpEnd0 => self.core.hwloop[0].end,
            Csr::LpCount0 => self.core.hwloop[0].count,
            Csr::LpStart1 => self.core.hwloop[1].start,
            Csr::LpEnd1 => self.core.hwloop[1].end,
            Csr::LpCount1 => self.core.hwloop[1].count,
            Csr::Other(_) => 0,
        }
    }
}

/// Lane-wise SIMD ALU semantics on packed registers.
pub(crate) fn exec_pv_alu(op: PvAluOp, size: SimdSize, a: u32, b: u32) -> u32 {
    match size {
        SimdSize::Half => {
            let la = [(a & 0xFFFF) as u16 as i16, (a >> 16) as u16 as i16];
            let lb = [(b & 0xFFFF) as u16 as i16, (b >> 16) as u16 as i16];
            let mut out = [0i16; 2];
            for i in 0..2 {
                out[i] = pv_lane_op_h(op, la[i], lb[i]);
            }
            (out[0] as u16 as u32) | ((out[1] as u16 as u32) << 16)
        }
        SimdSize::Byte => {
            let la = a.to_le_bytes().map(|x| x as i8);
            let lb = b.to_le_bytes().map(|x| x as i8);
            let mut out = [0u8; 4];
            for i in 0..4 {
                out[i] = pv_lane_op_b(op, la[i], lb[i]) as u8;
            }
            u32::from_le_bytes(out)
        }
    }
}

fn pv_lane_op_h(op: PvAluOp, a: i16, b: i16) -> i16 {
    match op {
        PvAluOp::Add => a.wrapping_add(b),
        PvAluOp::Sub => a.wrapping_sub(b),
        PvAluOp::Avg => ((a as i32 + b as i32) >> 1) as i16,
        PvAluOp::Min => a.min(b),
        PvAluOp::Max => a.max(b),
        PvAluOp::Srl => ((a as u16) >> (b as u16 & 0xF)) as i16,
        PvAluOp::Sra => a >> (b as u16 & 0xF),
        PvAluOp::Sll => ((a as u16) << (b as u16 & 0xF)) as i16,
        PvAluOp::Or => a | b,
        PvAluOp::Xor => a ^ b,
        PvAluOp::And => a & b,
        PvAluOp::Abs => a.wrapping_abs(),
    }
}

fn pv_lane_op_b(op: PvAluOp, a: i8, b: i8) -> i8 {
    match op {
        PvAluOp::Add => a.wrapping_add(b),
        PvAluOp::Sub => a.wrapping_sub(b),
        PvAluOp::Avg => ((a as i32 + b as i32) >> 1) as i8,
        PvAluOp::Min => a.min(b),
        PvAluOp::Max => a.max(b),
        PvAluOp::Srl => ((a as u8) >> (b as u8 & 0x7)) as i8,
        PvAluOp::Sra => a >> (b as u8 & 0x7),
        PvAluOp::Sll => ((a as u8) << (b as u8 & 0x7)) as i8,
        PvAluOp::Or => a | b,
        PvAluOp::Xor => a ^ b,
        PvAluOp::And => a & b,
        PvAluOp::Abs => a.wrapping_abs(),
    }
}

/// Dot-product semantics: the *fresh* dot value, before any accumulation.
pub(crate) fn exec_dot(op: DotOp, size: SimdSize, a: u32, b: u32) -> u32 {
    let (sign_a, sign_b) = match op {
        DotOp::DotUp | DotOp::SdotUp => (false, false),
        DotOp::DotUsp | DotOp::SdotUsp => (false, true),
        DotOp::DotSp | DotOp::SdotSp => (true, true),
    };
    let lane = |word: u32, idx: u32, signed: bool, half: bool| -> i64 {
        if half {
            let raw = ((word >> (16 * idx)) & 0xFFFF) as u16;
            if signed {
                raw as i16 as i64
            } else {
                raw as i64
            }
        } else {
            let raw = ((word >> (8 * idx)) & 0xFF) as u8;
            if signed {
                raw as i8 as i64
            } else {
                raw as i64
            }
        }
    };
    let lanes = match size {
        SimdSize::Half => 2,
        SimdSize::Byte => 4,
    };
    let half = matches!(size, SimdSize::Half);
    let mut sum: i64 = 0;
    for i in 0..lanes {
        sum += lane(a, i, sign_a, half) * lane(b, i, sign_b, half);
    }
    sum as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_isa::LoopIdx;

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    fn run_prog(instrs: Vec<Instr>) -> Machine {
        let prog = Program::from_instrs(0, instrs);
        let mut m = Machine::new(4096);
        m.load_program(&prog);
        m.run(100_000).expect("program must halt");
        m
    }

    #[test]
    fn arithmetic_and_halt() {
        let m = run_prog(vec![
            addi(Reg::A0, Reg::ZERO, 40),
            addi(Reg::A1, Reg::ZERO, 2),
            Instr::Op {
                op: AluOp::Add,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            Instr::Ecall,
        ]);
        assert_eq!(m.core().reg(Reg::A2), 42);
        // 4 instructions, all single-cycle.
        assert_eq!(m.stats().cycles(), 4);
        assert_eq!(m.stats().instrs(), 4);
    }

    #[test]
    fn taken_branch_costs_two_cycles() {
        // beq zero, zero, +8 skips one addi.
        let m = run_prog(vec![
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                offset: 8,
            },
            addi(Reg::A0, Reg::ZERO, 1), // skipped
            Instr::Ecall,
        ]);
        assert_eq!(m.core().reg(Reg::A0), 0);
        // branch (2) + ecall (1)
        assert_eq!(m.stats().cycles(), 3);
        assert_eq!(m.stats().instrs(), 2);
    }

    #[test]
    fn untaken_branch_costs_one_cycle() {
        let m = run_prog(vec![
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                offset: 8,
            },
            Instr::Ecall,
        ]);
        assert_eq!(m.stats().cycles(), 2);
    }

    #[test]
    fn load_use_stall_attributed_to_load() {
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A1, Reg::ZERO, 0x100),
                Instr::Load {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                addi(Reg::A0, Reg::A0, 1), // uses the loaded value: stall
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(4096);
        m.mem_mut().write_u32(0x100, 41).unwrap();
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(m.core().reg(Reg::A0), 42);
        // addi(1) + lw(1+1 stall) + addi(1) + ecall(1) = 5
        assert_eq!(m.stats().cycles(), 5);
        assert_eq!(m.stats().row("lw").cycles, 2);
        assert_eq!(m.stats().row("lw").instrs, 1);
        assert_eq!(m.stats().stall_cycles(), 1);
    }

    #[test]
    fn no_stall_with_intervening_instruction() {
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A1, Reg::ZERO, 0x100),
                Instr::Load {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                addi(Reg::A2, Reg::ZERO, 7), // independent
                addi(Reg::A0, Reg::A0, 1),
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(4096);
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(m.stats().stall_cycles(), 0);
    }

    #[test]
    fn hardware_loop_executes_count_times() {
        // lp.setup with count in a0; body: addi a1, a1, 1 (4 bytes).
        // uimm is in halfwords: end = pc + 2*uimm; body starts at pc+4 and
        // is one instruction, so end = pc + 8 -> uimm = 4.
        let m = run_prog(vec![
            addi(Reg::A0, Reg::ZERO, 10),
            Instr::LpSetup {
                l: LoopIdx::L0,
                rs1: Reg::A0,
                uimm: 4,
            },
            addi(Reg::A1, Reg::A1, 1),
            Instr::Ecall,
        ]);
        assert_eq!(m.core().reg(Reg::A1), 10);
        // addi + lp.setup + 10 * body + ecall = 13 cycles, no loop overhead.
        assert_eq!(m.stats().cycles(), 13);
        assert_eq!(m.stats().instrs(), 13);
    }

    #[test]
    fn nested_hardware_loops() {
        // Outer loop L1 runs 3 times, inner loop L0 runs 4 times per outer
        // iteration; body increments a2.
        let m = run_prog(vec![
            addi(Reg::A0, Reg::ZERO, 3),
            addi(Reg::A1, Reg::ZERO, 4),
            // lp.setup L1: body covers the inner lp.setup and the addi;
            // both loops share the same end address (the canonical
            // nesting pattern) and the inner level has priority.
            Instr::LpSetup {
                l: LoopIdx::L1,
                rs1: Reg::A0,
                uimm: 6,
            },
            Instr::LpSetup {
                l: LoopIdx::L0,
                rs1: Reg::A1,
                uimm: 4,
            },
            addi(Reg::A2, Reg::A2, 1),
            Instr::Ecall,
        ]);
        assert_eq!(m.core().reg(Reg::A2), 12);
    }

    #[test]
    fn pl_sdotsp_merged_load_and_compute() {
        // Weights at 0x200: pairs (1, 2) then (3, 4) in Q-raw units.
        // Inputs: packed (10, 20) and (30, 40).
        let mut m = Machine::new(4096);
        let w = 0x200u32;
        m.mem_mut().write_u16(w, 1).unwrap();
        m.mem_mut().write_u16(w + 2, 2).unwrap();
        m.mem_mut().write_u16(w + 4, 3).unwrap();
        m.mem_mut().write_u16(w + 6, 4).unwrap();
        let x0 = (10u32) | (20u32 << 16);
        let x1 = (30u32) | (40u32 << 16);
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A0, Reg::ZERO, 0x200), // weight pointer
                // Preload SPR0 (discard MAC: rd = x0, rs2 = x0).
                Instr::PlSdotsp {
                    spr: 0,
                    size: SimdSize::Half,
                    rd: Reg::ZERO,
                    rs1: Reg::A0,
                    rs2: Reg::ZERO,
                },
                // a1 = first input pair; a2 = second input pair.
                Instr::Lui {
                    rd: Reg::A1,
                    imm20: (x0 >> 12) as i32,
                },
                addi(Reg::A1, Reg::A1, (x0 & 0xFFF) as i32),
                Instr::Lui {
                    rd: Reg::A2,
                    imm20: (x1 >> 12) as i32,
                },
                addi(Reg::A2, Reg::A2, (x1 & 0xFFF) as i32),
                // acc += SPR0 . a1, reload SPR0 with next weights.
                Instr::PlSdotsp {
                    spr: 0,
                    size: SimdSize::Half,
                    rd: Reg::T0,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                },
                addi(Reg::ZERO, Reg::ZERO, 0), // spacer (SPR latency)
                // acc += SPR0 . a2 with the reloaded weights.
                Instr::PlSdotsp {
                    spr: 0,
                    size: SimdSize::Half,
                    rd: Reg::T0,
                    rs1: Reg::A0,
                    rs2: Reg::A2,
                },
                Instr::Ecall,
            ],
        );
        m.load_program(&prog);
        m.run(1000).unwrap();
        // 1*10 + 2*20 + 3*30 + 4*40 = 10 + 40 + 90 + 160 = 300
        assert_eq!(m.core().reg(Reg::T0), 300);
        // Weight pointer advanced by three loads of 4 bytes.
        assert_eq!(m.core().reg(Reg::A0), 0x200 + 12);
    }

    #[test]
    fn pl_tanh_matches_reference_unit() {
        let x = rnnasip_fixed::Q3p12::from_f64(0.75);
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A0, Reg::ZERO, x.raw() as i32),
                Instr::PlTanh {
                    rd: Reg::A1,
                    rs1: Reg::A0,
                },
                Instr::PlSig {
                    rd: Reg::A2,
                    rs1: Reg::A0,
                },
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(4096);
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(
            m.core().reg(Reg::A1) as u16 as i16,
            rnnasip_fixed::hw_tanh(x).raw()
        );
        assert_eq!(
            m.core().reg(Reg::A2) as u16 as i16,
            rnnasip_fixed::hw_sig(x).raw()
        );
    }

    #[test]
    fn sdotsp_simd_semantics() {
        // pv.sdotsp.h: acc += a0*b0 + a1*b1 with signed lanes.
        let a = ((-3i16 as u16 as u32) << 16) | (2i16 as u16 as u32);
        let b = ((5i16 as u16 as u32) << 16) | (7i16 as u16 as u32);
        let dot = exec_dot(DotOp::SdotSp, SimdSize::Half, a, b);
        assert_eq!(dot as i32, 2 * 7 + (-3) * 5);
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let prog = Program::from_instrs(
            0,
            vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: 0,
            }],
        );
        let mut m = Machine::new(64);
        m.load_program(&prog);
        assert!(matches!(
            m.run(100),
            Err(SimError::Watchdog { max_cycles: 100 })
        ));
    }

    #[test]
    fn fetch_fault_on_stray_pc() {
        let prog = Program::from_instrs(0, vec![addi(Reg::A0, Reg::ZERO, 1)]);
        let mut m = Machine::new(64);
        m.load_program(&prog);
        m.step().unwrap();
        // Next fetch is past the program end.
        assert!(matches!(m.step(), Err(SimError::FetchFault { pc: 4 })));
    }

    #[test]
    fn rewind_makes_reruns_bit_identical() {
        // lw a0, 0(a1); addi a0, a0, 1; sw a0, 0(a1); ecall — a program
        // whose output depends on its own previous run unless rewound.
        let prog = Program::from_instrs(
            0,
            vec![
                addi(Reg::A1, Reg::ZERO, 0x100),
                Instr::Load {
                    op: LoadOp::Lw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                addi(Reg::A0, Reg::A0, 1),
                Instr::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(4096);
        m.mem_mut().write_u32(0x100, 41).unwrap();
        let image = m.mem().image();
        m.mem_mut().load_image(&image);
        m.load_program(&prog);

        m.run(1000).unwrap();
        let first_cycles = m.stats().cycles();
        assert_eq!(m.core().reg(Reg::A0), 42);
        assert_eq!(m.mem().read_u32(0x100).unwrap(), 42);

        let restored = m.rewind(&image);
        assert!(restored > 0, "the store must have dirtied memory");
        assert_eq!(m.mem().read_u32(0x100).unwrap(), 41);
        m.run(1000).unwrap();
        assert_eq!(m.core().reg(Reg::A0), 42);
        assert_eq!(m.stats().cycles(), first_cycles);
    }

    #[test]
    fn mcycle_csr_reads_cycle_counter() {
        let m = run_prog(vec![
            addi(Reg::A0, Reg::ZERO, 1),
            addi(Reg::A0, Reg::ZERO, 1),
            Instr::Csr {
                op: CsrOp::Csrrs,
                rd: Reg::A1,
                rs1: Reg::ZERO,
                csr: Csr::Mcycle,
            },
            Instr::Ecall,
        ]);
        // Two addi retired before the CSR read.
        assert_eq!(m.core().reg(Reg::A1), 2);
    }
}
