//! Kernel-shortcut execution tier: native fast paths for compiled
//! matrix-vector kernel regions.
//!
//! The code generator in `rnnasip-core` knows exactly which pc ranges it
//! emitted as FC / LSTM-gate / CNN-pixel inner kernels, and publishes
//! them as [`KernelRegion`] descriptors (pc range plus the kernel's
//! address layout and math). At translation time
//! ([`UopProgram::translate_with_shortcuts`](crate::UopProgram::translate_with_shortcuts))
//! each descriptor is *verified* against the micro-op stream by an
//! abstract interpretation ([`install`]): the region is walked with
//! constant-folded control flow and symbolic data, proving that
//!
//! * every branch, hardware-loop count and memory address inside the
//!   region is a compile-time constant (given the values of the region's
//!   pointer cells),
//! * the region stores exactly `n_out` requantized halfwords at the
//!   descriptor's output addresses and nothing else, and
//! * the complete timing profile — base cycles, taken branches,
//!   load-use stalls, per-mnemonic retire rows — is static.
//!
//! A region that passes is installed as a [`ShortcutRegion`]: the machine
//! then executes one entry as a single native matrix-vector computation
//! over TCDM (`Memory`) plus one bulk state/statistics commit, retiring
//! thousands of micro-ops per entry. Regions that fail verification are
//! simply not installed — execution falls back to the micro-op path,
//! which is bit-identical by construction. The same holds per entry at
//! run time: armed faults, in-flight SPR writes, live hardware loops, a
//! short watchdog budget or unresolvable/overlapping pointer ranges all
//! make the machine decline the shortcut and interpret the region
//! instead.
//!
//! The bit-identity contract (outputs, cycle counts, per-mnemonic rows)
//! is enforced by the three-way shortcut/uop/legacy differential tests
//! in the bench crate.

use crate::mem::Memory;
use crate::program::Program;
use crate::uop::{UnaryOp, Uop, UopKind, NO_IDX};
use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, LoadOp, MnemonicId, MulDivOp, Reg, SimdSize, StoreOp,
};
use std::collections::HashMap;

/// Upper bound on the dynamic micro-ops walked while verifying one
/// region — a guard against pathological descriptors, far above any real
/// kernel (the largest suite kernels walk a few hundred thousand ops).
const WALK_OP_CAP: u64 = 8_000_000;

/// Upper bound on distinct contiguous load ranges tracked per region.
const MAX_RANGES: usize = 32;

/// Where a kernel pointer comes from at run time — the shortcut-layer
/// image of the compiler's pointer sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShortcutPtr {
    /// A compile-time constant byte address.
    Const(u32),
    /// Loaded from a 32-bit global cell at this constant address (an
    /// outer software loop advances the pointer between kernel entries).
    Cell(u32),
}

/// Activation applied after requantization, mirroring the generated
/// `srai 12` → `clip 16` → activation epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShortcutAct {
    /// No activation.
    None,
    /// Rectified linear (`max(v, 0)`).
    Relu,
    /// Hardware piecewise-linear tanh (`pl.tanh`).
    Tanh,
    /// Hardware piecewise-linear sigmoid (`pl.sig`).
    Sigmoid,
}

/// A compiler-declared kernel region: the pc range of one emitted
/// matrix-vector kernel (`out[j] = act((bias32[j] + W[j]·x) >> 12)` for
/// `j < n_out`) together with its operand layout.
///
/// Descriptors are *claims*, not trusted input: translation verifies
/// each one against the micro-op stream (see the [module docs](self))
/// and silently discards any that cannot be proven safe.
#[derive(Clone, Copy, Debug)]
pub struct KernelRegion {
    /// Address of the region's first instruction.
    pub start_addr: u32,
    /// Fall-through address after the region's last instruction.
    pub end_addr: u32,
    /// Row-major Q3.12 weight base (`n_out × n_in` halfwords).
    pub w_base: u32,
    /// Pre-shifted 32-bit bias seeds (`n_out` words).
    pub bias32: u32,
    /// Input vector source (`n_in` halfwords).
    pub x: ShortcutPtr,
    /// Output base source.
    pub out: ShortcutPtr,
    /// Bytes between consecutive outputs (even, nonzero).
    pub out_stride: u32,
    /// Input width in elements (even, nonzero).
    pub n_in: u32,
    /// Output count (nonzero).
    pub n_out: u32,
    /// Activation applied after requantization.
    pub act: ShortcutAct,
}

/// An abstract address: `cell` is `None` for a constant byte address
/// `off`, or `Some(c)` for `mem_u32[c] + off` with the cell read at
/// region entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AAddr {
    pub cell: Option<u32>,
    pub off: u32,
}

/// How one exit-live register's final value is reconstructed at commit.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ExitVal {
    /// A constant.
    Const(u32),
    /// `mem_u32[cell] + off` (a pointer loaded from a global cell and
    /// advanced by a constant amount).
    CellAdd { cell: u32, off: u32 },
    /// Re-load from memory (the last value a register loaded; its
    /// address range is store-disjoint, so the commit-time read returns
    /// the load-time value).
    Load { op: LoadOp, addr: AAddr },
    /// The activated value of output `k`, sign-extended.
    Out(u32),
}

/// One contiguous abstract byte range accessed by the region, with the
/// per-size alignment residues needed to prove every access in it is
/// aligned once the cell base is known.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessRange {
    pub cell: Option<u32>,
    /// Inclusive start offset (absolute address when `cell` is `None`).
    pub lo: u32,
    /// Exclusive end offset.
    pub hi: u32,
    /// Residue `off % size` for size classes 1/2/4 (`u32::MAX` = size
    /// unused in this range).
    pub res: [u32; 3],
}

/// Exit state of one hardware-loop level touched by the region.
#[derive(Clone, Copy, Debug)]
pub(crate) struct HwLoopExit {
    pub start: u32,
    pub end: u32,
    pub count: u32,
}

/// A verified, installed kernel region: the static execution profile of
/// one region entry, precomputed by [`install`].
#[derive(Clone, Debug)]
pub(crate) struct ShortcutRegion {
    pub desc: KernelRegion,
    /// Micro-op index just past the region.
    pub end_idx: u32,
    /// Instructions retired by one entry.
    pub total_instrs: u64,
    /// Cycles consumed by one entry (base + taken branches + stalls).
    pub total_cycles: u64,
    /// Per-mnemonic retire totals `(id, instrs, cycles, macs)`.
    pub retire_rows: Vec<(MnemonicId, u64, u64, u64)>,
    /// Per-mnemonic load-use stall totals.
    pub stall_rows: Vec<(MnemonicId, u64)>,
    /// Registers written by the region, with their exit values.
    pub exit_regs: Vec<(u8, ExitVal)>,
    /// Per SPR slot: the address of the last weight word drained into it
    /// (`None` = slot untouched).
    pub exit_spr: [Option<AAddr>; 2],
    /// SPR writes still in flight at region exit:
    /// `(instret offset from entry, slot, weight word address)`.
    pub exit_pending: Vec<(u64, usize, AAddr)>,
    /// Hardware-loop levels reconfigured by the region.
    pub exit_hwloop: [Option<HwLoopExit>; 2],
    /// The last op's load, pending into the op after the region.
    pub exit_pending_load: Option<(u8, MnemonicId)>,
    /// Every byte range the region reads.
    pub loads: Vec<AccessRange>,
    /// The byte range the region writes (the output stream's span).
    pub store: AccessRange,
}

/// Abstract value of a register during the verification walk.
#[derive(Clone, Copy, Debug)]
enum Av {
    /// Unmodified region-entry value (reading one rejects the region —
    /// generated kernels initialize everything they read).
    Entry,
    /// A known constant.
    Const(u32),
    /// `mem_u32[cell] + off` — a pointer loaded from a constant cell
    /// address, plus a constant displacement.
    CellVal { cell: u32, off: u32 },
    /// A value loaded from a resolvable address during the walk.
    Load { op: LoadOp, addr: AAddr },
    /// Unknown data. `hw` marks a value proven to be a sign-extended
    /// 16-bit quantity (requantized/activated), eligible for output
    /// mapping.
    Data { id: u32, hw: bool },
}

/// Abstract value of one SPR slot.
#[derive(Clone, Copy, Debug)]
enum SprAv {
    /// Region-entry contents (unknown; only discarding reads allowed).
    Entry,
    /// The weight word at this address.
    Known(AAddr),
}

/// Load semantics against a memory snapshot (the commit-time image of
/// `Machine::load_value`); `None` on an out-of-bounds or misaligned
/// address.
pub(crate) fn read_load(mem: &Memory, op: LoadOp, addr: u32) -> Option<u32> {
    Some(match op {
        LoadOp::Lb => mem.read_u8(addr).ok()? as i8 as i32 as u32,
        LoadOp::Lbu => u32::from(mem.read_u8(addr).ok()?),
        LoadOp::Lh => mem.read_u16(addr).ok()? as i16 as i32 as u32,
        LoadOp::Lhu => u32::from(mem.read_u16(addr).ok()?),
        LoadOp::Lw => mem.read_u32(addr).ok()?,
    })
}

fn load_size(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb | LoadOp::Lbu => 1,
        LoadOp::Lh | LoadOp::Lhu => 2,
        LoadOp::Lw => 4,
    }
}

/// Tracks the contiguous byte ranges a region accesses. Streamed
/// accesses extend an existing range; a range count explosion or an
/// inconsistent alignment residue rejects the region.
#[derive(Default)]
struct RangeSet {
    ranges: Vec<AccessRange>,
}

impl RangeSet {
    /// Records one access; `false` rejects the region.
    fn add(&mut self, cell: Option<u32>, off: u32, size: u32) -> bool {
        // Constant addresses are checked statically: a misaligned one
        // would fault on every entry, so the region is left interpreted.
        if cell.is_none() && !off.is_multiple_of(size) {
            return false;
        }
        let Some(end) = off.checked_add(size) else {
            return false;
        };
        let k = size.trailing_zeros() as usize;
        for i in 0..self.ranges.len() {
            let r = &mut self.ranges[i];
            if r.cell == cell && off <= r.hi && end >= r.lo {
                if r.res[k] == u32::MAX {
                    r.res[k] = off % size;
                } else if r.res[k] != off % size {
                    return false;
                }
                r.lo = r.lo.min(off);
                r.hi = r.hi.max(end);
                return self.coalesce(i);
            }
        }
        if self.ranges.len() >= MAX_RANGES {
            return false;
        }
        let mut res = [u32::MAX; 3];
        res[k] = off % size;
        self.ranges.push(AccessRange {
            cell,
            lo: off,
            hi: end,
            res,
        });
        true
    }

    /// Merges every range that touches range `i` into it (an extension
    /// can bridge the gap between two previously disjoint streams, e.g.
    /// when interleaved weight-row streams complete a tile). Without
    /// this, tiled kernels leak one dead range per row and trip the
    /// [`MAX_RANGES`] cap. `false` on an alignment-residue conflict.
    fn coalesce(&mut self, mut i: usize) -> bool {
        loop {
            let (cell, lo, hi) = {
                let r = &self.ranges[i];
                (r.cell, r.lo, r.hi)
            };
            let Some(j) = self
                .ranges
                .iter()
                .enumerate()
                .position(|(j, r)| j != i && r.cell == cell && r.lo <= hi && r.hi >= lo)
            else {
                return true;
            };
            let other = self.ranges.swap_remove(j);
            if j < i {
                i = if i == self.ranges.len() { j } else { i };
            }
            let r = &mut self.ranges[i];
            for k in 0..3 {
                if r.res[k] == u32::MAX {
                    r.res[k] = other.res[k];
                } else if other.res[k] != u32::MAX && r.res[k] != other.res[k] {
                    return false;
                }
            }
            r.lo = r.lo.min(other.lo);
            r.hi = r.hi.max(other.hi);
        }
    }
}

fn get(regs: &[Av; 32], r: Reg) -> Option<Av> {
    let n = r.num() as usize;
    if n == 0 {
        return Some(Av::Const(0));
    }
    match regs[n] {
        Av::Entry => None,
        v => Some(v),
    }
}

fn set(regs: &mut [Av; 32], r: Reg, v: Av) {
    let n = r.num() as usize;
    if n != 0 {
        regs[n] = v;
    }
}

/// Lowers an abstract base value plus constant displacement to an
/// abstract address; non-pointer bases reject the region.
fn aaddr(base: Av, disp: u32) -> Option<AAddr> {
    match base {
        Av::Const(c) => Some(AAddr {
            cell: None,
            off: c.wrapping_add(disp),
        }),
        Av::CellVal { cell, off } => Some(AAddr {
            cell: Some(cell),
            off: off.wrapping_add(disp),
        }),
        _ => None,
    }
}

/// Advances a pointer value by a constant (post-increment image).
fn bump(base: Av, disp: u32) -> Option<Av> {
    match base {
        Av::Const(c) => Some(Av::Const(c.wrapping_add(disp))),
        Av::CellVal { cell, off } => Some(Av::CellVal {
            cell,
            off: off.wrapping_add(disp),
        }),
        _ => None,
    }
}

/// Whether an abstract value is provably a sign-extended 16-bit
/// quantity (for `hw` propagation through min/max).
fn in_i16(v: Av) -> bool {
    match v {
        Av::Data { hw, .. } => hw,
        Av::Const(c) => (-32768..=32767).contains(&(c as i32)),
        _ => false,
    }
}

/// Exact constant image of [`UopKind::OpImm`] data semantics.
fn exec_opimm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Addi => a.wrapping_add(imm as u32),
        AluImmOp::Slti => ((a as i32) < imm) as u32,
        AluImmOp::Sltiu => (a < imm as u32) as u32,
        AluImmOp::Xori => a ^ imm as u32,
        AluImmOp::Ori => a | imm as u32,
        AluImmOp::Andi => a & imm as u32,
        AluImmOp::Slli => a << (imm & 0x1F),
        AluImmOp::Srli => a >> (imm & 0x1F),
        AluImmOp::Srai => ((a as i32) >> (imm & 0x1F)) as u32,
    }
}

/// Exact constant image of [`UopKind::Op`] data semantics.
fn exec_op(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 0x1F),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 0x1F),
        AluOp::Sra => ((a as i32) >> (b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

/// Exact constant image of [`UopKind::MulDiv`] data semantics.
fn exec_muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
        MulDivOp::Mulhsu => ((a as i32 as i64 * b as u64 as i64) >> 32) as u32,
        MulDivOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        MulDivOp::Div => match (a as i32, b as i32) {
            (_, 0) => u32::MAX,
            (i32::MIN, -1) => i32::MIN as u32,
            (x, y) => x.wrapping_div(y) as u32,
        },
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulDivOp::Rem => match (a as i32, b as i32) {
            (x, 0) => x as u32,
            (i32::MIN, -1) => 0,
            (x, y) => x.wrapping_rem(y) as u32,
        },
        MulDivOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// Exact constant image of [`UopKind::Unary`] data semantics.
fn exec_unary(op: UnaryOp, a: u32) -> u32 {
    match op {
        UnaryOp::ExtHs => a as u16 as i16 as i32 as u32,
        UnaryOp::ExtHz => a & 0xFFFF,
        UnaryOp::ExtBs => a as u8 as i8 as i32 as u32,
        UnaryOp::ExtBz => a & 0xFF,
        UnaryOp::Abs => (a as i32).wrapping_abs() as u32,
        UnaryOp::Ff1 => {
            if a == 0 {
                32
            } else {
                a.trailing_zeros()
            }
        }
        UnaryOp::Fl1 => {
            if a == 0 {
                32
            } else {
                31 - a.leading_zeros()
            }
        }
        UnaryOp::Cnt => a.count_ones(),
        UnaryOp::Clb => {
            if a == 0 {
                0
            } else if (a as i32) < 0 {
                (!a).leading_zeros() - 1
            } else {
                a.leading_zeros() - 1
            }
        }
        UnaryOp::Tanh => {
            let x = rnnasip_fixed::Q3p12::from_raw(a as u16 as i16);
            rnnasip_fixed::hw_tanh(x).raw() as i32 as u32
        }
        UnaryOp::Sig => {
            let x = rnnasip_fixed::Q3p12::from_raw(a as u16 as i16);
            rnnasip_fixed::hw_sig(x).raw() as i32 as u32
        }
    }
}

/// Whether a unary op's result is always a sign-extended 16-bit value.
fn unary_hw(op: UnaryOp) -> bool {
    matches!(
        op,
        UnaryOp::Tanh | UnaryOp::Sig | UnaryOp::ExtHs | UnaryOp::ExtBs | UnaryOp::ExtBz
    )
}

fn bump_row(rows: &mut Vec<(MnemonicId, u64, u64, u64)>, id: MnemonicId, cycles: u64, macs: u64) {
    match rows.iter_mut().find(|r| r.0 == id) {
        Some(r) => {
            r.1 += 1;
            r.2 += cycles;
            r.3 += macs;
        }
        None => rows.push((id, 1, cycles, macs)),
    }
}

fn bump_stall(rows: &mut Vec<(MnemonicId, u64)>, id: MnemonicId) {
    match rows.iter_mut().find(|r| r.0 == id) {
        Some(r) => r.1 += 1,
        None => rows.push((id, 1)),
    }
}

/// Verifies a [`KernelRegion`] descriptor against the micro-op stream by
/// abstract interpretation and, on success, returns its installed
/// static profile. `None` means the region stays on the generic path —
/// never an error: verification failure only costs performance.
pub(crate) fn install(
    uops: &[Uop],
    program: &Program,
    desc: &KernelRegion,
) -> Option<ShortcutRegion> {
    if desc.n_in == 0
        || !desc.n_in.is_multiple_of(2)
        || desc.n_out == 0
        || desc.out_stride == 0
        || !desc.out_stride.is_multiple_of(2)
    {
        return None;
    }
    let start_idx = program.index_of(desc.start_addr)?;
    let end_idx = program.index_of(desc.end_addr)?;
    if end_idx <= start_idx || end_idx > uops.len() {
        return None;
    }
    let out_base = match desc.out {
        ShortcutPtr::Const(a) => AAddr { cell: None, off: a },
        ShortcutPtr::Cell(c) => AAddr {
            cell: Some(c),
            off: 0,
        },
    };
    // The full output span (outputs may be strided): checked for bounds
    // and load-disjointness at every entry.
    let span = desc
        .out_stride
        .checked_mul(desc.n_out - 1)?
        .checked_add(2)?;
    let store = AccessRange {
        cell: out_base.cell,
        lo: out_base.off,
        hi: out_base.off.checked_add(span)?,
        res: [u32::MAX, out_base.off % 2, u32::MAX],
    };

    let mut regs = [Av::Entry; 32];
    let mut hwl: [Option<(u32, u32, u32)>; 2] = [None, None];
    let mut spr = [SprAv::Entry, SprAv::Entry];
    let mut pend: Vec<(u64, usize, AAddr)> = Vec::new();
    let mut loads = RangeSet::default();
    let mut retire_rows: Vec<(MnemonicId, u64, u64, u64)> = Vec::new();
    let mut stall_rows: Vec<(MnemonicId, u64)> = Vec::new();
    let mut prev_load: Option<(u8, MnemonicId)> = None;
    let mut cycles = 0u64;
    let mut instret = 0u64;
    let mut next_out = 0u32;
    let mut out_map: HashMap<u32, u32> = HashMap::new();
    let mut next_id = 0u32;
    let data = |hw: bool, next_id: &mut u32| {
        let id = *next_id;
        *next_id += 1;
        Av::Data { id, hw }
    };

    let mut i = start_idx;
    let mut ops = 0u64;
    while i != end_idx {
        let u = &uops[i];
        ops += 1;
        if ops > WALK_OP_CAP {
            return None;
        }
        // SPR writes issued two or more retirements ago land now — the
        // same drain point as the per-op path.
        while let Some(&(iss, slot, addr)) = pend.first() {
            if iss + 2 <= instret {
                spr[slot] = SprAv::Known(addr);
                pend.remove(0);
            } else {
                break;
            }
        }
        // Load-use stall, charged to the producing load.
        if let Some((r, id)) = prev_load.take() {
            if u.uses_mask & (1u32 << r) != 0 {
                cycles += 1;
                bump_stall(&mut stall_rows, id);
            }
        }

        let mut extra = 0u64;
        let mut jump: Option<(u32, usize)> = None;
        match u.kind {
            UopKind::SetReg { rd, val } => set(&mut regs, rd, Av::Const(val)),
            UopKind::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                let (Av::Const(a), Av::Const(b)) = (get(&regs, rs1)?, get(&regs, rs2)?) else {
                    return None;
                };
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i32) < (b as i32),
                    BranchOp::Bge => (a as i32) >= (b as i32),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    if target.idx == NO_IDX {
                        return None;
                    }
                    jump = Some((target.addr, target.idx as usize));
                    extra = 1;
                }
            }
            UopKind::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = aaddr(get(&regs, rs1)?, offset)?;
                if !loads.add(addr.cell, addr.off, load_size(op)) {
                    return None;
                }
                let v = if op == LoadOp::Lw && addr.cell.is_none() {
                    Av::CellVal {
                        cell: addr.off,
                        off: 0,
                    }
                } else {
                    Av::Load { op, addr }
                };
                set(&mut regs, rd, v);
            }
            UopKind::LoadPostInc {
                op,
                rd,
                rs1,
                offset,
            } => {
                let base = get(&regs, rs1)?;
                let addr = aaddr(base, 0)?;
                if !loads.add(addr.cell, addr.off, load_size(op)) {
                    return None;
                }
                let v = if op == LoadOp::Lw && addr.cell.is_none() {
                    Av::CellVal {
                        cell: addr.off,
                        off: 0,
                    }
                } else {
                    Av::Load { op, addr }
                };
                set(&mut regs, rs1, bump(base, offset)?);
                set(&mut regs, rd, v);
            }
            UopKind::LoadReg { op, rd, rs1, rs2 } => {
                let addr = match (get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(a), Av::Const(b)) => AAddr {
                        cell: None,
                        off: a.wrapping_add(b),
                    },
                    (Av::CellVal { cell, off }, Av::Const(c))
                    | (Av::Const(c), Av::CellVal { cell, off }) => AAddr {
                        cell: Some(cell),
                        off: off.wrapping_add(c),
                    },
                    _ => return None,
                };
                if !loads.add(addr.cell, addr.off, load_size(op)) {
                    return None;
                }
                let v = if op == LoadOp::Lw && addr.cell.is_none() {
                    Av::CellVal {
                        cell: addr.off,
                        off: 0,
                    }
                } else {
                    Av::Load { op, addr }
                };
                set(&mut regs, rd, v);
            }
            UopKind::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = aaddr(get(&regs, rs1)?, offset)?;
                check_store(
                    op,
                    addr,
                    get(&regs, rs2)?,
                    desc,
                    out_base,
                    &mut next_out,
                    &mut out_map,
                )?;
            }
            UopKind::StorePostInc {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let base = get(&regs, rs1)?;
                let addr = aaddr(base, 0)?;
                check_store(
                    op,
                    addr,
                    get(&regs, rs2)?,
                    desc,
                    out_base,
                    &mut next_out,
                    &mut out_map,
                )?;
                set(&mut regs, rs1, bump(base, offset)?);
            }
            UopKind::OpImm { op, rd, rs1, imm } => {
                let a = get(&regs, rs1)?;
                let v = match (op, a) {
                    (AluImmOp::Addi, Av::CellVal { cell, off }) => Av::CellVal {
                        cell,
                        off: off.wrapping_add(imm as u32),
                    },
                    (_, Av::Const(c)) => Av::Const(exec_opimm(op, c, imm)),
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Op { op, rd, rs1, rs2 } => {
                let a = get(&regs, rs1)?;
                let b = get(&regs, rs2)?;
                let v = match (op, a, b) {
                    (_, Av::Const(x), Av::Const(y)) => Av::Const(exec_op(op, x, y)),
                    (AluOp::Add, Av::CellVal { cell, off }, Av::Const(c))
                    | (AluOp::Add, Av::Const(c), Av::CellVal { cell, off }) => Av::CellVal {
                        cell,
                        off: off.wrapping_add(c),
                    },
                    (AluOp::Sub, Av::CellVal { cell, off }, Av::Const(c)) => Av::CellVal {
                        cell,
                        off: off.wrapping_sub(c),
                    },
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::MulDiv { op, rd, rs1, rs2 } => {
                let v = match (get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(a), Av::Const(b)) => Av::Const(exec_muldiv(op, a, b)),
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Nop => {}
            UopKind::Mac { rd, rs1, rs2 } => {
                let v = match (get(&regs, rd)?, get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(d), Av::Const(a), Av::Const(b)) => {
                        Av::Const(d.wrapping_add((a as i32).wrapping_mul(b as i32) as u32))
                    }
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Msu { rd, rs1, rs2 } => {
                let v = match (get(&regs, rd)?, get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(d), Av::Const(a), Av::Const(b)) => {
                        Av::Const(d.wrapping_sub((a as i32).wrapping_mul(b as i32) as u32))
                    }
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Clip { rd, rs1, lo, hi } => {
                let v = match get(&regs, rs1)? {
                    Av::Const(c) => Av::Const((c as i32).clamp(lo, hi) as u32),
                    _ => data(lo >= -32768 && hi <= 32767, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::ClipU { rd, rs1, hi } => {
                let v = match get(&regs, rs1)? {
                    Av::Const(c) => Av::Const((c as i32).clamp(0, hi) as u32),
                    _ => data(hi <= 32767, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Unary { op, rd, rs1 } => {
                let v = match get(&regs, rs1)? {
                    Av::Const(c) => Av::Const(exec_unary(op, c)),
                    _ => data(unary_hw(op), &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PMin { rd, rs1, rs2 } => {
                let a = get(&regs, rs1)?;
                let b = get(&regs, rs2)?;
                let v = match (a, b) {
                    (Av::Const(x), Av::Const(y)) => Av::Const((x as i32).min(y as i32) as u32),
                    _ => data(in_i16(a) && in_i16(b), &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PMax { rd, rs1, rs2 } => {
                let a = get(&regs, rs1)?;
                let b = get(&regs, rs2)?;
                let v = match (a, b) {
                    (Av::Const(x), Av::Const(y)) => Av::Const((x as i32).max(y as i32) as u32),
                    _ => data(in_i16(a) && in_i16(b), &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::Ror { rd, rs1, rs2 } => {
                let v = match (get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(a), Av::Const(b)) => Av::Const(a.rotate_right(b & 31)),
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PvAluVv {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let v = match (get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(a), Av::Const(b)) => {
                        Av::Const(crate::machine::exec_pv_alu(op, size, a, b))
                    }
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PvAluSc {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let v = match (get(&regs, rs1)?, get(&regs, rs2)?) {
                    (Av::Const(a), Av::Const(b)) => {
                        let b = match size {
                            SimdSize::Half => {
                                let h = b & 0xFFFF;
                                h | (h << 16)
                            }
                            SimdSize::Byte => {
                                let x = b & 0xFF;
                                x | (x << 8) | (x << 16) | (x << 24)
                            }
                        };
                        Av::Const(crate::machine::exec_pv_alu(op, size, a, b))
                    }
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PvAluImm {
                op,
                size,
                rd,
                rs1,
                b,
            } => {
                let v = match get(&regs, rs1)? {
                    Av::Const(a) => Av::Const(crate::machine::exec_pv_alu(op, size, a, b)),
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PvDot {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => {
                let a = get(&regs, rs1)?;
                let b = get(&regs, rs2)?;
                let d0 = if op.accumulates() {
                    Some(get(&regs, rd)?)
                } else {
                    None
                };
                let v = match (a, b, d0) {
                    (Av::Const(x), Av::Const(y), Some(Av::Const(d))) => {
                        Av::Const(d.wrapping_add(crate::machine::exec_dot(op, size, x, y)))
                    }
                    (Av::Const(x), Av::Const(y), None) => {
                        Av::Const(crate::machine::exec_dot(op, size, x, y))
                    }
                    _ => data(false, &mut next_id),
                };
                set(&mut regs, rd, v);
            }
            UopKind::PlSdotsp {
                spr: s,
                rd,
                rs1,
                rs2,
                ..
            } => {
                let sl = usize::from(s & 1);
                // The x operand's value is symbolic but must exist.
                let _ = get(&regs, rs2)?;
                if rd != Reg::ZERO {
                    // A live accumulation must read a weight whose
                    // provenance is known (drained from a walked issue),
                    // never the slot's unknown entry contents.
                    if !matches!(spr[sl], SprAv::Known(_)) {
                        return None;
                    }
                    let _ = get(&regs, rd)?;
                }
                let base = get(&regs, rs1)?;
                let addr = aaddr(base, 0)?;
                if !loads.add(addr.cell, addr.off, 4) {
                    return None;
                }
                pend.push((instret, sl, addr));
                if pend.len() > 2 {
                    return None;
                }
                if rd != Reg::ZERO {
                    let v = data(false, &mut next_id);
                    set(&mut regs, rd, v);
                }
                set(&mut regs, rs1, bump(base, 4)?);
            }
            UopKind::LpSetup { l, rs1, start, end } => {
                let Av::Const(count) = get(&regs, rs1)? else {
                    return None;
                };
                if count > 0 && start >= end {
                    return None;
                }
                hwl[usize::from(l)] = Some((start, end, count));
            }
            UopKind::LpSetupi {
                l,
                count,
                start,
                end,
            } => {
                if count > 0 && start >= end {
                    return None;
                }
                hwl[usize::from(l)] = Some((start, end, count));
            }
            // Jumps, halts, CSR access and split hardware-loop setup
            // never appear in generated kernel regions; reject rather
            // than model them.
            UopKind::Jal { .. }
            | UopKind::Jalr { .. }
            | UopKind::Halt(_)
            | UopKind::CsrRead { .. }
            | UopKind::LpSetAddr { .. }
            | UopKind::LpCount { .. }
            | UopKind::LpCounti { .. } => return None,
        }

        let op_cycles = u64::from(u.base_cycles) + extra;
        bump_row(&mut retire_rows, u.id, op_cycles, u64::from(u.mac_ops));
        cycles += op_cycles;
        instret += 1;
        prev_load = (u.load_rd != 0).then_some((u.load_rd, u.id));

        match jump {
            Some((_, t)) => {
                if t < start_idx || t >= end_idx {
                    return None;
                }
                i = t;
            }
            None => {
                let mut na = u.next_addr;
                let mut jumped = false;
                // Hardware-loop jump-back on fall-through, inner level
                // first; an expired inner count falls through so an
                // outer loop sharing the end address can fire.
                for (start, end, count) in hwl.iter_mut().flatten() {
                    if *count > 0 && na == *end {
                        if *count > 1 {
                            *count -= 1;
                            na = *start;
                            jumped = true;
                            break;
                        }
                        *count = 0;
                    }
                }
                if jumped {
                    let t = program.index_of(na)?;
                    if t < start_idx || t >= end_idx {
                        return None;
                    }
                    i = t;
                } else {
                    i += 1;
                }
            }
        }
    }

    if next_out != desc.n_out {
        return None;
    }
    let mut exit_regs = Vec::new();
    for (r, av) in regs.iter().enumerate().skip(1) {
        let ev = match *av {
            Av::Entry => continue,
            Av::Const(v) => ExitVal::Const(v),
            Av::CellVal { cell, off } => ExitVal::CellAdd { cell, off },
            Av::Load { op, addr } => ExitVal::Load { op, addr },
            Av::Data { id, .. } => match out_map.get(&id) {
                Some(&k) => ExitVal::Out(k),
                None => return None,
            },
        };
        exit_regs.push((r as u8, ev));
    }
    let exit_spr = spr.map(|s| match s {
        SprAv::Entry => None,
        SprAv::Known(a) => Some(a),
    });
    let exit_hwloop = hwl.map(|h| h.map(|(start, end, count)| HwLoopExit { start, end, count }));
    Some(ShortcutRegion {
        desc: *desc,
        end_idx: end_idx as u32,
        total_instrs: instret,
        total_cycles: cycles,
        retire_rows,
        stall_rows,
        exit_regs,
        exit_spr,
        exit_pending: pend,
        exit_hwloop,
        exit_pending_load: prev_load,
        loads: loads.ranges,
        store,
    })
}

/// Verifies one store op against the region's declared output stream:
/// only `sh` of a requantized (sign-extended 16-bit) value at exactly
/// the next expected output address is accepted.
#[allow(clippy::too_many_arguments)]
fn check_store(
    op: StoreOp,
    addr: AAddr,
    value: Av,
    desc: &KernelRegion,
    out_base: AAddr,
    next_out: &mut u32,
    out_map: &mut HashMap<u32, u32>,
) -> Option<()> {
    if op != StoreOp::Sh || *next_out >= desc.n_out {
        return None;
    }
    let Av::Data { id, hw: true } = value else {
        return None;
    };
    let expected = AAddr {
        cell: out_base.cell,
        off: out_base.off.wrapping_add(*next_out * desc.out_stride),
    };
    if addr != expected || out_map.insert(id, *next_out).is_some() {
        return None;
    }
    *next_out += 1;
    Some(())
}

impl AAddr {
    /// Resolves to a concrete byte address (`None` if the cell read
    /// faults — the caller then declines the shortcut).
    pub(crate) fn resolve(&self, mem: &Memory) -> Option<u32> {
        match self.cell {
            None => Some(self.off),
            Some(c) => Some(mem.read_u32(c).ok()?.wrapping_add(self.off)),
        }
    }
}

impl AccessRange {
    /// Resolves to a concrete `[start, end)` interval, checking bounds
    /// and the recorded alignment residues.
    fn resolve(&self, mem: &Memory) -> Option<(u64, u64)> {
        let base = match self.cell {
            None => 0u64,
            Some(c) => u64::from(mem.read_u32(c).ok()?),
        };
        if self.lo > self.hi {
            return None;
        }
        let start = base + u64::from(self.lo);
        let end = base + u64::from(self.hi);
        if end > mem.size() as u64 {
            return None;
        }
        for (k, &res) in self.res.iter().enumerate() {
            if res != u32::MAX && (base + u64::from(res)) % (1u64 << k) != 0 {
                return None;
            }
        }
        Some((start, end))
    }
}

impl ShortcutRegion {
    /// Per-entry admission check: resolves every pointer cell and
    /// verifies that all load ranges and the output span are in bounds,
    /// aligned, and that the output span overlaps no load range (the
    /// handler batches its writes after its reads). Returns the
    /// resolved `(x, out)` base addresses, or `None` to decline.
    pub(crate) fn check_entry(&self, mem: &Memory) -> Option<(u32, u32)> {
        let (s_lo, s_hi) = self.store.resolve(mem)?;
        for r in &self.loads {
            let (l_lo, l_hi) = r.resolve(mem)?;
            if s_lo < l_hi && l_lo < s_hi {
                return None;
            }
        }
        let x = match self.desc.x {
            ShortcutPtr::Const(a) => a,
            ShortcutPtr::Cell(c) => mem.read_u32(c).ok()?,
        };
        let out = match self.desc.out {
            ShortcutPtr::Const(a) => a,
            ShortcutPtr::Cell(c) => mem.read_u32(c).ok()?,
        };
        Some((x, out))
    }

    /// Computes the region's activated outputs with host arithmetic —
    /// bit-identical to the emitted kernel: `i16×i16` products
    /// accumulated with wrapping 32-bit adds (order-independent), then
    /// `>> 12`, clip to 16 bits, and the shared fixed-point activation
    /// units. Returns `false` (with no state mutated anywhere) if any
    /// read falls outside memory.
    pub(crate) fn compute(&self, mem: &Memory, x_base: u32, outs: &mut Vec<i32>) -> bool {
        let n_in = self.desc.n_in as usize;
        let n_out = self.desc.n_out as usize;
        let row_bytes = n_in * 2;
        let Ok(x) = mem.byte_slice(x_base, row_bytes) else {
            return false;
        };
        outs.reserve(n_out);
        for j in 0..n_out {
            let Ok(bias) = mem.read_u32(self.desc.bias32.wrapping_add(4 * j as u32)) else {
                return false;
            };
            let Ok(row) = mem.byte_slice(
                self.desc.w_base.wrapping_add((j * row_bytes) as u32),
                row_bytes,
            ) else {
                return false;
            };
            let mut acc = bias as i32;
            for (wp, xp) in row.chunks_exact(2).zip(x.chunks_exact(2)) {
                let w = i16::from_le_bytes([wp[0], wp[1]]) as i32;
                let xv = i16::from_le_bytes([xp[0], xp[1]]) as i32;
                acc = acc.wrapping_add(w.wrapping_mul(xv));
            }
            let v = (acc >> 12).clamp(-32768, 32767);
            let v = match self.desc.act {
                ShortcutAct::None => v,
                ShortcutAct::Relu => v.max(0),
                ShortcutAct::Tanh => {
                    rnnasip_fixed::hw_tanh(rnnasip_fixed::Q3p12::from_raw(v as i16)).raw() as i32
                }
                ShortcutAct::Sigmoid => {
                    rnnasip_fixed::hw_sig(rnnasip_fixed::Q3p12::from_raw(v as i16)).raw() as i32
                }
            };
            outs.push(v);
        }
        true
    }
}
