//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *when* (an `instret` trigger) and *where*
//! (a [`FaultSite`]) to corrupt architectural state, plus an optional
//! forced watchdog budget. Plans are armed on a
//! [`Machine`](crate::Machine) with
//! [`arm_faults`](crate::Machine::arm_faults) and fire identically on
//! the pre-decoded micro-op path and the legacy per-step interpreter:
//! a due fault is applied at the top of the step, after the halted
//! check and before SPR drain/fetch, so both paths observe the
//! corruption at exactly the same instruction boundary.
//!
//! Every applied fault leaves a [`FaultRecord`] in the machine's
//! [`fault_log`](crate::Machine::fault_log) stating what was actually
//! hit ([`FaultEffect`]), at which PC/cycle/instret — the campaign
//! runner uses this to attribute downstream crashes to their injection
//! site, and the differential tests assert the logs match across
//! execution paths bit for bit.

use rnnasip_isa::Reg;

/// Where a single fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip one bit of the TCDM byte at `addr`.
    ///
    /// A `silent` flip bypasses the dirty-block bitmap — modelling an
    /// upset the write-tracking hardware never saw — so an incremental
    /// rewind cannot undo it; only a full image rebuild can.
    MemBit {
        /// Byte address of the target.
        addr: u32,
        /// Bit index within the byte (taken modulo 8).
        bit: u32,
        /// Skip dirty tracking, evading rewind.
        silent: bool,
    },
    /// Flip one bit of an integer register (writes to `x0` are ignored
    /// by the register file, recorded as [`FaultEffect::NoTarget`]).
    RegBit {
        /// Target register.
        reg: Reg,
        /// Bit index within the 32-bit value (taken modulo 32).
        bit: u32,
    },
    /// Flip one bit of the encoded instruction word at `pc`.
    ///
    /// The corrupted word is re-decoded with the same-width decoder:
    /// a still-valid encoding replaces the instruction in place, while
    /// an invalid one (or a width-class change) turns the slot into a
    /// permanent fetch fault.
    InstrBit {
        /// Address of the instruction to corrupt.
        pc: u32,
        /// Bit index within the encoded word (modulo the encoding width).
        bit: u32,
    },
}

/// One scheduled fault: a [`FaultSite`] fired when the machine's
/// retired-instruction count reaches `at_instret`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Fire when `instret >= at_instret` (checked at step boundaries).
    pub at_instret: u64,
    /// What to corrupt.
    pub site: FaultSite,
}

/// A seeded, deterministic fault scenario.
///
/// # Example
///
/// ```
/// use rnnasip_sim::{Fault, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new()
///     .with_fault(Fault {
///         at_instret: 10,
///         site: FaultSite::MemBit { addr: 0x40, bit: 3, silent: false },
///     })
///     .with_watchdog(1_000);
/// assert_eq!(plan.faults.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults to arm; applied in `at_instret` order.
    pub faults: Vec<Fault>,
    /// Optional forced watchdog budget (cycles), overriding the run's
    /// requested budget when smaller — models a runaway-firmware guard
    /// firing early.
    pub watchdog: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults, no forced watchdog).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the forced watchdog budget.
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog = Some(cycles);
        self
    }
}

/// What an applied fault actually did to the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEffect {
    /// A memory bit was flipped (`silent` mirrors the site).
    FlippedMem {
        /// Byte address that was hit.
        addr: u32,
        /// Whether the flip evaded dirty tracking.
        silent: bool,
    },
    /// A register bit was flipped.
    FlippedReg {
        /// Register that was hit.
        reg: Reg,
    },
    /// An instruction word was corrupted into another valid encoding
    /// and patched in place.
    PatchedInstr {
        /// Address of the corrupted instruction.
        pc: u32,
    },
    /// An instruction word was corrupted into an invalid encoding; the
    /// slot now raises a fetch fault whenever executed.
    RemovedInstr {
        /// Address of the corrupted instruction.
        pc: u32,
    },
    /// The site did not exist (out-of-bounds address, `x0`, or no
    /// instruction at `pc`); nothing changed.
    NoTarget,
}

/// Log entry for one applied fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault as scheduled.
    pub fault: Fault,
    /// PC at the moment of application.
    pub pc: u32,
    /// Cycle count at the moment of application.
    pub cycle: u64,
    /// Retired-instruction count at the moment of application.
    pub instret: u64,
    /// What actually happened.
    pub effect: FaultEffect,
}
