//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *when* (an `instret` trigger) and *where*
//! (a [`FaultSite`]) to corrupt architectural state, plus an optional
//! forced watchdog budget. Plans are armed on a
//! [`Machine`](crate::Machine) with
//! [`arm_faults`](crate::Machine::arm_faults) and fire identically on
//! the pre-decoded micro-op path and the legacy per-step interpreter:
//! a due fault is applied at the top of the step, after the halted
//! check and before SPR drain/fetch, so both paths observe the
//! corruption at exactly the same instruction boundary.
//!
//! Every applied fault leaves a [`FaultRecord`] in the machine's
//! [`fault_log`](crate::Machine::fault_log) stating what was actually
//! hit ([`FaultEffect`]), at which PC/cycle/instret — the campaign
//! runner uses this to attribute downstream crashes to their injection
//! site, and the differential tests assert the logs match across
//! execution paths bit for bit.

use std::fmt;
use std::str::FromStr;

use rnnasip_isa::Reg;

/// Where a single fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip one bit of the TCDM byte at `addr`.
    ///
    /// A `silent` flip bypasses the dirty-block bitmap — modelling an
    /// upset the write-tracking hardware never saw — so an incremental
    /// rewind cannot undo it; only a full image rebuild can.
    MemBit {
        /// Byte address of the target.
        addr: u32,
        /// Bit index within the byte (taken modulo 8).
        bit: u32,
        /// Skip dirty tracking, evading rewind.
        silent: bool,
    },
    /// Flip one bit of an integer register (writes to `x0` are ignored
    /// by the register file, recorded as [`FaultEffect::NoTarget`]).
    RegBit {
        /// Target register.
        reg: Reg,
        /// Bit index within the 32-bit value (taken modulo 32).
        bit: u32,
    },
    /// Flip one bit of the encoded instruction word at `pc`.
    ///
    /// The corrupted word is re-decoded with the same-width decoder:
    /// a still-valid encoding replaces the instruction in place, while
    /// an invalid one (or a width-class change) turns the slot into a
    /// permanent fetch fault.
    InstrBit {
        /// Address of the instruction to corrupt.
        pc: u32,
        /// Bit index within the encoded word (modulo the encoding width).
        bit: u32,
    },
}

/// One scheduled fault: a [`FaultSite`] fired when the machine's
/// retired-instruction count reaches `at_instret`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Fire when `instret >= at_instret` (checked at step boundaries).
    pub at_instret: u64,
    /// What to corrupt.
    pub site: FaultSite,
}

/// A seeded, deterministic fault scenario.
///
/// # Example
///
/// ```
/// use rnnasip_sim::{Fault, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new()
///     .with_fault(Fault {
///         at_instret: 10,
///         site: FaultSite::MemBit { addr: 0x40, bit: 3, silent: false },
///     })
///     .with_watchdog(1_000);
/// assert_eq!(plan.faults.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults to arm; applied in `at_instret` order.
    pub faults: Vec<Fault>,
    /// Optional forced watchdog budget (cycles), overriding the run's
    /// requested budget when smaller — models a runaway-firmware guard
    /// firing early.
    pub watchdog: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults, no forced watchdog).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the forced watchdog budget.
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog = Some(cycles);
        self
    }
}

/// What an applied fault actually did to the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEffect {
    /// A memory bit was flipped (`silent` mirrors the site).
    FlippedMem {
        /// Byte address that was hit.
        addr: u32,
        /// Whether the flip evaded dirty tracking.
        silent: bool,
    },
    /// A register bit was flipped.
    FlippedReg {
        /// Register that was hit.
        reg: Reg,
    },
    /// An instruction word was corrupted into another valid encoding
    /// and patched in place.
    PatchedInstr {
        /// Address of the corrupted instruction.
        pc: u32,
    },
    /// An instruction word was corrupted into an invalid encoding; the
    /// slot now raises a fetch fault whenever executed.
    RemovedInstr {
        /// Address of the corrupted instruction.
        pc: u32,
    },
    /// The site did not exist (out-of-bounds address, `x0`, or no
    /// instruction at `pc`); nothing changed.
    NoTarget,
}

/// Log entry for one applied fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault as scheduled.
    pub fault: Fault,
    /// PC at the moment of application.
    pub pc: u32,
    /// Cycle count at the moment of application.
    pub cycle: u64,
    /// Retired-instruction count at the moment of application.
    pub instret: u64,
    /// What actually happened.
    pub effect: FaultEffect,
}

// ---------------------------------------------------------------------------
// Stable one-line serialization (campaign logs)
// ---------------------------------------------------------------------------
//
// The SDC campaign embeds applied-fault records in its JSON rows as
// strings, so the textual form is part of the bench baseline and must
// stay byte-stable. The grammar is a space-separated `key=value` list:
//
//   site=<site> at=<u64> pc=0x<8 hex> cycle=<u64> instret=<u64> effect=<effect>
//
// with colon-joined site/effect atoms (`mem:0x00000040:3:silent`,
// `reg:a0:7`, `instr:0x00000120:12`, `flipped-mem:0x00000040:silent`,
// `flipped-reg:a0`, `patched-instr:0x00000120`,
// `removed-instr:0x00000120`, `no-target`). `FromStr` accepts exactly
// this grammar back, and the pinning test round-trips every variant.

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSite::MemBit { addr, bit, silent } => {
                write!(f, "mem:0x{addr:08x}:{bit}")?;
                if silent {
                    write!(f, ":silent")?;
                }
                Ok(())
            }
            FaultSite::RegBit { reg, bit } => write!(f, "reg:{reg}:{bit}"),
            FaultSite::InstrBit { pc, bit } => write!(f, "instr:0x{pc:08x}:{bit}"),
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEffect::FlippedMem { addr, silent } => {
                write!(f, "flipped-mem:0x{addr:08x}")?;
                if silent {
                    write!(f, ":silent")?;
                }
                Ok(())
            }
            FaultEffect::FlippedReg { reg } => write!(f, "flipped-reg:{reg}"),
            FaultEffect::PatchedInstr { pc } => write!(f, "patched-instr:0x{pc:08x}"),
            FaultEffect::RemovedInstr { pc } => write!(f, "removed-instr:0x{pc:08x}"),
            FaultEffect::NoTarget => write!(f, "no-target"),
        }
    }
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site={} at={} pc=0x{:08x} cycle={} instret={} effect={}",
            self.fault.site, self.fault.at_instret, self.pc, self.cycle, self.instret, self.effect
        )
    }
}

/// Error parsing a [`FaultSite`], [`FaultEffect`] or [`FaultRecord`]
/// from its stable one-line form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFaultError {
    what: &'static str,
}

impl ParseFaultError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed fault {}", self.what)
    }
}

impl std::error::Error for ParseFaultError {}

fn parse_hex_u32(s: &str, what: &'static str) -> Result<u32, ParseFaultError> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| ParseFaultError::new(what))?;
    u32::from_str_radix(digits, 16).map_err(|_| ParseFaultError::new(what))
}

fn parse_dec<T: FromStr>(s: &str, what: &'static str) -> Result<T, ParseFaultError> {
    s.parse().map_err(|_| ParseFaultError::new(what))
}

impl FromStr for FaultSite {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["mem", addr, bit] => Ok(FaultSite::MemBit {
                addr: parse_hex_u32(addr, "site address")?,
                bit: parse_dec(bit, "site bit")?,
                silent: false,
            }),
            ["mem", addr, bit, "silent"] => Ok(FaultSite::MemBit {
                addr: parse_hex_u32(addr, "site address")?,
                bit: parse_dec(bit, "site bit")?,
                silent: true,
            }),
            ["reg", reg, bit] => Ok(FaultSite::RegBit {
                reg: reg.parse().map_err(|_| ParseFaultError::new("register"))?,
                bit: parse_dec(bit, "site bit")?,
            }),
            ["instr", pc, bit] => Ok(FaultSite::InstrBit {
                pc: parse_hex_u32(pc, "site pc")?,
                bit: parse_dec(bit, "site bit")?,
            }),
            _ => Err(ParseFaultError::new("site")),
        }
    }
}

impl FromStr for FaultEffect {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["flipped-mem", addr] => Ok(FaultEffect::FlippedMem {
                addr: parse_hex_u32(addr, "effect address")?,
                silent: false,
            }),
            ["flipped-mem", addr, "silent"] => Ok(FaultEffect::FlippedMem {
                addr: parse_hex_u32(addr, "effect address")?,
                silent: true,
            }),
            ["flipped-reg", reg] => Ok(FaultEffect::FlippedReg {
                reg: reg.parse().map_err(|_| ParseFaultError::new("register"))?,
            }),
            ["patched-instr", pc] => Ok(FaultEffect::PatchedInstr {
                pc: parse_hex_u32(pc, "effect pc")?,
            }),
            ["removed-instr", pc] => Ok(FaultEffect::RemovedInstr {
                pc: parse_hex_u32(pc, "effect pc")?,
            }),
            ["no-target"] => Ok(FaultEffect::NoTarget),
            _ => Err(ParseFaultError::new("effect")),
        }
    }
}

impl FromStr for FaultRecord {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut fields = s.split(' ');
        let mut take = |key: &'static str| -> Result<&str, ParseFaultError> {
            let tok = fields
                .next()
                .ok_or_else(|| ParseFaultError::new("record"))?;
            tok.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .ok_or_else(|| ParseFaultError::new("record field"))
        };
        let site: FaultSite = take("site")?.parse()?;
        let at_instret: u64 = parse_dec(take("at")?, "at")?;
        let pc = parse_hex_u32(take("pc")?, "pc")?;
        let cycle: u64 = parse_dec(take("cycle")?, "cycle")?;
        let instret: u64 = parse_dec(take("instret")?, "instret")?;
        let effect: FaultEffect = take("effect")?.parse()?;
        if fields.next().is_some() {
            return Err(ParseFaultError::new("record trailer"));
        }
        Ok(FaultRecord {
            fault: Fault { at_instret, site },
            pc,
            cycle,
            instret,
            effect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: FaultRecord) {
        let line = rec.to_string();
        let back: FaultRecord = line.parse().expect("parse back");
        assert_eq!(back, rec);
    }

    #[test]
    fn record_line_is_pinned() {
        let rec = FaultRecord {
            fault: Fault {
                at_instret: 10,
                site: FaultSite::MemBit {
                    addr: 0x40,
                    bit: 3,
                    silent: true,
                },
            },
            pc: 0x120,
            cycle: 42,
            instret: 10,
            effect: FaultEffect::FlippedMem {
                addr: 0x40,
                silent: true,
            },
        };
        assert_eq!(
            rec.to_string(),
            "site=mem:0x00000040:3:silent at=10 pc=0x00000120 \
             cycle=42 instret=10 effect=flipped-mem:0x00000040:silent"
        );
        roundtrip(rec);
    }

    #[test]
    fn every_site_and_effect_roundtrips() {
        let sites = [
            FaultSite::MemBit {
                addr: 0x1234,
                bit: 7,
                silent: false,
            },
            FaultSite::MemBit {
                addr: 0xffff_fffc,
                bit: 0,
                silent: true,
            },
            FaultSite::RegBit {
                reg: Reg::A0,
                bit: 31,
            },
            FaultSite::InstrBit { pc: 0x100, bit: 12 },
        ];
        let effects = [
            FaultEffect::FlippedMem {
                addr: 0x1234,
                silent: false,
            },
            FaultEffect::FlippedMem {
                addr: 0x1234,
                silent: true,
            },
            FaultEffect::FlippedReg { reg: Reg::T6 },
            FaultEffect::PatchedInstr { pc: 0x100 },
            FaultEffect::RemovedInstr { pc: 0x104 },
            FaultEffect::NoTarget,
        ];
        for site in sites {
            for effect in effects {
                roundtrip(FaultRecord {
                    fault: Fault {
                        at_instret: 999,
                        site,
                    },
                    pc: 0xdead_bee0,
                    cycle: u64::MAX,
                    instret: 12345,
                    effect,
                });
            }
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "site=mem:40:3 at=1 pc=0x0 cycle=0 instret=0 effect=no-target",
            "site=mem:0x40:3 at=x pc=0x00000000 cycle=0 instret=0 effect=no-target",
            "site=bogus:0x40:3 at=1 pc=0x00000000 cycle=0 instret=0 effect=no-target",
            "site=mem:0x40:3 at=1 pc=0x00000000 cycle=0 instret=0 effect=no-target extra=1",
        ] {
            assert!(bad.parse::<FaultRecord>().is_err(), "accepted: {bad:?}");
        }
    }
}
