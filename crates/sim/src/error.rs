//! Simulator error and exit types.

use core::fmt;

/// Why a [`Machine::run`](crate::Machine::run) loop stopped successfully.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExitReason {
    /// The program executed `ecall` (the conventional "done" exit).
    Ecall,
    /// The program executed `ebreak` (breakpoint).
    Ebreak,
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Ecall => f.write_str("ecall"),
            ExitReason::Ebreak => f.write_str("ebreak"),
        }
    }
}

/// Errors raised while simulating.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Instruction fetch from an address with no program content.
    FetchFault {
        /// The faulting PC.
        pc: u32,
    },
    /// Data access past the end of memory.
    MemOutOfBounds {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// Data access that is not naturally aligned.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// The cycle budget given to [`Machine::run`](crate::Machine::run)
    /// was exhausted — almost always an infinite loop in generated code.
    Watchdog {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// A hardware loop was entered with start ≥ end.
    BadHwLoop {
        /// Loop level (0 or 1).
        level: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FetchFault { pc } => write!(f, "instruction fetch fault at {pc:#010x}"),
            SimError::MemOutOfBounds { addr, size } => {
                write!(f, "{size}-byte access out of bounds at {addr:#010x}")
            }
            SimError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
            SimError::Watchdog { max_cycles } => {
                write!(f, "watchdog expired after {max_cycles} cycles")
            }
            SimError::BadHwLoop { level } => {
                write!(f, "hardware loop {level} configured with start >= end")
            }
        }
    }
}

impl std::error::Error for SimError {}
