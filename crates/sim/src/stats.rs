//! Per-mnemonic execution statistics (the raw material of Table I).

use rnnasip_isa::MnemonicId;
use std::fmt;

/// Instruction and cycle counts for one mnemonic.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Row {
    /// Number of retired instructions.
    pub instrs: u64,
    /// Cycles spent, *including* stall cycles attributed to this mnemonic
    /// (loads own the load-use bubble, as in the paper's Table I).
    pub cycles: u64,
}

impl Row {
    fn is_empty(&self) -> bool {
        self.instrs == 0 && self.cycles == 0
    }
}

/// Execution statistics collected by the simulator.
///
/// Rows are keyed by [`MnemonicId`] — the dense per-mnemonic index of
/// [`Instr::mnemonic_id`](rnnasip_isa::Instr::mnemonic_id) — and stored
/// as a fixed-size counter array, so the simulator's retire path is two
/// array-indexed additions with no map lookup or string comparison. The
/// name-keyed view Table I needs is materialized only at report time
/// ([`iter`](Self::iter), [`rows_by_cycles`](Self::rows_by_cycles),
/// [`to_csv`](Self::to_csv)); rows never touched stay invisible there,
/// so reports are identical to the former map-based implementation.
///
/// Stall cycles caused by load-use dependencies are charged to the
/// *producing load's* row — the convention the paper's Table I uses
/// (`lw!` shows 2 432 kcycles for 1 621 kinstr in column b: one bubble
/// per `pv.sdotsp` iteration).
///
/// # Example
///
/// ```
/// use rnnasip_sim::Stats;
///
/// let mut s = Stats::new();
/// s.record_name("addi", 1, 0);
/// s.record_name("p.lw!", 1, 0);
/// s.attribute_stall_name("p.lw!");
/// assert_eq!(s.cycles(), 3);
/// assert_eq!(s.instrs(), 2);
/// assert_eq!(s.row("p.lw!").cycles, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Stats {
    rows: Box<[Row; MnemonicId::COUNT]>,
    total_instrs: u64,
    total_cycles: u64,
    stall_cycles: u64,
    mac_ops: u64,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            rows: Box::new([Row::default(); MnemonicId::COUNT]),
            total_instrs: 0,
            total_cycles: 0,
            stall_cycles: 0,
            mac_ops: 0,
        }
    }
}

impl Stats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction of mnemonic `id` costing `cycles`
    /// cycles and performing `macs` 16-bit multiply-accumulates.
    #[inline]
    pub fn record(&mut self, id: MnemonicId, cycles: u64, macs: u32) {
        let row = &mut self.rows[id.index()];
        row.instrs += 1;
        row.cycles += cycles;
        self.total_instrs += 1;
        self.total_cycles += cycles;
        self.mac_ops += macs as u64;
    }

    /// Attributes one stall cycle to mnemonic `id` (no instruction
    /// retired).
    #[inline]
    pub fn attribute_stall(&mut self, id: MnemonicId) {
        self.rows[id.index()].cycles += 1;
        self.total_cycles += 1;
        self.stall_cycles += 1;
    }

    /// Records `instrs` retired instructions of mnemonic `id` costing
    /// `cycles` cycles and `macs` MACs *in total* — the bulk form of
    /// [`record`](Self::record) used by the hardware-loop block runner,
    /// which accounts a whole run of identical loop iterations with one
    /// row update per mnemonic instead of one per retire.
    ///
    /// `record_many(id, n, n * c, n * m)` leaves the statistics exactly as
    /// `n` calls of `record(id, c, m)` would.
    #[inline]
    pub fn record_many(&mut self, id: MnemonicId, instrs: u64, cycles: u64, macs: u64) {
        let row = &mut self.rows[id.index()];
        row.instrs += instrs;
        row.cycles += cycles;
        self.total_instrs += instrs;
        self.total_cycles += cycles;
        self.mac_ops += macs;
    }

    /// Attributes `stalls` stall cycles to mnemonic `id` — the bulk form
    /// of [`attribute_stall`](Self::attribute_stall), with the same
    /// equivalence guarantee as [`record_many`](Self::record_many).
    #[inline]
    pub fn attribute_stalls(&mut self, id: MnemonicId, stalls: u64) {
        self.rows[id.index()].cycles += stalls;
        self.total_cycles += stalls;
        self.stall_cycles += stalls;
    }

    /// [`record`](Self::record) addressed by mnemonic string — a
    /// convenience for tests and doctests, not the simulator hot path.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a stable mnemonic.
    pub fn record_name(&mut self, name: &str, cycles: u64, macs: u32) {
        let id = MnemonicId::from_name(name).unwrap_or_else(|| panic!("unknown mnemonic {name:?}"));
        self.record(id, cycles, macs);
    }

    /// [`attribute_stall`](Self::attribute_stall) addressed by mnemonic
    /// string.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a stable mnemonic.
    pub fn attribute_stall_name(&mut self, name: &str) {
        let id = MnemonicId::from_name(name).unwrap_or_else(|| panic!("unknown mnemonic {name:?}"));
        self.attribute_stall(id);
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total retired instructions.
    pub fn instrs(&self) -> u64 {
        self.total_instrs
    }

    /// Total stall cycles (subset of [`cycles`](Self::cycles)).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Total 16-bit multiply-accumulate operations performed — the unit of
    /// the paper's MMAC/s throughput metric.
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// The row for one mnemonic id.
    pub fn row_id(&self, id: MnemonicId) -> Row {
        self.rows[id.index()]
    }

    /// The row for one mnemonic (zero row if never executed or unknown).
    pub fn row(&self, mnemonic: &str) -> Row {
        MnemonicId::from_name(mnemonic)
            .map(|id| self.rows[id.index()])
            .unwrap_or_default()
    }

    /// All rows sorted by descending cycle count — the order Table I
    /// lists them in.
    pub fn rows_by_cycles(&self) -> Vec<(&'static str, Row)> {
        let mut v: Vec<_> = self.named_rows().collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
        v
    }

    /// Iterates all touched rows in mnemonic order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Row)> + '_ {
        let mut v: Vec<_> = self.named_rows().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v.into_iter()
    }

    /// Touched rows as `(name, row)` pairs, in id order.
    fn named_rows(&self) -> impl Iterator<Item = (&'static str, Row)> + '_ {
        MnemonicId::ALL
            .iter()
            .map(|id| (id.name(), self.rows[id.index()]))
            .filter(|(_, row)| !row.is_empty())
    }

    /// Merges another statistics object into this one (used to aggregate
    /// a whole benchmark suite from per-network runs).
    pub fn merge(&mut self, other: &Stats) {
        for (row, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            row.instrs += o.instrs;
            row.cycles += o.cycles;
        }
        self.total_instrs += other.total_instrs;
        self.total_cycles += other.total_cycles;
        self.stall_cycles += other.stall_cycles;
        self.mac_ops += other.mac_ops;
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Serializes the rows as CSV (`mnemonic,cycles,instrs`), sorted by
    /// descending cycles, with a trailing total row — the machine-readable
    /// companion of the Table I output.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("mnemonic,cycles,instrs\n");
        for (name, row) in self.rows_by_cycles() {
            out.push_str(&format!("{},{},{}\n", name, row.cycles, row.instrs));
        }
        out.push_str(&format!(
            "TOTAL,{},{}\n",
            self.total_cycles, self.total_instrs
        ));
        out
    }
}

impl fmt::Display for Stats {
    /// Formats a Table-I-style breakdown: mnemonic, kcycles, kinstr.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>12} {:>12}", "Instr.", "cycles", "instrs")?;
        for (name, row) in self.rows_by_cycles() {
            writeln!(f, "{:<12} {:>12} {:>12}", name, row.cycles, row.instrs)?;
        }
        writeln!(
            f,
            "{:<12} {:>12} {:>12}",
            "Total", self.total_cycles, self.total_instrs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_rows() {
        let mut s = Stats::new();
        s.record_name("add", 1, 0);
        s.record_name("p.mac", 1, 1);
        s.record_name("pv.sdotsp", 1, 2);
        s.attribute_stall_name("p.lw!");
        assert_eq!(s.cycles(), 4);
        assert_eq!(s.instrs(), 3);
        assert_eq!(s.stall_cycles(), 1);
        assert_eq!(s.mac_ops(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Stats::new();
        a.record_name("add", 1, 0);
        let mut b = Stats::new();
        b.record_name("add", 2, 0);
        b.record_name("sub", 1, 0);
        a.merge(&b);
        assert_eq!(
            a.row("add"),
            Row {
                instrs: 2,
                cycles: 3
            }
        );
        assert_eq!(a.instrs(), 3);
        assert_eq!(a.cycles(), 4);
    }

    #[test]
    fn rows_sorted_by_cycles_desc() {
        let mut s = Stats::new();
        s.record_name("add", 1, 0);
        s.record_name("sub", 5, 0);
        s.record_name("xor", 3, 0);
        let rows = s.rows_by_cycles();
        let names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["sub", "xor", "add"]);
    }

    #[test]
    fn csv_has_header_rows_and_total() {
        let mut s = Stats::new();
        s.record_name("addi", 2, 0);
        s.record_name("p.lw!", 5, 0);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "mnemonic,cycles,instrs");
        assert_eq!(lines[1], "p.lw!,5,1"); // sorted by cycles desc
        assert_eq!(lines[2], "addi,2,1");
        assert_eq!(lines[3], "TOTAL,7,2");
    }

    #[test]
    fn display_contains_total() {
        let mut s = Stats::new();
        s.record_name("add", 1, 0);
        let text = s.to_string();
        assert!(text.contains("Total"));
        assert!(text.contains("add"));
    }

    #[test]
    fn untouched_rows_are_invisible() {
        let mut s = Stats::new();
        s.record_name("add", 1, 0);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.rows_by_cycles().len(), 1);
        assert_eq!(s.row("sub"), Row::default());
        assert_eq!(s.row("not-a-mnemonic"), Row::default());
    }

    #[test]
    fn iter_is_name_sorted() {
        let mut s = Stats::new();
        s.record_name("sub", 1, 0);
        s.record_name("add", 1, 0);
        s.record_name("p.mac", 1, 0);
        let names: Vec<_> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["add", "p.mac", "sub"]);
    }

    #[test]
    #[should_panic(expected = "unknown mnemonic")]
    fn record_name_rejects_unknown() {
        Stats::new().record_name("bogus", 1, 0);
    }
}
