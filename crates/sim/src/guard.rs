//! ABFT checksum guards: in-band silent-data-corruption detection for
//! kernel regions.
//!
//! Every [`KernelRegion`] computes `out[j] = act((bias32[j] + W[j]·x)
//! >> 12)`. Summing the pre-activation accumulators over `j` and
//! swapping the summation order gives the algorithm-based fault-tolerance
//! identity this module checks, entirely in wrapping `i32` arithmetic
//! (all products are `i16 × i16`, exact in 32 bits):
//!
//! ```text
//!   Σ_j bias[j]  ⊞  Σ_k (Σ_j W[j][k]) ⊛ x[k]
//! = Σ_j (bias[j] ⊞ Σ_k W[j][k] ⊛ x[k])          (mod 2³²)
//! ```
//!
//! The inner column sums `c[k] = Σ_j W[j][k]` and the bias sum are
//! computed **once at compile time** from the clean staged weights
//! ([`GuardSpec::from_region`]). At every region exit the machine
//! recomputes both sides from *current* TCDM: the left side dots the
//! golden checksum row with the live input vector; the right side re-sums
//! the live weights and biases. A single-bit flip of `W[j][k]` shifts the
//! right side by `±2^b · x[k]` (`b ≤ 15`, `|x[k]| < 2¹⁵`, so the product
//! is nonzero mod 2³² exactly when `x[k] ≠ 0` — i.e. exactly when the
//! flip can corrupt an output); a bias flip shifts it by `±2^b ≠ 0`. The
//! exit check also recomputes the `n_out` activated outputs and compares
//! them to the halfwords the kernel wrote, catching datapath/register
//! corruption *inside* the region, and re-checks a small ledger of
//! produced activation windows so a flip landing in a buffer *between*
//! its producer and consumer regions is caught at the consumer's exit.
//!
//! Guards are observers: they never change outputs, `instret`,
//! per-mnemonic rows or the cycle counter. The modeled hardware cost of
//! the monitor — it snoops the kernel's existing `x`/output streams and
//! only pays a dedicated pass over the checksum row — is accounted as an
//! analytic per-entry surcharge in a separate counter
//! ([`GuardReport::guard_cycles`]), a pure function of the entry count,
//! so it is identical across the micro-op and shortcut execution tiers.

use crate::mem::Memory;
use crate::shortcut::{KernelRegion, ShortcutAct, ShortcutPtr};
use std::collections::HashMap;
use std::sync::Arc;

/// Ledger capacity: distinct produced activation windows tracked per
/// run. Far above any suite network's layer count.
const LEDGER_CAP: usize = 64;

/// Fixed per-entry surcharge cycles (compare-and-drain of the monitor's
/// accumulators at region exit).
const GUARD_BASE_CYCLES: u64 = 2;

/// One region's compile-time checksum data: the claim checked at every
/// run-time exit of the region.
#[derive(Clone, Debug)]
pub struct GuardSpec {
    /// The guarded kernel region (pc range + operand layout).
    pub region: KernelRegion,
    /// Golden column sums `c[k] = Σ_j W[j][k]` (wrapping), one per input
    /// element, computed from the clean staged weights.
    pub checksum: Vec<i32>,
    /// Golden wrapping sum of the `n_out` pre-shifted bias words.
    pub bias_sum: i32,
}

impl GuardSpec {
    /// Derives a region's guard from staged memory: reads the clean
    /// `n_out × n_in` weight matrix and bias words and folds the column
    /// sums. `None` if any operand lies outside memory (a malformed
    /// descriptor — the region is then simply left unguarded).
    pub fn from_region(mem: &Memory, region: &KernelRegion) -> Option<GuardSpec> {
        let n_in = region.n_in as usize;
        let n_out = region.n_out as usize;
        if n_in == 0 || n_out == 0 {
            return None;
        }
        let row_bytes = n_in * 2;
        let mut checksum = vec![0i32; n_in];
        let mut bias_sum = 0i32;
        for j in 0..n_out {
            let bias = mem
                .read_u32(region.bias32.wrapping_add(4 * j as u32))
                .ok()?;
            bias_sum = bias_sum.wrapping_add(bias as i32);
            let row = mem
                .byte_slice(
                    region.w_base.wrapping_add((j * row_bytes) as u32),
                    row_bytes,
                )
                .ok()?;
            for (c, wp) in checksum.iter_mut().zip(row.chunks_exact(2)) {
                *c = c.wrapping_add(i16::from_le_bytes([wp[0], wp[1]]) as i32);
            }
        }
        Some(GuardSpec {
            region: *region,
            checksum,
            bias_sum,
        })
    }

    /// The analytic cycle surcharge one guarded entry of this region
    /// costs: the monitor snoops the kernel's own `x` and output streams
    /// for free and pays one packed-SIMD pass over the checksum row plus
    /// a fixed compare-and-drain. A pure function of the region shape,
    /// so the surcharge is identical on every execution tier.
    pub fn entry_cycles(&self) -> u64 {
        GUARD_BASE_CYCLES + u64::from(self.region.n_in).div_ceil(2)
    }
}

/// Per-region pass/fail counters of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionGuard {
    /// Guarded entries of this region (0 when the region never ran).
    pub entries: u64,
    /// Entries whose exit check failed.
    pub fails: u64,
}

/// The guard verdicts of one run: one row per [`GuardSpec`], in spec
/// order, plus the run's total analytic surcharge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Per-region counters, index-aligned with the armed spec list.
    pub regions: Vec<RegionGuard>,
    /// Total analytic guard surcharge, in cycles. Kept out of the
    /// machine's cycle counter so guarded runs stay bit-identical.
    pub guard_cycles: u64,
    /// Whether the final-output window check (run after the outputs are
    /// read back) failed — corruption between the last region's exit and
    /// the readout.
    pub output_check_failed: bool,
}

impl GuardReport {
    /// Whether any guard tripped this run.
    pub fn failed(&self) -> bool {
        self.output_check_failed || self.regions.iter().any(|r| r.fails > 0)
    }

    /// Total guarded region entries.
    pub fn entries(&self) -> u64 {
        self.regions.iter().map(|r| r.entries).sum()
    }

    /// Total failed exits.
    pub fn fails(&self) -> u64 {
        self.regions.iter().map(|r| r.fails).sum()
    }

    /// Index of the first region with a failed exit, if any.
    pub fn first_failed_region(&self) -> Option<usize> {
        self.regions.iter().position(|r| r.fails > 0)
    }

    /// Folds another report in: counters add region-wise (the longer
    /// region list wins), surcharges add, output failures or.
    pub fn merge(&mut self, other: &GuardReport) {
        if other.regions.len() > self.regions.len() {
            self.regions
                .resize(other.regions.len(), RegionGuard::default());
        }
        for (a, b) in self.regions.iter_mut().zip(&other.regions) {
            a.entries += b.entries;
            a.fails += b.fails;
        }
        self.guard_cycles += other.guard_cycles;
        self.output_check_failed |= other.output_check_failed;
    }
}

/// One produced activation window: the wrapping halfword sum recorded at
/// its producer's exit, re-checked at any consumer's exit.
#[derive(Clone, Copy, Debug)]
struct LedgerEntry {
    base: u32,
    halfwords: u32,
    sum: i32,
}

/// A guard armed and waiting for its region's exit.
#[derive(Clone, Copy, Debug)]
struct Pending {
    gid: u32,
    start_idx: u32,
    x_base: u32,
    out_base: u32,
    /// Whether the entry-time pointer-cell reads resolved; an
    /// unresolvable entry fails at exit.
    resolved: bool,
}

/// The machine's guard state: armed specs, their micro-op boundary
/// indices, per-run counters and the activation ledger.
#[derive(Debug)]
pub(crate) struct GuardUnit {
    specs: Arc<Vec<GuardSpec>>,
    /// Micro-op index of each region's first op → spec index.
    starts: HashMap<u32, u32>,
    /// Spec index → micro-op index just past the region (`u32::MAX` when
    /// the region's boundaries don't map into the loaded program).
    ends: Vec<u32>,
    pending: Option<Pending>,
    counters: Vec<RegionGuard>,
    guard_cycles: u64,
    ledger: Vec<LedgerEntry>,
}

impl GuardUnit {
    /// Builds the unit for `specs` against a resolver from instruction
    /// address to micro-op index (the loaded program's fetch table).
    /// Regions whose boundaries don't resolve are reported but never
    /// armed.
    pub(crate) fn new(specs: Arc<Vec<GuardSpec>>, index_of: impl Fn(u32) -> Option<u32>) -> Self {
        let mut starts = HashMap::with_capacity(specs.len());
        let mut ends = Vec::with_capacity(specs.len());
        for (gid, spec) in specs.iter().enumerate() {
            let bounds = index_of(spec.region.start_addr).zip(index_of(spec.region.end_addr));
            match bounds {
                Some((s, e)) if e > s => {
                    starts.insert(s, gid as u32);
                    ends.push(e);
                }
                _ => ends.push(u32::MAX),
            }
        }
        let counters = vec![RegionGuard::default(); specs.len()];
        Self {
            specs,
            starts,
            ends,
            pending: None,
            counters,
            guard_cycles: 0,
            ledger: Vec::new(),
        }
    }

    /// Clears the per-run state (counters, surcharge, ledger, pending).
    pub(crate) fn reset_run(&mut self) {
        self.pending = None;
        for c in &mut self.counters {
            *c = RegionGuard::default();
        }
        self.guard_cycles = 0;
        self.ledger.clear();
    }

    /// The dispatch-boundary hook: called with the micro-op index about
    /// to execute. Finishes a pending guard whose region ends here, then
    /// arms a new one if a region starts here. A revisit of the pending
    /// region's own head (its internal loop) is ignored.
    pub(crate) fn boundary(&mut self, mem: &Memory, idx: u32) {
        if let Some(p) = self.pending {
            if idx == self.ends[p.gid as usize] {
                self.pending = None;
                self.finish(mem, p);
            } else if idx == p.start_idx {
                return;
            }
        }
        if let Some(&gid) = self.starts.get(&idx) {
            if let Some(p) = self.pending.take() {
                // Control left a region without passing its exit (never
                // the case for generated kernels): flag it.
                self.counters[p.gid as usize].fails += 1;
            }
            self.arm(mem, gid, idx);
        }
    }

    fn arm(&mut self, mem: &Memory, gid: u32, start_idx: u32) {
        let spec = &self.specs[gid as usize];
        self.counters[gid as usize].entries += 1;
        self.guard_cycles += spec.entry_cycles();
        let x = resolve(spec.region.x, mem);
        let out = resolve(spec.region.out, mem);
        self.pending = Some(Pending {
            gid,
            start_idx,
            x_base: x.unwrap_or(0),
            out_base: out.unwrap_or(0),
            resolved: x.is_some() && out.is_some(),
        });
    }

    fn finish(&mut self, mem: &Memory, p: Pending) {
        let spec = &self.specs[p.gid as usize];
        let ok = p.resolved && check_exit(spec, mem, p.x_base, p.out_base, &self.ledger);
        if !ok {
            self.counters[p.gid as usize].fails += 1;
        }
        // Producer ledger: dense stride-2 output windows become checkable
        // inputs of downstream regions. Recorded from current memory even
        // after a failed check, so the ledger always reflects what the
        // next consumer will actually read.
        if spec.region.out_stride == 2 && p.resolved {
            note(&mut self.ledger, mem, p.out_base, spec.region.n_out);
        }
    }

    /// Records (or refreshes) a produced window's halfword sum.
    pub(crate) fn note_range(&mut self, mem: &Memory, base: u32, halfwords: u32) {
        note(&mut self.ledger, mem, base, halfwords);
    }

    /// Re-checks a recorded window against current memory: `None` when
    /// no entry with this exact base/extent exists.
    pub(crate) fn verify_range(&self, mem: &Memory, base: u32, halfwords: u32) -> Option<bool> {
        let e = self
            .ledger
            .iter()
            .find(|e| e.base == base && e.halfwords == halfwords)?;
        Some(halfword_sum(mem, e.base, e.halfwords) == Some(e.sum))
    }

    /// Snapshot of the run's verdicts. A guard still pending (the run
    /// halted or faulted mid-region) counts as a failed exit.
    pub(crate) fn report(&self) -> GuardReport {
        let mut regions = self.counters.clone();
        if let Some(p) = &self.pending {
            regions[p.gid as usize].fails += 1;
        }
        GuardReport {
            regions,
            guard_cycles: self.guard_cycles,
            output_check_failed: false,
        }
    }
}

fn resolve(ptr: ShortcutPtr, mem: &Memory) -> Option<u32> {
    match ptr {
        ShortcutPtr::Const(a) => Some(a),
        ShortcutPtr::Cell(c) => mem.read_u32(c).ok(),
    }
}

/// Wrapping sum of `halfwords` sign-extended halfwords at `base`; `None`
/// out of bounds.
fn halfword_sum(mem: &Memory, base: u32, halfwords: u32) -> Option<i32> {
    let bytes = mem.byte_slice(base, halfwords as usize * 2).ok()?;
    let mut sum = 0i32;
    for hp in bytes.chunks_exact(2) {
        sum = sum.wrapping_add(i16::from_le_bytes([hp[0], hp[1]]) as i32);
    }
    Some(sum)
}

fn note(ledger: &mut Vec<LedgerEntry>, mem: &Memory, base: u32, halfwords: u32) {
    let Some(sum) = halfword_sum(mem, base, halfwords) else {
        return;
    };
    if let Some(e) = ledger.iter_mut().find(|e| e.base == base) {
        e.halfwords = halfwords;
        e.sum = sum;
    } else if ledger.len() < LEDGER_CAP {
        ledger.push(LedgerEntry {
            base,
            halfwords,
            sum,
        });
    }
}

/// The exit check: ledger freshness of the input window, the ABFT
/// checksum identity, and a recompute-and-compare of the written
/// outputs. All arithmetic mirrors the emitted kernel exactly (see
/// `ShortcutRegion::compute`): wrapping `i32` accumulation of `i16×i16`
/// products, `>> 12`, clamp to 16 bits, shared fixed-point activations.
fn check_exit(
    spec: &GuardSpec,
    mem: &Memory,
    x_base: u32,
    out_base: u32,
    ledger: &[LedgerEntry],
) -> bool {
    let r = &spec.region;
    let n_in = r.n_in as usize;
    let n_out = r.n_out as usize;
    let row_bytes = n_in * 2;

    // Input freshness: any recorded window overlapping the x range must
    // still sum to what its producer recorded. The x vector is
    // store-disjoint from the region's own writes, so checking at exit
    // also covers flips that landed while the region ran.
    let x_end = x_base.wrapping_add(row_bytes as u32);
    for e in ledger {
        let e_end = e.base.wrapping_add(e.halfwords * 2);
        if e.base < x_end && x_base < e_end && halfword_sum(mem, e.base, e.halfwords) != Some(e.sum)
        {
            return false;
        }
    }

    let Ok(x) = mem.byte_slice(x_base, row_bytes) else {
        return false;
    };
    let mut lhs = spec.bias_sum;
    for (c, xp) in spec.checksum.iter().zip(x.chunks_exact(2)) {
        let xv = i16::from_le_bytes([xp[0], xp[1]]) as i32;
        lhs = lhs.wrapping_add(c.wrapping_mul(xv));
    }

    let mut rhs = 0i32;
    for j in 0..n_out {
        let Ok(bias) = mem.read_u32(r.bias32.wrapping_add(4 * j as u32)) else {
            return false;
        };
        let Ok(row) = mem.byte_slice(r.w_base.wrapping_add((j * row_bytes) as u32), row_bytes)
        else {
            return false;
        };
        let mut acc = bias as i32;
        for (wp, xp) in row.chunks_exact(2).zip(x.chunks_exact(2)) {
            let w = i16::from_le_bytes([wp[0], wp[1]]) as i32;
            let xv = i16::from_le_bytes([xp[0], xp[1]]) as i32;
            acc = acc.wrapping_add(w.wrapping_mul(xv));
        }
        rhs = rhs.wrapping_add(acc);

        let v = (acc >> 12).clamp(-32768, 32767);
        let v = match r.act {
            ShortcutAct::None => v,
            ShortcutAct::Relu => v.max(0),
            ShortcutAct::Tanh => {
                rnnasip_fixed::hw_tanh(rnnasip_fixed::Q3p12::from_raw(v as i16)).raw() as i32
            }
            ShortcutAct::Sigmoid => {
                rnnasip_fixed::hw_sig(rnnasip_fixed::Q3p12::from_raw(v as i16)).raw() as i32
            }
        };
        let Ok(got) = mem.read_u16(out_base.wrapping_add(j as u32 * r.out_stride)) else {
            return false;
        };
        if got as i16 as i32 != v {
            return false;
        }
    }
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{KernelRegion, ShortcutAct, ShortcutPtr};

    fn region(w_base: u32, bias32: u32, x: u32, out: u32, n_in: u32, n_out: u32) -> KernelRegion {
        KernelRegion {
            start_addr: 0,
            end_addr: 4,
            w_base,
            bias32,
            x: ShortcutPtr::Const(x),
            out: ShortcutPtr::Const(out),
            out_stride: 2,
            n_in,
            n_out,
            act: ShortcutAct::None,
        }
    }

    /// Stages a tiny kernel's operands and writes the correct outputs,
    /// returning (memory, region).
    fn staged() -> (Memory, KernelRegion) {
        let mut mem = Memory::new(4096);
        let r = region(0x100, 0x200, 0x300, 0x400, 4, 3);
        let w: [[i16; 4]; 3] = [[100, -200, 300, -400], [7, 11, -13, 17], [0, -1, 2, -3]];
        let bias: [i32; 3] = [1 << 12, -(2 << 12), 12345];
        let x: [i16; 4] = [500, -600, 700, 800];
        for (j, row) in w.iter().enumerate() {
            for (k, &v) in row.iter().enumerate() {
                mem.write_u16(r.w_base + (j * 4 + k) as u32 * 2, v as u16)
                    .unwrap();
            }
        }
        for (j, &b) in bias.iter().enumerate() {
            mem.write_u32(r.bias32 + 4 * j as u32, b as u32).unwrap();
        }
        for (k, &v) in x.iter().enumerate() {
            mem.write_u16(0x300 + 2 * k as u32, v as u16).unwrap();
        }
        for j in 0..3usize {
            let mut acc = bias[j];
            for k in 0..4usize {
                acc = acc.wrapping_add((w[j][k] as i32).wrapping_mul(x[k] as i32));
            }
            let v = (acc >> 12).clamp(-32768, 32767);
            mem.write_u16(0x400 + 2 * j as u32, v as u16).unwrap();
        }
        (mem, r)
    }

    #[test]
    fn clean_region_passes() {
        let (mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        assert!(check_exit(&spec, &mem, 0x300, 0x400, &[]));
    }

    #[test]
    fn weight_flip_with_live_input_is_detected() {
        let (mut mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        for bit in 0..16 {
            let before = mem.read_u16(r.w_base + 2).unwrap();
            mem.write_u16(r.w_base + 2, before ^ (1 << bit)).unwrap();
            assert!(
                !check_exit(&spec, &mem, 0x300, 0x400, &[]),
                "bit {bit} flip escaped"
            );
            mem.write_u16(r.w_base + 2, before).unwrap();
        }
    }

    #[test]
    fn bias_flip_is_detected_even_when_requant_masks_it() {
        let (mut mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        // Low bias bits vanish under `>> 12` — the outputs stay golden,
        // but the checksum still sees the corrupted memory.
        let before = mem.read_u32(r.bias32 + 4).unwrap();
        mem.write_u32(r.bias32 + 4, before ^ 1).unwrap();
        assert!(!check_exit(&spec, &mem, 0x300, 0x400, &[]));
    }

    #[test]
    fn output_flip_after_write_is_detected() {
        let (mut mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        let before = mem.read_u16(0x402).unwrap();
        mem.write_u16(0x402, before ^ (1 << 9)).unwrap();
        assert!(!check_exit(&spec, &mem, 0x300, 0x400, &[]));
    }

    #[test]
    fn ledger_catches_input_flip_between_producer_and_consumer() {
        let (mut mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        let mut ledger = Vec::new();
        note(&mut ledger, &mem, 0x300, 4);
        // Flip a bit of x *after* it was recorded: the kernel computes a
        // consistent (wrong) function of the flipped x, so the checksum
        // alone cannot see it — the ledger does.
        let before = mem.read_u16(0x300).unwrap();
        mem.write_u16(0x300, before ^ (1 << 3)).unwrap();
        // Rewrite the outputs the kernel would produce from flipped x so
        // only the ledger can object.
        for j in 0..3u32 {
            let mut acc = mem.read_u32(r.bias32 + 4 * j).unwrap() as i32;
            for k in 0..4u32 {
                let w = mem.read_u16(r.w_base + (j * 4 + k) * 2).unwrap() as i16 as i32;
                let xv = mem.read_u16(0x300 + 2 * k).unwrap() as i16 as i32;
                acc = acc.wrapping_add(w.wrapping_mul(xv));
            }
            let v = (acc >> 12).clamp(-32768, 32767);
            mem.write_u16(0x400 + 2 * j, v as u16).unwrap();
        }
        assert!(!check_exit(&spec, &mem, 0x300, 0x400, &ledger));
        // Without the ledger the same state passes — the identity holds
        // for the corrupted input.
        assert!(check_exit(&spec, &mem, 0x300, 0x400, &[]));
    }

    #[test]
    fn zero_input_column_masks_weight_flip_and_output() {
        let (mut mem, r) = staged();
        let spec = GuardSpec::from_region(&mem, &r).unwrap();
        // Zero x[1], recompute outputs, then flip W[0][1]: the flip
        // cannot corrupt any output and the guard (correctly) passes.
        mem.write_u16(0x302, 0).unwrap();
        for j in 0..3u32 {
            let mut acc = mem.read_u32(r.bias32 + 4 * j).unwrap() as i32;
            for k in 0..4u32 {
                let w = mem.read_u16(r.w_base + (j * 4 + k) * 2).unwrap() as i16 as i32;
                let xv = mem.read_u16(0x300 + 2 * k).unwrap() as i16 as i32;
                acc = acc.wrapping_add(w.wrapping_mul(xv));
            }
            mem.write_u16(0x400 + 2 * j, (acc >> 12).clamp(-32768, 32767) as u16)
                .unwrap();
        }
        assert!(check_exit(&spec, &mem, 0x300, 0x400, &[]));
        let before = mem.read_u16(r.w_base + 2).unwrap();
        mem.write_u16(r.w_base + 2, before ^ (1 << 7)).unwrap();
        assert!(check_exit(&spec, &mem, 0x300, 0x400, &[]));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = GuardReport {
            regions: vec![RegionGuard {
                entries: 2,
                fails: 0,
            }],
            guard_cycles: 10,
            output_check_failed: false,
        };
        let b = GuardReport {
            regions: vec![
                RegionGuard {
                    entries: 3,
                    fails: 1,
                },
                RegionGuard {
                    entries: 4,
                    fails: 0,
                },
            ],
            guard_cycles: 7,
            output_check_failed: true,
        };
        a.merge(&b);
        assert_eq!(
            a.regions[0],
            RegionGuard {
                entries: 5,
                fails: 1
            }
        );
        assert_eq!(
            a.regions[1],
            RegionGuard {
                entries: 4,
                fails: 0
            }
        );
        assert_eq!(a.guard_cycles, 17);
        assert!(a.failed());
        assert_eq!(a.first_failed_region(), Some(0));
    }
}
