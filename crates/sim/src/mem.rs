//! The tightly-coupled data memory (TCDM).

use crate::error::SimError;
use rnnasip_fixed::Q3p12;
use std::sync::Arc;

/// Granularity of dirty-region tracking, in bytes.
///
/// Every write marks its 64-byte block dirty; restoring from a
/// [`MemImage`] copies only dirty blocks back. 64 bytes keeps the
/// bitset small (one bit per block, 8 KiB of bits for a 4 MiB TCDM)
/// while staying close to the actual footprint of kernel writes
/// (activation buffers, gate buffers, step globals).
const BLOCK_BYTES: usize = 64;
const BLOCK_SHIFT: u32 = 6;

/// An immutable snapshot of a [`Memory`]'s contents.
///
/// Snapshots share their bytes behind an [`Arc`], so cloning one (for
/// example when a compiled-network artifact is cloned per worker) costs
/// a reference count, not a copy. Produce one with [`Memory::image`];
/// restore with [`Memory::restore_image`] (dirty blocks only) or
/// [`Memory::from_image`] / [`Memory::load_image`] (full copy).
#[derive(Clone, Debug)]
pub struct MemImage {
    bytes: Arc<[u8]>,
}

impl MemImage {
    /// Snapshot size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw snapshot bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// The reusable core of every tracked byte store: a flat byte array
/// plus a dirty-block bitmap (one bit per [`BLOCK_BYTES`] block, set on
/// every write since the last snapshot load/restore).
///
/// [`Memory`] wraps this with bounds/alignment checking and the Q3.12
/// accessors the kernels use; the cluster's banked TCDM shares the same
/// implementation through its [`Memory`] storage, so the bulk-patch and
/// incremental-restore logic exists exactly once. All offsets here are
/// pre-validated `usize` indices — out-of-range access panics, which is
/// why the type only crosses the crate boundary behind checked wrappers.
#[derive(Clone, Debug)]
pub struct TrackedMem {
    bytes: Vec<u8>,
    dirty: Vec<u64>,
}

fn dirty_words(size: usize) -> usize {
    size.div_ceil(BLOCK_BYTES).div_ceil(64)
}

impl TrackedMem {
    /// Creates a zero-initialised store of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
            dirty: vec![0; dirty_words(size)],
        }
    }

    /// Creates a store whose contents are a full copy of `src`, with no
    /// blocks marked dirty.
    pub fn from_bytes(src: &[u8]) -> Self {
        Self {
            bytes: src.to_vec(),
            dirty: vec![0; dirty_words(src.len())],
        }
    }

    /// Store size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Marks the block containing `addr` dirty.
    #[inline]
    pub fn mark_dirty(&mut self, addr: usize) {
        let block = addr >> BLOCK_SHIFT;
        self.dirty[block >> 6] |= 1 << (block & 63);
    }

    /// Marks every block touched by `[addr, addr + len)` dirty.
    #[inline]
    pub fn mark_dirty_range(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        for block in (addr >> BLOCK_SHIFT)..=((addr + len - 1) >> BLOCK_SHIFT) {
            self.dirty[block >> 6] |= 1 << (block & 63);
        }
    }

    /// Bulk-copies `src` to `addr`, marking every touched block dirty.
    /// The caller must have bounds-checked the range.
    #[inline]
    pub fn write(&mut self, addr: usize, src: &[u8]) {
        self.bytes[addr..addr + src.len()].copy_from_slice(src);
        self.mark_dirty_range(addr, src.len());
    }

    /// Replaces the whole contents with `src` and clears all dirty bits.
    ///
    /// # Panics
    ///
    /// Panics if `src` differs in size from the store.
    pub fn load_from(&mut self, src: &[u8]) {
        assert_eq!(src.len(), self.bytes.len(), "image size mismatch");
        self.bytes.copy_from_slice(src);
        self.dirty.fill(0);
    }

    /// Copies back only the blocks written since the last snapshot
    /// load/restore, clearing the dirty bits. Returns the number of
    /// bytes copied. Assumes `src` is the snapshot the store last
    /// started from (otherwise clean-but-divergent blocks stay stale).
    ///
    /// # Panics
    ///
    /// Panics if `src` differs in size from the store.
    pub fn restore_from(&mut self, src: &[u8]) -> usize {
        assert_eq!(src.len(), self.bytes.len(), "image size mismatch");
        let mut restored = 0;
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let start = ((w << 6) + bit) << BLOCK_SHIFT;
                if start >= self.bytes.len() {
                    continue;
                }
                let end = (start + BLOCK_BYTES).min(self.bytes.len());
                self.bytes[start..end].copy_from_slice(&src[start..end]);
                restored += end - start;
            }
            *word = 0;
        }
        restored
    }

    /// Bytes covered by currently-dirty blocks (an upper bound on what
    /// the next [`restore_from`](Self::restore_from) will copy).
    pub fn dirty_bytes(&self) -> usize {
        let blocks: usize = self.dirty.iter().map(|w| w.count_ones() as usize).sum();
        (blocks * BLOCK_BYTES).min(self.bytes.len())
    }

    /// Fills the store with zeros and marks everything dirty.
    pub fn fill_zero(&mut self) {
        self.bytes.fill(0);
        self.dirty.fill(u64::MAX);
    }

    /// Flips one bit of the byte at `addr`. Returns `false` (and changes
    /// nothing) when `addr` is out of bounds. A silent flip skips dirty
    /// marking — see [`Memory::flip_bit`].
    pub fn flip_bit(&mut self, addr: usize, bit: u32, silent: bool) -> bool {
        if addr >= self.bytes.len() {
            return false;
        }
        self.bytes[addr] ^= 1 << (bit & 7);
        if !silent {
            self.mark_dirty(addr);
        }
        true
    }
}

/// Byte-addressable, little-endian data memory with single-cycle access.
///
/// RI5CY-class cores sit next to a TCDM with deterministic single-cycle
/// latency; there is no cache model. Accesses are bounds-checked and must
/// be naturally aligned — the optimized kernels never issue misaligned
/// accesses, so an unaligned address indicates a code-generation bug and
/// is reported as an error rather than silently split into two accesses.
///
/// The byte store and its dirty-block bitmap live in a [`TrackedMem`];
/// `Memory` adds the checked, typed access surface.
///
/// # Example
///
/// ```
/// use rnnasip_sim::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.write_u32(0x10, 0xDEAD_BEEF)?;
/// assert_eq!(mem.read_u16(0x10)?, 0xBEEF);
/// # Ok::<(), rnnasip_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    t: TrackedMem,
}

impl Memory {
    /// Creates a zero-initialised memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            t: TrackedMem::new(size),
        }
    }

    /// Creates a memory whose contents are a full copy of `image`, with
    /// no blocks marked dirty.
    pub fn from_image(image: &MemImage) -> Self {
        Self {
            t: TrackedMem::from_bytes(image.as_bytes()),
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.t.len()
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        self.t.as_bytes()
    }

    /// Takes an immutable snapshot of the current contents.
    pub fn image(&self) -> MemImage {
        MemImage {
            bytes: Arc::from(self.t.as_bytes()),
        }
    }

    /// Replaces the whole contents with `image` and clears all dirty
    /// bits (full copy — use [`restore_image`](Self::restore_image) for
    /// the incremental path).
    ///
    /// # Panics
    ///
    /// Panics if the image size differs from the memory size.
    pub fn load_image(&mut self, image: &MemImage) {
        self.t.load_from(image.as_bytes());
    }

    /// Copies back only the blocks written since the last snapshot
    /// load/restore, clearing the dirty bits. Returns the number of
    /// bytes copied.
    ///
    /// This assumes `image` is the same snapshot the memory last
    /// started from (otherwise clean-but-divergent blocks stay stale) —
    /// exactly the compile-once / run-many contract.
    ///
    /// # Panics
    ///
    /// Panics if the image size differs from the memory size.
    pub fn restore_image(&mut self, image: &MemImage) -> usize {
        self.t.restore_from(image.as_bytes())
    }

    /// Bytes covered by currently-dirty blocks (an upper bound on what
    /// the next [`restore_image`](Self::restore_image) will copy).
    pub fn dirty_bytes(&self) -> usize {
        self.t.dirty_bytes()
    }

    #[inline]
    fn check(&self, addr: u32, size: u32) -> Result<usize, SimError> {
        let a = addr as usize;
        if !a.is_multiple_of(size as usize) {
            return Err(SimError::Misaligned { addr, size });
        }
        if a + size as usize > self.t.len() {
            return Err(SimError::MemOutOfBounds { addr, size });
        }
        Ok(a)
    }

    /// Reads a byte.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn read_u8(&self, addr: u32) -> Result<u8, SimError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes()[a])
    }

    /// Reads a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] for odd addresses,
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn read_u16(&self, addr: u32) -> Result<u16, SimError> {
        let a = self.check(addr, 2)?;
        let b = self.bytes();
        Ok(u16::from_le_bytes([b[a], b[a + 1]]))
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    #[inline]
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        let a = self.check(addr, 4)?;
        let word: [u8; 4] = self.bytes()[a..a + 4].try_into().unwrap();
        Ok(u32::from_le_bytes(word))
    }

    /// Writes a byte.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), SimError> {
        let a = self.check(addr, 1)?;
        self.t.write(a, &[value]);
        Ok(())
    }

    /// Writes a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), SimError> {
        let a = self.check(addr, 2)?;
        self.t.write(a, &value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = self.check(addr, 4)?;
        self.t.write(a, &value.to_le_bytes());
        Ok(())
    }

    /// Writes a slice of Q3.12 values as consecutive halfwords.
    ///
    /// This is the layout every kernel expects: element `k` at
    /// `addr + 2k`, so a `lw` pulls elements `2k` and `2k+1` into the two
    /// `v2s` lanes.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_q3p12_slice(&mut self, addr: u32, values: &[Q3p12]) -> Result<(), SimError> {
        for (k, v) in values.iter().enumerate() {
            self.write_u16(addr + 2 * k as u32, v.raw() as u16)?;
        }
        Ok(())
    }

    /// Reads `len` consecutive Q3.12 halfwords.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn read_q3p12_slice(&self, addr: u32, len: usize) -> Result<Vec<Q3p12>, SimError> {
        let mut out = Vec::with_capacity(len);
        self.read_q3p12_into(addr, len, &mut out)?;
        Ok(out)
    }

    /// Reads `len` consecutive Q3.12 halfwords into a caller-owned
    /// buffer (cleared first), with a single bounds/alignment check for
    /// the whole range — the allocation-free twin of
    /// [`read_q3p12_slice`](Self::read_q3p12_slice) for hot run loops
    /// that read outputs back every inference.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`]; `out` is
    /// cleared but not written on error.
    pub fn read_q3p12_into(
        &self,
        addr: u32,
        len: usize,
        out: &mut Vec<Q3p12>,
    ) -> Result<(), SimError> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        let a = self.check_range(addr, 2, 2 * len)?;
        out.extend(
            self.bytes()[a..a + 2 * len]
                .chunks_exact(2)
                .map(|h| Q3p12::from_raw(i16::from_le_bytes([h[0], h[1]]))),
        );
        Ok(())
    }

    /// Writes a raw byte slice in one bulk copy, marking every touched
    /// 64-byte block dirty. This is the input-patch fast path: one
    /// bounds check and one `memcpy` instead of a checked halfword write
    /// per element. No alignment is required.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the range does not fit; memory
    /// is unchanged on error.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), SimError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let a = self.check_range(addr, 1, bytes.len())?;
        self.t.write(a, bytes);
        Ok(())
    }

    /// Range twin of [`check`](Self::check): the whole `[addr, addr+len)`
    /// span must fit, and `addr` must be aligned to `align`.
    #[inline]
    /// Borrows `len` raw bytes starting at `addr` — the zero-copy
    /// operand view used by the kernel-shortcut handlers.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the range runs past the end of
    /// memory.
    pub(crate) fn byte_slice(&self, addr: u32, len: usize) -> Result<&[u8], SimError> {
        let a = self.check_range(addr, 1, len)?;
        Ok(&self.bytes()[a..a + len])
    }

    fn check_range(&self, addr: u32, align: u32, len: usize) -> Result<usize, SimError> {
        let a = addr as usize;
        if !a.is_multiple_of(align as usize) {
            return Err(SimError::Misaligned { addr, size: align });
        }
        if a.checked_add(len).is_none_or(|end| end > self.t.len()) {
            return Err(SimError::MemOutOfBounds {
                addr,
                size: len.min(u32::MAX as usize) as u32,
            });
        }
        Ok(a)
    }

    /// Fills the whole memory with zeros and marks everything dirty.
    pub fn clear(&mut self) {
        self.t.fill_zero();
    }

    /// Flips one bit of the byte at `addr`, as a fault-injection
    /// primitive. Returns `false` (and changes nothing) when `addr` is
    /// out of bounds.
    ///
    /// A *tracked* flip (`silent == false`) marks the containing block
    /// dirty, so [`restore_image`](Self::restore_image) undoes it like
    /// any kernel write. A *silent* flip leaves the dirty bitmap alone —
    /// modelling a particle strike the write-tracking hardware never
    /// saw — and therefore survives an incremental restore; only a full
    /// [`load_image`](Self::load_image) is guaranteed to clear it.
    pub fn flip_bit(&mut self, addr: u32, bit: u32, silent: bool) -> bool {
        self.t.flip_bit(addr as usize, bit, silent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0x0403_0201).unwrap();
        assert_eq!(mem.read_u8(0).unwrap(), 0x01);
        assert_eq!(mem.read_u8(3).unwrap(), 0x04);
        assert_eq!(mem.read_u16(2).unwrap(), 0x0403);
    }

    #[test]
    fn bounds_are_enforced() {
        let mem = Memory::new(16);
        assert!(matches!(
            mem.read_u32(16),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(mem.read_u32(14), Err(SimError::Misaligned { .. })));
        assert!(mem.read_u16(14).is_ok());
    }

    #[test]
    fn misalignment_is_an_error() {
        let mut mem = Memory::new(64);
        assert!(matches!(
            mem.write_u16(1, 7),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            mem.write_u32(2, 7),
            Err(SimError::Misaligned { .. })
        ));
    }

    #[test]
    fn restore_undoes_writes_and_scales_with_dirt() {
        let mut mem = Memory::new(4096);
        mem.write_u32(0x100, 0xAAAA_5555).unwrap();
        let image = mem.image();
        // A fresh snapshot load leaves nothing dirty.
        mem.load_image(&image);
        assert_eq!(mem.dirty_bytes(), 0);
        assert_eq!(mem.restore_image(&image), 0);
        // Scribble over two distant blocks.
        mem.write_u16(0x0, 0xDEAD).unwrap();
        mem.write_u32(0x100, 0).unwrap();
        mem.write_u8(0xFFF, 7).unwrap();
        assert_eq!(mem.dirty_bytes(), 3 * 64);
        let restored = mem.restore_image(&image);
        assert_eq!(restored, 3 * 64);
        assert_eq!(mem.read_u16(0x0).unwrap(), 0);
        assert_eq!(mem.read_u32(0x100).unwrap(), 0xAAAA_5555);
        assert_eq!(mem.read_u8(0xFFF).unwrap(), 0);
        assert_eq!(mem.dirty_bytes(), 0);
    }

    #[test]
    fn from_image_copies_contents_clean() {
        let mut mem = Memory::new(256);
        mem.write_u32(8, 0x0102_0304).unwrap();
        let image = mem.image();
        let copy = Memory::from_image(&image);
        assert_eq!(copy.size(), 256);
        assert_eq!(copy.read_u32(8).unwrap(), 0x0102_0304);
        assert_eq!(copy.dirty_bytes(), 0);
    }

    #[test]
    fn clear_marks_everything_dirty() {
        // 100 bytes: final block is partial, exercising the tail guard.
        let mut mem = Memory::new(100);
        mem.write_u8(42, 9).unwrap();
        let image = mem.image();
        let mut other = Memory::from_image(&image);
        other.clear();
        assert_eq!(other.read_u8(42).unwrap(), 0);
        let restored = other.restore_image(&image);
        assert_eq!(restored, 100);
        assert_eq!(other.read_u8(42).unwrap(), 9);
    }

    /// A multi-halfword store whose data straddles a 64-byte block
    /// boundary must mark *both* blocks dirty — each element write marks
    /// its own block, so nothing on the far side of the boundary can be
    /// left stale for the next restore.
    #[test]
    fn slice_write_across_block_boundary_dirties_both_blocks() {
        let mut mem = Memory::new(256);
        let image = mem.image();
        mem.load_image(&image);
        assert_eq!(mem.dirty_bytes(), 0);
        // Four halfwords at 60, 62, 64, 66: the first two land in block
        // 0, the last two in block 1.
        let vals: Vec<Q3p12> = (1..=4).map(Q3p12::from_raw).collect();
        mem.write_q3p12_slice(60, &vals).unwrap();
        assert_eq!(mem.dirty_bytes(), 2 * 64, "both straddled blocks dirty");
        let restored = mem.restore_image(&image);
        assert_eq!(restored, 2 * 64);
        for k in 0..4 {
            assert_eq!(mem.read_u16(60 + 2 * k).unwrap(), 0, "element {k} undone");
        }
    }

    /// Same edge through the machine: a kernel whose stores straddle a
    /// block boundary is fully undone by [`crate::Machine::rewind`].
    #[test]
    fn rewind_restores_stores_on_both_sides_of_a_block_boundary() {
        use crate::{Machine, Program};
        use rnnasip_isa::{AluImmOp, Instr, Reg, StoreOp};
        // sw at 60 writes bytes 60..64 (block 0); sw at 64 writes bytes
        // 64..68 (block 1): the store data crosses the boundary.
        let prog = Program::from_instrs(
            0,
            vec![
                Instr::OpImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: -1,
                },
                Instr::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::ZERO,
                    offset: 60,
                },
                Instr::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::ZERO,
                    offset: 64,
                },
                Instr::Ecall,
            ],
        );
        let mut mem = Memory::new(256);
        mem.write_u32(60, 0x1111_1111).unwrap();
        mem.write_u32(64, 0x2222_2222).unwrap();
        let image = mem.image();
        mem.load_image(&image);
        let mut m = Machine::with_memory(mem);
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(m.mem().read_u32(60).unwrap(), 0xFFFF_FFFF);
        assert_eq!(m.mem().read_u32(64).unwrap(), 0xFFFF_FFFF);
        assert_eq!(m.mem().dirty_bytes(), 2 * 64);
        let restored = m.rewind(&image);
        assert_eq!(restored, 2 * 64, "both blocks restored");
        assert_eq!(m.mem().read_u32(60).unwrap(), 0x1111_1111);
        assert_eq!(m.mem().read_u32(64).unwrap(), 0x2222_2222);
    }

    #[test]
    fn q3p12_slice_round_trip() {
        let mut mem = Memory::new(64);
        let vals: Vec<Q3p12> = [-1.0, 0.5, 7.75, -8.0]
            .iter()
            .map(|&v| Q3p12::from_f64(v))
            .collect();
        mem.write_q3p12_slice(8, &vals).unwrap();
        assert_eq!(mem.read_q3p12_slice(8, 4).unwrap(), vals);
        // Packed pair view: element 0 in the low half of the word.
        let word = mem.read_u32(8).unwrap();
        assert_eq!(word as u16 as i16, vals[0].raw());
        assert_eq!((word >> 16) as u16 as i16, vals[1].raw());
    }

    #[test]
    fn write_bytes_matches_elementwise_writes_and_dirty_marking() {
        // A bulk write spanning three blocks must leave memory and the
        // dirty bitmap exactly as the per-halfword path would.
        let mut a = Memory::new(512);
        let mut b = Memory::new(512);
        let vals: Vec<Q3p12> = (0..80).map(|k| Q3p12::from_raw(k * 257)).collect();
        let bytes: Vec<u8> = vals
            .iter()
            .flat_map(|v| (v.raw() as u16).to_le_bytes())
            .collect();
        a.write_bytes(60, &bytes).unwrap(); // unaligned block offset
        b.write_q3p12_slice(60, &vals).unwrap();
        assert_eq!(a.read_q3p12_slice(60, vals.len()).unwrap(), vals);
        assert_eq!(a.dirty_bytes(), b.dirty_bytes());
        let image = Memory::new(512).image();
        assert_eq!(a.restore_image(&image), b.restore_image(&image));
    }

    #[test]
    fn write_bytes_rejects_out_of_bounds_without_writing() {
        let mut mem = Memory::new(64);
        assert!(mem.write_bytes(60, &[1, 2, 3, 4, 5]).is_err());
        assert_eq!(mem.dirty_bytes(), 0, "failed write must not touch state");
        assert!(mem.write_bytes(u32::MAX, &[1]).is_err());
        mem.write_bytes(62, &[0xAA, 0xBB]).unwrap(); // exactly to the edge
        assert_eq!(mem.read_u16(62).unwrap(), 0xBBAA);
    }

    #[test]
    fn tracked_mem_restore_and_range_marking() {
        let mut t = TrackedMem::new(200);
        let snap = t.as_bytes().to_vec();
        // A range write straddling blocks 0 and 1 dirties both.
        t.write(60, &[0xAB; 8]);
        assert_eq!(t.dirty_bytes(), 2 * 64);
        assert_eq!(t.restore_from(&snap), 2 * 64);
        assert_eq!(t.as_bytes()[60], 0);
        assert_eq!(t.dirty_bytes(), 0);
        // A zero-length range marks nothing.
        t.mark_dirty_range(100, 0);
        assert_eq!(t.dirty_bytes(), 0);
        // fill_zero dirties the whole (partial-tail) store.
        t.fill_zero();
        assert_eq!(t.restore_from(&snap), 200);
    }

    #[test]
    fn tracked_mem_flip_bit_bounds_and_silence() {
        let mut t = TrackedMem::from_bytes(&[0u8; 64]);
        assert!(!t.flip_bit(64, 0, false), "out of bounds flip is a no-op");
        assert!(t.flip_bit(3, 1, true));
        assert_eq!(t.as_bytes()[3], 2);
        assert_eq!(t.dirty_bytes(), 0, "silent flip leaves bitmap alone");
        assert!(t.flip_bit(3, 1, false));
        assert_eq!(t.dirty_bytes(), 64, "tracked flip marks its block");
    }

    #[test]
    fn read_q3p12_into_reuses_the_buffer() {
        let mut mem = Memory::new(64);
        let vals: Vec<Q3p12> = (0..8).map(|k| Q3p12::from_raw(k - 4)).collect();
        mem.write_q3p12_slice(16, &vals).unwrap();
        let mut out = Vec::new();
        mem.read_q3p12_into(16, 8, &mut out).unwrap();
        assert_eq!(out, vals);
        let cap = out.capacity();
        mem.read_q3p12_into(16, 8, &mut out).unwrap();
        assert_eq!(out, vals);
        assert_eq!(out.capacity(), cap, "re-read must not reallocate");
        // Errors clear the buffer and match the per-element path's kind.
        assert!(mem.read_q3p12_into(15, 2, &mut out).is_err());
        assert!(out.is_empty());
        assert!(mem.read_q3p12_into(60, 4, &mut out).is_err());
    }
}
