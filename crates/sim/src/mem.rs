//! The tightly-coupled data memory (TCDM).

use crate::error::SimError;
use rnnasip_fixed::Q3p12;

/// Byte-addressable, little-endian data memory with single-cycle access.
///
/// RI5CY-class cores sit next to a TCDM with deterministic single-cycle
/// latency; there is no cache model. Accesses are bounds-checked and must
/// be naturally aligned — the optimized kernels never issue misaligned
/// accesses, so an unaligned address indicates a code-generation bug and
/// is reported as an error rather than silently split into two accesses.
///
/// # Example
///
/// ```
/// use rnnasip_sim::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.write_u32(0x10, 0xDEAD_BEEF)?;
/// assert_eq!(mem.read_u16(0x10)?, 0xBEEF);
/// # Ok::<(), rnnasip_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-initialised memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, SimError> {
        let a = addr as usize;
        if !a.is_multiple_of(size as usize) {
            return Err(SimError::Misaligned { addr, size });
        }
        if a + size as usize > self.bytes.len() {
            return Err(SimError::MemOutOfBounds { addr, size });
        }
        Ok(a)
    }

    /// Reads a byte.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn read_u8(&self, addr: u32) -> Result<u8, SimError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a])
    }

    /// Reads a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] for odd addresses,
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn read_u16(&self, addr: u32) -> Result<u16, SimError> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Writes a byte.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] past the end of memory.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), SimError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = value;
        Ok(())
    }

    /// Writes a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), SimError> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a slice of Q3.12 values as consecutive halfwords.
    ///
    /// This is the layout every kernel expects: element `k` at
    /// `addr + 2k`, so a `lw` pulls elements `2k` and `2k+1` into the two
    /// `v2s` lanes.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn write_q3p12_slice(&mut self, addr: u32, values: &[Q3p12]) -> Result<(), SimError> {
        for (k, v) in values.iter().enumerate() {
            self.write_u16(addr + 2 * k as u32, v.raw() as u16)?;
        }
        Ok(())
    }

    /// Reads `len` consecutive Q3.12 halfwords.
    ///
    /// # Errors
    ///
    /// [`SimError::Misaligned`] / [`SimError::MemOutOfBounds`].
    pub fn read_q3p12_slice(&self, addr: u32, len: usize) -> Result<Vec<Q3p12>, SimError> {
        (0..len)
            .map(|k| {
                self.read_u16(addr + 2 * k as u32)
                    .map(|h| Q3p12::from_raw(h as i16))
            })
            .collect()
    }

    /// Fills the whole memory with zeros.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new(64);
        mem.write_u32(0, 0x0403_0201).unwrap();
        assert_eq!(mem.read_u8(0).unwrap(), 0x01);
        assert_eq!(mem.read_u8(3).unwrap(), 0x04);
        assert_eq!(mem.read_u16(2).unwrap(), 0x0403);
    }

    #[test]
    fn bounds_are_enforced() {
        let mem = Memory::new(16);
        assert!(matches!(
            mem.read_u32(16),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(mem.read_u32(14), Err(SimError::Misaligned { .. })));
        assert!(mem.read_u16(14).is_ok());
    }

    #[test]
    fn misalignment_is_an_error() {
        let mut mem = Memory::new(64);
        assert!(matches!(
            mem.write_u16(1, 7),
            Err(SimError::Misaligned { .. })
        ));
        assert!(matches!(
            mem.write_u32(2, 7),
            Err(SimError::Misaligned { .. })
        ));
    }

    #[test]
    fn q3p12_slice_round_trip() {
        let mut mem = Memory::new(64);
        let vals: Vec<Q3p12> = [-1.0, 0.5, 7.75, -8.0]
            .iter()
            .map(|&v| Q3p12::from_f64(v))
            .collect();
        mem.write_q3p12_slice(8, &vals).unwrap();
        assert_eq!(mem.read_q3p12_slice(8, 4).unwrap(), vals);
        // Packed pair view: element 0 in the low half of the word.
        let word = mem.read_u32(8).unwrap();
        assert_eq!(word as u16 as i16, vals[0].raw());
        assert_eq!((word >> 16) as u16 as i16, vals[1].raw());
    }
}
