//! A simulated N-core PULP cluster: per-core machines around one shared
//! banked TCDM, a DMA engine for L2 → TCDM input staging, and a barrier
//! unit between phases.
//!
//! # Execution model
//!
//! A partitioned network arrives as a [`ClusterProgram`]: an ordered
//! list of [`ClusterPhase`]s, each holding one optional per-core
//! [`ClusterKernel`] (program + micro-op image). Inside a phase the
//! cores work on *disjoint* output ranges and read only data produced
//! before the phase started, so the memory result does not depend on
//! the interleaving of core cycles. The cluster exploits this: it runs
//! each core's kernel to completion in turn, swapping the one shared
//! TCDM [`Memory`] into the active core's [`Machine`]
//! ([`Machine::swap_memory`]) — byte-for-byte the same final memory and
//! per-core statistics a cycle-by-cycle lockstep interleaving would
//! produce, at single-core simulation speed. Both fast execution tiers
//! (micro-op and kernel-shortcut) therefore keep working unmodified per
//! core.
//!
//! Time is modelled on top: a phase costs the *slowest* core's cycles
//! plus its analytic banking-conflict stalls, then one barrier. The
//! whole-run wall clock is [`Cluster::latency_cycles`]; per-core work
//! is still exact per-mnemonic [`Stats`] on each machine.
//!
//! # Banking-conflict model
//!
//! The TCDM is word-interleaved across [`TcdmConfig::banks`] banks
//! (2 banks/core, the PULP ratio). Per phase, each core's memory-access
//! count `A_c` is derived from its per-mnemonic statistics delta (every
//! load, store, post-increment access and `pl.sdotsp` streaming load is
//! one TCDM access). With the phase lasting `L` cycles, a competing
//! core `o` occupies a given bank in a given cycle with probability
//! `A_o / (L·B)`, so core `c` loses
//!
//! ```text
//! stall_c = A_c · (Σ_{o≠c} A_o) / (B · L)
//! ```
//!
//! cycles to conflicts (integer arithmetic, deterministic). The model
//! is applied identically whether a core executed natively through a
//! kernel-shortcut region or per micro-op — the shortcut tier commits
//! exact per-mnemonic rows, which is all the model consumes.

use crate::error::{ExitReason, SimError};
use crate::fault::{FaultPlan, FaultRecord};
use crate::machine::Machine;
use crate::mem::{MemImage, Memory};
use crate::program::Program;
use crate::stats::Stats;
use crate::uop::UopProgram;
use rnnasip_isa::MnemonicId;
use std::sync::Arc;

/// Mnemonics that perform one TCDM data access per retired instruction —
/// the input of the banking-conflict model.
const MEM_ACCESS_MNEMONICS: &[&str] = &[
    "lb",
    "lh",
    "lw",
    "lbu",
    "lhu",
    "sb",
    "sh",
    "sw",
    "p.lb!",
    "p.lh!",
    "p.lw!",
    "p.lbu!",
    "p.lhu!",
    "p.lb",
    "p.lh",
    "p.lw",
    "p.lbu",
    "p.lhu",
    "p.sb!",
    "p.sh!",
    "p.sw!",
    "pl.sdotsp",
    "pl.sdotsp.b",
];

/// One core's share of a phase: a program plus its micro-op translation
/// (with any verified kernel-shortcut regions installed).
#[derive(Clone, Debug)]
pub struct ClusterKernel {
    /// The phase program (ends in `ecall`).
    pub program: Arc<Program>,
    /// Its micro-op image, as produced by
    /// [`UopProgram::translate_with_shortcuts`] (or plain `translate`).
    pub uops: Arc<UopProgram>,
}

impl ClusterKernel {
    /// Bundles a program with its micro-op translation.
    pub fn new(program: Arc<Program>, uops: Arc<UopProgram>) -> Self {
        Self { program, uops }
    }
}

/// One barrier-delimited step of a cluster run: per-core kernels that
/// write disjoint ranges and read only pre-phase data. `None` means the
/// core idles through the phase (waiting at the barrier).
#[derive(Clone, Debug)]
pub struct ClusterPhase {
    /// Human-readable phase label (e.g. `"fc0"`, `"lstm step 3 gates"`).
    pub label: String,
    /// One entry per core, in core order.
    pub kernels: Vec<Option<ClusterKernel>>,
}

/// One DMA descriptor: copy `len` bytes from the L2 staging area into
/// the TCDM (both addresses in the shared memory's address space).
#[derive(Clone, Copy, Debug)]
pub struct DmaXfer {
    /// Source address (L2 staging area).
    pub src: u32,
    /// Destination address (TCDM working copy).
    pub dst: u32,
    /// Transfer length in bytes.
    pub len: u32,
}

/// A network partitioned for an N-core cluster: the DMA input staging
/// plan followed by the barrier-delimited phases.
#[derive(Clone, Debug, Default)]
pub struct ClusterProgram {
    /// Number of cores the phases are laid out for.
    pub cores: usize,
    /// Input-staging transfers run before phase 0 of every inference.
    pub dma: Vec<DmaXfer>,
    /// The phases, in execution order.
    pub phases: Vec<ClusterPhase>,
}

/// Cluster timing parameters: TCDM banking, barrier and DMA costs.
#[derive(Clone, Copy, Debug)]
pub struct TcdmConfig {
    /// Word-interleaved TCDM banks (PULP default: 2 per core).
    pub banks: usize,
    /// Cycles every core spends converging at a phase barrier (event
    /// unit round trip). Charged once per phase when `cores > 1`.
    pub barrier_cycles: u64,
    /// Fixed cost to program one DMA descriptor.
    pub dma_startup_cycles: u64,
    /// DMA payload bytes moved per cycle (64-bit AXI beat).
    pub dma_bytes_per_cycle: u64,
}

impl TcdmConfig {
    /// The default configuration for an `cores`-core cluster.
    pub fn for_cores(cores: usize) -> Self {
        Self {
            banks: (2 * cores).max(1),
            barrier_cycles: 8,
            dma_startup_cycles: 16,
            dma_bytes_per_cycle: 8,
        }
    }
}

/// Per-core accounting the cluster accumulates on top of each machine's
/// own statistics.
#[derive(Clone, Copy, Debug, Default)]
struct LaneAccount {
    /// Analytic banking-conflict stall cycles charged to this core.
    conflict_stalls: u64,
    /// TCDM accesses counted so far (cache of the stats-derived total,
    /// so per-phase deltas need no re-scan).
    accesses: u64,
}

/// The simulated multi-core cluster. See the [module docs](self) for
/// the execution and timing model.
#[derive(Debug)]
pub struct Cluster {
    program: Arc<ClusterProgram>,
    cfg: TcdmConfig,
    /// One machine per core. Each holds a zero-size placeholder memory
    /// except while it is the active core of a phase, when the shared
    /// TCDM is swapped in.
    machines: Vec<Machine>,
    /// The shared banked TCDM (plus the L2 staging area at its top).
    mem: Memory,
    /// Memory-access mnemonic ids, resolved once.
    access_ids: Vec<MnemonicId>,
    lanes: Vec<LaneAccount>,
    dma_cycles: u64,
    barrier_cycles: u64,
    latency: u64,
    /// Core whose run last raised an error or applied a fault.
    last_faulted_core: Option<usize>,
}

impl Cluster {
    /// Builds a cluster for `program` around the shared memory `mem`,
    /// with the default [`TcdmConfig`] for the program's core count.
    pub fn new(program: Arc<ClusterProgram>, mem: Memory) -> Self {
        let cfg = TcdmConfig::for_cores(program.cores);
        Self::with_config(program, mem, cfg)
    }

    /// Builds a cluster with an explicit timing configuration.
    pub fn with_config(program: Arc<ClusterProgram>, mem: Memory, cfg: TcdmConfig) -> Self {
        let cores = program.cores.max(1);
        let machines = (0..cores).map(|_| Machine::new(0)).collect();
        let access_ids = MEM_ACCESS_MNEMONICS
            .iter()
            .filter_map(|name| MnemonicId::from_name(name))
            .collect();
        Self {
            program,
            cfg,
            machines,
            mem,
            access_ids,
            lanes: vec![LaneAccount::default(); cores],
            dma_cycles: 0,
            barrier_cycles: 0,
            latency: 0,
            last_faulted_core: None,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.machines.len()
    }

    /// The cluster program being executed.
    pub fn program(&self) -> &Arc<ClusterProgram> {
        &self.program
    }

    /// The timing configuration.
    pub fn config(&self) -> &TcdmConfig {
        &self.cfg
    }

    /// The shared TCDM.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable shared TCDM (for staging inputs and reading outputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Core `i`'s machine (per-core stats, registers, fault log).
    pub fn machine(&self, i: usize) -> &Machine {
        &self.machines[i]
    }

    /// Restores the shared TCDM from `image` (dirty blocks only) and
    /// resets every core and the cluster accounting for another run.
    /// Returns the number of memory bytes restored.
    pub fn rewind(&mut self, image: &MemImage) -> usize {
        let restored = self.mem.restore_image(image);
        for m in &mut self.machines {
            m.clear_stats();
            m.reset_core();
        }
        self.lanes.fill(LaneAccount::default());
        self.dma_cycles = 0;
        self.barrier_cycles = 0;
        self.latency = 0;
        self.last_faulted_core = None;
        restored
    }

    /// Arms a fault plan on core `core` (cleared by
    /// [`clear_faults`](Self::clear_faults); armed faults survive phase
    /// switches within a run).
    pub fn arm_faults(&mut self, plan: &FaultPlan, core: usize) {
        self.machines[core].arm_faults(plan);
    }

    /// Disarms pending faults on every core.
    pub fn clear_faults(&mut self) {
        for m in &mut self.machines {
            m.clear_faults();
        }
    }

    /// Faults applied on core `core` since its plan was armed.
    pub fn fault_log(&self, core: usize) -> &[FaultRecord] {
        self.machines[core].fault_log()
    }

    /// The core whose run last raised an error or applied a fault, if
    /// any — feeds the resilience layer's per-core attribution.
    pub fn last_faulted_core(&self) -> Option<usize> {
        self.last_faulted_core
    }

    /// Analytic banking-conflict stall cycles charged to core `i` so far.
    pub fn conflict_stalls(&self, i: usize) -> u64 {
        self.lanes[i].conflict_stalls
    }

    /// Cycles the DMA engine spent staging inputs this run.
    pub fn dma_cycles(&self) -> u64 {
        self.dma_cycles
    }

    /// Cycles spent in phase barriers this run.
    pub fn barrier_cycles(&self) -> u64 {
        self.barrier_cycles
    }

    /// The cluster wall-clock latency of the last run: DMA staging plus,
    /// per phase, the slowest core (cycles + conflict stalls) plus the
    /// barrier.
    pub fn latency_cycles(&self) -> u64 {
        self.latency
    }

    /// Instructions retired through kernel-shortcut regions across all
    /// cores this run.
    pub fn shortcut_instrs(&self) -> u64 {
        self.machines.iter().map(Machine::shortcut_instrs).sum()
    }

    /// Sum of all cores' per-mnemonic statistics (total work; its
    /// `cycles()` is core-cycles, not wall-clock — compare
    /// [`latency_cycles`](Self::latency_cycles)).
    pub fn merged_stats(&self) -> Stats {
        let mut total = Stats::new();
        for m in &self.machines {
            total.merge(m.stats());
        }
        total
    }

    fn accesses(&self, core: usize) -> u64 {
        let stats = self.machines[core].stats();
        self.access_ids
            .iter()
            .map(|&id| stats.row_id(id).instrs)
            .sum()
    }

    /// Runs the DMA plan, charging the engine's cycles.
    fn run_dma(&mut self) -> Result<(), SimError> {
        // One shared engine: descriptors are processed serially.
        for xfer in &self.program.dma {
            self.dma_cycles += self.cfg.dma_startup_cycles
                + u64::from(xfer.len).div_ceil(self.cfg.dma_bytes_per_cycle);
        }
        // The copies themselves (separate loop: the borrow of the plan
        // above is read-only, the copies need `&mut self.mem`).
        let xfers: Vec<DmaXfer> = self.program.dma.clone();
        let mut scratch = Vec::new();
        for DmaXfer { src, dst, len } in xfers {
            let bytes = self.mem.byte_slice(src, len as usize)?;
            scratch.clear();
            scratch.extend_from_slice(bytes);
            self.mem.write_bytes(dst, &scratch)?;
        }
        Ok(())
    }

    /// Runs every phase to completion. `max_cycles` bounds each core's
    /// *cumulative* cycle counter across the whole run (the same
    /// absolute-budget semantics as [`Machine::run`]).
    ///
    /// # Errors
    ///
    /// Any error a core raises is propagated after recording the core in
    /// [`last_faulted_core`](Self::last_faulted_core); the shared memory
    /// is always swapped back first.
    pub fn run(&mut self, max_cycles: u64) -> Result<ExitReason, SimError> {
        self.run_with(max_cycles, false)
    }

    /// [`run`](Self::run) with a tier selector: `legacy` drives every
    /// core through [`Machine::run_legacy`] (the per-step reference
    /// interpreter) instead of the micro-op/shortcut tiers.
    pub fn run_with(&mut self, max_cycles: u64, legacy: bool) -> Result<ExitReason, SimError> {
        self.last_faulted_core = None;
        self.run_dma()?;
        self.latency += self.dma_cycles;
        let cores = self.machines.len();
        let banks = self.cfg.banks.max(1) as u64;
        let mut phase_cycles = vec![0u64; cores];
        let mut phase_accesses = vec![0u64; cores];
        let phases = Arc::clone(&self.program);
        for phase in &phases.phases {
            // Advance every participating core through its kernel.
            for (c, kernel) in phase.kernels.iter().enumerate() {
                phase_cycles[c] = 0;
                phase_accesses[c] = 0;
                let Some(k) = kernel else { continue };
                let m = &mut self.machines[c];
                m.load_phase_program(&k.program, &k.uops);
                let cycles_before = m.core().cycle;
                m.swap_memory(&mut self.mem);
                let result = if legacy {
                    m.run_legacy(max_cycles)
                } else {
                    m.run(max_cycles)
                };
                m.swap_memory(&mut self.mem);
                let m = &self.machines[c];
                if !m.fault_log().is_empty() {
                    self.last_faulted_core = Some(c);
                }
                match result {
                    Ok(ExitReason::Ecall) => {}
                    // An ebreak stops the whole cluster, like a halt.
                    Ok(ExitReason::Ebreak) => return Ok(ExitReason::Ebreak),
                    Err(e) => {
                        self.last_faulted_core = Some(c);
                        return Err(e);
                    }
                }
                phase_cycles[c] = m.core().cycle - cycles_before;
                let total = self.accesses(c);
                phase_accesses[c] = total - self.lanes[c].accesses;
                self.lanes[c].accesses = total;
            }
            // Charge analytic banking-conflict stalls and close the
            // phase with a barrier.
            let busiest = phase_cycles.iter().copied().max().unwrap_or(0);
            let all_accesses: u64 = phase_accesses.iter().sum();
            let mut slowest = 0u64;
            for c in 0..cores {
                let others = all_accesses - phase_accesses[c];
                let stall = if busiest == 0 {
                    0
                } else {
                    (u128::from(phase_accesses[c]) * u128::from(others)
                        / (u128::from(banks) * u128::from(busiest))) as u64
                };
                self.lanes[c].conflict_stalls += stall;
                slowest = slowest.max(phase_cycles[c] + stall);
            }
            self.latency += slowest;
            if cores > 1 {
                self.latency += self.cfg.barrier_cycles;
                self.barrier_cycles += self.cfg.barrier_cycles;
            }
        }
        Ok(ExitReason::Ecall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_isa::{AluImmOp, Instr, Reg, StoreOp};

    fn store_prog(addr: i32, value: i32) -> ClusterKernel {
        let program = Program::from_instrs(
            0,
            vec![
                Instr::OpImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: value,
                },
                Instr::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::ZERO,
                    offset: addr,
                },
                Instr::Ecall,
            ],
        );
        let uops = Arc::new(UopProgram::translate(&program));
        ClusterKernel::new(Arc::new(program), uops)
    }

    #[test]
    fn two_cores_share_one_memory_across_phases() {
        let prog = ClusterProgram {
            cores: 2,
            dma: vec![DmaXfer {
                src: 128,
                dst: 0,
                len: 4,
            }],
            phases: vec![
                ClusterPhase {
                    label: "p0".into(),
                    kernels: vec![Some(store_prog(16, 7)), Some(store_prog(20, 9))],
                },
                ClusterPhase {
                    label: "p1".into(),
                    kernels: vec![None, Some(store_prog(24, 11))],
                },
            ],
        };
        let mut mem = Memory::new(256);
        mem.write_u32(128, 0xABCD_1234).unwrap();
        let mut cluster = Cluster::new(Arc::new(prog), mem);
        let exit = cluster.run(10_000).unwrap();
        assert_eq!(exit, ExitReason::Ecall);
        // DMA staged the input window.
        assert_eq!(cluster.mem().read_u32(0).unwrap(), 0xABCD_1234);
        // Both cores' phase writes landed in the one shared memory.
        assert_eq!(cluster.mem().read_u32(16).unwrap(), 7);
        assert_eq!(cluster.mem().read_u32(20).unwrap(), 9);
        assert_eq!(cluster.mem().read_u32(24).unwrap(), 11);
        // DMA cost: startup 16 + ceil(4/8) = 17; two barriers of 8.
        assert_eq!(cluster.dma_cycles(), 17);
        assert_eq!(cluster.barrier_cycles(), 16);
        // Each phase costs the slowest core; conflict stalls are zero at
        // these tiny access counts (3·3 / (4·L) rounds to zero).
        let per_phase = cluster.machine(0).core().cycle;
        assert!(cluster.latency_cycles() >= 17 + 16 + per_phase);
        // Idle core 0 retired nothing in phase 1.
        assert_eq!(
            cluster.machine(0).core().instret + 3,
            cluster.machine(1).core().instret
        );
    }

    #[test]
    fn rewind_resets_cores_accounting_and_memory() {
        let prog = ClusterProgram {
            cores: 1,
            dma: Vec::new(),
            phases: vec![ClusterPhase {
                label: "p0".into(),
                kernels: vec![Some(store_prog(32, 5))],
            }],
        };
        let mem = Memory::new(256);
        let image = mem.image();
        let mut cluster = Cluster::new(Arc::new(prog), mem);
        cluster.mem_mut().load_image(&image);
        cluster.run(1_000).unwrap();
        let first_latency = cluster.latency_cycles();
        assert_eq!(cluster.mem().read_u32(32).unwrap(), 5);
        assert!(first_latency > 0);
        cluster.rewind(&image);
        assert_eq!(cluster.mem().read_u32(32).unwrap(), 0);
        assert_eq!(cluster.latency_cycles(), 0);
        assert_eq!(cluster.machine(0).core().cycle, 0);
        cluster.run(1_000).unwrap();
        assert_eq!(cluster.latency_cycles(), first_latency, "deterministic");
        assert_eq!(cluster.mem().read_u32(32).unwrap(), 5);
    }

    #[test]
    fn single_core_latency_equals_machine_cycles() {
        let prog = ClusterProgram {
            cores: 1,
            dma: Vec::new(),
            phases: vec![ClusterPhase {
                label: "p0".into(),
                kernels: vec![Some(store_prog(32, 5))],
            }],
        };
        let mut cluster = Cluster::new(Arc::new(prog), Memory::new(256));
        cluster.run(1_000).unwrap();
        assert_eq!(cluster.latency_cycles(), cluster.machine(0).core().cycle);
        assert_eq!(cluster.conflict_stalls(0), 0);
        assert_eq!(cluster.dma_cycles(), 0);
        assert_eq!(cluster.barrier_cycles(), 0);
    }

    #[test]
    fn conflict_stalls_follow_the_analytic_model() {
        // Two cores, each storing N words in a straight line: accesses
        // are known exactly, so the stall charge is checkable by hand.
        let n = 64;
        let mk = |base: i32| {
            let mut instrs = vec![Instr::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 1,
            }];
            for k in 0..n {
                instrs.push(Instr::Store {
                    op: StoreOp::Sw,
                    rs2: Reg::A0,
                    rs1: Reg::ZERO,
                    offset: base + 4 * k,
                });
            }
            instrs.push(Instr::Ecall);
            let p = Program::from_instrs(0, instrs);
            let u = Arc::new(UopProgram::translate(&p));
            ClusterKernel::new(Arc::new(p), u)
        };
        let prog = ClusterProgram {
            cores: 2,
            dma: Vec::new(),
            phases: vec![ClusterPhase {
                label: "p0".into(),
                kernels: vec![Some(mk(256)), Some(mk(1024))],
            }],
        };
        let mut cluster = Cluster::new(Arc::new(prog), Memory::new(4096));
        cluster.run(100_000).unwrap();
        // Each core: 64 stores; phase length L = per-core cycles
        // (identical programs); banks B = 4.
        let l = cluster.machine(0).core().cycle;
        let expect = (64u64 * 64) / (4 * l);
        assert_eq!(cluster.conflict_stalls(0), expect);
        assert_eq!(cluster.conflict_stalls(1), expect);
        // Latency = slowest core + stalls + one barrier.
        assert_eq!(cluster.latency_cycles(), l + expect + 8);
    }
}
