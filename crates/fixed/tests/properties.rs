// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property tests on the fixed-point foundation: the invariants every
//! other crate builds on.

use proptest::prelude::*;
use rnnasip_fixed::pla::{FitMode, PlaFunc, PlaTable};
use rnnasip_fixed::{q3p12_to_q1p6, Acc32, Q1p6, Q3p12, V2s, V4s};

fn arb_q() -> impl Strategy<Value = Q3p12> {
    any::<i16>().prop_map(Q3p12::from_raw)
}

fn arb_q8() -> impl Strategy<Value = Q1p6> {
    any::<i8>().prop_map(Q1p6::from_raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Requantization always lands in the i16 range and equals the
    /// arithmetic-shift reference.
    #[test]
    fn requantize_is_bounded_and_exact(raw in any::<i32>()) {
        let q = Acc32::from_raw(raw).requantize();
        let expect = (raw >> 12).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!(q.raw(), expect);
    }

    /// from_f64 round-trips every representable grid point exactly.
    #[test]
    fn f64_round_trip_on_grid(x in arb_q()) {
        prop_assert_eq!(Q3p12::from_f64(x.to_f64()), x);
    }

    /// from_f64 is monotone.
    #[test]
    fn from_f64_is_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Q3p12::from_f64(lo) <= Q3p12::from_f64(hi));
    }

    /// Packed v2s dot product equals the scalar MACs.
    #[test]
    fn v2s_dot_matches_scalar(a0 in arb_q(), a1 in arb_q(), b0 in arb_q(), b1 in arb_q(), acc in any::<i32>()) {
        let v = V2s::pack(a0, a1).sdotsp(V2s::pack(b0, b1), Acc32::from_raw(acc));
        let expect = Acc32::from_raw(acc).mac(a0, b0).mac(a1, b1);
        prop_assert_eq!(v, expect);
    }

    /// Packed v4s dot product equals the scalar sum.
    #[test]
    fn v4s_dot_matches_scalar(lanes_a in proptest::array::uniform4(arb_q8()),
                              lanes_b in proptest::array::uniform4(arb_q8()),
                              acc in any::<i32>()) {
        let v = V4s::pack(lanes_a).sdotsp(V4s::pack(lanes_b), Acc32::from_raw(acc));
        let mut expect = acc;
        for (a, b) in lanes_a.iter().zip(&lanes_b) {
            expect = expect.wrapping_add(a.widening_mul(*b));
        }
        prop_assert_eq!(v.raw(), expect);
    }

    /// The MAC chain equals the wide integer sum wrapped to i32.
    #[test]
    fn mac_chain_equals_wrapped_wide_sum(pairs in proptest::collection::vec((arb_q(), arb_q()), 0..64)) {
        let mut acc = Acc32::ZERO;
        let mut wide: i64 = 0;
        for (w, x) in &pairs {
            acc = acc.mac(*w, *x);
            wide += (w.raw() as i64) * (x.raw() as i64);
        }
        prop_assert_eq!(acc.raw(), wide as i32);
    }

    /// Q3.12 -> Q1.6 conversion is monotone and bounded.
    #[test]
    fn q8_conversion_monotone(a in arb_q(), b in arb_q()) {
        if a <= b {
            prop_assert!(q3p12_to_q1p6(a) <= q3p12_to_q1p6(b));
        }
        let c = q3p12_to_q1p6(a);
        prop_assert!((c.to_f64() - a.to_f64().clamp(-2.0, 2.0 - 1.0 / 64.0)).abs() <= 1.0 / 128.0 + 1e-9);
    }

    /// The hardware tanh stays in [-1, 1] and is odd (up to one LSB at
    /// the origin); sigmoid stays in [0, 1].
    #[test]
    fn hw_activations_are_bounded(x in arb_q()) {
        let t = rnnasip_fixed::hw_tanh(x);
        prop_assert!(t.raw() >= -4096 && t.raw() <= 4096);
        let s = rnnasip_fixed::hw_sig(x);
        prop_assert!(s.raw() >= 0 && s.raw() <= 4096);
        // Symmetry: sig(x) + sig(-x) == 1.0 exactly (construction).
        if x.raw() != i16::MIN {
            let nx = Q3p12::from_raw(-x.raw());
            prop_assert_eq!(s.raw() + rnnasip_fixed::hw_sig(nx).raw(), 4096);
        }
    }

    /// Both activations are monotone non-decreasing.
    #[test]
    fn hw_activations_are_monotone(a in arb_q(), b in arb_q()) {
        if a <= b {
            prop_assert!(rnnasip_fixed::hw_tanh(a) <= rnnasip_fixed::hw_tanh(b));
            prop_assert!(rnnasip_fixed::hw_sig(a) <= rnnasip_fixed::hw_sig(b));
        }
    }
}

/// Table-level property: every fitted PLA approximates its reference
/// within the interval-count-dependent bound.
#[test]
fn pla_error_shrinks_quadratically_with_intervals() {
    let mut last = f64::MAX;
    for (m, shift) in [(4u32, 12u32), (8, 11), (16, 10), (32, 9)] {
        let t = PlaTable::fit(PlaFunc::Tanh, m, shift, FitMode::LeastSquares);
        let e = t.max_error();
        assert!(e < last, "error must shrink: {e} !< {last}");
        last = e;
    }
}
