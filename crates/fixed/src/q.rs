//! Signed 16-bit Q-format scalar type.

use core::fmt;

/// A signed 16-bit fixed-point number with `F` fractional bits.
///
/// The value represented is `raw / 2^F`. The paper's canonical format is
/// [`Q3p12`] (`F = 12`, range `[-8, 8)`); [`Q7p8`] and [`Q1p14`] are provided
/// for experiments with other quantization points (e.g. the activation LUT
/// slope entries use higher fractional precision).
///
/// All arithmetic is *hardware-faithful*: conversions saturate to the i16
/// range, multiplication widens to 32 bits, and requantization is an
/// arithmetic right shift (truncation toward negative infinity), matching
/// the RI5CY datapath the paper extends.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q3p12;
///
/// let a = Q3p12::from_f64(1.5);
/// let b = Q3p12::from_f64(0.25);
/// assert_eq!(a.saturating_add(b), Q3p12::from_f64(1.75));
/// // Saturation at the top of the Q3.12 range:
/// assert_eq!(Q3p12::from_f64(123.0), Q3p12::MAX);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx16<const F: u32>(i16);

/// The paper's canonical Q3.12 format: 3 integer bits, 12 fractional bits.
pub type Q3p12 = Fx16<12>;

/// Q7.8 format: 7 integer bits, 8 fractional bits.
pub type Q7p8 = Fx16<8>;

/// Q1.14 format: 1 integer bit, 14 fractional bits (used for LUT slopes).
pub type Q1p14 = Fx16<14>;

impl<const F: u32> Fx16<F> {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = F;

    /// The raw integer representing `1.0` (i.e. `2^F`).
    ///
    /// Note that for `F = 15` the value `1.0` itself is not representable;
    /// this constant is still the correct scale factor.
    pub const SCALE: i32 = 1 << F;

    /// Smallest representable value (`-2^(15-F)`).
    pub const MIN: Self = Self(i16::MIN);

    /// Largest representable value (`2^(15-F) - 2^-F`).
    pub const MAX: Self = Self(i16::MAX);

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// Creates a fixed-point number from its raw two's-complement bits.
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        Self(raw)
    }

    /// Returns the raw two's-complement bits.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating to the
    /// representable range.
    ///
    /// This mirrors the quantization step used when deploying a trained
    /// floating-point network to the Q3.12 core (Section III-A).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let scaled = (x * Self::SCALE as f64).round();
        Self(saturate_i32(scaled as i32))
    }

    /// Creates a fixed-point number from a raw `i32`, saturating to the
    /// representable i16 range — the `p.clip rd, rs1, 16` operation.
    #[inline]
    pub fn from_i32_saturating(raw: i32) -> Self {
        Self(saturate_i32(raw))
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Wrapping addition — what a plain RISC-V `add` on sign-extended
    /// halfwords followed by a halfword store does (no saturation).
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }

    /// Saturating negation (`-MIN` saturates to `MAX`).
    #[inline]
    pub fn saturating_neg(self) -> Self {
        Self(self.0.checked_neg().unwrap_or(i16::MAX))
    }

    /// Full-precision product of two fixed-point values as a raw `i32` with
    /// `2F` fractional bits. This is exactly what the 16×16→32 multiplier
    /// in the MAC unit produces.
    #[inline]
    pub fn widening_mul(self, rhs: Self) -> i32 {
        self.0 as i32 * rhs.0 as i32
    }

    /// Fixed-point multiplication: widen, then requantize by an arithmetic
    /// right shift of `F` (truncating), then saturate.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        Self(saturate_i32(self.widening_mul(rhs) >> F))
    }

    /// Absolute value, saturating (`|MIN|` saturates to `MAX`).
    #[inline]
    pub fn saturating_abs(self) -> Self {
        Self(self.0.checked_abs().unwrap_or(i16::MAX))
    }

    /// Reinterprets the same raw bits in a different Q format.
    ///
    /// This is a *free* transmute-style conversion (the numerical value is
    /// rescaled by `2^(F-G)`); use it when an algorithm tracks the binary
    /// point manually, as the kernel generators do.
    #[inline]
    pub fn rebits<const G: u32>(self) -> Fx16<G> {
        Fx16::<G>::from_raw(self.0)
    }
}

/// Saturates a 32-bit value to the i16 range — the `p.clip` operation.
#[inline]
pub(crate) fn saturate_i32(x: i32) -> i16 {
    x.clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

impl<const F: u32> fmt::Debug for Fx16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx16<{}>({} = {})", F, self.0, self.to_f64())
    }
}

impl<const F: u32> fmt::Display for Fx16<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const F: u32> From<Fx16<F>> for f64 {
    fn from(x: Fx16<F>) -> f64 {
        x.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 0.5 ulp in Q3.12 is 2^-13; exactly halfway rounds away from zero
        // (f64::round semantics).
        let x = Q3p12::from_f64(1.0 / 8192.0);
        assert_eq!(x.raw(), 1);
        let y = Q3p12::from_f64(-1.0 / 8192.0);
        assert_eq!(y.raw(), -1);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q3p12::from_f64(100.0), Q3p12::MAX);
        assert_eq!(Q3p12::from_f64(-100.0), Q3p12::MIN);
        assert_eq!(Q3p12::from_f64(7.9999), Q3p12::MAX);
    }

    #[test]
    fn round_trip_is_exact_on_grid() {
        for raw in [-32768i16, -1, 0, 1, 4096, 32767] {
            let x = Q3p12::from_raw(raw);
            assert_eq!(Q3p12::from_f64(x.to_f64()), x);
        }
    }

    #[test]
    fn widening_mul_matches_integer_product() {
        let a = Q3p12::from_raw(-20000);
        let b = Q3p12::from_raw(30000);
        assert_eq!(a.widening_mul(b), -20000i32 * 30000);
    }

    #[test]
    fn saturating_mul_truncates_toward_neg_infinity() {
        // -1 * smallest positive = -2^-24, which truncates to -2^-12, not 0.
        let a = Q3p12::from_f64(-1.0);
        let b = Q3p12::from_raw(1);
        assert_eq!(a.saturating_mul(b).raw(), -1);
    }

    #[test]
    fn neg_and_abs_saturate_at_min() {
        assert_eq!(Q3p12::MIN.saturating_neg(), Q3p12::MAX);
        assert_eq!(Q3p12::MIN.saturating_abs(), Q3p12::MAX);
    }

    #[test]
    fn rebits_preserves_raw() {
        let x = Q3p12::from_raw(1234);
        let y: Q7p8 = x.rebits();
        assert_eq!(y.raw(), 1234);
    }

    #[test]
    fn one_constant() {
        assert_eq!(Q3p12::SCALE, 4096);
        assert_eq!(Q3p12::from_f64(1.0).raw(), 4096);
    }
}
