//! Piecewise-linear approximation (PLA) of `tanh` and `sigmoid` on Q3.12.
//!
//! This module is the *hardware model* of the paper's `pl.tanh` / `pl.sig`
//! unit (Section III-D, Algorithm 2):
//!
//! 1. take the absolute value of the Q3.12 operand (both functions are
//!    symmetric around zero: `tanh(-x) = -tanh(x)`,
//!    `sig(-x) = 1 - sig(x)`),
//! 2. index one of `M` intervals of width `2^N` raw units by a right shift,
//! 3. outside the interpolated range return the converged value
//!    (`±1` / `{0, 1}`),
//! 4. inside, evaluate `y = m·|x| + q` from two `M`-entry LUTs,
//! 5. undo the symmetry fold.
//!
//! The shipped hardware configuration is the paper's chosen design point:
//! interpolation range `[-4, 4]` and `M = 32` intervals (`N = 9`), for
//! which the paper reports a tanh MSE of `9.81e-7` and a maximum error of
//! `±3.8e-4`. [`PlaTable::fit`] supports arbitrary `(range, intervals)`
//! pairs so the full Fig. 2 sweep can be regenerated, with either
//! endpoint interpolation or least-squares fitting per interval.

use crate::q::Q3p12;
use std::sync::OnceLock;

/// Which transcendental function a table approximates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PlaFunc {
    /// Hyperbolic tangent: odd symmetry, converges to ±1.
    Tanh,
    /// Logistic sigmoid: `sig(-x) = 1 - sig(x)`, converges to {0, 1}.
    Sigmoid,
}

impl PlaFunc {
    /// The reference function in double precision.
    pub fn reference(self, x: f64) -> f64 {
        match self {
            PlaFunc::Tanh => x.tanh(),
            PlaFunc::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// How LUT entries are fitted within each interval.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FitMode {
    /// Straight line through the interval endpoints (classical PLA).
    Endpoint,
    /// Least-squares linear fit over the Q3.12 grid points of the interval
    /// (what minimises the MSE the paper's Fig. 2 reports).
    #[default]
    LeastSquares,
}

/// Fractional bits of the slope LUT entries (`m` in `y = m·|x| + q`).
///
/// Slopes of both functions are in `[0, 1]`, so Q1.14 keeps two guard
/// bits of headroom while the 14-bit fraction keeps the product error
/// below a Q3.12 ULP.
pub const SLOPE_FRAC_BITS: u32 = 14;

/// A fitted PLA configuration: the two `M`-entry LUTs plus geometry.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::pla::{FitMode, PlaFunc, PlaTable};
/// use rnnasip_fixed::Q3p12;
///
/// let table = PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::LeastSquares);
/// let y = table.eval(Q3p12::from_f64(0.5));
/// assert!((y.to_f64() - 0.5f64.tanh()).abs() < 1e-3);
/// ```
#[derive(Clone, Debug)]
pub struct PlaTable {
    func: PlaFunc,
    /// Number of intervals `M`.
    intervals: u32,
    /// Interval width is `2^shift` raw Q3.12 units.
    shift: u32,
    /// Slopes in Q1.14 (see [`SLOPE_FRAC_BITS`]).
    lut_m: Vec<i32>,
    /// Intercepts in Q3.12.
    lut_q: Vec<i32>,
}

impl PlaTable {
    /// Fits a PLA table for `func` with `intervals` intervals of width
    /// `2^shift` raw Q3.12 units, covering `[0, intervals · 2^shift)`.
    ///
    /// The paper's design point is `intervals = 32`, `shift = 9`
    /// (range `32·512/4096 = 4.0`).
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is zero or the covered range exceeds the
    /// Q3.12 domain (`intervals << shift > 32768`).
    pub fn fit(func: PlaFunc, intervals: u32, shift: u32, mode: FitMode) -> Self {
        assert!(intervals > 0, "need at least one interval");
        assert!(
            (intervals as u64) << shift <= 32768,
            "interpolation range exceeds the Q3.12 domain"
        );
        let width = 1u32 << shift;
        let scale = f64::from(1 << SLOPE_FRAC_BITS);
        let mut lut_m = Vec::with_capacity(intervals as usize);
        let mut lut_q = Vec::with_capacity(intervals as usize);
        for i in 0..intervals {
            let x0 = (i * width) as f64 / 4096.0;
            let x1 = ((i + 1) * width) as f64 / 4096.0;
            let (m, q) = match mode {
                FitMode::Endpoint => {
                    let (y0, y1) = (func.reference(x0), func.reference(x1));
                    let m = (y1 - y0) / (x1 - x0);
                    (m, y0 - m * x0)
                }
                FitMode::LeastSquares => least_squares(func, i * width, width),
            };
            lut_m.push((m * scale).round() as i32);
            lut_q.push((q * 4096.0).round() as i32);
        }
        Self {
            func,
            intervals,
            shift,
            lut_m,
            lut_q,
        }
    }

    /// The approximated function.
    pub fn func(&self) -> PlaFunc {
        self.func
    }

    /// Number of intervals `M`.
    pub fn intervals(&self) -> u32 {
        self.intervals
    }

    /// The log2 of the interval width in raw Q3.12 units.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Upper end of the interpolated range as an `f64` (e.g. `4.0`).
    pub fn range(&self) -> f64 {
        ((self.intervals as u64) << self.shift) as f64 / 4096.0
    }

    /// Slope LUT entry `i` in Q1.14 (see [`SLOPE_FRAC_BITS`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= intervals`.
    pub fn slope(&self, i: u32) -> i32 {
        self.lut_m[i as usize]
    }

    /// Intercept LUT entry `i` in Q3.12.
    ///
    /// # Panics
    ///
    /// Panics if `i >= intervals`.
    pub fn intercept(&self, i: u32) -> i32 {
        self.lut_q[i as usize]
    }

    /// Evaluates the approximation exactly as the hardware does
    /// (Algorithm 2): integer LUT lookup, Q1.14 × Q3.12 product, shift,
    /// symmetry fold.
    pub fn eval(&self, x: Q3p12) -> Q3p12 {
        let raw = x.raw() as i32;
        let negative = raw < 0;
        // |x|; Q3.12 MIN (-8.0) folds to MAX, deep in the converged region.
        let abs = if negative {
            (-(raw as i64)).min(i16::MAX as i64) as i32
        } else {
            raw
        };
        let id = (abs >> self.shift) as u32;
        let y_pos = if id >= self.intervals {
            4096 // converged: f(+inf) = 1.0 in Q3.12
        } else {
            let m = self.lut_m[id as usize];
            let q = self.lut_q[id as usize];
            ((m * abs) >> SLOPE_FRAC_BITS) + q
        };
        let y = match (self.func, negative) {
            (PlaFunc::Tanh, false) => y_pos,
            (PlaFunc::Tanh, true) => -y_pos,
            (PlaFunc::Sigmoid, false) => y_pos,
            (PlaFunc::Sigmoid, true) => 4096 - y_pos,
        };
        Q3p12::from_raw(y.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Mean squared error against the double-precision reference over the
    /// whole Q3.12 grid in `[-8, 8)` (what Fig. 2 plots).
    pub fn mse(&self) -> f64 {
        let mut sum = 0.0;
        for raw in i16::MIN..=i16::MAX {
            let x = Q3p12::from_raw(raw);
            let err = self.eval(x).to_f64() - self.func.reference(x.to_f64());
            sum += err * err;
        }
        sum / 65536.0
    }

    /// Maximum absolute error against the double-precision reference over
    /// the whole Q3.12 grid.
    pub fn max_error(&self) -> f64 {
        let mut max: f64 = 0.0;
        for raw in i16::MIN..=i16::MAX {
            let x = Q3p12::from_raw(raw);
            let err = (self.eval(x).to_f64() - self.func.reference(x.to_f64())).abs();
            max = max.max(err);
        }
        max
    }
}

/// Least-squares linear fit of `func` over the Q3.12 grid points in
/// `[start_raw, start_raw + width_raw)`.
fn least_squares(func: PlaFunc, start_raw: u32, width_raw: u32) -> (f64, f64) {
    let n = width_raw as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for raw in start_raw..start_raw + width_raw {
        let x = raw as f64 / 4096.0;
        let y = func.reference(x);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        // Degenerate single-point interval: horizontal line.
        return (0.0, sy / n);
    }
    let m = (n * sxy - sx * sy) / denom;
    let q = (sy - m * sx) / n;
    (m, q)
}

/// The hardware design point: 32 intervals, `N = 9` (range ±4).
///
/// These are the LUTs baked into the `pl.tanh`/`pl.sig` unit; the software
/// PLA kernels (optimization levels *a* and *b*) stage the same entries
/// into data memory so every optimization level is bit-identical.
pub fn hw_table(func: PlaFunc) -> &'static PlaTable {
    static TANH: OnceLock<PlaTable> = OnceLock::new();
    static SIG: OnceLock<PlaTable> = OnceLock::new();
    match func {
        PlaFunc::Tanh => {
            TANH.get_or_init(|| PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::LeastSquares))
        }
        PlaFunc::Sigmoid => {
            SIG.get_or_init(|| PlaTable::fit(PlaFunc::Sigmoid, 32, 9, FitMode::LeastSquares))
        }
    }
}

/// The `pl.tanh` instruction's exact result for a Q3.12 operand.
///
/// This is the single source of truth shared by the instruction-set
/// simulator and the golden fixed-point models, which is what makes
/// bit-exactness between them meaningful.
pub fn hw_tanh(x: Q3p12) -> Q3p12 {
    hw_table(PlaFunc::Tanh).eval(x)
}

/// The `pl.sig` instruction's exact result for a Q3.12 operand.
pub fn hw_sig(x: Q3p12) -> Q3p12 {
    hw_table(PlaFunc::Sigmoid).eval(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_is_odd() {
        // x = 0 is checked separately: the least-squares intercept of the
        // first interval may be off by one LSB, which breaks exact oddness
        // only at the origin.
        for v in [-6.0, -2.5, -0.3, 0.3, 2.5, 6.0] {
            let x = Q3p12::from_f64(v);
            let neg = Q3p12::from_f64(-v);
            assert_eq!(hw_tanh(x).raw(), -hw_tanh(neg).raw(), "at {v}");
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        for v in [-6.0, -2.5, -0.3, 0.3, 2.5, 6.0] {
            let x = Q3p12::from_f64(v);
            let neg = Q3p12::from_f64(-v);
            assert_eq!(
                hw_sig(x).raw() + hw_sig(neg).raw(),
                4096,
                "sig(x) + sig(-x) must be 1.0 at {v}"
            );
        }
    }

    #[test]
    fn converged_region() {
        assert_eq!(hw_tanh(Q3p12::from_f64(7.5)).raw(), 4096);
        assert_eq!(hw_tanh(Q3p12::from_f64(-7.5)).raw(), -4096);
        assert_eq!(hw_sig(Q3p12::from_f64(7.5)).raw(), 4096);
        assert_eq!(hw_sig(Q3p12::from_f64(-7.5)).raw(), 0);
        assert_eq!(hw_tanh(Q3p12::MIN).raw(), -4096);
    }

    #[test]
    fn zero_maps_near_identity() {
        // Within one Q3.12 LSB of the exact values tanh(0) = 0 and
        // sig(0) = 0.5 (= 2048 raw).
        assert!(hw_tanh(Q3p12::ZERO).raw().abs() <= 1);
        assert!((hw_sig(Q3p12::ZERO).raw() - 2048).abs() <= 1);
    }

    #[test]
    fn design_point_error_bounds() {
        // The paper reports MSE 9.81e-7 and max error 3.8e-4 for the
        // tanh design point; our least-squares fit must land in the same
        // decade.
        let t = PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::LeastSquares);
        let mse = t.mse();
        let maxe = t.max_error();
        assert!(mse < 5e-6, "tanh MSE {mse} too large");
        assert!(maxe < 2e-3, "tanh max error {maxe} too large");
    }

    #[test]
    fn more_intervals_reduce_error() {
        let coarse = PlaTable::fit(PlaFunc::Tanh, 8, 11, FitMode::LeastSquares);
        let fine = PlaTable::fit(PlaFunc::Tanh, 64, 8, FitMode::LeastSquares);
        assert!(fine.mse() < coarse.mse());
    }

    #[test]
    fn least_squares_beats_endpoint_mse() {
        let ls = PlaTable::fit(PlaFunc::Tanh, 16, 10, FitMode::LeastSquares);
        let ep = PlaTable::fit(PlaFunc::Tanh, 16, 10, FitMode::Endpoint);
        assert!(ls.mse() <= ep.mse());
    }

    #[test]
    fn range_accessor() {
        let t = PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::Endpoint);
        assert_eq!(t.range(), 4.0);
        assert_eq!(t.intervals(), 32);
        assert_eq!(t.shift(), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds the Q3.12 domain")]
    fn oversized_range_panics() {
        let _ = PlaTable::fit(PlaFunc::Tanh, 128, 9, FitMode::Endpoint);
    }
}
