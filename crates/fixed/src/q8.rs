//! Signed 8-bit Q-format scalar type (the INT8 future-work path).
//!
//! The paper keeps 16-bit Q3.12 because it needs no retraining, but
//! cites sub-byte quantization ([26], [27]) as the efficiency frontier.
//! This module provides the 8-bit counterpart used by the repository's
//! INT8 extension experiments: [`Q1p6`] values (range `[-2, 2)`,
//! resolution `2^-6`) packed four to a word ([`V4s`](crate::V4s)) and
//! consumed by `pv.sdotsp.b` / `pl.sdotsp.b` at four MACs per
//! instruction.

use core::fmt;

/// A signed 8-bit fixed-point number with `F` fractional bits.
///
/// Mirrors [`Fx16`](crate::Fx16) at byte width. Products widen into an
/// i32 accumulator; requantization shifts right by `F` and saturates to
/// the i8 range.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q1p6;
///
/// let x = Q1p6::from_f64(0.5);
/// assert_eq!(x.raw(), 32);
/// assert_eq!(Q1p6::from_f64(5.0), Q1p6::MAX); // saturates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx8<const F: u32>(i8);

/// The INT8 kernels' canonical format: 1 integer bit, 6 fractional bits.
pub type Q1p6 = Fx8<6>;

impl<const F: u32> Fx8<F> {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = F;

    /// The raw integer representing `1.0` (i.e. `2^F`).
    pub const SCALE: i32 = 1 << F;

    /// Smallest representable value.
    pub const MIN: Self = Self(i8::MIN);

    /// Largest representable value.
    pub const MAX: Self = Self(i8::MAX);

    /// Zero.
    pub const ZERO: Self = Self(0);

    /// Creates from raw two's-complement bits.
    #[inline]
    pub const fn from_raw(raw: i8) -> Self {
        Self(raw)
    }

    /// The raw bits.
    #[inline]
    pub const fn raw(self) -> i8 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let scaled = (x * Self::SCALE as f64).round();
        Self(scaled.clamp(i8::MIN as f64, i8::MAX as f64) as i8)
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Full-precision product as an i32 with `2F` fractional bits.
    #[inline]
    pub fn widening_mul(self, rhs: Self) -> i32 {
        self.0 as i32 * rhs.0 as i32
    }

    /// Creates from a raw `i32`, saturating to the i8 range (the
    /// `p.clip rd, rs1, 8` operation).
    #[inline]
    pub fn from_i32_saturating(raw: i32) -> Self {
        Self(raw.clamp(i8::MIN as i32, i8::MAX as i32) as i8)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl<const F: u32> fmt::Debug for Fx8<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx8<{}>({} = {})", F, self.0, self.to_f64())
    }
}

impl<const F: u32> fmt::Display for Fx8<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

/// Re-quantizes a Q3.12 value to Q1.6, saturating at the narrower range.
///
/// This is the weight-conversion step of the INT8 deployment flow: the
/// value is rounded to the nearest Q1.6 step (`>> 6` with round-half-up).
pub fn q3p12_to_q1p6(x: crate::Q3p12) -> Q1p6 {
    let rounded = ((x.raw() as i32) + 32) >> 6;
    Q1p6::from_i32_saturating(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q3p12;

    #[test]
    fn round_trip_on_grid() {
        for raw in [-128i8, -1, 0, 1, 64, 127] {
            let x = Q1p6::from_raw(raw);
            assert_eq!(Q1p6::from_f64(x.to_f64()), x);
        }
    }

    #[test]
    fn saturation() {
        assert_eq!(Q1p6::from_f64(10.0), Q1p6::MAX);
        assert_eq!(Q1p6::from_f64(-10.0), Q1p6::MIN);
        assert_eq!(Q1p6::from_i32_saturating(1000), Q1p6::MAX);
    }

    #[test]
    fn q3p12_conversion_rounds() {
        // 0.5 in Q3.12 = 2048 -> 32 in Q1.6.
        assert_eq!(q3p12_to_q1p6(Q3p12::from_f64(0.5)).raw(), 32);
        // Values beyond ±2 saturate.
        assert_eq!(q3p12_to_q1p6(Q3p12::from_f64(3.0)), Q1p6::MAX);
        assert_eq!(q3p12_to_q1p6(Q3p12::from_f64(-3.0)), Q1p6::MIN);
        // Half-step rounds away from zero toward positive.
        assert_eq!(q3p12_to_q1p6(Q3p12::from_raw(32)).raw(), 1);
        assert_eq!(q3p12_to_q1p6(Q3p12::from_raw(31)).raw(), 0);
    }

    #[test]
    fn widening_mul_matches_integers() {
        let a = Q1p6::from_raw(-100);
        let b = Q1p6::from_raw(99);
        assert_eq!(a.widening_mul(b), -9900);
    }
}
