//! Packed `v4s` SIMD vector: four signed 8-bit lanes in one 32-bit word.

use crate::q8::Q1p6;
use crate::Acc32;
use core::fmt;

/// Four signed 8-bit lanes packed into a 32-bit word, little-endian lane
/// order (lane 0 in bits `[7:0]`) — the `pv.*.b` view of a register and
/// the in-memory layout of an `i8` array loaded with `lw`.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::{Q1p6, V4s, Acc32};
///
/// let x = V4s::pack([Q1p6::from_f64(1.0); 4]);
/// let w = V4s::pack([Q1p6::from_f64(0.5); 4]);
/// let acc = x.sdotsp(w, Acc32::ZERO);
/// // 4 lanes of 1.0*0.5 with 12 fractional bits: 4 * 64*32 = 8192.
/// assert_eq!(acc.raw(), 8192);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct V4s(u32);

impl V4s {
    /// Packs four Q1.6 lanes (lane 0 = lowest byte).
    #[inline]
    pub fn pack(lanes: [Q1p6; 4]) -> Self {
        Self(u32::from_le_bytes(lanes.map(|l| l.raw() as u8)))
    }

    /// Creates from raw register contents.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Raw register contents.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Lane `i` (0–3), sign-extended.
    ///
    /// # Panics
    ///
    /// Panics if `i > 3`.
    #[inline]
    pub fn lane(self, i: usize) -> Q1p6 {
        assert!(i < 4, "lane index out of range");
        Q1p6::from_raw(self.0.to_le_bytes()[i] as i8)
    }

    /// All four lanes.
    #[inline]
    pub fn lanes(self) -> [Q1p6; 4] {
        self.0.to_le_bytes().map(|b| Q1p6::from_raw(b as i8))
    }

    /// Signed sum-dot-product accumulate — `pv.sdotsp.b` semantics:
    /// `acc + Σ laneᵢ · rhs.laneᵢ` (wrapping).
    #[inline]
    #[must_use]
    pub fn sdotsp(self, rhs: Self, acc: Acc32) -> Acc32 {
        let mut sum = acc.raw();
        for (a, b) in self.lanes().iter().zip(rhs.lanes()) {
            sum = sum.wrapping_add(a.widening_mul(b));
        }
        Acc32::from_raw(sum)
    }
}

impl fmt::Debug for V4s {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = self.lanes();
        write!(
            f,
            "V4s[{}, {}, {}, {}]",
            l[0].raw(),
            l[1].raw(),
            l[2].raw(),
            l[3].raw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_lane_round_trip() {
        let lanes = [
            Q1p6::from_raw(-128),
            Q1p6::from_raw(-1),
            Q1p6::from_raw(0),
            Q1p6::from_raw(127),
        ];
        let v = V4s::pack(lanes);
        assert_eq!(v.lanes(), lanes);
        assert_eq!(v.lane(3).raw(), 127);
    }

    #[test]
    fn sdotsp_matches_scalar() {
        let a = V4s::pack([1, -2, 3, -4].map(Q1p6::from_raw));
        let b = V4s::pack([5, 6, 7, 8].map(Q1p6::from_raw));
        let acc = a.sdotsp(b, Acc32::from_raw(100));
        assert_eq!(acc.raw(), 100 + 5 - 12 + 21 - 32);
    }

    #[test]
    fn memory_layout_matches_byte_array() {
        let bytes: [i8; 4] = [10, -20, 30, -40];
        let word = u32::from_le_bytes(bytes.map(|b| b as u8));
        let v = V4s::from_bits(word);
        assert_eq!(v.lanes().map(|l| l.raw()), bytes);
    }
}
