//! Q-format fixed-point arithmetic for the RNNASIP reproduction.
//!
//! The paper encodes all weights and activations in **Q3.12**: a signed
//! 16-bit value with 3 integer bits and 12 fractional bits, covering
//! `[-8.0, 8.0)` with a resolution of `2^-12`. Multiply-accumulate
//! operations widen into a 32-bit accumulator and are requantized back to
//! Q3.12 with a plain arithmetic right shift by 12 (Algorithm 1, line 13),
//! followed by saturation — exactly what the RI5CY `p.clip` datapath does.
//!
//! The types here are the *numerical ground truth* for the whole workspace:
//! the instruction-set simulator ([`rnnasip-sim`]), the golden neural-network
//! models ([`rnnasip-nn`]) and the kernel generators ([`rnnasip-core`]) all
//! reduce to these operations, which is what makes bit-exactness testable.
//!
//! # Example
//!
//! ```
//! use rnnasip_fixed::{Q3p12, Acc32};
//!
//! let w = Q3p12::from_f64(0.5);
//! let x = Q3p12::from_f64(-1.25);
//! let mut acc = Acc32::ZERO;
//! acc = acc.mac(w, x);
//! let y = acc.requantize();
//! assert!((y.to_f64() - (-0.625)).abs() < 1e-3);
//! ```
//!
//! [`rnnasip-sim`]: ../rnnasip_sim/index.html
//! [`rnnasip-nn`]: ../rnnasip_nn/index.html
//! [`rnnasip-core`]: ../rnnasip_core/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
pub mod pla;
mod q;
mod q8;
mod v2s;
mod v4s;

pub use acc::Acc32;
pub use pla::{hw_sig, hw_tanh};
pub use q::{Fx16, Q1p14, Q3p12, Q7p8};
pub use q8::{q3p12_to_q1p6, Fx8, Q1p6};
pub use v2s::V2s;
pub use v4s::V4s;

/// Number of fractional bits in the paper's canonical Q3.12 format.
pub const Q3P12_FRAC_BITS: u32 = 12;

/// Scale factor (`2^12`) of the canonical Q3.12 format.
pub const Q3P12_ONE: i32 = 1 << Q3P12_FRAC_BITS;
