//! Packed `v2s` SIMD vector: two signed 16-bit lanes in one 32-bit word.
//!
//! The Xpulp extension views a 32-bit register as a vector of two signed
//! halfwords (`v2s`). The paper packs two consecutive Q3.12 inputs
//! `p(2ci), p(2ci+1)` and the matching weights into such vectors so that a
//! single `pv.sdotsp.h` performs two MACs (Equation 7).

use crate::{Acc32, Q3p12};
use core::fmt;

/// Two signed 16-bit lanes packed into a 32-bit word, little-endian lane
/// order: lane 0 occupies bits `[15:0]`, lane 1 bits `[31:16]`.
///
/// This is the in-memory layout too: an array of `i16` loaded with `lw`
/// yields element `2k` in lane 0 and `2k+1` in lane 1.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::{Q3p12, V2s, Acc32};
///
/// let x = V2s::pack(Q3p12::from_f64(1.0), Q3p12::from_f64(-0.5));
/// let w = V2s::pack(Q3p12::from_f64(2.0), Q3p12::from_f64(4.0));
/// // sdotsp: acc += x0*w0 + x1*w1 = 2.0 - 2.0 = 0
/// let acc = x.sdotsp(w, Acc32::ZERO);
/// assert_eq!(acc.requantize(), Q3p12::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct V2s(u32);

impl V2s {
    /// Packs two Q3.12 lanes (lane 0 = low halfword).
    #[inline]
    pub fn pack(lane0: Q3p12, lane1: Q3p12) -> Self {
        Self((lane0.raw() as u16 as u32) | ((lane1.raw() as u16 as u32) << 16))
    }

    /// Creates a vector from raw 32-bit register contents.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Raw 32-bit register contents.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Lane 0 (bits `[15:0]`), sign-extended.
    #[inline]
    pub fn lane0(self) -> Q3p12 {
        Q3p12::from_raw(self.0 as u16 as i16)
    }

    /// Lane 1 (bits `[31:16]`), sign-extended.
    #[inline]
    pub fn lane1(self) -> Q3p12 {
        Q3p12::from_raw((self.0 >> 16) as u16 as i16)
    }

    /// Signed sum-dot-product accumulate, the `pv.sdotsp.h` semantics:
    /// `acc + lane0*rhs.lane0 + lane1*rhs.lane1` (wrapping).
    #[inline]
    #[must_use]
    pub fn sdotsp(self, rhs: Self, acc: Acc32) -> Acc32 {
        acc.mac(self.lane0(), rhs.lane0())
            .mac(self.lane1(), rhs.lane1())
    }

    /// Signed dot-product (no accumulate), the `pv.dotsp.h` semantics.
    #[inline]
    pub fn dotsp(self, rhs: Self) -> Acc32 {
        self.sdotsp(rhs, Acc32::ZERO)
    }

    /// Lane-wise saturating addition (`pv.add.h` on RI5CY wraps per lane;
    /// we expose the wrapping form to stay hardware-faithful).
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self::pack(
            self.lane0().wrapping_add(rhs.lane0()),
            self.lane1().wrapping_add(rhs.lane1()),
        )
    }
}

impl fmt::Debug for V2s {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V2s[{}, {}]", self.lane0().raw(), self.lane1().raw())
    }
}

impl From<[Q3p12; 2]> for V2s {
    fn from(lanes: [Q3p12; 2]) -> Self {
        Self::pack(lanes[0], lanes[1])
    }
}

impl From<V2s> for [Q3p12; 2] {
    fn from(v: V2s) -> Self {
        [v.lane0(), v.lane1()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let v = V2s::pack(Q3p12::from_raw(-1), Q3p12::from_raw(12345));
        assert_eq!(v.lane0().raw(), -1);
        assert_eq!(v.lane1().raw(), 12345);
        assert_eq!(v.bits(), 0x3039_FFFF);
    }

    #[test]
    fn sdotsp_matches_scalar_macs() {
        let a = V2s::pack(Q3p12::from_raw(-30000), Q3p12::from_raw(321));
        let b = V2s::pack(Q3p12::from_raw(31000), Q3p12::from_raw(-4096));
        let acc = a.sdotsp(b, Acc32::from_raw(99));
        let expect = 99i64 + (-30000i64 * 31000) + (321i64 * -4096);
        assert_eq!(acc.raw() as i64, expect);
    }

    #[test]
    fn memory_layout_matches_halfword_array() {
        // Two consecutive i16 values in little-endian memory, loaded as u32.
        let mem: [i16; 2] = [100, -200];
        let bytes = [
            mem[0].to_le_bytes()[0],
            mem[0].to_le_bytes()[1],
            mem[1].to_le_bytes()[0],
            mem[1].to_le_bytes()[1],
        ];
        let word = u32::from_le_bytes(bytes);
        let v = V2s::from_bits(word);
        assert_eq!(v.lane0().raw(), 100);
        assert_eq!(v.lane1().raw(), -200);
    }
}
