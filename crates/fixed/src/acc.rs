//! 32-bit multiply-accumulate register model.

use crate::q::{saturate_i32, Fx16, Q3p12};
use core::fmt;

/// The 32-bit accumulator used by the MAC / sum-dot-product datapath.
///
/// A fully-connected output in the paper is computed as
/// `o = b + Σ w·x` where each product of two Q3.12 operands lands in this
/// accumulator with 24 fractional bits of headroom folded into plain i32
/// wrapping arithmetic (the hardware adder wraps; overflow is the
/// programmer's responsibility, exactly like `pv.sdotsp.h`). The final
/// requantization shifts right by 12 and saturates to Q3.12
/// (Algorithm 1, lines 13–14).
///
/// # Example
///
/// ```
/// use rnnasip_fixed::{Acc32, Q3p12};
///
/// let acc = Acc32::from_bias(Q3p12::from_f64(0.5))
///     .mac(Q3p12::from_f64(2.0), Q3p12::from_f64(1.5));
/// assert_eq!(acc.requantize(), Q3p12::from_f64(3.5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Acc32(i32);

impl Acc32 {
    /// The zero accumulator.
    pub const ZERO: Self = Self(0);

    /// Creates an accumulator from its raw i32 contents.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Self(raw)
    }

    /// Raw i32 contents.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Seeds the accumulator with a Q3.12 bias, pre-shifted so that the
    /// final `>> 12` requantization recovers it: `acc = bias << 12`.
    ///
    /// This matches how the optimized kernels initialise `temp_out`
    /// registers with the layer bias before the MAC loop.
    #[inline]
    pub fn from_bias(bias: Q3p12) -> Self {
        Self((bias.raw() as i32) << 12)
    }

    /// One multiply-accumulate step: `acc += w * x` (wrapping, like the
    /// hardware adder).
    #[inline]
    #[must_use]
    pub fn mac<const F: u32>(self, w: Fx16<F>, x: Fx16<F>) -> Self {
        Self(self.0.wrapping_add(w.widening_mul(x)))
    }

    /// One multiply-subtract step: `acc -= w * x` (the `p.msu` flavour).
    #[inline]
    #[must_use]
    pub fn msu<const F: u32>(self, w: Fx16<F>, x: Fx16<F>) -> Self {
        Self(self.0.wrapping_sub(w.widening_mul(x)))
    }

    /// Adds another accumulator (wrapping).
    #[inline]
    #[must_use]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }

    /// Requantizes to Q3.12: arithmetic shift right by 12 (truncating
    /// toward negative infinity), then saturate to the i16 range.
    #[inline]
    pub fn requantize(self) -> Q3p12 {
        Q3p12::from_raw(saturate_i32(self.0 >> 12))
    }

    /// Requantizes with an arbitrary shift, for layers whose inputs and
    /// weights use different Q formats.
    #[inline]
    pub fn requantize_shift(self, shift: u32) -> Q3p12 {
        Q3p12::from_raw(saturate_i32(self.0 >> shift))
    }
}

impl fmt::Display for Acc32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acc({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_round_trips_through_requantize() {
        for v in [-8.0, -0.5, 0.0, 0.25, 7.5] {
            let b = Q3p12::from_f64(v);
            assert_eq!(Acc32::from_bias(b).requantize(), b);
        }
    }

    #[test]
    fn mac_chain_matches_direct_sum() {
        let ws = [0.5, -1.25, 3.0];
        let xs = [2.0, 0.75, -0.125];
        let mut acc = Acc32::ZERO;
        let mut expect = 0i32;
        for (w, x) in ws.iter().zip(&xs) {
            let (wq, xq) = (Q3p12::from_f64(*w), Q3p12::from_f64(*x));
            acc = acc.mac(wq, xq);
            expect += wq.raw() as i32 * xq.raw() as i32;
        }
        assert_eq!(acc.raw(), expect);
    }

    #[test]
    fn requantize_saturates() {
        let acc = Acc32::from_raw(i32::MAX);
        assert_eq!(acc.requantize(), Q3p12::MAX);
        let acc = Acc32::from_raw(i32::MIN);
        assert_eq!(acc.requantize(), Q3p12::MIN);
    }

    #[test]
    fn requantize_truncates_negative() {
        // -1 raw (i.e. -2^-24) must requantize to -1 in Q3.12 raw units,
        // because the arithmetic shift truncates toward negative infinity.
        assert_eq!(Acc32::from_raw(-1).requantize().raw(), -1);
        assert_eq!(Acc32::from_raw(-4096).requantize().raw(), -1);
        assert_eq!(Acc32::from_raw(-4097).requantize().raw(), -2);
    }

    #[test]
    fn msu_is_inverse_of_mac() {
        let w = Q3p12::from_f64(1.5);
        let x = Q3p12::from_f64(-2.25);
        let acc = Acc32::from_raw(777).mac(w, x).msu(w, x);
        assert_eq!(acc.raw(), 777);
    }
}
