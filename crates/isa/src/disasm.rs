//! Textual disassembly (`Display` for [`Instr`]).
//!
//! The output format is what the assembler in `rnnasip-asm` parses, so
//! `parse(format(i)) == i` round-trips (control-flow offsets are printed
//! numerically, relative to the instruction).

use crate::instr::*;
use core::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Lui { rd, imm20 } => write!(f, "lui {rd}, {:#x}", imm20 as u32 & 0xFFFFF),
            Auipc { rd, imm20 } => write!(f, "auipc {rd}, {:#x}", imm20 as u32 & 0xFFFFF),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Store {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            OpImm { op, rd, rs1, imm } => write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic()),
            Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            MulDiv { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            Fence => f.write_str("fence"),
            Ecall => f.write_str("ecall"),
            Ebreak => f.write_str("ebreak"),
            Csr { op, rd, rs1, csr } => write!(f, "{} {rd}, {csr}, {rs1}", op.mnemonic()),
            LoadPostInc {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "p.{} {rd}, {offset}({rs1}!)", op.mnemonic()),
            LoadReg { op, rd, rs1, rs2 } => {
                write!(f, "p.{} {rd}, {rs2}({rs1})", op.mnemonic())
            }
            StorePostInc {
                op,
                rs2,
                rs1,
                offset,
            } => write!(f, "p.{} {rs2}, {offset}({rs1}!)", op.mnemonic()),
            LpStarti { l, uimm } => write!(f, "lp.starti {}, {uimm}", l.index()),
            LpEndi { l, uimm } => write!(f, "lp.endi {}, {uimm}", l.index()),
            LpCount { l, rs1 } => write!(f, "lp.count {}, {rs1}", l.index()),
            LpCounti { l, uimm } => write!(f, "lp.counti {}, {uimm}", l.index()),
            LpSetup { l, rs1, uimm } => write!(f, "lp.setup {}, {rs1}, {uimm}", l.index()),
            LpSetupi { l, count, uimm } => {
                write!(f, "lp.setupi {}, {count}, {uimm}", l.index())
            }
            Mac { rd, rs1, rs2 } => write!(f, "p.mac {rd}, {rs1}, {rs2}"),
            Msu { rd, rs1, rs2 } => write!(f, "p.msu {rd}, {rs1}, {rs2}"),
            Clip { rd, rs1, bits } => write!(f, "p.clip {rd}, {rs1}, {bits}"),
            ClipU { rd, rs1, bits } => write!(f, "p.clipu {rd}, {rs1}, {bits}"),
            ExtHs { rd, rs1 } => write!(f, "p.exths {rd}, {rs1}"),
            ExtHz { rd, rs1 } => write!(f, "p.exthz {rd}, {rs1}"),
            ExtBs { rd, rs1 } => write!(f, "p.extbs {rd}, {rs1}"),
            ExtBz { rd, rs1 } => write!(f, "p.extbz {rd}, {rs1}"),
            PAbs { rd, rs1 } => write!(f, "p.abs {rd}, {rs1}"),
            Ff1 { rd, rs1 } => write!(f, "p.ff1 {rd}, {rs1}"),
            Fl1 { rd, rs1 } => write!(f, "p.fl1 {rd}, {rs1}"),
            Cnt { rd, rs1 } => write!(f, "p.cnt {rd}, {rs1}"),
            Clb { rd, rs1 } => write!(f, "p.clb {rd}, {rs1}"),
            Ror { rd, rs1, rs2 } => write!(f, "p.ror {rd}, {rs1}, {rs2}"),
            PMin { rd, rs1, rs2 } => write!(f, "p.min {rd}, {rs1}, {rs2}"),
            PMax { rd, rs1, rs2 } => write!(f, "p.max {rd}, {rs1}, {rs2}"),
            PvAlu {
                op,
                size,
                mode,
                rd,
                rs1,
                rs2,
            } => match mode {
                SimdMode::Vv if matches!(op, PvAluOp::Abs) => {
                    write!(f, "{}.{} {rd}, {rs1}", op.mnemonic(), size.suffix())
                }
                SimdMode::Vv => write!(f, "{}.{} {rd}, {rs1}, {rs2}", op.mnemonic(), size.suffix()),
                SimdMode::Sc => write!(
                    f,
                    "{}.sc.{} {rd}, {rs1}, {rs2}",
                    op.mnemonic(),
                    size.suffix()
                ),
                SimdMode::Sci(imm) => write!(
                    f,
                    "{}.sci.{} {rd}, {rs1}, {imm}",
                    op.mnemonic(),
                    size.suffix()
                ),
            },
            PvDot {
                op,
                size,
                rd,
                rs1,
                rs2,
            } => write!(f, "{}.{} {rd}, {rs1}, {rs2}", op.mnemonic(), size.suffix()),
            PlSdotsp {
                spr,
                size,
                rd,
                rs1,
                rs2,
            } => write!(f, "pl.sdotsp.{}.{spr} {rd}, {rs1}, {rs2}", size.suffix()),
            PlTanh { rd, rs1 } => write!(f, "pl.tanh {rd}, {rs1}"),
            PlSig { rd, rs1 } => write!(f, "pl.sig {rd}, {rs1}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn formats_match_papers_notation() {
        let i = Instr::PlSdotsp {
            spr: 0,
            size: SimdSize::Half,
            rd: Reg::T0,
            rs1: Reg::A2,
            rs2: Reg::A3,
        };
        assert_eq!(i.to_string(), "pl.sdotsp.h.0 t0, a2, a3");
        let i = Instr::LoadPostInc {
            op: LoadOp::Lw,
            rd: Reg::A4,
            rs1: Reg::A5,
            offset: 4,
        };
        assert_eq!(i.to_string(), "p.lw a4, 4(a5!)");
        let i = Instr::LpSetupi {
            l: LoopIdx::L0,
            count: 9,
            uimm: 32,
        };
        assert_eq!(i.to_string(), "lp.setupi 0, 9, 32");
        let i = Instr::PvAlu {
            op: PvAluOp::Sra,
            size: SimdSize::Half,
            mode: SimdMode::Sci(12),
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
        };
        assert_eq!(i.to_string(), "pv.sra.sci.h a0, a0, 12");
    }
}
