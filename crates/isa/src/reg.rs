//! General-purpose register names.

use core::fmt;

/// One of the 32 general-purpose integer registers `x0`–`x31`.
///
/// Displayed with its ABI name (`zero`, `ra`, `sp`, …, `t6`), which is also
/// what the assembler accepts.
///
/// # Example
///
/// ```
/// use rnnasip_isa::Reg;
///
/// assert_eq!(Reg::A0.to_string(), "a0");
/// assert_eq!(Reg::new(10), Some(Reg::A0));
/// assert_eq!("t3".parse::<Reg>()?, Reg::T3);
/// # Ok::<(), rnnasip_isa::ParseRegError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI names indexed by register number.
const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

macro_rules! reg_consts {
    ($($name:ident = $n:expr;)*) => {
        impl Reg {
            $(
                #[doc = concat!("Register `x", stringify!($n), "`.")]
                pub const $name: Reg = Reg($n);
            )*
        }
    };
}

reg_consts! {
    ZERO = 0; RA = 1; SP = 2; GP = 3; TP = 4;
    T0 = 5; T1 = 6; T2 = 7;
    S0 = 8; S1 = 9;
    A0 = 10; A1 = 11; A2 = 12; A3 = 13; A4 = 14; A5 = 15; A6 = 16; A7 = 17;
    S2 = 18; S3 = 19; S4 = 20; S5 = 21; S6 = 22; S7 = 23; S8 = 24; S9 = 25;
    S10 = 26; S11 = 27;
    T3 = 28; T4 = 29; T5 = 30; T6 = 31;
}

impl Reg {
    /// Creates a register from its number, or `None` if `n > 31`.
    #[inline]
    pub const fn new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from the low 5 bits of `n` (encoding fields).
    #[inline]
    pub const fn from_bits(n: u32) -> Self {
        Reg((n & 0x1f) as u8)
    }

    /// The register number, 0–31.
    #[inline]
    pub const fn num(self) -> u8 {
        self.0
    }

    /// The register's ABI name (e.g. `"a0"`).
    #[inline]
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Whether this is the hard-wired zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this register is encodable in the compressed (RVC) 3-bit
    /// register field (`x8`–`x15`).
    #[inline]
    pub const fn is_compressible(self) -> bool {
        self.0 >= 8 && self.0 <= 15
    }

    /// Iterator over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }

    /// The caller-saved registers usable as MAC accumulator tiles by the
    /// kernel generators, in allocation order: temporaries first, then
    /// argument registers not holding pointers.
    pub fn tile_pool() -> &'static [Reg] {
        &[
            Reg::T0,
            Reg::T1,
            Reg::T2,
            Reg::T3,
            Reg::T4,
            Reg::T5,
            Reg::T6,
            Reg::A4,
            Reg::A5,
            Reg::A6,
            Reg::A7,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
        ]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}/{})", self.0, self.abi_name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    /// Parses either an ABI name (`a0`, `t3`, `fp`) or a numeric name
    /// (`x17`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(pos) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(pos as u8));
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if let Some(r) = Reg::new(n) {
                    return Ok(r);
                }
            }
        }
        Err(ParseRegError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip() {
        for r in Reg::all() {
            let parsed: Reg = r.abi_name().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        assert_eq!("x0".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("x31".parse::<Reg>().unwrap(), Reg::T6);
        assert!("x32".parse::<Reg>().is_err());
        assert!("q1".parse::<Reg>().is_err());
    }

    #[test]
    fn fp_is_s0() {
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
    }

    #[test]
    fn compressible_window() {
        assert!(Reg::S0.is_compressible());
        assert!(Reg::A5.is_compressible());
        assert!(!Reg::A6.is_compressible());
        assert!(!Reg::T0.is_compressible());
    }
}
