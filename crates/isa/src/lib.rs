//! Instruction-set model for the RNN-extended RISC-V core.
//!
//! This crate defines the instructions understood by the simulated core of
//! the RNNASIP reproduction:
//!
//! * **RV32I** base integer ISA and **RV32M** multiply/divide,
//! * a decoder/encoder for the common **RV32C** compressed subset
//!   (expanded to their 32-bit semantics; tracked for code-size fidelity),
//! * the **Xpulp** extensions RI5CY provides and the paper's software
//!   optimizations rely on: two-level hardware loops, post-increment
//!   loads/stores, packed 16/8-bit SIMD with sum-dot-products, `p.mac`,
//!   clips and sign extensions,
//! * the paper's **RNN extension**: `pl.sdotsp.h.0/1` (merged
//!   load-and-compute through two special-purpose registers) and the
//!   single-cycle `pl.tanh` / `pl.sig` activations.
//!
//! Encodings are bit-exact for RV32IMC. For Xpulp and the RNN extension the
//! encodings use the RISC-V *custom* opcode space with a self-consistent,
//! documented layout (see [`encode`]); they are RI5CY-flavoured but not
//! guaranteed bit-compatible with CV32E40P binaries. Internal consistency
//! (`decode(encode(i)) == i`) is enforced by property tests, which is the
//! contract the assembler and simulator build on.
//!
//! # Example
//!
//! ```
//! use rnnasip_isa::{decode, encode, Instr, Reg};
//!
//! let instr = Instr::OpImm {
//!     op: rnnasip_isa::AluImmOp::Addi,
//!     rd: Reg::A0,
//!     rs1: Reg::A1,
//!     imm: -4,
//! };
//! let word = encode(&instr);
//! assert_eq!(decode(word)?, instr);
//! assert_eq!(instr.to_string(), "addi a0, a1, -4");
//! # Ok::<(), rnnasip_isa::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod decode;
mod disasm;
mod encode;
mod instr;
mod mnemonic;
mod reg;
mod rvc;

pub use csr::Csr;
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{
    AluImmOp, AluOp, BranchOp, CsrOp, DotOp, Instr, LoadOp, LoopIdx, MulDivOp, PvAluOp, SimdMode,
    SimdSize, StoreOp, TimingClass,
};
pub use mnemonic::MnemonicId;
pub use reg::{ParseRegError, Reg};
pub use rvc::{compress, decode_compressed, is_compressed};
