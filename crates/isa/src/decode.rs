//! Binary decoder: the inverse of [`encode`](crate::encode()).

use crate::csr::Csr;
use crate::encode::{
    pv_alu_funct5, pv_dot_funct5, F7_BITMANIP, F7_CLIP, F7_MACMSU, F7_SCALAR_DSP, OP_HWLOOP,
    OP_RNN, OP_SIMD, OP_XPULP_LOAD, OP_XPULP_STORE,
};
use crate::instr::*;
use crate::reg::Reg;
use core::fmt;

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn err(word: u32, reason: &'static str) -> DecodeError {
    DecodeError { word, reason }
}

#[inline]
fn rd(w: u32) -> Reg {
    Reg::from_bits(w >> 7)
}
#[inline]
fn rs1(w: u32) -> Reg {
    Reg::from_bits(w >> 15)
}
#[inline]
fn rs2(w: u32) -> Reg {
    Reg::from_bits(w >> 20)
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extended 12-bit I-type immediate.
#[inline]
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// Unsigned 12-bit I-type immediate (hardware-loop offsets/counts).
#[inline]
fn uimm_i(w: u32) -> u32 {
    w >> 20
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(w: u32) -> i32 {
    let hi = (w as i32) >> 25; // sign-extended imm[11:5]
    let lo = (w >> 7) & 0x1F;
    (hi << 5) | lo as i32
}

/// Sign-extended B-type immediate.
#[inline]
fn imm_b(w: u32) -> i32 {
    let imm12 = (w as i32) >> 31; // sign
    let imm11 = (w >> 7) & 1;
    let imm10_5 = (w >> 25) & 0x3F;
    let imm4_1 = (w >> 8) & 0xF;
    (imm12 << 12) | ((imm11 as i32) << 11) | ((imm10_5 as i32) << 5) | ((imm4_1 as i32) << 1)
}

/// Sign-extended J-type immediate.
#[inline]
fn imm_j(w: u32) -> i32 {
    let imm20 = (w as i32) >> 31;
    let imm19_12 = (w >> 12) & 0xFF;
    let imm11 = (w >> 20) & 1;
    let imm10_1 = (w >> 21) & 0x3FF;
    (imm20 << 20) | ((imm19_12 as i32) << 12) | ((imm11 as i32) << 11) | ((imm10_1 as i32) << 1)
}

fn load_op(f3: u32) -> Option<LoadOp> {
    Some(match f3 {
        0b000 => LoadOp::Lb,
        0b001 => LoadOp::Lh,
        0b010 => LoadOp::Lw,
        0b100 => LoadOp::Lbu,
        0b101 => LoadOp::Lhu,
        _ => return None,
    })
}

fn store_op(f3: u32) -> Option<StoreOp> {
    Some(match f3 {
        0b000 => StoreOp::Sb,
        0b001 => StoreOp::Sh,
        0b010 => StoreOp::Sw,
        _ => return None,
    })
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the word does not correspond to any
/// instruction this core implements (reserved opcode, bad funct fields, …).
///
/// # Example
///
/// ```
/// use rnnasip_isa::decode;
///
/// let instr = decode(0x0000_0013)?; // canonical NOP
/// assert_eq!(instr.to_string(), "addi zero, zero, 0");
/// # Ok::<(), rnnasip_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7F;
    let f3 = funct3(word);
    match opcode {
        0x37 => Ok(Instr::Lui {
            rd: rd(word),
            imm20: ((word >> 12) & 0xFFFFF) as i32,
        }),
        0x17 => Ok(Instr::Auipc {
            rd: rd(word),
            imm20: ((word >> 12) & 0xFFFFF) as i32,
        }),
        0x6F => Ok(Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0x67 => {
            if f3 != 0 {
                return Err(err(word, "jalr requires funct3=0"));
            }
            Ok(Instr::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0x63 => {
            let op = match f3 {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return Err(err(word, "reserved branch funct3")),
            };
            Ok(Instr::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        0x03 => {
            let op = load_op(f3).ok_or_else(|| err(word, "reserved load funct3"))?;
            Ok(Instr::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0x23 => {
            let op = store_op(f3).ok_or_else(|| err(word, "reserved store funct3"))?;
            Ok(Instr::Store {
                op,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            })
        }
        0x13 => {
            let op = match f3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if funct7(word) != 0 {
                        return Err(err(word, "bad slli funct7"));
                    }
                    return Ok(Instr::OpImm {
                        op: AluImmOp::Slli,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: ((word >> 20) & 0x1F) as i32,
                    });
                }
                0b101 => {
                    let op = match funct7(word) {
                        0 => AluImmOp::Srli,
                        0x20 => AluImmOp::Srai,
                        _ => return Err(err(word, "bad shift funct7")),
                    };
                    return Ok(Instr::OpImm {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: ((word >> 20) & 0x1F) as i32,
                    });
                }
                _ => unreachable!("funct3 is 3 bits"),
            };
            Ok(Instr::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm: imm_i(word),
            })
        }
        0x33 => decode_op(word, f3),
        0x0F => Ok(Instr::Fence),
        0x73 => match f3 {
            0b000 => match uimm_i(word) {
                0 => Ok(Instr::Ecall),
                1 => Ok(Instr::Ebreak),
                _ => Err(err(word, "unsupported SYSTEM function")),
            },
            0b001 => Ok(Instr::Csr {
                op: CsrOp::Csrrw,
                rd: rd(word),
                rs1: rs1(word),
                csr: Csr::from_addr(uimm_i(word) as u16),
            }),
            0b010 => Ok(Instr::Csr {
                op: CsrOp::Csrrs,
                rd: rd(word),
                rs1: rs1(word),
                csr: Csr::from_addr(uimm_i(word) as u16),
            }),
            0b011 => Ok(Instr::Csr {
                op: CsrOp::Csrrc,
                rd: rd(word),
                rs1: rs1(word),
                csr: Csr::from_addr(uimm_i(word) as u16),
            }),
            _ => Err(err(word, "unsupported SYSTEM funct3")),
        },
        OP_XPULP_LOAD => {
            if f3 == 0b111 {
                let op = load_op(funct7(word) & 0x7)
                    .ok_or_else(|| err(word, "reserved register-offset load type"))?;
                Ok(Instr::LoadReg {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                })
            } else {
                let op = load_op(f3).ok_or_else(|| err(word, "reserved post-inc load type"))?;
                Ok(Instr::LoadPostInc {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: imm_i(word),
                })
            }
        }
        OP_XPULP_STORE => {
            let op = store_op(f3).ok_or_else(|| err(word, "reserved post-inc store type"))?;
            Ok(Instr::StorePostInc {
                op,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            })
        }
        OP_HWLOOP => {
            let l = LoopIdx::from_bit(rd(word).num() as u32);
            match f3 {
                0b000 => Ok(Instr::LpStarti {
                    l,
                    uimm: uimm_i(word),
                }),
                0b001 => Ok(Instr::LpEndi {
                    l,
                    uimm: uimm_i(word),
                }),
                0b010 => Ok(Instr::LpCount { l, rs1: rs1(word) }),
                0b011 => Ok(Instr::LpCounti {
                    l,
                    uimm: uimm_i(word),
                }),
                0b100 => Ok(Instr::LpSetup {
                    l,
                    rs1: rs1(word),
                    uimm: uimm_i(word),
                }),
                0b101 => Ok(Instr::LpSetupi {
                    l,
                    count: rs1(word).num() as u32,
                    uimm: uimm_i(word),
                }),
                _ => Err(err(word, "reserved hardware-loop funct3")),
            }
        }
        OP_SIMD => decode_simd(word),
        OP_RNN => match f3 {
            0b000 | 0b001 => Ok(Instr::PlSdotsp {
                spr: f3 as u8,
                size: SimdSize::Half,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }),
            0b100 | 0b101 => Ok(Instr::PlSdotsp {
                spr: (f3 & 1) as u8,
                size: SimdSize::Byte,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }),
            0b010 => Ok(Instr::PlTanh {
                rd: rd(word),
                rs1: rs1(word),
            }),
            0b011 => Ok(Instr::PlSig {
                rd: rd(word),
                rs1: rs1(word),
            }),
            _ => Err(err(word, "reserved RNN-extension funct3")),
        },
        _ => Err(err(word, "unknown opcode")),
    }
}

fn decode_op(word: u32, f3: u32) -> Result<Instr, DecodeError> {
    let f7 = funct7(word);
    let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
    match f7 {
        0x00 | 0x20 => {
            let op = match (f3, f7) {
                (0b000, 0x00) => AluOp::Add,
                (0b000, 0x20) => AluOp::Sub,
                (0b001, 0x00) => AluOp::Sll,
                (0b010, 0x00) => AluOp::Slt,
                (0b011, 0x00) => AluOp::Sltu,
                (0b100, 0x00) => AluOp::Xor,
                (0b101, 0x00) => AluOp::Srl,
                (0b101, 0x20) => AluOp::Sra,
                (0b110, 0x00) => AluOp::Or,
                (0b111, 0x00) => AluOp::And,
                _ => return Err(err(word, "reserved OP funct3/funct7")),
            };
            Ok(Instr::Op { op, rd, rs1, rs2 })
        }
        0x01 => {
            let op = match f3 {
                0b000 => MulDivOp::Mul,
                0b001 => MulDivOp::Mulh,
                0b010 => MulDivOp::Mulhsu,
                0b011 => MulDivOp::Mulhu,
                0b100 => MulDivOp::Div,
                0b101 => MulDivOp::Divu,
                0b110 => MulDivOp::Rem,
                0b111 => MulDivOp::Remu,
                _ => unreachable!(),
            };
            Ok(Instr::MulDiv { op, rd, rs1, rs2 })
        }
        F7_MACMSU => match f3 {
            0b000 => Ok(Instr::Mac { rd, rs1, rs2 }),
            0b001 => Ok(Instr::Msu { rd, rs1, rs2 }),
            _ => Err(err(word, "reserved mac/msu funct3")),
        },
        F7_SCALAR_DSP => match f3 {
            0b000 => Ok(Instr::PMin { rd, rs1, rs2 }),
            0b001 => Ok(Instr::PMax { rd, rs1, rs2 }),
            0b010 => Ok(Instr::PAbs { rd, rs1 }),
            0b011 => Ok(Instr::ExtHs { rd, rs1 }),
            0b100 => Ok(Instr::ExtHz { rd, rs1 }),
            0b101 => Ok(Instr::ExtBs { rd, rs1 }),
            0b110 => Ok(Instr::ExtBz { rd, rs1 }),
            _ => Err(err(word, "reserved scalar-DSP funct3")),
        },
        F7_BITMANIP => match f3 {
            0b000 => Ok(Instr::Ff1 { rd, rs1 }),
            0b001 => Ok(Instr::Fl1 { rd, rs1 }),
            0b010 => Ok(Instr::Cnt { rd, rs1 }),
            0b011 => Ok(Instr::Clb { rd, rs1 }),
            0b100 => Ok(Instr::Ror { rd, rs1, rs2 }),
            _ => Err(err(word, "reserved bit-manipulation funct3")),
        },
        F7_CLIP => {
            let bits = rs2.num().wrapping_add(1);
            match f3 {
                0b000 => Ok(Instr::Clip { rd, rs1, bits }),
                0b001 => Ok(Instr::ClipU { rd, rs1, bits }),
                _ => Err(err(word, "reserved clip funct3")),
            }
        }
        _ => Err(err(word, "reserved OP funct7")),
    }
}

fn decode_simd(word: u32) -> Result<Instr, DecodeError> {
    let f5 = word >> 27;
    let f3 = funct3(word);
    let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
    let size = match f3 & 1 {
        0 => SimdSize::Half,
        _ => SimdSize::Byte,
    };
    let mode = match f3 >> 1 {
        0b00 => SimdMode::Vv,
        0b10 => SimdMode::Sc,
        0b11 => {
            // Reconstruct the sign-extended 6-bit immediate from
            // {bit 25, rs2 field}.
            let raw = ((word >> 20) & 0x1F) | (((word >> 25) & 1) << 5);
            let imm = ((raw << 2) as u8 as i8) >> 2;
            SimdMode::Sci(imm)
        }
        _ => return Err(err(word, "reserved SIMD mode")),
    };
    let alu_op = |f5: u32| -> Option<PvAluOp> {
        [
            PvAluOp::Add,
            PvAluOp::Sub,
            PvAluOp::Avg,
            PvAluOp::Min,
            PvAluOp::Max,
            PvAluOp::Srl,
            PvAluOp::Sra,
            PvAluOp::Sll,
            PvAluOp::Or,
            PvAluOp::Xor,
            PvAluOp::And,
            PvAluOp::Abs,
        ]
        .into_iter()
        .find(|&op| pv_alu_funct5(op) == f5)
    };
    let dot_op = |f5: u32| -> Option<DotOp> {
        [
            DotOp::DotUp,
            DotOp::DotUsp,
            DotOp::DotSp,
            DotOp::SdotUp,
            DotOp::SdotUsp,
            DotOp::SdotSp,
        ]
        .into_iter()
        .find(|&op| pv_dot_funct5(op) == f5)
    };
    if let Some(op) = alu_op(f5) {
        // Unary abs exists only in vector form; its scalar/immediate
        // modes are reserved encodings. In vector form rs2 is ignored
        // and canonicalised to x0 so round-trips hold.
        if matches!(op, PvAluOp::Abs) && !matches!(mode, SimdMode::Vv) {
            return Err(err(word, "pv.abs supports only vector mode"));
        }
        let rs2 = if matches!(op, PvAluOp::Abs) {
            Reg::ZERO
        } else {
            rs2
        };
        let rs2 = if matches!(mode, SimdMode::Sci(_)) {
            Reg::ZERO
        } else {
            rs2
        };
        Ok(Instr::PvAlu {
            op,
            size,
            mode,
            rd,
            rs1,
            rs2,
        })
    } else if let Some(op) = dot_op(f5) {
        if !matches!(mode, SimdMode::Vv) {
            return Err(err(word, "dot products support only vector mode"));
        }
        Ok(Instr::PvDot {
            op,
            size,
            rd,
            rs1,
            rs2,
        })
    } else {
        Err(err(word, "reserved SIMD funct5"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn round_trip(i: Instr) {
        let w = encode(&i);
        let d = decode(w).unwrap_or_else(|e| panic!("{e} for {i:?}"));
        assert_eq!(d, i, "word {w:#010x}");
    }

    #[test]
    fn round_trip_representative_sample() {
        use Instr::*;
        let samples = [
            Lui {
                rd: Reg::A0,
                imm20: 0xFFFFF,
            },
            Auipc {
                rd: Reg::T3,
                imm20: 1,
            },
            Jal {
                rd: Reg::RA,
                offset: -2048,
            },
            Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            },
            Branch {
                op: BranchOp::Bltu,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -4096,
            },
            Load {
                op: LoadOp::Lhu,
                rd: Reg::S1,
                rs1: Reg::SP,
                offset: 2047,
            },
            Store {
                op: StoreOp::Sh,
                rs2: Reg::T6,
                rs1: Reg::GP,
                offset: -2048,
            },
            OpImm {
                op: AluImmOp::Srai,
                rd: Reg::A5,
                rs1: Reg::A5,
                imm: 31,
            },
            Op {
                op: AluOp::Sub,
                rd: Reg::S11,
                rs1: Reg::S10,
                rs2: Reg::S9,
            },
            MulDiv {
                op: MulDivOp::Remu,
                rd: Reg::A1,
                rs1: Reg::A2,
                rs2: Reg::A3,
            },
            Fence,
            Ecall,
            Ebreak,
            Csr {
                op: CsrOp::Csrrs,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                csr: crate::csr::Csr::Mcycle,
            },
            LoadPostInc {
                op: LoadOp::Lw,
                rd: Reg::A4,
                rs1: Reg::A5,
                offset: 4,
            },
            LoadReg {
                op: LoadOp::Lh,
                rd: Reg::A4,
                rs1: Reg::A5,
                rs2: Reg::A6,
            },
            StorePostInc {
                op: StoreOp::Sh,
                rs2: Reg::T0,
                rs1: Reg::T1,
                offset: 2,
            },
            LpStarti {
                l: LoopIdx::L0,
                uimm: 12,
            },
            LpEndi {
                l: LoopIdx::L1,
                uimm: 4095,
            },
            LpCount {
                l: LoopIdx::L0,
                rs1: Reg::A0,
            },
            LpCounti {
                l: LoopIdx::L1,
                uimm: 100,
            },
            LpSetup {
                l: LoopIdx::L0,
                rs1: Reg::T2,
                uimm: 16,
            },
            LpSetupi {
                l: LoopIdx::L1,
                count: 31,
                uimm: 9,
            },
            Mac {
                rd: Reg::T0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            Msu {
                rd: Reg::T1,
                rs1: Reg::A2,
                rs2: Reg::A3,
            },
            Clip {
                rd: Reg::A0,
                rs1: Reg::A1,
                bits: 16,
            },
            ClipU {
                rd: Reg::A0,
                rs1: Reg::A1,
                bits: 8,
            },
            ExtHs {
                rd: Reg::A0,
                rs1: Reg::A2,
            },
            PAbs {
                rd: Reg::S2,
                rs1: Reg::S3,
            },
            PMin {
                rd: Reg::S2,
                rs1: Reg::S3,
                rs2: Reg::S4,
            },
            PvAlu {
                op: PvAluOp::Add,
                size: SimdSize::Half,
                mode: SimdMode::Vv,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            PvAlu {
                op: PvAluOp::Sra,
                size: SimdSize::Byte,
                mode: SimdMode::Sci(-32),
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::ZERO,
            },
            PvAlu {
                op: PvAluOp::Max,
                size: SimdSize::Half,
                mode: SimdMode::Sc,
                rd: Reg::T5,
                rs1: Reg::T4,
                rs2: Reg::T3,
            },
            PvDot {
                op: DotOp::SdotSp,
                size: SimdSize::Half,
                rd: Reg::T0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            PvDot {
                op: DotOp::DotUp,
                size: SimdSize::Byte,
                rd: Reg::T1,
                rs1: Reg::A2,
                rs2: Reg::A3,
            },
            PlSdotsp {
                spr: 1,
                size: SimdSize::Half,
                rd: Reg::T0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            PlTanh {
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            PlSig {
                rd: Reg::A2,
                rs1: Reg::A3,
            },
        ];
        for i in samples {
            round_trip(i);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
        // Reserved branch funct3 (010).
        assert!(decode(0x0000_2063).is_err());
    }
}
