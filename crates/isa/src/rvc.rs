//! RV32C compressed-instruction support.
//!
//! RI5CY executes RV32IMC; compressed instructions matter for *code size*
//! (and hence I-cache behaviour), not semantics — every 16-bit form expands
//! to a 32-bit instruction. This module provides:
//!
//! * [`decode_compressed`] — expand a 16-bit word to its [`Instr`],
//! * [`compress`] — the inverse used by the assembler when compression is
//!   requested: produce the 16-bit form if one exists for this instruction.
//!
//! The supported subset is the standard RV32C set minus the floating-point
//! forms (the core has no FPU in our model): `c.addi4spn`, `c.lw`, `c.sw`,
//! `c.nop/c.addi`, `c.jal`, `c.li`, `c.addi16sp`, `c.lui`, `c.srli`,
//! `c.srai`, `c.andi`, `c.sub`, `c.xor`, `c.or`, `c.and`, `c.j`, `c.beqz`,
//! `c.bnez`, `c.slli`, `c.lwsp`, `c.jr`, `c.mv`, `c.ebreak`, `c.jalr`,
//! `c.add`, `c.swsp`.

use crate::decode::DecodeError;
use crate::instr::*;
use crate::reg::Reg;

fn err(word: u16, reason: &'static str) -> DecodeError {
    DecodeError {
        word: word as u32,
        reason,
    }
}

/// Compressed 3-bit register field: maps 0–7 to `x8`–`x15`.
#[inline]
fn reg3(bits: u16) -> Reg {
    Reg::from_bits(8 + (bits as u32 & 0x7))
}

#[inline]
fn bit(word: u16, n: u32) -> u32 {
    ((word >> n) & 1) as u32
}

#[inline]
fn bits(word: u16, hi: u32, lo: u32) -> u32 {
    ((word as u32) >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Sign-extends the low `n` bits of `v`.
#[inline]
fn sext(v: u32, n: u32) -> i32 {
    let shift = 32 - n;
    ((v << shift) as i32) >> shift
}

/// Returns `true` if the 16-bit word is a compressed instruction
/// (i.e. its two low bits are not `11`).
#[inline]
pub fn is_compressed(low_half: u16) -> bool {
    low_half & 0b11 != 0b11
}

/// Expands a 16-bit compressed instruction to its 32-bit semantics.
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved or unsupported (e.g. FP) encodings.
///
/// # Example
///
/// ```
/// use rnnasip_isa::decode_compressed;
///
/// // c.addi a0, 1 == 0x0505
/// let i = decode_compressed(0x0505)?;
/// assert_eq!(i.to_string(), "addi a0, a0, 1");
/// # Ok::<(), rnnasip_isa::DecodeError>(())
/// ```
pub fn decode_compressed(word: u16) -> Result<Instr, DecodeError> {
    let op = word & 0b11;
    let funct3 = bits(word, 15, 13);
    match (op, funct3) {
        (0b00, 0b000) => {
            // c.addi4spn rd', nzuimm
            let imm = (bits(word, 12, 11) << 4)
                | (bits(word, 10, 7) << 6)
                | (bit(word, 6) << 2)
                | (bit(word, 5) << 3);
            if imm == 0 {
                return Err(err(word, "c.addi4spn with zero immediate is reserved"));
            }
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd: reg3(word >> 2),
                rs1: Reg::SP,
                imm: imm as i32,
            })
        }
        (0b00, 0b010) => {
            // c.lw rd', uimm(rs1')
            let imm = (bits(word, 12, 10) << 3) | (bit(word, 6) << 2) | (bit(word, 5) << 6);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd: reg3(word >> 2),
                rs1: reg3(word >> 7),
                offset: imm as i32,
            })
        }
        (0b00, 0b110) => {
            // c.sw rs2', uimm(rs1')
            let imm = (bits(word, 12, 10) << 3) | (bit(word, 6) << 2) | (bit(word, 5) << 6);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs2: reg3(word >> 2),
                rs1: reg3(word >> 7),
                offset: imm as i32,
            })
        }
        (0b01, 0b000) => {
            // c.nop / c.addi
            let rd = Reg::from_bits(bits(word, 11, 7));
            let imm = sext((bit(word, 12) << 5) | bits(word, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd,
                rs1: rd,
                imm,
            })
        }
        (0b01, 0b001) | (0b01, 0b101) => {
            // c.jal (links ra) / c.j
            let imm = (bit(word, 12) << 11)
                | (bit(word, 11) << 4)
                | (bits(word, 10, 9) << 8)
                | (bit(word, 8) << 10)
                | (bit(word, 7) << 6)
                | (bit(word, 6) << 7)
                | (bits(word, 5, 3) << 1)
                | (bit(word, 2) << 5);
            let offset = sext(imm, 12);
            let rd = if funct3 == 0b001 { Reg::RA } else { Reg::ZERO };
            Ok(Instr::Jal { rd, offset })
        }
        (0b01, 0b010) => {
            // c.li
            let rd = Reg::from_bits(bits(word, 11, 7));
            let imm = sext((bit(word, 12) << 5) | bits(word, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluImmOp::Addi,
                rd,
                rs1: Reg::ZERO,
                imm,
            })
        }
        (0b01, 0b011) => {
            let rd = Reg::from_bits(bits(word, 11, 7));
            if rd == Reg::SP {
                // c.addi16sp
                let imm = (bit(word, 12) << 9)
                    | (bit(word, 6) << 4)
                    | (bit(word, 5) << 6)
                    | (bits(word, 4, 3) << 7)
                    | (bit(word, 2) << 5);
                let imm = sext(imm, 10);
                if imm == 0 {
                    return Err(err(word, "c.addi16sp with zero immediate is reserved"));
                }
                Ok(Instr::OpImm {
                    op: AluImmOp::Addi,
                    rd: Reg::SP,
                    rs1: Reg::SP,
                    imm,
                })
            } else {
                // c.lui
                let imm = sext((bit(word, 12) << 5) | bits(word, 6, 2), 6);
                if imm == 0 {
                    return Err(err(word, "c.lui with zero immediate is reserved"));
                }
                Ok(Instr::Lui {
                    rd,
                    imm20: imm & 0xFFFFF,
                })
            }
        }
        (0b01, 0b100) => {
            let rd = reg3(word >> 7);
            match bits(word, 11, 10) {
                0b00 | 0b01 => {
                    // c.srli / c.srai
                    if bit(word, 12) != 0 {
                        return Err(err(word, "shamt[5] must be zero on RV32"));
                    }
                    let shamt = bits(word, 6, 2) as i32;
                    let op = if bits(word, 11, 10) == 0 {
                        AluImmOp::Srli
                    } else {
                        AluImmOp::Srai
                    };
                    Ok(Instr::OpImm {
                        op,
                        rd,
                        rs1: rd,
                        imm: shamt,
                    })
                }
                0b10 => {
                    // c.andi
                    let imm = sext((bit(word, 12) << 5) | bits(word, 6, 2), 6);
                    Ok(Instr::OpImm {
                        op: AluImmOp::Andi,
                        rd,
                        rs1: rd,
                        imm,
                    })
                }
                0b11 => {
                    if bit(word, 12) != 0 {
                        return Err(err(word, "reserved RV64 compressed op"));
                    }
                    let rs2 = reg3(word >> 2);
                    let op = match bits(word, 6, 5) {
                        0b00 => AluOp::Sub,
                        0b01 => AluOp::Xor,
                        0b10 => AluOp::Or,
                        _ => AluOp::And,
                    };
                    Ok(Instr::Op {
                        op,
                        rd,
                        rs1: rd,
                        rs2,
                    })
                }
                _ => unreachable!(),
            }
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez
            let imm = (bit(word, 12) << 8)
                | (bits(word, 11, 10) << 3)
                | (bits(word, 6, 5) << 6)
                | (bits(word, 4, 3) << 1)
                | (bit(word, 2) << 5);
            let offset = sext(imm, 9);
            let op = if funct3 == 0b110 {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            };
            Ok(Instr::Branch {
                op,
                rs1: reg3(word >> 7),
                rs2: Reg::ZERO,
                offset,
            })
        }
        (0b10, 0b000) => {
            // c.slli
            if bit(word, 12) != 0 {
                return Err(err(word, "shamt[5] must be zero on RV32"));
            }
            let rd = Reg::from_bits(bits(word, 11, 7));
            let shamt = bits(word, 6, 2) as i32;
            Ok(Instr::OpImm {
                op: AluImmOp::Slli,
                rd,
                rs1: rd,
                imm: shamt,
            })
        }
        (0b10, 0b010) => {
            // c.lwsp
            let rd = Reg::from_bits(bits(word, 11, 7));
            if rd.is_zero() {
                return Err(err(word, "c.lwsp with rd=x0 is reserved"));
            }
            let imm = (bit(word, 12) << 5) | (bits(word, 6, 4) << 2) | (bits(word, 3, 2) << 6);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd,
                rs1: Reg::SP,
                offset: imm as i32,
            })
        }
        (0b10, 0b100) => {
            let r1 = Reg::from_bits(bits(word, 11, 7));
            let r2 = Reg::from_bits(bits(word, 6, 2));
            match (bit(word, 12), r1.is_zero(), r2.is_zero()) {
                (0, false, true) => Ok(Instr::Jalr {
                    rd: Reg::ZERO,
                    rs1: r1,
                    offset: 0,
                }), // c.jr
                (0, false, false) => Ok(Instr::Op {
                    op: AluOp::Add,
                    rd: r1,
                    rs1: Reg::ZERO,
                    rs2: r2,
                }), // c.mv
                (1, true, true) => Ok(Instr::Ebreak), // c.ebreak
                (1, false, true) => Ok(Instr::Jalr {
                    rd: Reg::RA,
                    rs1: r1,
                    offset: 0,
                }), // c.jalr
                (1, false, false) => Ok(Instr::Op {
                    op: AluOp::Add,
                    rd: r1,
                    rs1: r1,
                    rs2: r2,
                }), // c.add
                _ => Err(err(word, "reserved compressed encoding")),
            }
        }
        (0b10, 0b110) => {
            // c.swsp
            let imm = (bits(word, 12, 9) << 2) | (bits(word, 8, 7) << 6);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs2: Reg::from_bits(bits(word, 6, 2)),
                rs1: Reg::SP,
                offset: imm as i32,
            })
        }
        _ => Err(err(word, "unsupported compressed encoding")),
    }
}

/// Produces the 16-bit compressed form of an instruction, if one exists.
///
/// The assembler calls this when compression is enabled; `None` means the
/// instruction must be emitted in its 32-bit form. Note that `c.jal`/`c.j`
/// offsets are PC-relative, so the caller must only compress once layout is
/// final (or accept the conservative no-compression of control flow, which
/// is what `rnnasip-asm` does for label-based jumps).
pub fn compress(instr: &Instr) -> Option<u16> {
    use Instr::*;
    match *instr {
        OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && (-32..32).contains(&imm) {
                // c.addi (c.nop when rd=x0, imm=0)
                let imm = imm as u32;
                return Some(
                    0x0001
                        | (((imm >> 5) & 1) as u16) << 12
                        | (rd.num() as u16) << 7
                        | ((imm & 0x1F) as u16) << 2,
                );
            }
            if rs1.is_zero() && (-32..32).contains(&imm) {
                // c.li
                let imm = imm as u32;
                return Some(
                    0x4001
                        | (((imm >> 5) & 1) as u16) << 12
                        | (rd.num() as u16) << 7
                        | ((imm & 0x1F) as u16) << 2,
                );
            }
            if rs1 == Reg::SP && rd.is_compressible() && imm > 0 && imm < 1024 && imm % 4 == 0 {
                // c.addi4spn
                let u = imm as u32;
                return Some(
                    ((((u >> 4) & 0x3) as u16) << 11)
                        | (((u >> 6) & 0xF) as u16) << 7
                        | (((u >> 2) & 0x1) as u16) << 6
                        | (((u >> 3) & 0x1) as u16) << 5
                        | ((rd.num() - 8) as u16) << 2,
                );
            }
            None
        }
        OpImm {
            op: AluImmOp::Slli,
            rd,
            rs1,
            imm,
        } if rd == rs1 && !rd.is_zero() && (0..32).contains(&imm) => {
            Some(0x0002 | (rd.num() as u16) << 7 | (imm as u16 & 0x1F) << 2)
        }
        OpImm { op, rd, rs1, imm }
            if rd == rs1
                && rd.is_compressible()
                && matches!(op, AluImmOp::Srli | AluImmOp::Srai)
                && (0..32).contains(&imm) =>
        {
            let f2 = if matches!(op, AluImmOp::Srli) { 0 } else { 1 };
            Some(0x8001 | (f2 << 10) | ((rd.num() - 8) as u16) << 7 | (imm as u16 & 0x1F) << 2)
        }
        OpImm {
            op: AluImmOp::Andi,
            rd,
            rs1,
            imm,
        } if rd == rs1 && rd.is_compressible() && (-32..32).contains(&imm) => {
            let u = imm as u32;
            Some(
                0x8801
                    | (((u >> 5) & 1) as u16) << 12
                    | ((rd.num() - 8) as u16) << 7
                    | ((u & 0x1F) as u16) << 2,
            )
        }
        Op { op, rd, rs1, rs2 } => {
            if rd == rs1 && rd.is_compressible() && rs2.is_compressible() {
                let f2 = match op {
                    AluOp::Sub => Some(0u16),
                    AluOp::Xor => Some(1),
                    AluOp::Or => Some(2),
                    AluOp::And => Some(3),
                    _ => None,
                };
                if let Some(f2) = f2 {
                    return Some(
                        0x8C01
                            | ((rd.num() - 8) as u16) << 7
                            | f2 << 5
                            | ((rs2.num() - 8) as u16) << 2,
                    );
                }
            }
            if matches!(op, AluOp::Add) && !rd.is_zero() && !rs2.is_zero() {
                if rs1.is_zero() {
                    // c.mv
                    return Some(0x8002 | (rd.num() as u16) << 7 | (rs2.num() as u16) << 2);
                }
                if rs1 == rd {
                    // c.add
                    return Some(0x9002 | (rd.num() as u16) << 7 | (rs2.num() as u16) << 2);
                }
            }
            None
        }
        Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        } => {
            if rs1 == Reg::SP && !rd.is_zero() && (0..256).contains(&offset) && offset % 4 == 0 {
                // c.lwsp
                let u = offset as u32;
                return Some(
                    0x4002
                        | (((u >> 5) & 1) as u16) << 12
                        | (rd.num() as u16) << 7
                        | (((u >> 2) & 0x7) as u16) << 4
                        | (((u >> 6) & 0x3) as u16) << 2,
                );
            }
            if rd.is_compressible()
                && rs1.is_compressible()
                && (0..128).contains(&offset)
                && offset % 4 == 0
            {
                // c.lw
                let u = offset as u32;
                return Some(
                    0x4000
                        | (((u >> 3) & 0x7) as u16) << 10
                        | ((rs1.num() - 8) as u16) << 7
                        | (((u >> 2) & 1) as u16) << 6
                        | (((u >> 6) & 1) as u16) << 5
                        | ((rd.num() - 8) as u16) << 2,
                );
            }
            None
        }
        Store {
            op: StoreOp::Sw,
            rs2,
            rs1,
            offset,
        } => {
            if rs1 == Reg::SP && (0..256).contains(&offset) && offset % 4 == 0 {
                // c.swsp
                let u = offset as u32;
                return Some(
                    0xC002
                        | (((u >> 2) & 0xF) as u16) << 9
                        | (((u >> 6) & 0x3) as u16) << 7
                        | (rs2.num() as u16) << 2,
                );
            }
            if rs2.is_compressible()
                && rs1.is_compressible()
                && (0..128).contains(&offset)
                && offset % 4 == 0
            {
                // c.sw
                let u = offset as u32;
                return Some(
                    0xC000
                        | (((u >> 3) & 0x7) as u16) << 10
                        | ((rs1.num() - 8) as u16) << 7
                        | (((u >> 2) & 1) as u16) << 6
                        | (((u >> 6) & 1) as u16) << 5
                        | ((rs2.num() - 8) as u16) << 2,
                );
            }
            None
        }
        Jal { rd, offset }
            if (rd == Reg::RA || rd.is_zero())
                && (-2048..2048).contains(&offset)
                && offset % 2 == 0 =>
        {
            let u = offset as u32;
            let base: u16 = if rd == Reg::RA { 0x2001 } else { 0xA001 };
            Some(
                base | (((u >> 11) & 1) as u16) << 12
                    | (((u >> 4) & 1) as u16) << 11
                    | (((u >> 8) & 0x3) as u16) << 9
                    | (((u >> 10) & 1) as u16) << 8
                    | (((u >> 6) & 1) as u16) << 7
                    | (((u >> 7) & 1) as u16) << 6
                    | (((u >> 1) & 0x7) as u16) << 3
                    | (((u >> 5) & 1) as u16) << 2,
            )
        }
        Jalr { rd, rs1, offset } if offset == 0 && !rs1.is_zero() => {
            if rd.is_zero() {
                Some(0x8002 | (rs1.num() as u16) << 7) // c.jr
            } else if rd == Reg::RA {
                Some(0x9002 | (rs1.num() as u16) << 7) // c.jalr
            } else {
                None
            }
        }
        Branch {
            op,
            rs1,
            rs2,
            offset,
        } if rs2.is_zero()
            && rs1.is_compressible()
            && matches!(op, BranchOp::Beq | BranchOp::Bne)
            && (-256..256).contains(&offset)
            && offset % 2 == 0 =>
        {
            let u = offset as u32;
            let base: u16 = if matches!(op, BranchOp::Beq) {
                0xC001
            } else {
                0xE001
            };
            Some(
                base | (((u >> 8) & 1) as u16) << 12
                    | (((u >> 3) & 0x3) as u16) << 10
                    | ((rs1.num() - 8) as u16) << 7
                    | (((u >> 6) & 0x3) as u16) << 5
                    | (((u >> 1) & 0x3) as u16) << 3
                    | (((u >> 5) & 1) as u16) << 2,
            )
        }
        Lui { rd, imm20 } if !rd.is_zero() && rd != Reg::SP && imm20 != 0 => {
            // c.lui accepts nzimm[17:12] as a sign-extended 6-bit value.
            let low6 = imm20 & 0x3F;
            let sext6 = (low6 << 26) >> 26;
            if (sext6 & 0xFFFFF) == imm20 {
                let u = low6 as u32;
                return Some(
                    0x6001
                        | (((u >> 5) & 1) as u16) << 12
                        | (rd.num() as u16) << 7
                        | ((u & 0x1F) as u16) << 2,
                );
            }
            None
        }
        Ebreak => Some(0x9002),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every compressible instruction must expand back to itself.
    #[test]
    fn compress_expand_round_trip() {
        let samples = [
            Instr::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1,
            },
            Instr::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: -5,
            },
            Instr::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A2,
                rs1: Reg::SP,
                imm: 16,
            },
            Instr::OpImm {
                op: AluImmOp::Slli,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: 12,
            },
            Instr::OpImm {
                op: AluImmOp::Srai,
                rd: Reg::A5,
                rs1: Reg::A5,
                imm: 12,
            },
            Instr::OpImm {
                op: AluImmOp::Andi,
                rd: Reg::S0,
                rs1: Reg::S0,
                imm: -1,
            },
            Instr::Op {
                op: AluOp::Sub,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A1,
            },
            Instr::Op {
                op: AluOp::Add,
                rd: Reg::T1,
                rs1: Reg::ZERO,
                rs2: Reg::T2,
            },
            Instr::Op {
                op: AluOp::Add,
                rd: Reg::T1,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 8,
            },
            Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 64,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs2: Reg::S1,
                rs1: Reg::SP,
                offset: 252,
            },
            Instr::Store {
                op: StoreOp::Sw,
                rs2: Reg::A3,
                rs1: Reg::A2,
                offset: 4,
            },
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -2048,
            },
            Instr::Jal {
                rd: Reg::RA,
                offset: 2046,
            },
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            },
            Instr::Jalr {
                rd: Reg::RA,
                rs1: Reg::A0,
                offset: 0,
            },
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: -256,
            },
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A5,
                rs2: Reg::ZERO,
                offset: 254,
            },
            Instr::Lui {
                rd: Reg::A0,
                imm20: 31,
            },
            Instr::Lui {
                rd: Reg::A0,
                imm20: 0xFFFE0,
            },
            Instr::Ebreak,
        ];
        for i in samples {
            let c = compress(&i).unwrap_or_else(|| panic!("{i} should compress"));
            assert!(is_compressed(c), "{i} -> {c:#06x}");
            let back = decode_compressed(c).unwrap_or_else(|e| panic!("{e} for {i}"));
            assert_eq!(back, i, "compressed word {c:#06x}");
        }
    }

    #[test]
    fn non_compressible_forms_return_none() {
        // Offset not a multiple of four.
        assert!(compress(&Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 2,
        })
        .is_none());
        // Register outside the compressed window.
        assert!(compress(&Instr::Op {
            op: AluOp::Sub,
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::T1,
        })
        .is_none());
        // Immediate out of range.
        assert!(compress(&Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 100,
        })
        .is_none());
    }

    #[test]
    fn reserved_encodings_rejected() {
        // c.addi4spn with zero immediate.
        assert!(decode_compressed(0x0000).is_err());
        // c.lwsp with rd = x0.
        assert!(decode_compressed(0x4002).is_err());
    }

    #[test]
    fn word_boundary_detection() {
        assert!(is_compressed(0x0001));
        assert!(!is_compressed(0x0003));
        assert!(!is_compressed(0x0013));
    }
}
