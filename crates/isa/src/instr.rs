//! The instruction enumeration and its static metadata.

use crate::csr::Csr;
use crate::mnemonic::MnemonicId;
use crate::reg::Reg;

/// Conditional branch comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Beq,
    /// `bne` — branch if not equal.
    Bne,
    /// `blt` — branch if less than (signed).
    Blt,
    /// `bge` — branch if greater or equal (signed).
    Bge,
    /// `bltu` — branch if less than (unsigned).
    Bltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchOp {
    /// Instruction mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }

    /// The `funct3` field encoding this comparison.
    pub const fn funct3(self) -> u32 {
        match self {
            BranchOp::Beq => 0b000,
            BranchOp::Bne => 0b001,
            BranchOp::Blt => 0b100,
            BranchOp::Bge => 0b101,
            BranchOp::Bltu => 0b110,
            BranchOp::Bgeu => 0b111,
        }
    }
}

/// Memory load width / signedness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoadOp {
    /// `lb` — load byte, sign-extended.
    Lb,
    /// `lh` — load halfword, sign-extended.
    Lh,
    /// `lw` — load word.
    Lw,
    /// `lbu` — load byte, zero-extended.
    Lbu,
    /// `lhu` — load halfword, zero-extended.
    Lhu,
}

impl LoadOp {
    /// Instruction mnemonic (base form).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
        }
    }

    /// The `funct3` field.
    pub const fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }
}

/// Memory store width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreOp {
    /// `sb` — store byte.
    Sb,
    /// `sh` — store halfword.
    Sh,
    /// `sw` — store word.
    Sw,
}

impl StoreOp {
    /// Instruction mnemonic (base form).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }

    /// The `funct3` field.
    pub const fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }
}

/// Register–immediate ALU operation (`OP-IMM` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    /// `addi`
    Addi,
    /// `slti` — set if less than immediate (signed).
    Slti,
    /// `sltiu` — set if less than immediate (unsigned).
    Sltiu,
    /// `xori`
    Xori,
    /// `ori`
    Ori,
    /// `andi`
    Andi,
    /// `slli` — shift left logical immediate.
    Slli,
    /// `srli` — shift right logical immediate.
    Srli,
    /// `srai` — shift right arithmetic immediate.
    Srai,
}

impl AluImmOp {
    /// Instruction mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
        }
    }
}

/// Register–register ALU operation (`OP` major opcode, funct7 ∈ {0, 0x20}).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `sll`
    Sll,
    /// `slt`
    Slt,
    /// `sltu`
    Sltu,
    /// `xor`
    Xor,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `or`
    Or,
    /// `and`
    And,
}

impl AluOp {
    /// Instruction mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// RV32M multiply/divide operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MulDivOp {
    /// `mul` — low 32 bits of the product.
    Mul,
    /// `mulh` — high 32 bits of signed×signed.
    Mulh,
    /// `mulhsu` — high 32 bits of signed×unsigned.
    Mulhsu,
    /// `mulhu` — high 32 bits of unsigned×unsigned.
    Mulhu,
    /// `div` — signed division.
    Div,
    /// `divu` — unsigned division.
    Divu,
    /// `rem` — signed remainder.
    Rem,
    /// `remu` — unsigned remainder.
    Remu,
}

impl MulDivOp {
    /// Instruction mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::Mulh => "mulh",
            MulDivOp::Mulhsu => "mulhsu",
            MulDivOp::Mulhu => "mulhu",
            MulDivOp::Div => "div",
            MulDivOp::Divu => "divu",
            MulDivOp::Rem => "rem",
            MulDivOp::Remu => "remu",
        }
    }

    /// The `funct3` field.
    pub const fn funct3(self) -> u32 {
        match self {
            MulDivOp::Mul => 0b000,
            MulDivOp::Mulh => 0b001,
            MulDivOp::Mulhsu => 0b010,
            MulDivOp::Mulhu => 0b011,
            MulDivOp::Div => 0b100,
            MulDivOp::Divu => 0b101,
            MulDivOp::Rem => 0b110,
            MulDivOp::Remu => 0b111,
        }
    }
}

/// CSR access operation (`SYSTEM` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CsrOp {
    /// `csrrw` — atomic read/write.
    Csrrw,
    /// `csrrs` — atomic read and set bits.
    Csrrs,
    /// `csrrc` — atomic read and clear bits.
    Csrrc,
}

impl CsrOp {
    /// Instruction mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CsrOp::Csrrw => "csrrw",
            CsrOp::Csrrs => "csrrs",
            CsrOp::Csrrc => "csrrc",
        }
    }
}

/// Hardware-loop index: RI5CY provides two nested loop levels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoopIdx {
    /// Loop register set 0 (innermost by convention).
    L0,
    /// Loop register set 1.
    L1,
}

impl LoopIdx {
    /// 0 or 1.
    pub const fn index(self) -> usize {
        match self {
            LoopIdx::L0 => 0,
            LoopIdx::L1 => 1,
        }
    }

    /// Constructs from an index bit.
    pub const fn from_bit(bit: u32) -> Self {
        if bit & 1 == 0 {
            LoopIdx::L0
        } else {
            LoopIdx::L1
        }
    }
}

/// SIMD element size for `pv.*` instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SimdSize {
    /// `.h` — two 16-bit lanes.
    Half,
    /// `.b` — four 8-bit lanes.
    Byte,
}

impl SimdSize {
    /// Mnemonic suffix (`"h"` or `"b"`).
    pub const fn suffix(self) -> &'static str {
        match self {
            SimdSize::Half => "h",
            SimdSize::Byte => "b",
        }
    }
}

/// SIMD operand mode for `pv.*` ALU instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SimdMode {
    /// Vector–vector: both operands are packed registers.
    Vv,
    /// Vector–scalar: the scalar in `rs2[15:0]`/`rs2[7:0]` is replicated.
    Sc,
    /// Vector–immediate: a 6-bit sign-extended immediate is replicated.
    Sci(i8),
}

/// Packed-SIMD ALU operation (lane-wise).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PvAluOp {
    /// `pv.add` — lane-wise add.
    Add,
    /// `pv.sub` — lane-wise subtract.
    Sub,
    /// `pv.avg` — lane-wise signed average (arithmetic shift of sum).
    Avg,
    /// `pv.min` — lane-wise signed minimum.
    Min,
    /// `pv.max` — lane-wise signed maximum.
    Max,
    /// `pv.srl` — lane-wise logical right shift.
    Srl,
    /// `pv.sra` — lane-wise arithmetic right shift.
    Sra,
    /// `pv.sll` — lane-wise left shift.
    Sll,
    /// `pv.or` — lane-wise or.
    Or,
    /// `pv.xor` — lane-wise xor.
    Xor,
    /// `pv.and` — lane-wise and.
    And,
    /// `pv.abs` — lane-wise absolute value (unary; `rs2` ignored).
    Abs,
}

impl PvAluOp {
    /// Base mnemonic without size/mode suffixes.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            PvAluOp::Add => "pv.add",
            PvAluOp::Sub => "pv.sub",
            PvAluOp::Avg => "pv.avg",
            PvAluOp::Min => "pv.min",
            PvAluOp::Max => "pv.max",
            PvAluOp::Srl => "pv.srl",
            PvAluOp::Sra => "pv.sra",
            PvAluOp::Sll => "pv.sll",
            PvAluOp::Or => "pv.or",
            PvAluOp::Xor => "pv.xor",
            PvAluOp::And => "pv.and",
            PvAluOp::Abs => "pv.abs",
        }
    }
}

/// Packed-SIMD dot-product operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DotOp {
    /// `pv.dotup` — unsigned × unsigned, overwrite `rd`.
    DotUp,
    /// `pv.dotusp` — unsigned × signed, overwrite `rd`.
    DotUsp,
    /// `pv.dotsp` — signed × signed, overwrite `rd`.
    DotSp,
    /// `pv.sdotup` — unsigned × unsigned, accumulate into `rd`.
    SdotUp,
    /// `pv.sdotusp` — unsigned × signed, accumulate into `rd`.
    SdotUsp,
    /// `pv.sdotsp` — signed × signed, accumulate into `rd` (the paper's
    /// workhorse, Equation 7).
    SdotSp,
}

impl DotOp {
    /// Base mnemonic without size suffix.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            DotOp::DotUp => "pv.dotup",
            DotOp::DotUsp => "pv.dotusp",
            DotOp::DotSp => "pv.dotsp",
            DotOp::SdotUp => "pv.sdotup",
            DotOp::SdotUsp => "pv.sdotusp",
            DotOp::SdotSp => "pv.sdotsp",
        }
    }

    /// Whether `rd` is read (accumulating forms).
    pub const fn accumulates(self) -> bool {
        matches!(self, DotOp::SdotUp | DotOp::SdotUsp | DotOp::SdotSp)
    }
}

/// Static functional-unit latency bucket of an instruction — see
/// [`Instr::timing_class`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimingClass {
    /// Single-cycle issue and retire (everything but the buckets below).
    Single,
    /// High-half multiplies (`mulh`/`mulhsu`/`mulhu`): multi-cycle on
    /// RI5CY's 32×32→64 multiplier.
    HighMultiply,
    /// The serial divider (`div`/`divu`/`rem`/`remu`).
    SerialDivide,
}

/// A decoded instruction of the RNN-extended RISC-V core.
///
/// The enum is organised by instruction *class*; static per-class operand
/// metadata ([`Instr::defs`], [`Instr::uses`], [`Instr::is_control_flow`],
/// …) is what the simulator's timing model and the assembler's formatter
/// consume.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    // ------------------------------------------------------------------
    // RV32I
    // ------------------------------------------------------------------
    /// `lui rd, imm20` — load upper immediate.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper 20 bits (already shifted left by 12 when applied).
        imm20: i32,
    },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper 20 bits.
        imm20: i32,
    },
    /// `jal rd, offset` — jump and link.
    Jal {
        /// Link register.
        rd: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch `op rs1, rs2, offset`.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Load `op rd, offset(rs1)`.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Store `op rs2, offset(rs1)`.
    Store {
        /// Width.
        op: StoreOp,
        /// Source register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register–immediate ALU `op rd, rs1, imm`.
    OpImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate (sign-extended; shift amount for shifts).
        imm: i32,
    },
    /// Register–register ALU `op rd, rs1, rs2`.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// RV32M multiply/divide `op rd, rs1, rs2`.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `fence` — memory ordering (a no-op on the single-hart TCDM core).
    Fence,
    /// `ecall` — environment call; the simulator treats it as *halt*.
    Ecall,
    /// `ebreak` — breakpoint trap.
    Ebreak,
    /// CSR access `op rd, csr, rs1`.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination (old CSR value).
        rd: Reg,
        /// Source operand.
        rs1: Reg,
        /// Target CSR.
        csr: Csr,
    },

    // ------------------------------------------------------------------
    // Xpulp: post-increment / register-offset memory accesses
    // ------------------------------------------------------------------
    /// `p.lw rd, imm(rs1!)` — load, then `rs1 += imm` (the paper's `lw!`).
    LoadPostInc {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base register, updated after the access.
        rs1: Reg,
        /// Post-increment amount.
        offset: i32,
    },
    /// `p.lw rd, rs2(rs1)` — register-offset load.
    LoadReg {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset register.
        rs2: Reg,
    },
    /// `p.sw rs2, imm(rs1!)` — store, then `rs1 += imm`.
    StorePostInc {
        /// Width.
        op: StoreOp,
        /// Source register.
        rs2: Reg,
        /// Base register, updated after the access.
        rs1: Reg,
        /// Post-increment amount.
        offset: i32,
    },

    // ------------------------------------------------------------------
    // Xpulp: hardware loops (two levels)
    // ------------------------------------------------------------------
    /// `lp.starti l, uimm` — loop start = PC + 2·uimm.
    LpStarti {
        /// Loop level.
        l: LoopIdx,
        /// Unsigned immediate (half-word granularity).
        uimm: u32,
    },
    /// `lp.endi l, uimm` — loop end = PC + 2·uimm.
    LpEndi {
        /// Loop level.
        l: LoopIdx,
        /// Unsigned immediate (half-word granularity).
        uimm: u32,
    },
    /// `lp.count l, rs1` — loop count from register.
    LpCount {
        /// Loop level.
        l: LoopIdx,
        /// Count register.
        rs1: Reg,
    },
    /// `lp.counti l, uimm` — loop count immediate.
    LpCounti {
        /// Loop level.
        l: LoopIdx,
        /// Iteration count.
        uimm: u32,
    },
    /// `lp.setup l, rs1, uimm` — start = next PC, end = PC + 2·uimm,
    /// count = rs1.
    LpSetup {
        /// Loop level.
        l: LoopIdx,
        /// Count register.
        rs1: Reg,
        /// End offset (half-word granularity).
        uimm: u32,
    },
    /// `lp.setupi l, uimmc, uimm` — start = next PC, end = PC + 2·uimm,
    /// count = uimmc.
    LpSetupi {
        /// Loop level.
        l: LoopIdx,
        /// Iteration count (5 bits).
        count: u32,
        /// End offset (half-word granularity).
        uimm: u32,
    },

    // ------------------------------------------------------------------
    // Xpulp: scalar DSP helpers
    // ------------------------------------------------------------------
    /// `p.mac rd, rs1, rs2` — `rd += rs1 * rs2` (32-bit).
    Mac {
        /// Accumulator (read and written).
        rd: Reg,
        /// First factor.
        rs1: Reg,
        /// Second factor.
        rs2: Reg,
    },
    /// `p.msu rd, rs1, rs2` — `rd -= rs1 * rs2` (32-bit).
    Msu {
        /// Accumulator (read and written).
        rd: Reg,
        /// First factor.
        rs1: Reg,
        /// Second factor.
        rs2: Reg,
    },
    /// `p.clip rd, rs1, imm` — clip to `[-2^(imm-1), 2^(imm-1)-1]`.
    Clip {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Bit width (1–32).
        bits: u8,
    },
    /// `p.clipu rd, rs1, imm` — clip to `[0, 2^(imm-1)-1]`.
    ClipU {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Bit width (1–32).
        bits: u8,
    },
    /// `p.exths rd, rs1` — sign-extend halfword.
    ExtHs {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.exthz rd, rs1` — zero-extend halfword.
    ExtHz {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.extbs rd, rs1` — sign-extend byte.
    ExtBs {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.extbz rd, rs1` — zero-extend byte.
    ExtBz {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.abs rd, rs1` — absolute value.
    PAbs {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.min rd, rs1, rs2` — signed minimum.
    PMin {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `p.max rd, rs1, rs2` — signed maximum.
    PMax {
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `p.ff1 rd, rs1` — index of the least-significant set bit
    /// (32 when `rs1` is zero).
    Ff1 {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.fl1 rd, rs1` — index of the most-significant set bit
    /// (32 when `rs1` is zero).
    Fl1 {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.cnt rd, rs1` — population count.
    Cnt {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.clb rd, rs1` — count leading redundant sign bits
    /// (0 when `rs1` is zero, per RI5CY).
    Clb {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `p.ror rd, rs1, rs2` — rotate `rs1` right by `rs2 & 31`.
    Ror {
        /// Destination.
        rd: Reg,
        /// Rotated value.
        rs1: Reg,
        /// Rotate amount.
        rs2: Reg,
    },

    // ------------------------------------------------------------------
    // Xpulp: packed SIMD
    // ------------------------------------------------------------------
    /// Lane-wise SIMD ALU operation `pv.op[.sc|.sci].{h,b}`.
    PvAlu {
        /// Operation.
        op: PvAluOp,
        /// Lane width.
        size: SimdSize,
        /// Operand mode (vector, replicated scalar, replicated immediate).
        mode: SimdMode,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source (ignored for `Sci` mode and unary ops).
        rs2: Reg,
    },
    /// SIMD dot product `pv.(s)dot{up,usp,sp}.{h,b}`.
    PvDot {
        /// Operation (dot or accumulate-dot, signedness).
        op: DotOp,
        /// Lane width.
        size: SimdSize,
        /// Destination / accumulator register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },

    // ------------------------------------------------------------------
    // RNN extension (the paper's contribution)
    // ------------------------------------------------------------------
    /// `pl.sdotsp.{h,b}.S rd, rs1, rs2` — the merged load-and-compute
    /// VLIW instruction (Section III-E, Fig. 1):
    ///
    /// 1. `rd += Σ SPR[S].lane_i * rs2.lane_i` (two 16-bit or four 8-bit
    ///    signed lanes),
    /// 2. in parallel, issue `SPR[S] = mem[rs1]` and `rs1 += 4`
    ///    (visible two instructions later).
    ///
    /// The two special-purpose registers are written and read alternately
    /// (`.0` / `.1` forms) to hide the load latency. The paper defines
    /// only the halfword form; the byte form is this reproduction's
    /// future-work extension for INT8 inference (Section II-A cites
    /// sub-byte quantization as the trend).
    PlSdotsp {
        /// Which SPR supplies the weight operand (0 or 1) and receives
        /// the parallel load.
        spr: u8,
        /// Lane width (the paper's instruction is `Half`).
        size: SimdSize,
        /// Accumulator register (read and written).
        rd: Reg,
        /// Weight-stream pointer, post-incremented by 4.
        rs1: Reg,
        /// Packed input operand.
        rs2: Reg,
    },
    /// `pl.tanh rd, rs1` — single-cycle piecewise-linear hyperbolic tangent
    /// on a Q3.12 operand (Section III-D, Algorithm 2).
    PlTanh {
        /// Destination.
        rd: Reg,
        /// Q3.12 operand.
        rs1: Reg,
    },
    /// `pl.sig rd, rs1` — single-cycle piecewise-linear logistic sigmoid on
    /// a Q3.12 operand (Section III-D, Algorithm 2).
    PlSig {
        /// Destination.
        rd: Reg,
        /// Q3.12 operand.
        rs1: Reg,
    },
}

/// Up to three registers, as returned by [`Instr::defs`] / [`Instr::uses`].
pub type RegList = arrayvec::ArrayVecU8;

/// A tiny fixed-capacity register list (max 3) to avoid allocation in the
/// simulator's hot path.
pub mod arrayvec {
    use crate::reg::Reg;

    /// Fixed-capacity list of at most three registers.
    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    pub struct ArrayVecU8 {
        items: [Option<Reg>; 3],
        len: u8,
    }

    impl ArrayVecU8 {
        /// Empty list.
        pub const fn new() -> Self {
            Self {
                items: [None; 3],
                len: 0,
            }
        }

        /// Creates from a slice (at most 3 entries).
        ///
        /// # Panics
        ///
        /// Panics if `regs.len() > 3`.
        pub fn from_slice(regs: &[Reg]) -> Self {
            assert!(regs.len() <= 3, "register list capacity exceeded");
            let mut v = Self::new();
            for &r in regs {
                v.items[v.len as usize] = Some(r);
                v.len += 1;
            }
            v
        }

        /// Number of registers.
        pub fn len(&self) -> usize {
            self.len as usize
        }

        /// Whether the list is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Iterates the registers.
        pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
            self.items
                .iter()
                .take(self.len as usize)
                .map(|r| r.expect("initialized up to len"))
        }

        /// Whether the list contains `reg`.
        pub fn contains(&self, reg: Reg) -> bool {
            self.iter().any(|r| r == reg)
        }
    }
}

impl Instr {
    /// The registers this instruction writes.
    pub fn defs(&self) -> RegList {
        use Instr::*;
        let one = |r: Reg| RegList::from_slice(&[r]);
        match *self {
            Lui { rd, .. }
            | Auipc { rd, .. }
            | Jal { rd, .. }
            | Jalr { rd, .. }
            | Load { rd, .. }
            | LoadReg { rd, .. }
            | OpImm { rd, .. }
            | Op { rd, .. }
            | MulDiv { rd, .. }
            | Csr { rd, .. }
            | Mac { rd, .. }
            | Msu { rd, .. }
            | Clip { rd, .. }
            | ClipU { rd, .. }
            | ExtHs { rd, .. }
            | ExtHz { rd, .. }
            | ExtBs { rd, .. }
            | ExtBz { rd, .. }
            | PAbs { rd, .. }
            | PMin { rd, .. }
            | PMax { rd, .. }
            | Ff1 { rd, .. }
            | Fl1 { rd, .. }
            | Cnt { rd, .. }
            | Clb { rd, .. }
            | Ror { rd, .. }
            | PvAlu { rd, .. }
            | PvDot { rd, .. }
            | PlTanh { rd, .. }
            | PlSig { rd, .. } => one(rd),
            LoadPostInc { rd, rs1, .. } => RegList::from_slice(&[rd, rs1]),
            StorePostInc { rs1, .. } => one(rs1),
            PlSdotsp { rd, rs1, .. } => RegList::from_slice(&[rd, rs1]),
            Branch { .. }
            | Store { .. }
            | Fence
            | Ecall
            | Ebreak
            | LpStarti { .. }
            | LpEndi { .. }
            | LpCount { .. }
            | LpCounti { .. }
            | LpSetup { .. }
            | LpSetupi { .. } => RegList::new(),
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> RegList {
        use Instr::*;
        match *self {
            Lui { .. }
            | Auipc { .. }
            | Jal { .. }
            | Fence
            | Ecall
            | Ebreak
            | LpStarti { .. }
            | LpEndi { .. }
            | LpCounti { .. }
            | LpSetupi { .. } => RegList::new(),
            Jalr { rs1, .. }
            | Load { rs1, .. }
            | LoadPostInc { rs1, .. }
            | OpImm { rs1, .. }
            | Csr { rs1, .. }
            | Clip { rs1, .. }
            | ClipU { rs1, .. }
            | ExtHs { rs1, .. }
            | ExtHz { rs1, .. }
            | ExtBs { rs1, .. }
            | ExtBz { rs1, .. }
            | PAbs { rs1, .. }
            | Ff1 { rs1, .. }
            | Fl1 { rs1, .. }
            | Cnt { rs1, .. }
            | Clb { rs1, .. }
            | PlTanh { rs1, .. }
            | PlSig { rs1, .. }
            | LpCount { rs1, .. }
            | LpSetup { rs1, .. } => RegList::from_slice(&[rs1]),
            Branch { rs1, rs2, .. }
            | Store { rs2, rs1, .. }
            | StorePostInc { rs2, rs1, .. }
            | Op { rs1, rs2, .. }
            | MulDiv { rs1, rs2, .. }
            | LoadReg { rs1, rs2, .. }
            | PMin { rs1, rs2, .. }
            | PMax { rs1, rs2, .. }
            | Ror { rs1, rs2, .. } => RegList::from_slice(&[rs1, rs2]),
            PvAlu {
                rs1, rs2, mode, op, ..
            } => {
                if matches!(mode, SimdMode::Sci(_)) || matches!(op, PvAluOp::Abs) {
                    RegList::from_slice(&[rs1])
                } else {
                    RegList::from_slice(&[rs1, rs2])
                }
            }
            PvDot {
                op, rd, rs1, rs2, ..
            } => {
                if op.accumulates() {
                    RegList::from_slice(&[rd, rs1, rs2])
                } else {
                    RegList::from_slice(&[rs1, rs2])
                }
            }
            Mac { rd, rs1, rs2 } | Msu { rd, rs1, rs2 } => RegList::from_slice(&[rd, rs1, rs2]),
            PlSdotsp { rd, rs1, rs2, .. } => RegList::from_slice(&[rd, rs1, rs2]),
        }
    }

    /// Whether the instruction may redirect control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }

    /// Whether the instruction reads data memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::LoadPostInc { .. } | Instr::LoadReg { .. }
        ) || matches!(self, Instr::PlSdotsp { .. })
    }

    /// Whether the instruction writes data memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::StorePostInc { .. })
    }

    /// The registers this instruction reads, as a 32-bit mask indexed by
    /// register number (bit `n` set ⇔ `xn` ∈ [`uses`](Self::uses)).
    ///
    /// Equivalent to scanning the [`RegList`], pre-flattened for consumers
    /// that test membership on a hot path (the simulator's load-use stall
    /// check is a single `and` against this mask).
    pub fn uses_mask(&self) -> u32 {
        self.uses().iter().fold(0, |m, r| m | (1u32 << r.num()))
    }

    /// The registers this instruction writes, as a 32-bit mask indexed by
    /// register number — the mask companion of [`defs`](Self::defs).
    pub fn defs_mask(&self) -> u32 {
        self.defs().iter().fold(0, |m, r| m | (1u32 << r.num()))
    }

    /// The static timing class of this instruction — which functional-unit
    /// latency bucket it retires through on the modelled RI5CY pipeline.
    ///
    /// Dynamic costs (taken-branch penalty, load-use bubbles) are *not*
    /// part of the class; they depend on run-time state and stay with the
    /// simulator. The class captures only what is knowable at decode time,
    /// so a pre-decoding simulator can fold the extra latency into a
    /// per-instruction constant.
    pub fn timing_class(&self) -> TimingClass {
        match self {
            Instr::MulDiv { op, .. } => match op {
                MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => TimingClass::HighMultiply,
                MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu => {
                    TimingClass::SerialDivide
                }
                MulDivOp::Mul => TimingClass::Single,
            },
            _ => TimingClass::Single,
        }
    }

    /// The number of 16-bit multiply-accumulate operations this instruction
    /// performs — the unit the paper's MMAC/s throughput figures count.
    ///
    /// `pv.sdotsp.h` and `pl.sdotsp.h` each perform two 16×16 MACs; the
    /// byte forms perform four; `p.mac` and `mul` (as used by the baseline
    /// kernel's software MAC) count as one.
    pub fn mac_ops(&self) -> u32 {
        match self {
            Instr::Mac { .. } | Instr::Msu { .. } => 1,
            Instr::MulDiv {
                op: MulDivOp::Mul, ..
            } => 1,
            Instr::PvDot { size, .. } => match size {
                SimdSize::Half => 2,
                SimdSize::Byte => 4,
            },
            Instr::PlSdotsp { size, .. } => match size {
                SimdSize::Half => 2,
                SimdSize::Byte => 4,
            },
            _ => 0,
        }
    }

    /// A stable mnemonic string used for statistics binning (Table I rows).
    ///
    /// Post-increment loads/stores get the paper's `!` suffix; all
    /// `pv.sdotsp`-family dot products bin under their base mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        self.mnemonic_id().name()
    }

    /// The dense [`MnemonicId`] of this instruction's stable mnemonic.
    ///
    /// This is the authoritative instruction→mnemonic binning; the
    /// simulator's hot path keys its per-mnemonic counters by this id so
    /// retiring an instruction never touches a string or a map.
    pub fn mnemonic_id(&self) -> MnemonicId {
        use Instr::*;
        use MnemonicId as M;
        match self {
            Lui { .. } => M::Lui,
            Auipc { .. } => M::Auipc,
            Jal { .. } => M::Jal,
            Jalr { .. } => M::Jalr,
            Branch { op, .. } => match op {
                BranchOp::Beq => M::Beq,
                BranchOp::Bne => M::Bne,
                BranchOp::Blt => M::Blt,
                BranchOp::Bge => M::Bge,
                BranchOp::Bltu => M::Bltu,
                BranchOp::Bgeu => M::Bgeu,
            },
            Load { op, .. } => match op {
                LoadOp::Lb => M::Lb,
                LoadOp::Lh => M::Lh,
                LoadOp::Lw => M::Lw,
                LoadOp::Lbu => M::Lbu,
                LoadOp::Lhu => M::Lhu,
            },
            Store { op, .. } => match op {
                StoreOp::Sb => M::Sb,
                StoreOp::Sh => M::Sh,
                StoreOp::Sw => M::Sw,
            },
            OpImm { op, .. } => match op {
                AluImmOp::Addi => M::Addi,
                AluImmOp::Slti => M::Slti,
                AluImmOp::Sltiu => M::Sltiu,
                AluImmOp::Xori => M::Xori,
                AluImmOp::Ori => M::Ori,
                AluImmOp::Andi => M::Andi,
                AluImmOp::Slli => M::Slli,
                AluImmOp::Srli => M::Srli,
                AluImmOp::Srai => M::Srai,
            },
            Op { op, .. } => match op {
                AluOp::Add => M::Add,
                AluOp::Sub => M::Sub,
                AluOp::Sll => M::Sll,
                AluOp::Slt => M::Slt,
                AluOp::Sltu => M::Sltu,
                AluOp::Xor => M::Xor,
                AluOp::Srl => M::Srl,
                AluOp::Sra => M::Sra,
                AluOp::Or => M::Or,
                AluOp::And => M::And,
            },
            MulDiv { op, .. } => match op {
                MulDivOp::Mul => M::Mul,
                MulDivOp::Mulh => M::Mulh,
                MulDivOp::Mulhsu => M::Mulhsu,
                MulDivOp::Mulhu => M::Mulhu,
                MulDivOp::Div => M::Div,
                MulDivOp::Divu => M::Divu,
                MulDivOp::Rem => M::Rem,
                MulDivOp::Remu => M::Remu,
            },
            Fence => M::Fence,
            Ecall => M::Ecall,
            Ebreak => M::Ebreak,
            Csr { op, .. } => match op {
                CsrOp::Csrrw => M::Csrrw,
                CsrOp::Csrrs => M::Csrrs,
                CsrOp::Csrrc => M::Csrrc,
            },
            LoadPostInc { op, .. } => match op {
                LoadOp::Lb => M::PLbPost,
                LoadOp::Lh => M::PLhPost,
                LoadOp::Lw => M::PLwPost,
                LoadOp::Lbu => M::PLbuPost,
                LoadOp::Lhu => M::PLhuPost,
            },
            LoadReg { op, .. } => match op {
                LoadOp::Lb => M::PLb,
                LoadOp::Lh => M::PLh,
                LoadOp::Lw => M::PLw,
                LoadOp::Lbu => M::PLbu,
                LoadOp::Lhu => M::PLhu,
            },
            StorePostInc { op, .. } => match op {
                StoreOp::Sb => M::PSbPost,
                StoreOp::Sh => M::PShPost,
                StoreOp::Sw => M::PSwPost,
            },
            LpStarti { .. } => M::LpStarti,
            LpEndi { .. } => M::LpEndi,
            LpCount { .. } => M::LpCount,
            LpCounti { .. } => M::LpCounti,
            LpSetup { .. } => M::LpSetup,
            LpSetupi { .. } => M::LpSetupi,
            Mac { .. } => M::PMac,
            Msu { .. } => M::PMsu,
            Clip { .. } => M::PClip,
            ClipU { .. } => M::PClipU,
            ExtHs { .. } => M::PExtHs,
            ExtHz { .. } => M::PExtHz,
            ExtBs { .. } => M::PExtBs,
            ExtBz { .. } => M::PExtBz,
            PAbs { .. } => M::PAbs,
            PMin { .. } => M::PMin,
            PMax { .. } => M::PMax,
            Ff1 { .. } => M::PFf1,
            Fl1 { .. } => M::PFl1,
            Cnt { .. } => M::PCnt,
            Clb { .. } => M::PClb,
            Ror { .. } => M::PRor,
            PvAlu { op, .. } => match op {
                PvAluOp::Add => M::PvAdd,
                PvAluOp::Sub => M::PvSub,
                PvAluOp::Avg => M::PvAvg,
                PvAluOp::Min => M::PvMin,
                PvAluOp::Max => M::PvMax,
                PvAluOp::Srl => M::PvSrl,
                PvAluOp::Sra => M::PvSra,
                PvAluOp::Sll => M::PvSll,
                PvAluOp::Or => M::PvOr,
                PvAluOp::Xor => M::PvXor,
                PvAluOp::And => M::PvAnd,
                PvAluOp::Abs => M::PvAbs,
            },
            PvDot { op, .. } => match op {
                DotOp::DotUp => M::PvDotUp,
                DotOp::DotUsp => M::PvDotUsp,
                DotOp::DotSp => M::PvDotSp,
                DotOp::SdotUp => M::PvSdotUp,
                DotOp::SdotUsp => M::PvSdotUsp,
                DotOp::SdotSp => M::PvSdotSp,
            },
            PlSdotsp {
                size: SimdSize::Half,
                ..
            } => M::PlSdotsp,
            PlSdotsp {
                size: SimdSize::Byte,
                ..
            } => M::PlSdotspB,
            PlTanh { .. } => M::PlTanh,
            PlSig { .. } => M::PlSig,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses_of_postinc_load() {
        let i = Instr::LoadPostInc {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 4,
        };
        assert!(i.defs().contains(Reg::A0));
        assert!(i.defs().contains(Reg::A1));
        assert!(i.uses().contains(Reg::A1));
        assert!(i.is_load());
        assert_eq!(i.mnemonic(), "p.lw!");
    }

    #[test]
    fn sdotsp_reads_accumulator() {
        let i = Instr::PvDot {
            op: DotOp::SdotSp,
            size: SimdSize::Half,
            rd: Reg::T0,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert!(i.uses().contains(Reg::T0));
        assert_eq!(i.mac_ops(), 2);
    }

    #[test]
    fn plain_dot_does_not_read_accumulator() {
        let i = Instr::PvDot {
            op: DotOp::DotSp,
            size: SimdSize::Half,
            rd: Reg::T0,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert!(!i.uses().contains(Reg::T0));
    }

    #[test]
    fn pl_sdotsp_metadata() {
        let i = Instr::PlSdotsp {
            spr: 0,
            size: SimdSize::Half,
            rd: Reg::T0,
            rs1: Reg::A2,
            rs2: Reg::A3,
        };
        assert!(i.is_load());
        assert!(i.defs().contains(Reg::T0));
        assert!(i.defs().contains(Reg::A2)); // post-increment
        assert_eq!(i.mac_ops(), 2);
    }

    #[test]
    fn branch_has_no_defs() {
        let i = Instr::Branch {
            op: BranchOp::Bltu,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -8,
        };
        assert!(i.defs().is_empty());
        assert!(i.is_control_flow());
    }
}
