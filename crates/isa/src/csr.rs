//! Control and status registers exposed by the simulated core.

use core::fmt;

/// A control/status register of the RNN-extended core.
///
/// Besides the standard machine-mode counters, the hardware-loop state is
/// exposed read-only the way RI5CY exposes it, so that debug code can
/// inspect loop progress.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Csr {
    /// `mcycle` — lower 32 bits of the cycle counter (0xB00).
    Mcycle,
    /// `mcycleh` — upper 32 bits of the cycle counter (0xB80).
    Mcycleh,
    /// `minstret` — lower 32 bits of the retired-instruction counter (0xB02).
    Minstret,
    /// `minstreth` — upper 32 bits of the retired-instruction counter (0xB82).
    Minstreth,
    /// `lpstart0` — hardware-loop 0 start PC (custom, 0x800).
    LpStart0,
    /// `lpend0` — hardware-loop 0 end PC (custom, 0x801).
    LpEnd0,
    /// `lpcount0` — hardware-loop 0 remaining count (custom, 0x802).
    LpCount0,
    /// `lpstart1` — hardware-loop 1 start PC (custom, 0x804).
    LpStart1,
    /// `lpend1` — hardware-loop 1 end PC (custom, 0x805).
    LpEnd1,
    /// `lpcount1` — hardware-loop 1 remaining count (custom, 0x806).
    LpCount1,
    /// Any other CSR address, passed through unmodelled.
    Other(u16),
}

impl Csr {
    /// The 12-bit CSR address.
    pub const fn addr(self) -> u16 {
        match self {
            Csr::Mcycle => 0xB00,
            Csr::Mcycleh => 0xB80,
            Csr::Minstret => 0xB02,
            Csr::Minstreth => 0xB82,
            Csr::LpStart0 => 0x800,
            Csr::LpEnd0 => 0x801,
            Csr::LpCount0 => 0x802,
            Csr::LpStart1 => 0x804,
            Csr::LpEnd1 => 0x805,
            Csr::LpCount1 => 0x806,
            Csr::Other(a) => a & 0xFFF,
        }
    }

    /// Constructs from a 12-bit CSR address.
    pub const fn from_addr(addr: u16) -> Self {
        match addr {
            0xB00 => Csr::Mcycle,
            0xB80 => Csr::Mcycleh,
            0xB02 => Csr::Minstret,
            0xB82 => Csr::Minstreth,
            0x800 => Csr::LpStart0,
            0x801 => Csr::LpEnd0,
            0x802 => Csr::LpCount0,
            0x804 => Csr::LpStart1,
            0x805 => Csr::LpEnd1,
            0x806 => Csr::LpCount1,
            a => Csr::Other(a & 0xFFF),
        }
    }

    /// The conventional name, if this is a known CSR.
    pub const fn name(self) -> Option<&'static str> {
        match self {
            Csr::Mcycle => Some("mcycle"),
            Csr::Mcycleh => Some("mcycleh"),
            Csr::Minstret => Some("minstret"),
            Csr::Minstreth => Some("minstreth"),
            Csr::LpStart0 => Some("lpstart0"),
            Csr::LpEnd0 => Some("lpend0"),
            Csr::LpCount0 => Some("lpcount0"),
            Csr::LpStart1 => Some("lpstart1"),
            Csr::LpEnd1 => Some("lpend1"),
            Csr::LpCount1 => Some("lpcount1"),
            Csr::Other(_) => None,
        }
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => f.write_str(n),
            None => write!(f, "{:#05x}", self.addr()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trip() {
        for csr in [
            Csr::Mcycle,
            Csr::Mcycleh,
            Csr::Minstret,
            Csr::Minstreth,
            Csr::LpStart0,
            Csr::LpEnd0,
            Csr::LpCount0,
            Csr::LpStart1,
            Csr::LpEnd1,
            Csr::LpCount1,
            Csr::Other(0x123),
        ] {
            assert_eq!(Csr::from_addr(csr.addr()), csr);
        }
    }

    #[test]
    fn other_masks_to_12_bits() {
        assert_eq!(Csr::Other(0xF123).addr(), 0x123);
    }
}
