//! Dense identifiers for the stable statistics mnemonics.
//!
//! Every instruction bins into exactly one stable mnemonic for Table I
//! accounting ([`Instr::mnemonic`](crate::Instr::mnemonic)). Keying the
//! simulator's per-mnemonic counters by string forced a `BTreeMap` upsert
//! on every retired instruction; [`MnemonicId`] gives each stable
//! mnemonic a dense `u16` index so statistics become a fixed-size array
//! indexed in O(1), with the name materialized only at report time.
//!
//! The enum order is part of the crate's stable surface only insofar as
//! `COUNT`, `index()` and `name()` stay mutually consistent; reports are
//! always sorted by name or cycles, never by raw id, so reordering ids
//! cannot change any reported artifact.

/// Defines [`MnemonicId`] together with its name table so the two can
/// never drift apart.
macro_rules! mnemonic_ids {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)+) => {
        /// A dense identifier for one stable statistics mnemonic.
        ///
        /// `MnemonicId` is a plain `u16`-repr enum: converting to an
        /// array index is a no-op, and the full set is enumerable via
        /// [`MnemonicId::ALL`].
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u16)]
        pub enum MnemonicId {
            $($(#[$meta])* $variant,)+
        }

        impl MnemonicId {
            /// Number of stable mnemonics.
            pub const COUNT: usize = Self::ALL.len();

            /// Every id, in id order.
            pub const ALL: [MnemonicId; [$($name),+].len()] = [$(MnemonicId::$variant),+];

            /// The stable mnemonic string.
            pub const fn name(self) -> &'static str {
                match self {
                    $(MnemonicId::$variant => $name,)+
                }
            }
        }
    };
}

mnemonic_ids! {
    /// `lui`
    Lui => "lui",
    /// `auipc`
    Auipc => "auipc",
    /// `jal`
    Jal => "jal",
    /// `jalr`
    Jalr => "jalr",
    /// `beq`
    Beq => "beq",
    /// `bne`
    Bne => "bne",
    /// `blt`
    Blt => "blt",
    /// `bge`
    Bge => "bge",
    /// `bltu`
    Bltu => "bltu",
    /// `bgeu`
    Bgeu => "bgeu",
    /// `lb`
    Lb => "lb",
    /// `lh`
    Lh => "lh",
    /// `lw`
    Lw => "lw",
    /// `lbu`
    Lbu => "lbu",
    /// `lhu`
    Lhu => "lhu",
    /// `sb`
    Sb => "sb",
    /// `sh`
    Sh => "sh",
    /// `sw`
    Sw => "sw",
    /// `addi`
    Addi => "addi",
    /// `slti`
    Slti => "slti",
    /// `sltiu`
    Sltiu => "sltiu",
    /// `xori`
    Xori => "xori",
    /// `ori`
    Ori => "ori",
    /// `andi`
    Andi => "andi",
    /// `slli`
    Slli => "slli",
    /// `srli`
    Srli => "srli",
    /// `srai`
    Srai => "srai",
    /// `add`
    Add => "add",
    /// `sub`
    Sub => "sub",
    /// `sll`
    Sll => "sll",
    /// `slt`
    Slt => "slt",
    /// `sltu`
    Sltu => "sltu",
    /// `xor`
    Xor => "xor",
    /// `srl`
    Srl => "srl",
    /// `sra`
    Sra => "sra",
    /// `or`
    Or => "or",
    /// `and`
    And => "and",
    /// `mul`
    Mul => "mul",
    /// `mulh`
    Mulh => "mulh",
    /// `mulhsu`
    Mulhsu => "mulhsu",
    /// `mulhu`
    Mulhu => "mulhu",
    /// `div`
    Div => "div",
    /// `divu`
    Divu => "divu",
    /// `rem`
    Rem => "rem",
    /// `remu`
    Remu => "remu",
    /// `fence`
    Fence => "fence",
    /// `ecall`
    Ecall => "ecall",
    /// `ebreak`
    Ebreak => "ebreak",
    /// `csrrw`
    Csrrw => "csrrw",
    /// `csrrs`
    Csrrs => "csrrs",
    /// `csrrc`
    Csrrc => "csrrc",
    /// `p.lb!` (post-increment)
    PLbPost => "p.lb!",
    /// `p.lh!` (post-increment)
    PLhPost => "p.lh!",
    /// `p.lw!` (post-increment)
    PLwPost => "p.lw!",
    /// `p.lbu!` (post-increment)
    PLbuPost => "p.lbu!",
    /// `p.lhu!` (post-increment)
    PLhuPost => "p.lhu!",
    /// `p.lb` (register offset)
    PLb => "p.lb",
    /// `p.lh` (register offset)
    PLh => "p.lh",
    /// `p.lw` (register offset)
    PLw => "p.lw",
    /// `p.lbu` (register offset)
    PLbu => "p.lbu",
    /// `p.lhu` (register offset)
    PLhu => "p.lhu",
    /// `p.sb!` (post-increment)
    PSbPost => "p.sb!",
    /// `p.sh!` (post-increment)
    PShPost => "p.sh!",
    /// `p.sw!` (post-increment)
    PSwPost => "p.sw!",
    /// `lp.starti`
    LpStarti => "lp.starti",
    /// `lp.endi`
    LpEndi => "lp.endi",
    /// `lp.count`
    LpCount => "lp.count",
    /// `lp.counti`
    LpCounti => "lp.counti",
    /// `lp.setup`
    LpSetup => "lp.setup",
    /// `lp.setupi`
    LpSetupi => "lp.setupi",
    /// `p.mac`
    PMac => "p.mac",
    /// `p.msu`
    PMsu => "p.msu",
    /// `p.clip`
    PClip => "p.clip",
    /// `p.clipu`
    PClipU => "p.clipu",
    /// `p.exths`
    PExtHs => "p.exths",
    /// `p.exthz`
    PExtHz => "p.exthz",
    /// `p.extbs`
    PExtBs => "p.extbs",
    /// `p.extbz`
    PExtBz => "p.extbz",
    /// `p.abs`
    PAbs => "p.abs",
    /// `p.min`
    PMin => "p.min",
    /// `p.max`
    PMax => "p.max",
    /// `p.ff1`
    PFf1 => "p.ff1",
    /// `p.fl1`
    PFl1 => "p.fl1",
    /// `p.cnt`
    PCnt => "p.cnt",
    /// `p.clb`
    PClb => "p.clb",
    /// `p.ror`
    PRor => "p.ror",
    /// `pv.add`
    PvAdd => "pv.add",
    /// `pv.sub`
    PvSub => "pv.sub",
    /// `pv.avg`
    PvAvg => "pv.avg",
    /// `pv.min`
    PvMin => "pv.min",
    /// `pv.max`
    PvMax => "pv.max",
    /// `pv.srl`
    PvSrl => "pv.srl",
    /// `pv.sra`
    PvSra => "pv.sra",
    /// `pv.sll`
    PvSll => "pv.sll",
    /// `pv.or`
    PvOr => "pv.or",
    /// `pv.xor`
    PvXor => "pv.xor",
    /// `pv.and`
    PvAnd => "pv.and",
    /// `pv.abs`
    PvAbs => "pv.abs",
    /// `pv.dotup`
    PvDotUp => "pv.dotup",
    /// `pv.dotusp`
    PvDotUsp => "pv.dotusp",
    /// `pv.dotsp`
    PvDotSp => "pv.dotsp",
    /// `pv.sdotup`
    PvSdotUp => "pv.sdotup",
    /// `pv.sdotusp`
    PvSdotUsp => "pv.sdotusp",
    /// `pv.sdotsp`
    PvSdotSp => "pv.sdotsp",
    /// `pl.sdotsp` (halfword form, the paper's instruction)
    PlSdotsp => "pl.sdotsp",
    /// `pl.sdotsp.b` (byte form, this reproduction's INT8 extension)
    PlSdotspB => "pl.sdotsp.b",
    /// `pl.tanh`
    PlTanh => "pl.tanh",
    /// `pl.sig`
    PlSig => "pl.sig",
}

impl MnemonicId {
    /// The dense array index of this id.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The id at `index`, if in range.
    pub fn from_index(index: usize) -> Option<MnemonicId> {
        Self::ALL.get(index).copied()
    }

    /// Looks an id up by its stable mnemonic string (report-time /
    /// test-convenience path; the hot path never goes through strings).
    pub fn from_name(name: &str) -> Option<MnemonicId> {
        Self::ALL.iter().copied().find(|id| id.name() == name)
    }
}

impl core::fmt::Display for MnemonicId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_roundtrip() {
        for (i, id) in MnemonicId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(MnemonicId::from_index(i), Some(*id));
        }
        assert_eq!(MnemonicId::from_index(MnemonicId::COUNT), None);
    }

    #[test]
    fn names_are_unique() {
        for a in MnemonicId::ALL {
            for b in MnemonicId::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name(), "duplicate mnemonic string");
                }
            }
        }
    }

    #[test]
    fn from_name_roundtrips() {
        for id in MnemonicId::ALL {
            assert_eq!(MnemonicId::from_name(id.name()), Some(id));
        }
        assert_eq!(MnemonicId::from_name("not-a-mnemonic"), None);
    }

    #[test]
    fn count_fits_u16() {
        assert!(MnemonicId::COUNT < u16::MAX as usize);
    }
}
