//! Binary encoder for the 32-bit instruction formats.
//!
//! # Encoding map
//!
//! Standard RV32IM opcodes are bit-exact per the RISC-V unprivileged spec.
//! The extensions live in the custom opcode space:
//!
//! | Opcode  | Space     | Contents |
//! |---------|-----------|----------|
//! | `0x0B`  | custom-0  | post-increment loads (`funct3` = load type) and register-offset loads (`funct3 = 111`, load type in `funct7[2:0]`) |
//! | `0x2B`  | custom-1  | post-increment stores (S-type, `funct3` = store type) |
//! | `0x5B`  | custom-2  | RNN extension: `funct3` 000/001 = `pl.sdotsp.h.0/1`, 010 = `pl.tanh`, 011 = `pl.sig` |
//! | `0x7B`  | custom-3  | hardware loops: `funct3` 000 `lp.starti`, 001 `lp.endi`, 010 `lp.count`, 011 `lp.counti`, 100 `lp.setup`, 101 `lp.setupi`; loop index in `rd[0]` |
//! | `0x57`  | OP-V slot | packed SIMD: operation in `funct5 = [31:27]`, mode/size in `funct3` (`{0,1}` vv.h/vv.b, `{4,5}` sc.h/sc.b, `{6,7}` sci.h/sci.b), `imm6 = {bit 25, rs2}` for `sci` |
//! | `0x33`  | OP        | `funct7 = 0b0100001`: `p.mac`/`p.msu`; `funct7 = 0b0001010`: min/max/abs/ext group; `funct7 = 0b0001011`: clips (width-1 in the rs2 field) |
//!
//! These choices are RI5CY-flavoured but only guaranteed to be
//! *self-consistent*: [`decode`](crate::decode) inverts [`encode`] exactly
//! (enforced by property tests in `tests/roundtrip.rs`).

use crate::instr::*;
use crate::reg::Reg;

const OP_LOAD: u32 = 0x03;
const OP_MISC_MEM: u32 = 0x0F;
const OP_IMM: u32 = 0x13;
const OP_AUIPC: u32 = 0x17;
const OP_STORE: u32 = 0x23;
const OP_OP: u32 = 0x33;
const OP_LUI: u32 = 0x37;
const OP_BRANCH: u32 = 0x63;
const OP_JALR: u32 = 0x67;
const OP_JAL: u32 = 0x6F;
const OP_SYSTEM: u32 = 0x73;

/// Custom opcodes used by the extensions (see module docs).
pub(crate) const OP_XPULP_LOAD: u32 = 0x0B;
pub(crate) const OP_XPULP_STORE: u32 = 0x2B;
pub(crate) const OP_RNN: u32 = 0x5B;
pub(crate) const OP_HWLOOP: u32 = 0x7B;
pub(crate) const OP_SIMD: u32 = 0x57;

pub(crate) const F7_MACMSU: u32 = 0b0100001;
pub(crate) const F7_SCALAR_DSP: u32 = 0b0001010;
pub(crate) const F7_CLIP: u32 = 0b0001011;
pub(crate) const F7_BITMANIP: u32 = 0b0001100;

fn r_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, rs2: Reg, funct7: u32) -> u32 {
    opcode
        | ((rd.num() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.num() as u32) << 15)
        | ((rs2.num() as u32) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, imm: i32) -> u32 {
    opcode
        | ((rd.num() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.num() as u32) << 15)
        | (((imm as u32) & 0xFFF) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1F) << 7)
        | (funct3 << 12)
        | ((rs1.num() as u32) << 15)
        | ((rs2.num() as u32) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | ((rs1.num() as u32) << 15)
        | ((rs2.num() as u32) << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: Reg, imm20: i32) -> u32 {
    opcode | ((rd.num() as u32) << 7) | (((imm20 as u32) & 0xFFFFF) << 12)
}

fn j_type(opcode: u32, rd: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | ((rd.num() as u32) << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Encodes a SIMD `pv.*` instruction.
fn simd(funct5: u32, funct3: u32, rd: Reg, rs1: Reg, rs2_or_imm: u32, bit25: u32) -> u32 {
    OP_SIMD
        | ((rd.num() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.num() as u32) << 15)
        | ((rs2_or_imm & 0x1F) << 20)
        | ((bit25 & 1) << 25)
        | (funct5 << 27)
}

pub(crate) fn pv_alu_funct5(op: PvAluOp) -> u32 {
    match op {
        PvAluOp::Add => 0,
        PvAluOp::Sub => 1,
        PvAluOp::Avg => 2,
        PvAluOp::Min => 3,
        PvAluOp::Max => 4,
        PvAluOp::Srl => 5,
        PvAluOp::Sra => 6,
        PvAluOp::Sll => 7,
        PvAluOp::Or => 8,
        PvAluOp::Xor => 9,
        PvAluOp::And => 10,
        PvAluOp::Abs => 11,
    }
}

pub(crate) fn pv_dot_funct5(op: DotOp) -> u32 {
    match op {
        DotOp::DotUp => 16,
        DotOp::DotUsp => 17,
        DotOp::DotSp => 18,
        DotOp::SdotUp => 19,
        DotOp::SdotUsp => 20,
        DotOp::SdotSp => 21,
    }
}

fn simd_funct3(size: SimdSize, mode: &SimdMode) -> u32 {
    let base = match mode {
        SimdMode::Vv => 0b000,
        SimdMode::Sc => 0b100,
        SimdMode::Sci(_) => 0b110,
    };
    base | match size {
        SimdSize::Half => 0,
        SimdSize::Byte => 1,
    }
}

/// Encodes an instruction into its 32-bit binary form.
///
/// The inverse of [`decode`](crate::decode()). Offsets of control-flow
/// instructions are encoded relative to the instruction's own address, so
/// the caller (assembler) must have resolved labels already.
///
/// # Example
///
/// ```
/// use rnnasip_isa::{encode, Instr, Reg};
///
/// let nop = Instr::OpImm {
///     op: rnnasip_isa::AluImmOp::Addi,
///     rd: Reg::ZERO,
///     rs1: Reg::ZERO,
///     imm: 0,
/// };
/// assert_eq!(encode(&nop), 0x0000_0013);
/// ```
pub fn encode(instr: &Instr) -> u32 {
    use Instr::*;
    match *instr {
        Lui { rd, imm20 } => u_type(OP_LUI, rd, imm20),
        Auipc { rd, imm20 } => u_type(OP_AUIPC, rd, imm20),
        Jal { rd, offset } => j_type(OP_JAL, rd, offset),
        Jalr { rd, rs1, offset } => i_type(OP_JALR, rd, 0b000, rs1, offset),
        Branch {
            op,
            rs1,
            rs2,
            offset,
        } => b_type(OP_BRANCH, op.funct3(), rs1, rs2, offset),
        Load {
            op,
            rd,
            rs1,
            offset,
        } => i_type(OP_LOAD, rd, op.funct3(), rs1, offset),
        Store {
            op,
            rs2,
            rs1,
            offset,
        } => s_type(OP_STORE, op.funct3(), rs1, rs2, offset),
        OpImm { op, rd, rs1, imm } => match op {
            AluImmOp::Addi => i_type(OP_IMM, rd, 0b000, rs1, imm),
            AluImmOp::Slti => i_type(OP_IMM, rd, 0b010, rs1, imm),
            AluImmOp::Sltiu => i_type(OP_IMM, rd, 0b011, rs1, imm),
            AluImmOp::Xori => i_type(OP_IMM, rd, 0b100, rs1, imm),
            AluImmOp::Ori => i_type(OP_IMM, rd, 0b110, rs1, imm),
            AluImmOp::Andi => i_type(OP_IMM, rd, 0b111, rs1, imm),
            AluImmOp::Slli => i_type(OP_IMM, rd, 0b001, rs1, imm & 0x1F),
            AluImmOp::Srli => i_type(OP_IMM, rd, 0b101, rs1, imm & 0x1F),
            AluImmOp::Srai => i_type(OP_IMM, rd, 0b101, rs1, (imm & 0x1F) | 0x400),
        },
        Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sub => (0b000, 0x20),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, 0x20),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
            };
            r_type(OP_OP, rd, funct3, rs1, rs2, funct7)
        }
        MulDiv { op, rd, rs1, rs2 } => r_type(OP_OP, rd, op.funct3(), rs1, rs2, 0b0000001),
        Fence => i_type(OP_MISC_MEM, Reg::ZERO, 0b000, Reg::ZERO, 0),
        Ecall => i_type(OP_SYSTEM, Reg::ZERO, 0b000, Reg::ZERO, 0),
        Ebreak => i_type(OP_SYSTEM, Reg::ZERO, 0b000, Reg::ZERO, 1),
        Csr { op, rd, rs1, csr } => {
            let funct3 = match op {
                CsrOp::Csrrw => 0b001,
                CsrOp::Csrrs => 0b010,
                CsrOp::Csrrc => 0b011,
            };
            i_type(OP_SYSTEM, rd, funct3, rs1, csr.addr() as i32)
        }
        LoadPostInc {
            op,
            rd,
            rs1,
            offset,
        } => i_type(OP_XPULP_LOAD, rd, op.funct3(), rs1, offset),
        LoadReg { op, rd, rs1, rs2 } => r_type(OP_XPULP_LOAD, rd, 0b111, rs1, rs2, op.funct3()),
        StorePostInc {
            op,
            rs2,
            rs1,
            offset,
        } => s_type(OP_XPULP_STORE, op.funct3(), rs1, rs2, offset),
        LpStarti { l, uimm } => i_type(
            OP_HWLOOP,
            Reg::from_bits(l.index() as u32),
            0b000,
            Reg::ZERO,
            uimm as i32,
        ),
        LpEndi { l, uimm } => i_type(
            OP_HWLOOP,
            Reg::from_bits(l.index() as u32),
            0b001,
            Reg::ZERO,
            uimm as i32,
        ),
        LpCount { l, rs1 } => i_type(OP_HWLOOP, Reg::from_bits(l.index() as u32), 0b010, rs1, 0),
        LpCounti { l, uimm } => i_type(
            OP_HWLOOP,
            Reg::from_bits(l.index() as u32),
            0b011,
            Reg::ZERO,
            uimm as i32,
        ),
        LpSetup { l, rs1, uimm } => i_type(
            OP_HWLOOP,
            Reg::from_bits(l.index() as u32),
            0b100,
            rs1,
            uimm as i32,
        ),
        LpSetupi { l, count, uimm } => i_type(
            OP_HWLOOP,
            Reg::from_bits(l.index() as u32),
            0b101,
            Reg::from_bits(count),
            uimm as i32,
        ),
        Mac { rd, rs1, rs2 } => r_type(OP_OP, rd, 0b000, rs1, rs2, F7_MACMSU),
        Msu { rd, rs1, rs2 } => r_type(OP_OP, rd, 0b001, rs1, rs2, F7_MACMSU),
        Ff1 { rd, rs1 } => r_type(OP_OP, rd, 0b000, rs1, Reg::ZERO, F7_BITMANIP),
        Fl1 { rd, rs1 } => r_type(OP_OP, rd, 0b001, rs1, Reg::ZERO, F7_BITMANIP),
        Cnt { rd, rs1 } => r_type(OP_OP, rd, 0b010, rs1, Reg::ZERO, F7_BITMANIP),
        Clb { rd, rs1 } => r_type(OP_OP, rd, 0b011, rs1, Reg::ZERO, F7_BITMANIP),
        Ror { rd, rs1, rs2 } => r_type(OP_OP, rd, 0b100, rs1, rs2, F7_BITMANIP),
        PMin { rd, rs1, rs2 } => r_type(OP_OP, rd, 0b000, rs1, rs2, F7_SCALAR_DSP),
        PMax { rd, rs1, rs2 } => r_type(OP_OP, rd, 0b001, rs1, rs2, F7_SCALAR_DSP),
        PAbs { rd, rs1 } => r_type(OP_OP, rd, 0b010, rs1, Reg::ZERO, F7_SCALAR_DSP),
        ExtHs { rd, rs1 } => r_type(OP_OP, rd, 0b011, rs1, Reg::ZERO, F7_SCALAR_DSP),
        ExtHz { rd, rs1 } => r_type(OP_OP, rd, 0b100, rs1, Reg::ZERO, F7_SCALAR_DSP),
        ExtBs { rd, rs1 } => r_type(OP_OP, rd, 0b101, rs1, Reg::ZERO, F7_SCALAR_DSP),
        ExtBz { rd, rs1 } => r_type(OP_OP, rd, 0b110, rs1, Reg::ZERO, F7_SCALAR_DSP),
        Clip { rd, rs1, bits } => r_type(
            OP_OP,
            rd,
            0b000,
            rs1,
            Reg::from_bits((bits as u32).wrapping_sub(1)),
            F7_CLIP,
        ),
        ClipU { rd, rs1, bits } => r_type(
            OP_OP,
            rd,
            0b001,
            rs1,
            Reg::from_bits((bits as u32).wrapping_sub(1)),
            F7_CLIP,
        ),
        PvAlu {
            op,
            size,
            mode,
            rd,
            rs1,
            rs2,
        } => {
            let funct3 = simd_funct3(size, &mode);
            match mode {
                SimdMode::Sci(imm) => simd(
                    pv_alu_funct5(op),
                    funct3,
                    rd,
                    rs1,
                    (imm as u32) & 0x1F,
                    ((imm as u32) >> 5) & 1,
                ),
                _ => simd(pv_alu_funct5(op), funct3, rd, rs1, rs2.num() as u32, 0),
            }
        }
        PvDot {
            op,
            size,
            rd,
            rs1,
            rs2,
        } => simd(
            pv_dot_funct5(op),
            simd_funct3(size, &SimdMode::Vv),
            rd,
            rs1,
            rs2.num() as u32,
            0,
        ),
        PlSdotsp {
            spr,
            size,
            rd,
            rs1,
            rs2,
        } => {
            let base = match size {
                SimdSize::Half => 0b000,
                SimdSize::Byte => 0b100,
            };
            r_type(OP_RNN, rd, base | (spr & 1) as u32, rs1, rs2, 0)
        }
        PlTanh { rd, rs1 } => r_type(OP_RNN, rd, 0b010, rs1, Reg::ZERO, 0),
        PlSig { rd, rs1 } => r_type(OP_RNN, rd, 0b011, rs1, Reg::ZERO, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_nop() {
        let nop = Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        };
        assert_eq!(encode(&nop), 0x0000_0013);
    }

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against riscv64-unknown-elf-gcc output.
        // addi a0, a1, -4  -> 0xffc58513
        let i = Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: -4,
        };
        assert_eq!(encode(&i), 0xffc5_8513);
        // lw t0, 8(sp) -> 0x00812283
        let i = Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::T0,
            rs1: Reg::SP,
            offset: 8,
        };
        assert_eq!(encode(&i), 0x0081_2283);
        // sw s0, 12(a0) -> 0x00852623
        let i = Instr::Store {
            op: StoreOp::Sw,
            rs2: Reg::S0,
            rs1: Reg::A0,
            offset: 12,
        };
        assert_eq!(encode(&i), 0x0085_2623);
        // mul a2, a3, a4 -> 0x02e68633
        let i = Instr::MulDiv {
            op: MulDivOp::Mul,
            rd: Reg::A2,
            rs1: Reg::A3,
            rs2: Reg::A4,
        };
        assert_eq!(encode(&i), 0x02e6_8633);
        // beq a0, a1, +16 -> 0x00b50863
        let i = Instr::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 16,
        };
        assert_eq!(encode(&i), 0x00b5_0863);
        // jal ra, +2048... use jal x1, 0x800 -> imm[11]=1: 0x00100EF with bits; check against spec by decoding instead.
    }

    #[test]
    fn srai_sets_funct7_bit() {
        let i = Instr::OpImm {
            op: AluImmOp::Srai,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 12,
        };
        // srai a0, a0, 12 -> 0x40c55513
        assert_eq!(encode(&i), 0x40c5_5513);
    }
}
