// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property tests: `decode(encode(i)) == i` over the whole instruction
//! space, and `decode_compressed(compress(i)) == i` whenever a compressed
//! form exists.

use proptest::prelude::*;
use rnnasip_isa::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).expect("in range"))
}

fn arb_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ]
}

fn arb_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)]
}

fn arb_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
    ]
}

fn arb_shift_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_muldiv_op() -> impl Strategy<Value = MulDivOp> {
    prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ]
}

fn arb_loop_idx() -> impl Strategy<Value = LoopIdx> {
    prop_oneof![Just(LoopIdx::L0), Just(LoopIdx::L1)]
}

fn arb_simd_size() -> impl Strategy<Value = SimdSize> {
    prop_oneof![Just(SimdSize::Half), Just(SimdSize::Byte)]
}

fn arb_pv_alu_op() -> impl Strategy<Value = PvAluOp> {
    prop_oneof![
        Just(PvAluOp::Add),
        Just(PvAluOp::Sub),
        Just(PvAluOp::Avg),
        Just(PvAluOp::Min),
        Just(PvAluOp::Max),
        Just(PvAluOp::Srl),
        Just(PvAluOp::Sra),
        Just(PvAluOp::Sll),
        Just(PvAluOp::Or),
        Just(PvAluOp::Xor),
        Just(PvAluOp::And),
    ]
}

fn arb_dot_op() -> impl Strategy<Value = DotOp> {
    prop_oneof![
        Just(DotOp::DotUp),
        Just(DotOp::DotUsp),
        Just(DotOp::DotSp),
        Just(DotOp::SdotUp),
        Just(DotOp::SdotUsp),
        Just(DotOp::SdotSp),
    ]
}

/// Generates instructions in canonical form (the form the decoder emits).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), 0i32..0x100000).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (arb_reg(), 0i32..0x100000).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
        (arb_reg(), (-0x100000i32..0x100000).prop_map(|o| o & !1))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            arb_branch_op(),
            arb_reg(),
            arb_reg(),
            (-4096i32..4096).prop_map(|o| o & !1)
        )
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch {
                op,
                rs1,
                rs2,
                offset
            }),
        (arb_load_op(), arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(op, rd, rs1, offset)| {
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (arb_store_op(), arb_reg(), arb_reg(), -2048i32..2048).prop_map(
            |(op, rs2, rs1, offset)| Instr::Store {
                op,
                rs2,
                rs1,
                offset
            }
        ),
        (arb_alu_imm_op(), arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (arb_shift_op(), arb_reg(), arb_reg(), 0i32..32)
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_muldiv_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        (arb_load_op(), arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(op, rd, rs1, offset)| {
            Instr::LoadPostInc {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (arb_load_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::LoadReg { op, rd, rs1, rs2 }),
        (arb_store_op(), arb_reg(), arb_reg(), -2048i32..2048).prop_map(
            |(op, rs2, rs1, offset)| Instr::StorePostInc {
                op,
                rs2,
                rs1,
                offset
            }
        ),
        (arb_loop_idx(), 0u32..4096).prop_map(|(l, uimm)| Instr::LpStarti { l, uimm }),
        (arb_loop_idx(), 0u32..4096).prop_map(|(l, uimm)| Instr::LpEndi { l, uimm }),
        (arb_loop_idx(), arb_reg()).prop_map(|(l, rs1)| Instr::LpCount { l, rs1 }),
        (arb_loop_idx(), 0u32..4096).prop_map(|(l, uimm)| Instr::LpCounti { l, uimm }),
        (arb_loop_idx(), arb_reg(), 0u32..4096).prop_map(|(l, rs1, uimm)| Instr::LpSetup {
            l,
            rs1,
            uimm
        }),
        (arb_loop_idx(), 0u32..32, 0u32..4096).prop_map(|(l, count, uimm)| Instr::LpSetupi {
            l,
            count,
            uimm
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Mac { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Msu { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), 1u8..=32).prop_map(|(rd, rs1, bits)| Instr::Clip { rd, rs1, bits }),
        (arb_reg(), arb_reg(), 1u8..=32).prop_map(|(rd, rs1, bits)| Instr::ClipU { rd, rs1, bits }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::ExtHs { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::ExtHz { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::ExtBs { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::ExtBz { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::PAbs { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Ff1 { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Fl1 { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Cnt { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Clb { rd, rs1 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Ror { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::PMin { rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::PMax { rd, rs1, rs2 }),
        // SIMD ALU, vector-vector and scalar modes.
        (
            arb_pv_alu_op(),
            arb_simd_size(),
            prop_oneof![Just(SimdMode::Vv), Just(SimdMode::Sc)],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, size, mode, rd, rs1, rs2)| Instr::PvAlu {
                op,
                size,
                mode,
                rd,
                rs1,
                rs2
            }),
        // SIMD ALU immediate mode: rs2 canonically x0.
        (
            arb_pv_alu_op(),
            arb_simd_size(),
            -32i8..32,
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, size, imm, rd, rs1)| Instr::PvAlu {
                op,
                size,
                mode: SimdMode::Sci(imm),
                rd,
                rs1,
                rs2: Reg::ZERO
            }),
        // Unary abs: rs2 canonically x0.
        (arb_simd_size(), arb_reg(), arb_reg()).prop_map(|(size, rd, rs1)| Instr::PvAlu {
            op: PvAluOp::Abs,
            size,
            mode: SimdMode::Vv,
            rd,
            rs1,
            rs2: Reg::ZERO
        }),
        (
            arb_dot_op(),
            arb_simd_size(),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, size, rd, rs1, rs2)| Instr::PvDot {
                op,
                size,
                rd,
                rs1,
                rs2
            }),
        (0u8..2, arb_simd_size(), arb_reg(), arb_reg(), arb_reg()).prop_map(
            |(spr, size, rd, rs1, rs2)| Instr::PlSdotsp {
                spr,
                size,
                rd,
                rs1,
                rs2
            }
        ),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::PlTanh { rd, rs1 }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::PlSig { rd, rs1 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let word = encode(&instr);
        let decoded = decode(word).map_err(|e| {
            TestCaseError::fail(format!("{e} (instr {instr:?})"))
        })?;
        prop_assert_eq!(decoded, instr);
    }

    #[test]
    fn compressed_round_trip(instr in arb_instr()) {
        if let Some(half) = compress(&instr) {
            prop_assert!(is_compressed(half));
            let expanded = decode_compressed(half).map_err(|e| {
                TestCaseError::fail(format!("{e} (instr {instr:?})"))
            })?;
            prop_assert_eq!(expanded, instr);
        }
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decode_compressed_never_panics(word in any::<u16>()) {
        let _ = decode_compressed(word);
    }

    #[test]
    fn disasm_is_nonempty_and_stable(instr in arb_instr()) {
        let text = instr.to_string();
        prop_assert!(!text.is_empty());
        prop_assert_eq!(text.clone(), instr.to_string());
    }
}
