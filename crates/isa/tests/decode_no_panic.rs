//! Total-function guarantees for the decoders: arbitrary bytes — the
//! fault-injection campaign corrupts instruction words with bit flips —
//! must produce `Ok` or `Err`, never a panic.
//!
//! Three deterministic sweeps, no external crates:
//!
//! 1. every 16-bit word through `decode_compressed` (exhaustive),
//! 2. a seeded uniform sample of 32-bit words through `decode`,
//! 3. single-bit flips of *valid* encodings — exactly the corruption
//!    model of `rnnasip_sim::FaultSite::InstrBit`.
//!
//! A property-based twin lives in `decode_fuzz_prop.rs` behind the
//! `proptest-tests` feature.

use rnnasip_isa::{compress, decode, decode_compressed, encode, is_compressed};
use rnnasip_rng::StdRng;

#[test]
fn every_u16_word_decodes_without_panic() {
    let mut ok = 0u32;
    let mut compressed = 0u32;
    for word in 0..=u16::MAX {
        if is_compressed(word) {
            compressed += 1;
        }
        // Called on *every* word, including ones carrying the 32-bit
        // width marker: the decoder must reject those, not trust the
        // caller to pre-filter.
        match decode_compressed(word) {
            Ok(instr) => {
                ok += 1;
                // A decoded instruction must re-encode without panicking
                // either (compression is allowed to be unavailable).
                let _ = compress(&instr);
                let _ = encode(&instr);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    // Three of the four quadrants are compressed space.
    assert_eq!(compressed, 3 * (1 << 14));
    assert!(ok > 10_000, "suspiciously few valid words: {ok}");
}

#[test]
fn random_u32_words_decode_without_panic() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    let mut ok = 0u32;
    for _ in 0..2_000_000 {
        let word = rng.gen::<u32>();
        match decode(word) {
            Ok(instr) => {
                ok += 1;
                let _ = encode(&instr);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    assert!(ok > 1_000, "suspiciously few valid words: {ok}");
}

/// The campaign's exact corruption model: take a valid encoding, flip
/// one bit, decode with the same-width decoder.
#[test]
fn bit_flips_of_valid_encodings_decode_without_panic() {
    // Harvest a corpus of valid 32-bit encodings from the random sweep
    // (the corpus inherits coverage of every implemented opcode that is
    // dense enough to be hit uniformly)...
    let mut rng = StdRng::seed_from_u64(0xF11B_BEEF);
    let mut corpus = Vec::new();
    while corpus.len() < 20_000 {
        let word = rng.gen::<u32>();
        if let Ok(instr) = decode(word) {
            corpus.push(encode(&instr));
        }
    }
    for word in corpus {
        for bit in 0..32 {
            let _ = decode(word ^ (1 << bit));
        }
    }
    // ...and the compressed space exhaustively, since it is small.
    for word in 0..=u16::MAX {
        if decode_compressed(word).is_ok() {
            for bit in 0..16 {
                let _ = decode_compressed(word ^ (1 << bit));
            }
        }
    }
}
