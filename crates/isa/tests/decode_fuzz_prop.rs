// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property twin of `decode_no_panic.rs`: the decoders are total over
//! arbitrary words, and decoding never yields an instruction whose
//! re-encoding panics.

use proptest::prelude::*;
use rnnasip_isa::{compress, decode, decode_compressed, encode};

proptest! {
    #[test]
    fn decode_is_total_over_u32(word: u32) {
        if let Ok(instr) = decode(word) {
            let _ = encode(&instr);
            let _ = compress(&instr);
        }
    }

    #[test]
    fn decode_compressed_is_total_over_u16(word: u16) {
        if let Ok(instr) = decode_compressed(word) {
            let _ = encode(&instr);
            let _ = compress(&instr);
        }
    }

    #[test]
    fn single_bit_corruption_never_panics(word: u32, bit in 0u32..32) {
        if let Ok(instr) = decode(word) {
            let _ = decode(encode(&instr) ^ (1 << bit));
        }
    }
}
