//! A tiny, self-contained, deterministic pseudo-random number generator.
//!
//! The benchmark suite and the synthetic RRM environments only need a
//! seeded stream of uniform `f64` samples; depending on the external
//! `rand` crate for that made the whole workspace unbuildable in offline
//! environments. This crate provides the minimal drop-in surface the
//! repository uses — [`StdRng::seed_from_u64`] and [`StdRng::gen`] —
//! backed by [SplitMix64], which is tiny, fast, and has well-understood
//! statistical quality for this purpose (seeding and synthetic data).
//!
//! Determinism is part of the contract: the generated weight matrices
//! define the benchmark programs whose cycle counts the reproduction
//! pins, so the stream for a given seed must never change. The
//! [`reference_stream_is_pinned`](#) test locks the first outputs of a
//! few seeds.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use rnnasip_rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seeded deterministic generator (SplitMix64 core).
///
/// Named `StdRng` so call sites read identically to the `rand` crate's
/// API this replaces; unlike `rand`, the output stream is guaranteed
/// stable across releases.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

/// Types that can be sampled uniformly from a [`StdRng`].
pub trait Sample: Sized {
    /// Draws one uniform sample.
    fn sample(rng: &mut StdRng) -> Self;
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws one uniform sample of `T`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits of the raw output.
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_pinned() {
        // SplitMix64 reference outputs for seed 0 (first three values of
        // the published reference implementation).
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_samples_are_unit_interval_and_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
