//! Shared harness code for the table/figure regeneration binaries and
//! the `harness = false` benches.
//!
//! Each paper artifact has a binary:
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table I (a–e cycle/instruction histograms) | `cargo run -p rnnasip-bench --bin table1` |
//! | Table II (assembly comparison) | `cargo run -p rnnasip-bench --bin table2` |
//! | Fig. 2 (tanh PLA error surface) | `cargo run -p rnnasip-bench --bin fig2` |
//! | Fig. 3 (per-network speedups) | `cargo run -p rnnasip-bench --bin fig3` |
//! | Section IV (throughput/power/area) | `cargo run -p rnnasip-bench --bin core_results` |
//! | Resilience table (fault-injection campaign) | `cargo run -p rnnasip-bench --bin fault_campaign` |
//! | SDC-detection table (ABFT guard campaign) | `cargo run -p rnnasip-bench --bin sdc_campaign` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod faults;
pub mod harness;
pub mod json;
pub mod par;
pub mod sdc;
pub mod traffic;

use rnnasip_core::{KernelBackend, OptLevel, RunReport};
use rnnasip_rrm::BenchmarkNet;
use rnnasip_sim::Stats;
use std::collections::BTreeMap;

/// Runs one network at one level (panics on kernel errors — the suite is
/// known-good; failures indicate a regression worth crashing on).
pub fn run_net(net: &BenchmarkNet, level: OptLevel) -> RunReport {
    run_net_split(net, level).1
}

/// Like [`run_net`], but compiles explicitly and reports the host-time
/// split: `(compile nanos, execute report)`. The report's
/// [`host_nanos`](RunReport::host_nanos) covers simulation only, so
/// compile cost is visible rather than folded into the MIPS figure.
pub fn run_net_split(net: &BenchmarkNet, level: OptLevel) -> (u64, RunReport) {
    run_net_split_with(net, level, false)
}

/// Like [`run_net_split`], but simulating through the reference per-step
/// interpreter instead of the micro-op path (see
/// `rnnasip_core::Engine::run_reference`). Architectural results are
/// bit-identical; only host time differs. This is the "legacy" column of
/// the `sim_throughput` bench.
pub fn run_net_split_ref(net: &BenchmarkNet, level: OptLevel) -> (u64, RunReport) {
    run_net_split_with(net, level, true)
}

fn run_net_split_with(net: &BenchmarkNet, level: OptLevel, reference: bool) -> (u64, RunReport) {
    let compiled = KernelBackend::new(level)
        .compile_network(&net.network)
        .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
    let compile_nanos = compiled.compile_nanos();
    let mut engine = compiled.engine();
    let run = if reference {
        engine.run_reference(&net.input())
    } else {
        engine.run(&net.input())
    }
    .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
    (compile_nanos, run.report)
}

/// Runs the whole suite at one level and merges the statistics.
///
/// The ten networks simulate in parallel ([`par::par_map`]); the merge
/// happens sequentially in suite order, so the aggregate is bit-identical
/// to a sequential run.
pub fn run_suite(level: OptLevel) -> Stats {
    run_suite_report(level).stats().clone()
}

/// Like [`run_suite`] but keeps the full [`RunReport`], including the
/// accumulated host simulation time (per-core simulated-MIPS figure).
pub fn run_suite_report(level: OptLevel) -> RunReport {
    run_suite_split(level).1
}

/// Runs the whole suite at one level, returning the summed compile
/// nanos alongside the merged execute report — the compile-vs-execute
/// host time split at suite granularity.
pub fn run_suite_split(level: OptLevel) -> (u64, RunReport) {
    run_suite_split_with(level, false)
}

/// Like [`run_suite_split`], but through the reference per-step
/// interpreter ([`run_net_split_ref`]) — the legacy baseline the micro-op
/// path is benchmarked against.
pub fn run_suite_split_ref(level: OptLevel) -> (u64, RunReport) {
    run_suite_split_with(level, true)
}

fn run_suite_split_with(level: OptLevel, reference: bool) -> (u64, RunReport) {
    let nets = rnnasip_rrm::suite();
    let split = par::par_map(&nets, |net| run_net_split_with(net, level, reference));
    let compile: u64 = split.iter().map(|(c, _)| c).sum();
    let total = RunReport::merged(split.iter().map(|(_, r)| r));
    (compile, total)
}

/// Maps a simulator mnemonic to the row name Table I uses.
pub fn paper_row_name(mnemonic: &str) -> String {
    match mnemonic {
        "p.lw!" => "lw!".into(),
        "p.lh!" => "lh!".into(),
        "p.lb!" => "lb!".into(),
        "p.sw!" => "sw!".into(),
        "p.sh!" => "sh!".into(),
        "p.mac" | "p.msu" => "mac".into(),
        "pl.tanh" | "pl.sig" => "tanh,sig".into(),
        m if m.starts_with("pv.sdot") || m.starts_with("pv.dot") => "pv.sdot".into(),
        "pl.sdotsp" => "pl.sdot".into(),
        m if m.starts_with("lp.") => "lp.setup".into(),
        other => other.into(),
    }
}

/// Aggregates statistics into Table-I-style rows (paper naming), sorted
/// by descending cycles.
pub fn table_rows(stats: &Stats) -> Vec<(String, u64, u64)> {
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (name, row) in stats.iter() {
        let e = agg.entry(paper_row_name(name)).or_insert((0, 0));
        e.0 += row.cycles;
        e.1 += row.instrs;
    }
    let mut rows: Vec<(String, u64, u64)> = agg
        .into_iter()
        .map(|(name, (cycles, instrs))| (name, cycles, instrs))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// Formats a Table-I column: the top `keep` rows plus an "oth." bucket
/// and a total, in kilo-units with one decimal.
pub fn format_column(title: &str, stats: &Stats, keep: usize) -> String {
    let rows = table_rows(stats);
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10}\n",
        "Instr.", "kcycles", "kinstrs"
    ));
    let mut oth = (0u64, 0u64);
    for (i, (name, cycles, instrs)) in rows.iter().enumerate() {
        if i < keep {
            out.push_str(&format!(
                "{:<12} {:>10.1} {:>10.1}\n",
                name,
                *cycles as f64 / 1e3,
                *instrs as f64 / 1e3
            ));
        } else {
            oth.0 += cycles;
            oth.1 += instrs;
        }
    }
    if oth != (0, 0) {
        out.push_str(&format!(
            "{:<12} {:>10.1} {:>10.1}\n",
            "oth.",
            oth.0 as f64 / 1e3,
            oth.1 as f64 / 1e3
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>10.1} {:>10.1}\n",
        "Σ",
        stats.cycles() as f64 / 1e3,
        stats.instrs() as f64 / 1e3
    ));
    out
}

/// The paper's reference numbers for comparison lines in the reports.
pub mod paper {
    /// Suite speedups over the RV32IMC baseline, Table I columns b–e.
    pub const SUITE_SPEEDUPS: [(char, f64); 4] = [('b', 4.4), ('c', 8.4), ('d', 14.3), ('e', 15.0)];
    /// Extended-core throughput (MMAC/s) at 380 MHz.
    pub const THROUGHPUT_MMACS: f64 = 566.0;
    /// Extended-core energy efficiency (GMAC/s/W).
    pub const EFFICIENCY_GMACS_W: f64 = 218.0;
    /// Baseline/extended power (mW).
    pub const POWER_MW: (f64, f64) = (1.73, 2.61);
    /// Extension area (kGE) and overhead fraction.
    pub const AREA: (f64, f64) = (2.3, 0.034);
    /// tanh PLA design-point error (MSE, max) as the paper reports it.
    pub const PLA_ERROR: (f64, f64) = (9.81e-7, 3.8e-4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_mapping_matches_paper_names() {
        assert_eq!(paper_row_name("p.lw!"), "lw!");
        assert_eq!(paper_row_name("pv.sdotsp"), "pv.sdot");
        assert_eq!(paper_row_name("pl.sdotsp"), "pl.sdot");
        assert_eq!(paper_row_name("pl.tanh"), "tanh,sig");
        assert_eq!(paper_row_name("pl.sig"), "tanh,sig");
        assert_eq!(paper_row_name("p.mac"), "mac");
        assert_eq!(paper_row_name("addi"), "addi");
    }

    #[test]
    fn format_column_totals() {
        let mut s = Stats::new();
        s.record_name("addi", 1000, 0);
        s.record_name("p.lw!", 2000, 0);
        let text = format_column("test", &s, 1);
        assert!(text.contains("lw!"));
        assert!(text.contains("oth."));
        assert!(text.contains('Σ'));
    }
}
