//! A small self-contained timing harness for the `harness = false`
//! bench targets.
//!
//! The external benchmarking framework this replaced is unavailable in
//! offline builds; the benches here need only its core loop — calibrate
//! a batch size, take repeated samples, report per-iteration times —
//! which this module provides without dependencies. Results print as
//! one line per benchmark: median ns/iteration with the min..max range.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration timing of one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample.
    pub batch: u64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, ns/iteration.
    pub min_ns: f64,
    /// Slowest sample, ns/iteration.
    pub max_ns: f64,
}

impl Measurement {
    /// Median iterations per second.
    pub fn per_second(&self) -> f64 {
        if self.median_ns == 0.0 {
            0.0
        } else {
            1e9 / self.median_ns
        }
    }
}

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;

/// Target wall time for one timed sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Times `f`, printing and returning the measurement.
///
/// The batch size doubles until one batch runs for at least
/// [`TARGET_SAMPLE`], then [`SAMPLES`] batches are timed. The reported
/// unit is always ns per single iteration of `f`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed() >= TARGET_SAMPLE || batch >= 1 << 24 {
            break;
        }
        batch *= 2;
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let m = Measurement {
        name: name.to_string(),
        batch,
        median_ns: per_iter[SAMPLES / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[SAMPLES - 1],
    };
    println!(
        "{:<36} {:>12.0} ns/iter  ({:.0} .. {:.0}, {} x {} iters)",
        m.name, m.median_ns, m.min_ns, m.max_ns, SAMPLES, m.batch
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.per_second() > 0.0);
    }
}
