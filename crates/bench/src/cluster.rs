//! Cluster-scaling measurement shared by the `cluster_scaling` bench
//! and the determinism tests.
//!
//! Every number reported here is *simulated* — cluster latency cycles,
//! per-core cycle/instruction histograms, analytic banking-conflict
//! stalls, DMA and barrier cycles — never host wall-clock. The whole
//! JSON document is therefore byte-deterministic: the same toolchain
//! state produces the identical file on every host, which is what lets
//! the `--check` gate compare against the committed baseline with plain
//! string equality instead of a regression tolerance.

use crate::json::{array, Obj};
use crate::{par, table_rows};
use rnnasip_core::{KernelBackend, OptLevel, RunReport};
use rnnasip_rrm::NetKind;

/// Core counts of the full speedup curve.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Levels measured: Table I's columns d and e, the two configurations
/// the paper's RNN kernels actually ship with.
pub const LEVELS: [OptLevel; 2] = [OptLevel::SdotSp, OptLevel::IfmTile];

/// Table-I rows kept per core in the JSON; the remainder still counts
/// toward the per-core cycle/instruction totals.
pub const TOP_ROWS: usize = 5;

/// Core count the latency-speedup floor is asserted at.
pub const ASSERT_CORES: usize = 4;

/// Required single-inference latency speedup at [`ASSERT_CORES`] for
/// FC/LSTM nets big enough to tile (see [`NetCurve::assertable`]).
pub const MIN_SPEEDUP: f64 = 2.0;

/// Nets below this single-core latency are too small to tile profitably
/// (the per-phase barrier and ragged slices dominate) and are excluded
/// from the floor assert — in the RRM suite this is only the eisen2019
/// policy MLP.
pub const ASSERT_MIN_LATENCY: u64 = 10_000;

/// One core's slice of one cluster configuration.
#[derive(Clone, Debug)]
pub struct CoreCell {
    /// Core index within the cluster.
    pub core: usize,
    /// Cycles this core was busy across all phases.
    pub cycles: u64,
    /// Instructions this core retired.
    pub instrs: u64,
    /// Analytic TCDM banking-conflict stall cycles charged to the core.
    pub conflict_stalls: u64,
    /// Top Table-I rows `(paper name, cycles, instrs)` for the core.
    pub rows: Vec<(String, u64, u64)>,
}

impl CoreCell {
    /// Fraction of the core's occupied time lost to bank conflicts.
    pub fn stall_rate(&self) -> f64 {
        let busy = self.cycles + self.conflict_stalls;
        if busy == 0 {
            0.0
        } else {
            self.conflict_stalls as f64 / busy as f64
        }
    }
}

/// One point of a net's scaling curve: the cluster at one core count.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Number of cores in the cluster.
    pub cores: usize,
    /// End-to-end single-inference latency in cluster cycles (critical
    /// path over phases, plus DMA and barriers).
    pub latency: u64,
    /// Cycles spent in L2→TCDM DMA transfers before compute starts.
    pub dma_cycles: u64,
    /// Cycles spent in inter-phase barriers.
    pub barrier_cycles: u64,
    /// Per-core histograms, index = core id.
    pub per_core: Vec<CoreCell>,
}

/// The full scaling curve of one network at one optimization level.
#[derive(Clone, Debug)]
pub struct NetCurve {
    /// Suite identifier (first author + year).
    pub id: &'static str,
    /// Optimization level the kernels were compiled at.
    pub level: OptLevel,
    /// Kernel family of the net (LSTM / FC / CNN).
    pub kind: NetKind,
    /// One entry per measured core count, in measurement order.
    pub curve: Vec<ScalePoint>,
}

impl NetCurve {
    /// Latency at `cores`, if that count was measured.
    pub fn latency(&self, cores: usize) -> Option<u64> {
        self.curve
            .iter()
            .find(|p| p.cores == cores)
            .map(|p| p.latency)
    }

    /// Latency speedup of `cores` over the single-core configuration.
    pub fn speedup(&self, cores: usize) -> Option<f64> {
        Some(self.latency(1)? as f64 / self.latency(cores)? as f64)
    }

    /// Whether the ≥[`MIN_SPEEDUP`]x floor applies: an FC/LSTM net
    /// (conv nets tile too, but the issue's contract names FC/LSTM)
    /// whose single-core latency clears [`ASSERT_MIN_LATENCY`].
    pub fn assertable(&self) -> bool {
        self.kind != NetKind::Cnn && self.latency(1).is_some_and(|l| l >= ASSERT_MIN_LATENCY)
    }
}

/// Extracts one [`ScalePoint`] from a finished run's report.
fn scale_point(cores: usize, report: &RunReport) -> ScalePoint {
    let per_core = report
        .per_core()
        .iter()
        .map(|cc| {
            let rows = table_rows(&cc.stats).into_iter().take(TOP_ROWS).collect();
            CoreCell {
                core: cc.core,
                cycles: cc.stats.cycles(),
                instrs: cc.stats.instrs(),
                conflict_stalls: cc.conflict_stalls,
                rows,
            }
        })
        .collect();
    ScalePoint {
        cores,
        latency: report.latency_cycles(),
        dma_cycles: report.dma_cycles(),
        barrier_cycles: report.barrier_cycles(),
        per_core,
    }
}

/// Measures the whole RRM suite at both [`LEVELS`] across `counts`
/// (which must start with 1 — every other count's outputs are verified
/// bit-identical against the single-core run before its latency is
/// accepted). Nets measure in parallel; each curve is internally
/// sequential, so the result is independent of host scheduling.
pub fn measure(counts: &[usize]) -> Vec<NetCurve> {
    assert_eq!(counts.first(), Some(&1), "counts must start at 1 core");
    let suite = rnnasip_rrm::suite();
    let cases: Vec<(usize, OptLevel)> = (0..suite.len())
        .flat_map(|i| LEVELS.into_iter().map(move |level| (i, level)))
        .collect();
    par::par_map(&cases, |&(i, level)| {
        let net = &suite[i];
        let input = net.input();
        let mut golden: Option<Vec<_>> = None;
        let curve = counts
            .iter()
            .map(|&cores| {
                let run = KernelBackend::new(level)
                    .with_cores(cores)
                    .compile_network(&net.network)
                    .unwrap_or_else(|e| panic!("{} at {level:?} x{cores}: {e}", net.id))
                    .engine()
                    .run(&input)
                    .unwrap_or_else(|e| panic!("{} at {level:?} x{cores}: {e}", net.id));
                match &golden {
                    None => golden = Some(run.outputs.clone()),
                    Some(g) => assert_eq!(
                        &run.outputs, g,
                        "{} at {level:?}: x{cores} outputs diverge from single-core",
                        net.id
                    ),
                }
                scale_point(cores, &run.report)
            })
            .collect();
        NetCurve {
            id: net.id,
            level,
            kind: net.kind,
            curve,
        }
    })
}

/// Serializes the curves as the `BENCH_cluster.json` document.
pub fn to_json(curves: &[NetCurve], counts: &[usize]) -> String {
    let nets = curves.iter().map(|nc| {
        let points = nc.curve.iter().map(|p| {
            let cores = p.per_core.iter().map(|cc| {
                let rows = cc.rows.iter().map(|(name, cycles, instrs)| {
                    Obj::new()
                        .str("name", name)
                        .num("cycles", *cycles)
                        .num("instrs", *instrs)
                        .build()
                });
                Obj::new()
                    .num("core", cc.core as u64)
                    .num("cycles", cc.cycles)
                    .num("instrs", cc.instrs)
                    .num("conflict_stalls", cc.conflict_stalls)
                    .float("stall_rate", Some(cc.stall_rate()))
                    .raw("rows", array(rows))
                    .build()
            });
            Obj::new()
                .num("cores", p.cores as u64)
                .num("latency", p.latency)
                .float("speedup", nc.speedup(p.cores))
                .num("dma_cycles", p.dma_cycles)
                .num("barrier_cycles", p.barrier_cycles)
                .raw("per_core", array(cores))
                .build()
        });
        Obj::new()
            .str("id", nc.id)
            .str("level", nc.level.tag())
            .str("kind", nc.kind.label())
            .raw("curve", array(points))
            .build()
    });
    Obj::new()
        .str("bench", "cluster_scaling")
        .raw("core_counts", array(counts.iter().map(|c| c.to_string())))
        .raw(
            "levels",
            array(LEVELS.iter().map(|l| format!("\"{}\"", l.tag()))),
        )
        .raw("nets", array(nets))
        .build()
}
