//! Deterministic fault-injection campaigns over the benchmark suite.
//!
//! A campaign sweeps seeded [`FaultPlan`]s across every `(network,
//! OptLevel)` cell: each trial corrupts one architectural site mid-run
//! (or forces an early watchdog), classifies the outcome against the
//! cell's golden run, and — for detected failures — verifies that the
//! engine recovers in-process, recording which rung of the recovery
//! ladder did it.
//!
//! Classification, per trial:
//!
//! | class | meaning |
//! |---|---|
//! | `masked` | run completed, outputs bit-identical to golden |
//! | `sdc` | run completed, outputs differ (silent data corruption) |
//! | `crash` | simulation error other than the watchdog |
//! | `hang` | watchdog expired |
//!
//! Everything is derived from the campaign seed and cell indices — not
//! from thread scheduling, host time, or the execution path — so the
//! emitted JSON is byte-identical across repeated runs *and* across the
//! micro-op / legacy interpreter paths ([`CampaignConfig::reference`]),
//! which is asserted by `crates/bench/tests/fault_determinism.rs` and by
//! the CI `--check` against the committed baseline.

use crate::json::{array, escape, Obj};
use crate::par;
use rnnasip_core::{
    CoreError, Engine, Fault, FaultPlan, FaultSite, KernelBackend, NetworkRun, OptLevel, SimError,
};
use rnnasip_fixed::Q3p12;
use rnnasip_isa::Reg;
use rnnasip_rng::StdRng;
use rnnasip_rrm::BenchmarkNet;

/// First TCDM data address (mirrors the core crate's layout constant;
/// memory-fault addresses are drawn at or above it so flips land in
/// staged weights and activations rather than the empty code hole).
const DATA_BASE: u32 = 0x10000;

/// Outcome class of one fault trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// Completed with golden outputs.
    Masked,
    /// Completed with wrong outputs.
    Sdc,
    /// Detected failure: fetch fault, bad access, bad loop.
    Crash,
    /// Detected failure: watchdog expiry.
    Hang,
}

impl Classification {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Classification::Masked => "masked",
            Classification::Sdc => "sdc",
            Classification::Crash => "crash",
            Classification::Hang => "hang",
        }
    }
}

/// One classified trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trial {
    /// Trial index within the cell.
    pub trial: u32,
    /// Injection-site kind label (`mem`, `mem_silent`, `reg`, `instr`,
    /// `hang`).
    pub site: &'static str,
    /// Instruction-retirement trigger of the injected fault (0 for
    /// forced-watchdog trials).
    pub at_instret: u64,
    /// The outcome class.
    pub class: Classification,
    /// Rendered simulation error for detected failures.
    pub error: Option<String>,
    /// Which recovery rung restored golden behaviour afterwards:
    /// `none` (nothing to recover), `rewind`, or `rebuild`.
    pub recovery: &'static str,
}

/// One `(network, level)` cell of the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Network identifier (`BenchmarkNet::id`).
    pub net: &'static str,
    /// Level tag (`"a"`–`"e"`).
    pub level: &'static str,
    /// Golden-run cycle count (fault-free reference).
    pub golden_cycles: u64,
    /// Golden-run retired-instruction count.
    pub golden_instrs: u64,
    /// The classified trials, in trial order.
    pub trials: Vec<Trial>,
}

impl Cell {
    /// Trials in `class`.
    pub fn count(&self, class: Classification) -> u64 {
        self.trials.iter().filter(|t| t.class == class).count() as u64
    }
}

/// Campaign parameters. Every output byte is a pure function of this
/// struct (the execution path included only in host time, never in the
/// report).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed; trial plans derive from `(seed, net, level, trial)`.
    pub seed: u64,
    /// Trials per `(network, level)` cell.
    pub trials: u32,
    /// Simulate through the legacy per-step interpreter instead of the
    /// micro-op path. The report must come out byte-identical.
    pub reference: bool,
}

impl CampaignConfig {
    /// The CI smoke configuration: few trials, same coverage (every
    /// network × every level).
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            trials: 3,
            reference: false,
        }
    }

    /// The full sweep.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            trials: 12,
            reference: false,
        }
    }
}

/// Runs the whole campaign: every suite network × every [`OptLevel`],
/// `cfg.trials` seeded fault trials each, cells simulated in parallel
/// and merged in deterministic suite order.
///
/// # Panics
///
/// If a compiled suite network fails its golden run, or if a detected
/// failure cannot be recovered by the rewind → rebuild ladder — both
/// are invariants of the fault model, not data-dependent outcomes.
pub fn campaign(cfg: &CampaignConfig) -> Vec<Cell> {
    let nets = rnnasip_rrm::suite();
    let cells: Vec<(usize, OptLevel)> = (0..nets.len())
        .flat_map(|n| OptLevel::ALL.into_iter().map(move |l| (n, l)))
        .collect();
    par::par_map(&cells, |&(net_idx, level)| {
        run_cell(&nets[net_idx], net_idx, level, cfg)
    })
}

/// Runs a single `(network, level)` cell of the sweep — the unit the
/// determinism tests exercise without paying for the full campaign.
pub fn cell(cfg: &CampaignConfig, net_idx: usize, level: OptLevel) -> Cell {
    run_cell(&rnnasip_rrm::suite()[net_idx], net_idx, level, cfg)
}

/// Derives the per-trial generator. SplitMix64 decorrelates the packed
/// indices, so neighbouring cells and trials share no structure.
fn trial_rng(cfg: &CampaignConfig, net_idx: usize, level: OptLevel, trial: u32) -> StdRng {
    let level_idx = OptLevel::ALL.iter().position(|&l| l == level).unwrap() as u64;
    StdRng::seed_from_u64(
        cfg.seed ^ ((net_idx as u64) << 32) ^ (level_idx << 40) ^ ((u64::from(trial) + 1) << 44),
    )
}

fn uniform(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n.max(1)
}

/// Span of staged data past `DATA_BASE` (the bump allocator packs from
/// the bottom, so the last non-zero byte bounds the interesting region).
fn data_span(image: &[u8]) -> u64 {
    let top = image
        .iter()
        .rposition(|&b| b != 0)
        .unwrap_or(DATA_BASE as usize);
    (top.saturating_sub(DATA_BASE as usize) as u64).max(1024)
}

fn run_once(
    engine: &mut Engine,
    input: &[Vec<Q3p12>],
    budget: u64,
    reference: bool,
) -> Result<NetworkRun, CoreError> {
    if reference {
        engine.run_reference_budgeted(input, budget)
    } else {
        engine.run_budgeted(input, budget)
    }
}

fn run_cell(net: &BenchmarkNet, net_idx: usize, level: OptLevel, cfg: &CampaignConfig) -> Cell {
    let compiled = KernelBackend::new(level)
        .compile_network(&net.network)
        .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
    let input = net.input();
    let mut engine = compiled.engine();
    let golden = run_once(&mut engine, &input, compiled.max_cycles(), cfg.reference)
        .unwrap_or_else(|e| panic!("{} at {level:?} golden run: {e}", net.id));
    let golden_cycles = golden.report.cycles();
    let golden_instrs = golden.report.stats().instrs();
    let span = data_span(compiled.image().as_bytes());
    let prog_items: Vec<u32> = compiled.program().iter().map(|item| item.addr).collect();
    let budget = golden_cycles * 4;

    let trials = (0..cfg.trials)
        .map(|trial| {
            let mut rng = trial_rng(cfg, net_idx, level, trial);
            let at_instret = uniform(&mut rng, golden_instrs);
            let (site, plan) = match uniform(&mut rng, 10) {
                0..=3 => (
                    "mem",
                    FaultPlan::new().with_fault(Fault {
                        at_instret,
                        site: FaultSite::MemBit {
                            addr: DATA_BASE + uniform(&mut rng, span) as u32,
                            bit: uniform(&mut rng, 8) as u32,
                            silent: false,
                        },
                    }),
                ),
                4 => (
                    "mem_silent",
                    FaultPlan::new().with_fault(Fault {
                        at_instret,
                        site: FaultSite::MemBit {
                            addr: DATA_BASE + uniform(&mut rng, span) as u32,
                            bit: uniform(&mut rng, 8) as u32,
                            silent: true,
                        },
                    }),
                ),
                5 | 6 => (
                    "reg",
                    FaultPlan::new().with_fault(Fault {
                        at_instret,
                        site: FaultSite::RegBit {
                            reg: Reg::from_bits(rng.next_u64() as u32),
                            bit: uniform(&mut rng, 32) as u32,
                        },
                    }),
                ),
                7 | 8 => (
                    "instr",
                    FaultPlan::new().with_fault(Fault {
                        at_instret,
                        site: FaultSite::InstrBit {
                            pc: prog_items[uniform(&mut rng, prog_items.len() as u64) as usize],
                            bit: uniform(&mut rng, 32) as u32,
                        },
                    }),
                ),
                _ => (
                    "hang",
                    FaultPlan::new().with_watchdog((golden_cycles / 2).max(1)),
                ),
            };
            let at_instret = if site == "hang" { 0 } else { at_instret };

            engine.inject_faults(&plan);
            let result = run_once(&mut engine, &input, budget, cfg.reference);
            let (class, error) = match &result {
                Ok(run) if run.outputs == golden.outputs => (Classification::Masked, None),
                Ok(_) => (Classification::Sdc, None),
                Err(e @ CoreError::Sim(SimError::Watchdog { .. })) => {
                    (Classification::Hang, Some(e.to_string()))
                }
                Err(e) => (Classification::Crash, Some(e.to_string())),
            };

            // Detected failures must recover in-process: the eager
            // rewind already ran, so a plain retry is rung one; a full
            // rebuild is rung two and final.
            let recovery = if result.is_err() {
                let retried = run_once(&mut engine, &input, budget, cfg.reference);
                let rewound = matches!(
                    &retried,
                    Ok(run) if run.outputs == golden.outputs
                        && run.report.cycles() == golden_cycles
                );
                if rewound {
                    "rewind"
                } else {
                    engine.heal_rebuild();
                    let rebuilt = run_once(&mut engine, &input, budget, cfg.reference)
                        .unwrap_or_else(|e| {
                            panic!("{} at {level:?} trial {trial}: unrecovered: {e}", net.id)
                        });
                    assert_eq!(
                        rebuilt.outputs, golden.outputs,
                        "{} at {level:?} trial {trial}: rebuild did not restore golden outputs",
                        net.id
                    );
                    "rebuild"
                }
            } else {
                "none"
            };

            // Hygiene between trials: a masked/SDC trial may still have
            // planted corruption the dirty-block rewind cannot see (a
            // silent flip in untouched memory); rebuild restores the
            // cell invariant that every trial starts from a pristine
            // engine.
            engine.heal_rebuild();

            Trial {
                trial,
                site,
                at_instret,
                class,
                error,
                recovery,
            }
        })
        .collect();

    Cell {
        net: net.id,
        level: level.tag(),
        golden_cycles,
        golden_instrs,
        trials,
    }
}

/// Serializes a campaign into the `BENCH_faults.json` document. The
/// execution path is deliberately absent: the micro-op and legacy runs
/// of the same configuration must serialize to the same bytes.
pub fn to_json(cfg: &CampaignConfig, mode: &str, cells: &[Cell]) -> String {
    let cell_objs = array(cells.iter().map(|cell| {
        let trials = array(cell.trials.iter().map(|t| {
            let error = match &t.error {
                Some(e) => format!("\"{}\"", escape(e)),
                None => "null".to_string(),
            };
            Obj::new()
                .num("trial", u64::from(t.trial))
                .str("site", t.site)
                .num("at_instret", t.at_instret)
                .str("class", t.class.label())
                .raw("error", error)
                .str("recovery", t.recovery)
                .build()
        }));
        Obj::new()
            .str("net", cell.net)
            .str("level", cell.level)
            .num("golden_cycles", cell.golden_cycles)
            .num("golden_instrs", cell.golden_instrs)
            .num("masked", cell.count(Classification::Masked))
            .num("sdc", cell.count(Classification::Sdc))
            .num("crash", cell.count(Classification::Crash))
            .num("hang", cell.count(Classification::Hang))
            .raw("trials", trials)
            .build()
    }));
    let all = |class| -> u64 { cells.iter().map(|c| c.count(class)).sum() };
    let recovered: u64 = cells
        .iter()
        .flat_map(|c| &c.trials)
        .filter(|t| t.recovery != "none")
        .count() as u64;
    let totals = Obj::new()
        .num("masked", all(Classification::Masked))
        .num("sdc", all(Classification::Sdc))
        .num("crash", all(Classification::Crash))
        .num("hang", all(Classification::Hang))
        .num("recovered", recovered)
        .build();
    Obj::new()
        .str("report", "fault_campaign")
        .num("seed", cfg.seed)
        .str("mode", mode)
        .num("trials_per_cell", u64::from(cfg.trials))
        .raw("cells", cell_objs)
        .raw("totals", totals)
        .build()
}

/// Aggregates `(masked, sdc, crash, hang, recovered)` per level tag, in
/// Table I order — the resilience table the campaign binary prints and
/// the README excerpts.
pub fn level_summary(cells: &[Cell]) -> Vec<(&'static str, [u64; 5])> {
    OptLevel::ALL
        .into_iter()
        .map(|level| {
            let tag = level.tag();
            let mut row = [0u64; 5];
            for cell in cells.iter().filter(|c| c.level == tag) {
                row[0] += cell.count(Classification::Masked);
                row[1] += cell.count(Classification::Sdc);
                row[2] += cell.count(Classification::Crash);
                row[3] += cell.count(Classification::Hang);
                row[4] += cell.trials.iter().filter(|t| t.recovery != "none").count() as u64;
            }
            (tag, row)
        })
        .collect()
}
