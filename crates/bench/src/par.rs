//! A minimal deterministic parallel map over scoped threads.
//!
//! The benchmark suite is embarrassingly parallel — every (network,
//! optimization level) pair simulates on its own `Machine` with no shared
//! state — but the usual data-parallelism crates are unavailable offline.
//! [`par_map`] covers the one shape the harness needs: apply a function
//! to every element of a slice, on all available cores, and return the
//! results **in input order** so every downstream merge and printout is
//! byte-identical to the sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Applies `f` to every element of `items` across all available cores
/// and returns the results in input order.
///
/// Work is distributed by an atomic next-item counter, so uneven job
/// sizes (a CNN next to a tiny MLP) never idle a core that still has
/// work to steal. Falls back to a plain sequential map for short inputs
/// or single-core hosts.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Jobs with wildly different costs must still land in order.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(&items, |&x| {
            let spins = if x % 7 == 0 { 100_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            // Return something order-dependent but deterministic.
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
