//! Deterministic SDC-detection campaign: ABFT guard coverage and cost.
//!
//! Where [`faults`](crate::faults) measures how the *recovery ladder*
//! handles architecturally visible failures, this campaign measures the
//! in-band **detection** layer: seeded single-bit flips land in guarded
//! kernel words (weight matrices and bias seeds of every
//! `KernelRegion`), and each trial asks whether the per-region ABFT
//! checksum caught the corruption. Every trial runs twice — guards on
//! and guards off — and the two arms must agree bit-for-bit on the
//! fault's architectural effect, proving the guards observe execution
//! without perturbing it.
//!
//! Verdicts, per trial:
//!
//! | verdict | outputs vs golden | guard |
//! |---|---|---|
//! | `detected` | differ | tripped |
//! | `missed` | differ | clean |
//! | `flagged_benign` | equal | tripped (real corruption, masked output) |
//! | `masked` | equal | clean |
//!
//! Headline numbers: **coverage** (`detected / (detected + missed)`,
//! required ≥ 90%), **false positives** (guard trips on the *clean*
//! suite, required 0 — checked once per cell), and **overhead** (the
//! analytic guard-cycle surcharge relative to the unguarded cycle
//! count, which the guards never touch).
//!
//! Everything derives from the campaign seed and cell indices, so the
//! emitted JSON is byte-identical across reruns and host core counts
//! (`crates/bench/tests/sdc_determinism.rs`, and CI's `--check` against
//! the committed baseline).

use crate::json::{array, Obj};
use crate::par;
use rnnasip_core::{
    CompiledNetwork, Fault, FaultPlan, FaultSite, KernelBackend, NetworkRun, OptLevel,
};
use rnnasip_rng::StdRng;
use rnnasip_rrm::BenchmarkNet;

/// Outcome of one guarded fault trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Outputs corrupted and the guard tripped.
    Detected,
    /// Outputs corrupted but no guard tripped — a detection escape.
    Missed,
    /// Outputs bit-identical to golden, yet the guard tripped: the flip
    /// genuinely corrupted guarded memory (so the trip is *correct*,
    /// not a false positive), but clamping/activation masked it out of
    /// the visible outputs.
    FlaggedBenign,
    /// Outputs bit-identical and no trip (e.g. the flip landed after
    /// its region had already consumed the word).
    Masked,
}

impl Verdict {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Detected => "detected",
            Verdict::Missed => "missed",
            Verdict::FlaggedBenign => "flagged_benign",
            Verdict::Masked => "masked",
        }
    }
}

/// One classified trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trial {
    /// Trial index within the cell.
    pub trial: u32,
    /// Which guarded region's words were targeted.
    pub region: u32,
    /// Targeted word kind: `"w"` (weight matrix) or `"bias"`.
    pub site: &'static str,
    /// The applied fault's stable one-line record
    /// ([`FaultRecord`](rnnasip_core::FaultRecord) `Display` form) from
    /// the guarded arm's fault log.
    pub record: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// One `(network, level)` cell of the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Network identifier (`BenchmarkNet::id`).
    pub net: &'static str,
    /// Level tag (`"a"`–`"e"`).
    pub level: &'static str,
    /// Fault-free cycle count (identical guarded and unguarded).
    pub golden_cycles: u64,
    /// Guarded kernel regions in the compiled artifact.
    pub guard_regions: u64,
    /// Guard boundary checks performed on the clean guarded run.
    pub guard_entries: u64,
    /// Analytic guard surcharge of the clean run, in its own counter —
    /// never folded into `golden_cycles`.
    pub guard_cycles: u64,
    /// `guard_cycles` relative to `golden_cycles`, parts per million.
    pub overhead_ppm: u64,
    /// Guard trips on the clean run — any nonzero value is a false
    /// positive (the acceptance bar is 0).
    pub clean_trips: u64,
    /// The classified trials, in trial order.
    pub trials: Vec<Trial>,
}

impl Cell {
    /// Trials with `verdict`.
    pub fn count(&self, verdict: Verdict) -> u64 {
        self.trials.iter().filter(|t| t.verdict == verdict).count() as u64
    }
}

/// Campaign parameters; every output byte is a pure function of this
/// struct.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed; trial flips derive from `(seed, net, level, trial)`.
    pub seed: u64,
    /// Trials per `(network, level)` cell.
    pub trials: u32,
}

impl CampaignConfig {
    /// The CI smoke configuration: few trials, full cell coverage.
    pub fn smoke(seed: u64) -> Self {
        Self { seed, trials: 3 }
    }

    /// The full sweep.
    pub fn full(seed: u64) -> Self {
        Self { seed, trials: 12 }
    }
}

/// Runs the whole campaign: every suite network × every [`OptLevel`],
/// cells simulated in parallel and merged in deterministic suite order.
///
/// # Panics
///
/// If a suite network fails to compile or run clean, if a guarded and
/// unguarded arm of one trial disagree architecturally, or if a trial
/// errors outright — all invariants of the fault model (data-word flips
/// cannot crash the core), not data-dependent outcomes.
pub fn campaign(cfg: &CampaignConfig) -> Vec<Cell> {
    let nets = rnnasip_rrm::suite();
    let cells: Vec<(usize, OptLevel)> = (0..nets.len())
        .flat_map(|n| OptLevel::ALL.into_iter().map(move |l| (n, l)))
        .collect();
    par::par_map(&cells, |&(net_idx, level)| {
        run_cell(&nets[net_idx], net_idx, level, cfg)
    })
}

/// Runs a single `(network, level)` cell — the unit the determinism
/// tests exercise without paying for the full campaign.
pub fn cell(cfg: &CampaignConfig, net_idx: usize, level: OptLevel) -> Cell {
    run_cell(&rnnasip_rrm::suite()[net_idx], net_idx, level, cfg)
}

/// Derives the per-trial generator, decorrelated across cells/trials.
fn trial_rng(cfg: &CampaignConfig, net_idx: usize, level: OptLevel, trial: u32) -> StdRng {
    let level_idx = OptLevel::ALL.iter().position(|&l| l == level).unwrap() as u64;
    StdRng::seed_from_u64(
        cfg.seed ^ ((net_idx as u64) << 32) ^ (level_idx << 40) ^ ((u64::from(trial) + 1) << 44),
    )
}

fn uniform(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n.max(1)
}

/// The guarded word ranges of `compiled`: per region, the weight matrix
/// (`n_out × n_in` halfwords) and the bias seeds (`n_out` words). Flips
/// inside these are exactly the corruption class the ABFT checksums
/// cover end to end.
fn site_pool(compiled: &CompiledNetwork) -> Vec<(u32, &'static str, u32, u32)> {
    compiled
        .guards()
        .iter()
        .enumerate()
        .flat_map(|(idx, spec)| {
            let r = &spec.region;
            [
                (idx as u32, "w", r.w_base, 2 * r.n_in * r.n_out),
                (idx as u32, "bias", r.bias32, 4 * r.n_out),
            ]
        })
        .collect()
}

fn must_run(run: Result<NetworkRun, rnnasip_core::CoreError>, what: &str) -> NetworkRun {
    run.unwrap_or_else(|e| panic!("{what}: {e} (data-word flips cannot crash the core)"))
}

fn run_cell(net: &BenchmarkNet, net_idx: usize, level: OptLevel, cfg: &CampaignConfig) -> Cell {
    let compiled = KernelBackend::new(level)
        .compile_network(&net.network)
        .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
    let input = net.input();

    // Guard-off arm: the reference execution every trial is compared to.
    let mut plain = compiled.engine();
    let golden = must_run(plain.run(&input), "golden run");
    let golden_cycles = golden.report.cycles();

    // Guard-on arm, clean: bit-identity plus the false-positive check.
    let mut guarded = compiled.engine();
    guarded.set_guards(true);
    let clean = must_run(guarded.run(&input), "clean guarded run");
    assert_eq!(
        clean.outputs, golden.outputs,
        "{} at {level:?}: guards changed clean outputs",
        net.id
    );
    assert_eq!(
        clean.report.cycles(),
        golden_cycles,
        "{} at {level:?}: guards changed clean cycle count",
        net.id
    );
    let (guard_regions, guard_entries, guard_cycles, clean_trips) = clean
        .report
        .guard()
        .map(|g| {
            (
                g.regions.len() as u64,
                g.entries(),
                g.guard_cycles,
                g.fails() + u64::from(g.output_check_failed),
            )
        })
        .unwrap_or_default();
    let overhead_ppm = if golden_cycles == 0 {
        0
    } else {
        (u128::from(guard_cycles) * 1_000_000 / u128::from(golden_cycles)) as u64
    };

    let pool = site_pool(&compiled);
    let trials = (0..cfg.trials)
        .map(|trial| {
            let mut rng = trial_rng(cfg, net_idx, level, trial);
            let (region, site, base, len) = pool[uniform(&mut rng, pool.len() as u64) as usize];
            let plan = FaultPlan::new().with_fault(Fault {
                at_instret: uniform(&mut rng, golden.report.stats().instrs()),
                site: FaultSite::MemBit {
                    addr: base + uniform(&mut rng, u64::from(len)) as u32,
                    bit: uniform(&mut rng, 8) as u32,
                    // Silent: evades the dirty-block tracker, so only
                    // the ABFT checksum can see it in-band.
                    silent: true,
                },
            });

            guarded.inject_faults(&plan);
            let hit = must_run(guarded.run(&input), "guarded trial");
            let record = guarded
                .last_fault_log()
                .first()
                .map(ToString::to_string)
                .unwrap_or_default();
            let corrupting = hit.outputs != golden.outputs;
            let tripped = hit.report.guard_failed();
            guarded.heal_rebuild();

            // Guard-off arm of the same flip: identical architectural
            // effect, or the guards are perturbing execution.
            plain.inject_faults(&plan);
            let off = must_run(plain.run(&input), "unguarded trial");
            assert_eq!(
                off.outputs, hit.outputs,
                "{} at {level:?} trial {trial}: guards changed the fault's effect",
                net.id
            );
            plain.heal_rebuild();

            let verdict = match (corrupting, tripped) {
                (true, true) => Verdict::Detected,
                (true, false) => Verdict::Missed,
                (false, true) => Verdict::FlaggedBenign,
                (false, false) => Verdict::Masked,
            };
            Trial {
                trial,
                region,
                site,
                record,
                verdict,
            }
        })
        .collect();

    Cell {
        net: net.id,
        level: level.tag(),
        golden_cycles,
        guard_regions,
        guard_entries,
        guard_cycles,
        overhead_ppm,
        clean_trips,
        trials,
    }
}

/// Campaign-wide detection coverage in parts per million:
/// `detected / (detected + missed)` over every output-corrupting trial
/// (1,000,000 when nothing corrupted — vacuously full coverage).
pub fn coverage_ppm(cells: &[Cell]) -> u64 {
    let detected: u64 = cells.iter().map(|c| c.count(Verdict::Detected)).sum();
    let missed: u64 = cells.iter().map(|c| c.count(Verdict::Missed)).sum();
    if detected + missed == 0 {
        1_000_000
    } else {
        (u128::from(detected) * 1_000_000 / u128::from(detected + missed)) as u64
    }
}

/// Serializes a campaign into the `BENCH_sdc.json` document
/// (integer-only fields, byte-deterministic).
pub fn to_json(cfg: &CampaignConfig, mode: &str, cells: &[Cell]) -> String {
    let cell_objs = array(cells.iter().map(|cell| {
        let trials = array(cell.trials.iter().map(|t| {
            Obj::new()
                .num("trial", u64::from(t.trial))
                .num("region", u64::from(t.region))
                .str("site", t.site)
                .str("record", &t.record)
                .str("verdict", t.verdict.label())
                .build()
        }));
        Obj::new()
            .str("net", cell.net)
            .str("level", cell.level)
            .num("golden_cycles", cell.golden_cycles)
            .num("guard_regions", cell.guard_regions)
            .num("guard_entries", cell.guard_entries)
            .num("guard_cycles", cell.guard_cycles)
            .num("overhead_ppm", cell.overhead_ppm)
            .num("clean_trips", cell.clean_trips)
            .num("detected", cell.count(Verdict::Detected))
            .num("missed", cell.count(Verdict::Missed))
            .num("flagged_benign", cell.count(Verdict::FlaggedBenign))
            .num("masked", cell.count(Verdict::Masked))
            .raw("trials", trials)
            .build()
    }));
    let all = |v| -> u64 { cells.iter().map(|c| c.count(v)).sum() };
    let totals = Obj::new()
        .num("detected", all(Verdict::Detected))
        .num("missed", all(Verdict::Missed))
        .num("flagged_benign", all(Verdict::FlaggedBenign))
        .num("masked", all(Verdict::Masked))
        .num("coverage_ppm", coverage_ppm(cells))
        .num(
            "false_positives",
            cells.iter().map(|c| c.clean_trips).sum::<u64>(),
        )
        .build();
    Obj::new()
        .str("report", "sdc_campaign")
        .num("seed", cfg.seed)
        .str("mode", mode)
        .num("trials_per_cell", u64::from(cfg.trials))
        .raw("cells", cell_objs)
        .raw("totals", totals)
        .build()
}

/// Per-level rollup in Table I order:
/// `(tag, [detected, missed, flagged_benign, masked], coverage_ppm,
/// max_overhead_ppm)` — the table the campaign binary prints and the
/// README excerpts.
pub fn level_summary(cells: &[Cell]) -> Vec<(&'static str, [u64; 4], u64, u64)> {
    OptLevel::ALL
        .into_iter()
        .map(|level| {
            let tag = level.tag();
            let of_level: Vec<Cell> = cells.iter().filter(|c| c.level == tag).cloned().collect();
            let row = [
                of_level.iter().map(|c| c.count(Verdict::Detected)).sum(),
                of_level.iter().map(|c| c.count(Verdict::Missed)).sum(),
                of_level
                    .iter()
                    .map(|c| c.count(Verdict::FlaggedBenign))
                    .sum(),
                of_level.iter().map(|c| c.count(Verdict::Masked)).sum(),
            ];
            let overhead = of_level.iter().map(|c| c.overhead_ppm).max().unwrap_or(0);
            (tag, row, coverage_ppm(&of_level), overhead)
        })
        .collect()
}
