//! Regenerates **Table I**: cycle and instruction count histograms for
//! the entire RRM benchmark suite at every optimization level, plus the
//! cumulative improvement row.

use rnnasip_bench::{format_column, paper, run_suite};
use rnnasip_core::OptLevel;

fn main() {
    println!("TABLE I — cycle and instruction counts, whole RRM suite");
    println!("(paper columns a–e; counts in kilo-units)\n");
    let mut base_cycles = 0u64;
    let mut prev_cycles = 0u64;
    for level in OptLevel::ALL {
        let stats = run_suite(level);
        println!("{}", format_column(level.column(), &stats, 6));
        if base_cycles == 0 {
            base_cycles = stats.cycles();
            prev_cycles = stats.cycles();
            println!("Impr.  baseline (1x)\n");
        } else {
            println!(
                "Impr.  {:.1}x  ({:.2}x over previous level)\n",
                base_cycles as f64 / stats.cycles() as f64,
                prev_cycles as f64 / stats.cycles() as f64
            );
            prev_cycles = stats.cycles();
        }
    }
    println!("Paper reference (suite speedups vs RV32IMC):");
    for (tag, s) in paper::SUITE_SPEEDUPS {
        println!("  ({tag}) {s}x");
    }
}
