//! Regenerates **Table I**: cycle and instruction count histograms for
//! the entire RRM benchmark suite at every optimization level, plus the
//! cumulative improvement row.

use rnnasip_bench::json::{array, Obj};
use rnnasip_bench::{format_column, paper, run_suite, run_suite_report, table_rows};
use rnnasip_core::OptLevel;

/// Emits the whole table as one JSON document: per level the suite
/// totals, simulated-MIPS of the run that produced them, the speedup
/// ladder, and the paper-named histogram rows.
fn print_json() {
    let mut base_cycles = 0u64;
    let mut levels = Vec::new();
    for level in OptLevel::ALL {
        let report = run_suite_report(level);
        let stats = report.stats();
        if base_cycles == 0 {
            base_cycles = stats.cycles();
        }
        let rows = array(table_rows(stats).into_iter().map(|(name, cycles, instrs)| {
            Obj::new()
                .str("mnemonic", &name)
                .num("cycles", cycles)
                .num("instrs", instrs)
                .build()
        }));
        levels.push(
            Obj::new()
                .str("level", level.tag())
                .str("column", level.column())
                .num("cycles", stats.cycles())
                .num("instrs", stats.instrs())
                .num("stall_cycles", stats.stall_cycles())
                .num("mac_ops", stats.mac_ops())
                .float("sim_mips", report.sim_mips())
                .float(
                    "speedup_vs_baseline",
                    Some(base_cycles as f64 / stats.cycles() as f64),
                )
                .raw("rows", rows)
                .build(),
        );
    }
    println!(
        "{}",
        Obj::new()
            .str("report", "table1")
            .raw("levels", array(levels))
            .build()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        print_json();
        return;
    }
    println!("TABLE I — cycle and instruction counts, whole RRM suite");
    println!("(paper columns a–e; counts in kilo-units)\n");
    let mut base_cycles = 0u64;
    let mut prev_cycles = 0u64;
    for level in OptLevel::ALL {
        let stats = run_suite(level);
        println!("{}", format_column(level.column(), &stats, 6));
        if base_cycles == 0 {
            base_cycles = stats.cycles();
            prev_cycles = stats.cycles();
            println!("Impr.  baseline (1x)\n");
        } else {
            println!(
                "Impr.  {:.1}x  ({:.2}x over previous level)\n",
                base_cycles as f64 / stats.cycles() as f64,
                prev_cycles as f64 / stats.cycles() as f64
            );
            prev_cycles = stats.cycles();
        }
    }
    println!("Paper reference (suite speedups vs RV32IMC):");
    for (tag, s) in paper::SUITE_SPEEDUPS {
        println!("  ({tag}) {s}x");
    }
}
