//! SDC-detection campaign: seeded single-bit flips into guarded kernel
//! words across every `(network, OptLevel)` cell, measuring ABFT guard
//! coverage, false-positive rate, and cycle overhead (see
//! `rnnasip_bench::sdc`).
//!
//! Flags:
//!
//! - `--seed N` — campaign master seed (default 7).
//! - `--trials N` — trials per cell (default 12, or 3 with `--smoke`).
//! - `--smoke` — the CI configuration: 3 trials per cell.
//! - `--json` — also write `BENCH_sdc.json` next to this crate's
//!   manifest.
//! - `--check` — compare the report against the committed
//!   `BENCH_sdc_baseline.json` byte for byte and fail on any drift.

use rnnasip_bench::sdc::{campaign, coverage_ppm, level_summary, to_json, CampaignConfig};

fn arg_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = arg_value(&args, "--seed").unwrap_or(7);
    let mut cfg = if smoke {
        CampaignConfig::smoke(seed)
    } else {
        CampaignConfig::full(seed)
    };
    if let Some(trials) = arg_value(&args, "--trials") {
        cfg.trials = trials as u32;
    }
    let mode = if smoke { "smoke" } else { "full" };

    let cells = campaign(&cfg);
    let doc = to_json(&cfg, mode, &cells);

    println!(
        "sdc campaign: seed {}, {} trials/cell, {} cells",
        cfg.seed,
        cfg.trials,
        cells.len(),
    );
    println!("| level | detected | missed | flagged benign | masked | coverage | max overhead |");
    println!("|---|---|---|---|---|---|---|");
    for (tag, row, coverage, overhead) in level_summary(&cells) {
        println!(
            "| {tag} | {} | {} | {} | {} | {}.{:04}% | {}.{:04}% |",
            row[0],
            row[1],
            row[2],
            row[3],
            coverage / 10_000,
            coverage % 10_000,
            overhead / 10_000,
            overhead % 10_000,
        );
    }
    let fp: u64 = cells.iter().map(|c| c.clean_trips).sum();
    let coverage = coverage_ppm(&cells);
    println!(
        "coverage {}.{:04}% of output-corrupting flips, {fp} false positives on the clean suite",
        coverage / 10_000,
        coverage % 10_000
    );

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    if args.iter().any(|a| a == "--json") {
        let path = dir.join("BENCH_sdc.json");
        std::fs::write(&path, doc.clone() + "\n").expect("write BENCH_sdc.json");
        println!("wrote {}", path.display());
    }
    if args.iter().any(|a| a == "--check") {
        let path = dir.join("BENCH_sdc_baseline.json");
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        if baseline.trim_end() != doc {
            eprintln!("baseline: {}", baseline.trim_end());
            eprintln!("current:  {doc}");
            eprintln!(
                "sdc campaign drifted from the committed baseline \
                 (same seed must reproduce byte-identical results)"
            );
            std::process::exit(1);
        }
        println!("baseline check passed (byte-identical report)");
    }
}
