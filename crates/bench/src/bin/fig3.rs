//! Regenerates **Fig. 3**: per-network speedup over the RV32IMC
//! baseline at each optimization level, for all ten benchmark networks
//! plus the suite average.

use rnnasip_bench::{par::par_map, run_net};
use rnnasip_core::OptLevel;

fn main() {
    println!("FIG. 3 — speedup vs RV32IMC baseline per network\n");
    println!(
        "{:<16} {:<6} {:>10} {:>7} {:>7} {:>7} {:>7}",
        "network", "kind", "base_cyc", "b", "c", "d", "e"
    );
    let suite = rnnasip_rrm::suite();
    // Every (network, level) simulation is independent: run the whole
    // grid in parallel, then print from the order-preserved results.
    let jobs: Vec<(usize, OptLevel)> = suite
        .iter()
        .enumerate()
        .flat_map(|(n, _)| OptLevel::ALL.into_iter().map(move |level| (n, level)))
        .collect();
    let grid = par_map(&jobs, |&(n, level)| run_net(&suite[n], level).cycles());
    let mut totals = [0u64; 5];
    for (n, net) in suite.iter().enumerate() {
        let mut cycles = [0u64; 5];
        for i in 0..OptLevel::ALL.len() {
            cycles[i] = grid[n * OptLevel::ALL.len() + i];
            totals[i] += cycles[i];
        }
        let s = |i: usize| cycles[0] as f64 / cycles[i] as f64;
        println!(
            "{:<16} {:<6} {:>10} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            format!("{} {}", net.tag, net.id),
            match net.kind {
                rnnasip_rrm::NetKind::Lstm => "LSTM",
                rnnasip_rrm::NetKind::Fc => "FC",
                rnnasip_rrm::NetKind::Cnn => "CNN",
            },
            cycles[0],
            s(1),
            s(2),
            s(3),
            s(4)
        );
    }
    let avg = |i: usize| totals[0] as f64 / totals[i] as f64;
    println!(
        "{:<16} {:<6} {:>10} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
        "Average",
        "",
        totals[0],
        avg(1),
        avg(2),
        avg(3),
        avg(4)
    );
    println!("\nPaper reference (suite average): b 4.4x, c 8.4x, d 14.3x, e 15.0x");
    println!("Paper per-network range at (e): ~5.4x (tiny [33]) to ~16.9x (large MLPs)");
}
