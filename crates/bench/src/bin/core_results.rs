//! Regenerates the **Section IV core implementation results**:
//! throughput (MMAC/s), power (mW), energy efficiency (GMAC/s/W) and
//! the area budget of the extensions.

use rnnasip_bench::{paper, run_suite};
use rnnasip_core::OptLevel;
use rnnasip_energy::{report, AreaModel, PowerModel};

fn main() {
    let model = PowerModel::gf22fdx_065v();
    println!(
        "CORE IMPLEMENTATION RESULTS — GF 22FDX model @ {:.0} MHz, {:.2} V\n",
        model.freq_hz / 1e6,
        model.voltage_v
    );

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>14}",
        "configuration", "MMAC/s", "mW", "GMAC/s/W", "cycles/MAC"
    );
    let mut rows = Vec::new();
    for level in OptLevel::ALL {
        let stats = run_suite(level);
        let r = report(&stats, &model);
        println!(
            "{:<28} {:>10.1} {:>10.2} {:>12.1} {:>14.3}",
            level.column(),
            r.mmacs,
            r.power.total,
            r.gmacs_per_w,
            r.activity.cycles as f64 / r.activity.mac_ops as f64
        );
        rows.push(r);
    }
    let base = &rows[0];
    let best = rows.last().expect("five levels");
    println!("\nHeadlines (measured vs paper):");
    println!(
        "  throughput      : {:>7.1} MMAC/s   (paper {:.0}; baseline {:.1})",
        best.mmacs,
        paper::THROUGHPUT_MMACS,
        base.mmacs
    );
    println!(
        "  speedup         : {:>7.1}x         (paper 15x)",
        (base.activity.cycles as f64 / base.activity.mac_ops as f64)
            / (best.activity.cycles as f64 / best.activity.mac_ops as f64)
    );
    println!(
        "  power           : {:>7.2} -> {:.2} mW (paper {:.2} -> {:.2})",
        base.power.total,
        best.power.total,
        paper::POWER_MW.0,
        paper::POWER_MW.1
    );
    println!(
        "  efficiency      : {:>7.1} GMAC/s/W (paper {:.0}); gain {:.1}x (paper 10x)",
        best.gmacs_per_w,
        paper::EFFICIENCY_GMACS_W,
        best.gmacs_per_w / base.gmacs_per_w
    );

    println!("\nExtended-core power breakdown (mW):");
    println!(
        "  clock {:.2} | frontend {:.2} | ALU {:.2} | MAC {:.2} | LSU {:.2}",
        best.power.clock, best.power.frontend, best.power.alu, best.power.mac, best.power.lsu
    );

    let area = AreaModel::new();
    println!("\nArea budget:");
    print!("{area}");
    println!(
        "paper: +{:.1} kGE ({:.1}% overhead), critical path unchanged",
        paper::AREA.0,
        100.0 * paper::AREA.1
    );

    // Beyond-paper what-if: first-order DVFS scaling of the extended
    // core on the same workload (dynamic energy ~ V^2; frequency points
    // chosen as plausible FDX corners).
    println!("\nDVFS what-if (extended core, first-order scaling — beyond paper):");
    println!(
        "{:>7} {:>9} {:>10} {:>8} {:>12}",
        "V", "MHz", "MMAC/s", "mW", "GMAC/s/W"
    );
    let ext = best;
    for (v, mhz) in [(0.5, 150.0), (0.65, 380.0), (0.8, 600.0)] {
        let op = model.at_operating_point(v, mhz * 1e6);
        println!(
            "{:>7.2} {:>9.0} {:>10.1} {:>8.2} {:>12.1}",
            v,
            mhz,
            op.mmacs(&ext.activity),
            op.power_mw(&ext.activity).total,
            op.gmacs_per_w(&ext.activity)
        );
    }
}
