//! Regenerates **Fig. 2**: tanh mean-squared error under Q3.12
//! quantization, as a function of interpolation range and number of
//! intervals.
//!
//! Prints the `log10(MSE)` surface as a table (ranges × intervals) and
//! a CSV block for plotting, plus the chosen design point against the
//! paper's reported errors.

use rnnasip_bench::paper;
use rnnasip_nn::act::{design_point, sweep, FitMode, PlaFunc};

fn main() {
    let ranges = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let intervals = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let points = sweep(PlaFunc::Tanh, &ranges, &intervals, FitMode::LeastSquares);

    println!("FIG. 2 — tanh log10(MSE) over interpolation range x #intervals (Q3.12)\n");
    print!("{:>8} |", "range");
    for m in intervals {
        print!("{m:>8}");
    }
    println!("\n---------+{}", "-".repeat(8 * intervals.len()));
    for &r in &ranges {
        print!("{r:>8} |");
        for &m in &intervals {
            match points
                .iter()
                .find(|p| (p.range - r).abs() < 1e-12 && p.intervals == m)
            {
                Some(p) => print!("{:>8.2}", p.mse.log10()),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }

    println!("\nCSV (range,intervals,mse,max_error):");
    for p in &points {
        println!(
            "{},{},{:.3e},{:.3e}",
            p.range, p.intervals, p.mse, p.max_error
        );
    }

    let dp = design_point(PlaFunc::Tanh);
    println!("\nDesign point (range ±4, 32 intervals):");
    println!(
        "  measured: MSE {:.3e}, max error {:.3e}",
        dp.mse, dp.max_error
    );
    println!(
        "  paper   : MSE {:.3e}, max error {:.3e}",
        paper::PLA_ERROR.0,
        paper::PLA_ERROR.1
    );
    let sp = design_point(PlaFunc::Sigmoid);
    println!(
        "  sigmoid : MSE {:.3e}, max error {:.3e}",
        sp.mse, sp.max_error
    );
}
