//! Design-choice ablations beyond the paper's headline tables:
//!
//! 1. **Output-tile size sweep** — the paper's "N can be increased until
//!    the available registers are exhausted" (Section III-C): cycles/MAC
//!    of a mid-size FC layer at tile caps 1–10, for levels c–e.
//! 2. **INT8 future-work path** — the same layer quantized to Q1.6 with
//!    `pv.sdotsp.b` (paper-core compatible) and with this repository's
//!    `pl.sdotsp.b` extension (four MACs per merged load-compute).

use rnnasip_bench::par::par_map;
use rnnasip_core::{Int8Kernel, KernelBackend, OptLevel};
use rnnasip_nn::{quantize_input8, FcLayer8};
use rnnasip_rrm::{seeded_fc_layer, seeded_input};

const SWEEP_LEVELS: [OptLevel; 3] = [OptLevel::OfmTile, OptLevel::SdotSp, OptLevel::IfmTile];

fn main() {
    let layer = seeded_fc_layer(128, 96, 3);
    let input = seeded_input(128, 4);
    println!("ABLATION 1 — output-tile size sweep (fc 128->96, cycles/MAC)\n");
    print!("{:>6} |", "tile");
    for level in SWEEP_LEVELS {
        print!("{:>10}", format!("level {}", level.tag()));
    }
    println!("\n-------+{}", "-".repeat(30));
    // All 30 (tile, level) runs are independent simulations: run the
    // grid in parallel, then print from the order-preserved results.
    let jobs: Vec<(usize, OptLevel)> = (1..=10usize)
        .flat_map(|tile| SWEEP_LEVELS.into_iter().map(move |level| (tile, level)))
        .collect();
    let grid = par_map(&jobs, |&(tile, level)| {
        KernelBackend::new(level)
            .with_max_tile(tile)
            .run_fc(&layer, &input)
            .expect("fc runs")
            .report
            .cycles_per_mac()
    });
    for (t, tile) in (1..=10usize).enumerate() {
        print!("{tile:>6} |");
        for i in 0..SWEEP_LEVELS.len() {
            print!("{:>10.3}", grid[t * SWEEP_LEVELS.len() + i]);
        }
        println!();
    }
    println!(
        "\n(loads per MAC shrink as 1/N; the curve flattens once the shared\n\
         input load amortizes — exactly why the paper stops at the register\n\
         budget instead of tiling further)\n"
    );

    println!("ABLATION 2 — INT8 (Q1.6) vs Q3.12 on the same layer\n");
    let layer8 = FcLayer8::quantize_from(&layer);
    let input8 = quantize_input8(&input);
    let int8_jobs = [Int8Kernel::PvSdot, Int8Kernel::PlSdotB];
    let mut int8_runs = par_map(&int8_jobs, |&kernel| {
        KernelBackend::new(OptLevel::IfmTile)
            .run_fc8(&layer8, &input8, kernel)
            .expect("int8 runs")
    })
    .into_iter();
    let q16 = KernelBackend::new(OptLevel::IfmTile)
        .run_fc(&layer, &input)
        .expect("16-bit runs");
    let pv8 = int8_runs.next().expect("pv int8 runs");
    let pl8 = int8_runs.next().expect("pl int8 runs");
    println!(
        "{:<34} {:>8} {:>10} {:>10}",
        "kernel", "cycles", "cyc/MAC", "MAC/cyc"
    );
    for (name, report) in [
        ("Q3.12 pl.sdotsp.h (paper, level e)", &q16.report),
        ("INT8 pv.sdotsp.b (paper-core OK)", &pv8.report),
        ("INT8 pl.sdotsp.b (our extension)", &pl8.report),
    ] {
        println!(
            "{:<34} {:>8} {:>10.3} {:>10.2}",
            name,
            report.cycles(),
            report.cycles_per_mac(),
            1.0 / report.cycles_per_mac()
        );
    }
    // Accuracy cost of the INT8 quantization on this layer.
    let out16 = layer.forward_fixed(&input);
    let out8 = layer8.forward_fixed(&input8);
    let max_err = out16
        .iter()
        .zip(&out8)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0f64, f64::max)
        .min(99.0);
    println!("\nINT8 quantization cost on this layer: max |Δ| = {max_err:.3} (Q1.6 step = 0.0156)");
}
