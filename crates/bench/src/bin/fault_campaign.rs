//! Fault-injection campaign over the benchmark suite: seeded bit flips
//! and forced watchdogs across every `(network, OptLevel)` cell, with
//! in-process recovery verification (see `rnnasip_bench::faults`).
//!
//! Flags:
//!
//! - `--seed N` — campaign master seed (default 7).
//! - `--trials N` — trials per cell (default 12, or 3 with `--smoke`).
//! - `--smoke` — the CI configuration: 3 trials per cell.
//! - `--legacy` — simulate through the reference per-step interpreter;
//!   the emitted report must be byte-identical to the micro-op run.
//! - `--json` — also write `BENCH_faults.json` next to this crate's
//!   manifest.
//! - `--check` — compare the report against the committed
//!   `BENCH_faults_baseline.json` byte for byte and fail on any drift
//!   (classification counts, per-trial outcomes, recovery rungs).

use rnnasip_bench::faults::{campaign, level_summary, to_json, CampaignConfig};

fn arg_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = arg_value(&args, "--seed").unwrap_or(7);
    let mut cfg = if smoke {
        CampaignConfig::smoke(seed)
    } else {
        CampaignConfig::full(seed)
    };
    if let Some(trials) = arg_value(&args, "--trials") {
        cfg.trials = trials as u32;
    }
    cfg.reference = args.iter().any(|a| a == "--legacy");
    let mode = if smoke { "smoke" } else { "full" };

    let cells = campaign(&cfg);
    let doc = to_json(&cfg, mode, &cells);

    println!(
        "fault campaign: seed {}, {} trials/cell, {} cells, {} path",
        cfg.seed,
        cfg.trials,
        cells.len(),
        if cfg.reference { "legacy" } else { "uop" }
    );
    println!("| level | masked | sdc | crash | hang | recovered |");
    println!("|---|---|---|---|---|---|");
    let mut totals = [0u64; 5];
    for (tag, row) in level_summary(&cells) {
        println!(
            "| {tag} | {} | {} | {} | {} | {} |",
            row[0], row[1], row[2], row[3], row[4]
        );
        for (t, r) in totals.iter_mut().zip(row) {
            *t += r;
        }
    }
    println!(
        "| Σ | {} | {} | {} | {} | {} |",
        totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    let detected = totals[2] + totals[3];
    println!("every detected failure recovered in-process: {detected}/{detected}");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    if args.iter().any(|a| a == "--json") {
        let path = dir.join("BENCH_faults.json");
        std::fs::write(&path, doc.clone() + "\n").expect("write BENCH_faults.json");
        println!("wrote {}", path.display());
    }
    if args.iter().any(|a| a == "--check") {
        let path = dir.join("BENCH_faults_baseline.json");
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        if baseline.trim_end() != doc {
            eprintln!("baseline: {}", baseline.trim_end());
            eprintln!("current:  {doc}");
            eprintln!(
                "fault campaign drifted from the committed baseline \
                 (same seed must reproduce byte-identical results)"
            );
            std::process::exit(1);
        }
        println!("baseline check passed (byte-identical report)");
    }
}
