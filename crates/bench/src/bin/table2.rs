//! Regenerates **Table II**: the assembly of the fully-connected inner
//! loop with output-FM tiling only (left) versus with the merged
//! load-and-compute `pl.sdotsp.h` instruction (right), for a tile of
//! four outputs.

use rnnasip_core::kernels::fc::table2_listing;

fn main() {
    let (ofm, sdotsp) = table2_listing();
    println!("TABLE II — FC inner loop, output tile of 4, 9 packed input pairs\n");
    println!("-- with output-FM tiling only (pv.sdotsp.h, explicit weight loads):\n");
    for line in ofm.lines() {
        println!("    {line}");
    }
    println!("\n-- with the pl.sdotsp.h extension (weights streamed through the SPR pair):\n");
    for line in sdotsp.lines() {
        println!("    {line}");
    }
    let count = |s: &str, pat: &str| s.lines().filter(|l| l.contains(pat)).count();
    println!("\nInner-loop load instructions per iteration:");
    println!(
        "  OFM tiling : {} loads + {} pv.sdotsp",
        count(&ofm, "p.lw"),
        count(&ofm, "pv.sdotsp")
    );
    println!(
        "  pl.sdotsp  : {} loads + {} pl.sdotsp (the weight loads disappeared into the MACs)",
        count(&sdotsp, "p.lw"),
        count(&sdotsp, "pl.sdotsp")
    );
}
