//! Prints the benchmark-suite inventory as a markdown table (the
//! documentation companion of `rnnasip-rrm::suite()`): citation, task,
//! kernel family, topology, MACs and activation counts per inference.

use rnnasip_bench::json::{array, Obj};
use rnnasip_bench::run_suite_report;
use rnnasip_core::OptLevel;
use rnnasip_nn::Stage;

fn topology(net: &rnnasip_rrm::BenchmarkNet) -> String {
    net.network
        .stages()
        .iter()
        .map(|s| match s {
            Stage::Fc(l) => format!("fc{}x{}", l.n_out(), l.n_in()),
            Stage::Lstm { layer, steps } => {
                format!("lstm{}x{}(T={})", layer.n_in(), layer.n_hidden(), steps)
            }
            Stage::Conv(c) => format!(
                "conv{}x{}x{}->{}k{}",
                c.in_ch(),
                c.in_h(),
                c.in_w(),
                c.out_ch(),
                c.kh()
            ),
        })
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Emits the inventory plus measured suite totals as one JSON document:
/// every network's shape and MAC budget, and for each optimization
/// level the full-suite cycle/instruction counts with the simulated-MIPS
/// throughput of the run that produced them.
fn print_json() {
    let suite = rnnasip_rrm::suite();
    let networks = array(suite.iter().map(|net| {
        Obj::new()
            .str("tag", net.tag)
            .str("id", net.id)
            .str("kind", net.kind.label())
            .str("task", net.task)
            .str("topology", &topology(net))
            .num("macs", net.network.mac_count())
            .num("activations", net.network.act_count())
            .build()
    }));
    let levels = array(OptLevel::ALL.into_iter().map(|level| {
        let report = run_suite_report(level);
        Obj::new()
            .str("level", level.tag())
            .num("cycles", report.stats().cycles())
            .num("instrs", report.stats().instrs())
            .num("mac_ops", report.stats().mac_ops())
            .float("sim_mips", report.sim_mips())
            .build()
    }));
    println!(
        "{}",
        Obj::new()
            .str("report", "suite_summary")
            .raw("networks", networks)
            .raw("levels", levels)
            .build()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--json") {
        print_json();
        return;
    }
    println!("| tag | id | kind | task | topology | MACs | tanh/sig |");
    println!("|---|---|---|---|---|---|---|");
    let suite = rnnasip_rrm::suite();
    let mut total_macs = 0u64;
    for net in &suite {
        total_macs += net.network.mac_count();
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            net.tag,
            net.id,
            net.kind.label(),
            net.task,
            topology(net),
            net.network.mac_count(),
            net.network.act_count()
        );
    }
    println!("\nsuite total: {total_macs} MACs per full-suite inference");
    println!("(paper's Table I suite: ~1.62 M packed-pair MAC instructions)");
}
