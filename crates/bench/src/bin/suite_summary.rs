//! Prints the benchmark-suite inventory as a markdown table (the
//! documentation companion of `rnnasip-rrm::suite()`): citation, task,
//! kernel family, topology, MACs and activation counts per inference.

use rnnasip_nn::Stage;

fn topology(net: &rnnasip_rrm::BenchmarkNet) -> String {
    net.network
        .stages()
        .iter()
        .map(|s| match s {
            Stage::Fc(l) => format!("fc{}x{}", l.n_out(), l.n_in()),
            Stage::Lstm { layer, steps } => {
                format!("lstm{}x{}(T={})", layer.n_in(), layer.n_hidden(), steps)
            }
            Stage::Conv(c) => format!(
                "conv{}x{}x{}->{}k{}",
                c.in_ch(),
                c.in_h(),
                c.in_w(),
                c.out_ch(),
                c.kh()
            ),
        })
        .collect::<Vec<_>>()
        .join(" → ")
}

fn main() {
    println!("| tag | id | kind | task | topology | MACs | tanh/sig |");
    println!("|---|---|---|---|---|---|---|");
    let suite = rnnasip_rrm::suite();
    let mut total_macs = 0u64;
    for net in &suite {
        total_macs += net.network.mac_count();
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            net.tag,
            net.id,
            net.kind.label(),
            net.task,
            topology(net),
            net.network.mac_count(),
            net.network.act_count()
        );
    }
    println!("\nsuite total: {total_macs} MACs per full-suite inference");
    println!("(paper's Table I suite: ~1.62 M packed-pair MAC instructions)");
}
