//! Per-stage cycle profile of every benchmark network at the fully
//! extended level — where each network actually spends its cycles
//! (gate matvecs vs. update loops vs. im2col gathers vs. FC heads).

use rnnasip_core::{KernelBackend, OptLevel};

fn main() {
    let backend = KernelBackend::new(OptLevel::IfmTile);
    for net in rnnasip_rrm::suite() {
        let (outputs, stages) = backend
            .run_network_staged(&net.network, &net.input())
            .unwrap_or_else(|e| panic!("{}: {e}", net.id));
        let total: u64 = stages.iter().map(|s| s.report.cycles()).sum();
        println!(
            "{} {} — {} stages, {} cycles total, {} outputs",
            net.tag,
            net.id,
            stages.len(),
            total,
            outputs.len()
        );
        for s in &stages {
            println!(
                "    {:<28} {:>9} cycles ({:>5.1}%)  {:>7} MACs  {:>6.3} cyc/MAC",
                s.label,
                s.report.cycles(),
                100.0 * s.report.cycles() as f64 / total as f64,
                s.report.mac_ops(),
                s.report.cycles_per_mac()
            );
        }
        println!();
    }
}
