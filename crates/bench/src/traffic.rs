//! Shared pieces of the deadline-aware traffic bench (`traffic_serving`)
//! and its determinism tests: the canonical city seed, the overload
//! front-end configuration, and the **byte-stable** serialization of the
//! virtual-time results.
//!
//! The `"virtual"` section of `BENCH_traffic.json` contains only
//! integer fields derived from the virtual-time service model
//! ([`rnnasip_core::serve::Front`]), so it is byte-identical across
//! hosts, worker counts, and runs — the `--check` mode compares it as an
//! exact string against the committed baseline. Keeping the row
//! serialization here, used by both the bench binary and the
//! `traffic_determinism` test, is what makes that comparison meaningful.

use crate::json::{array, Obj};
use rnnasip_core::serve::{EnginePool, Front, FrontConfig, OverloadPolicy, TrafficReport};
use rnnasip_rrm::traffic::{CityConfig, CityTraffic};

/// Master seed of the benchmark city; part of the committed baseline's
/// identity (changing it invalidates `BENCH_traffic_baseline.json`).
pub const CITY_SEED: u64 = 0x5EED_C117;

/// The deterministic scaling sweep: virtual-server counts the bench
/// reports (and `--check` pins) regardless of the host's hardware.
pub const VIRTUAL_SERVERS: [usize; 4] = [1, 2, 4, 8];

/// The canonical benchmark city at the canonical seed.
pub fn bench_city() -> CityConfig {
    CityConfig::bench_city(CITY_SEED)
}

/// The overload front-end configuration of the virtual sweep: a bounded
/// 512-slot queue shedding oldest, 64-request batches under a
/// 100k-cycle window. At [`VIRTUAL_SERVERS`] counts below the city's
/// offered load this configuration sheds — that is the point: the sweep
/// shows goodput recovering as virtual capacity grows.
pub fn overload_front(servers: usize) -> FrontConfig {
    FrontConfig {
        servers,
        batch_window: 100_000,
        max_batch: 64,
        queue_cap: 512,
        policy: OverloadPolicy::ShedOldest,
        classes: 3,
    }
}

/// Serializes one virtual-sweep row. Integer fields only (ppm for
/// ratios, hex for the output checksum) — byte-stable by construction.
pub fn virtual_row(city: &CityConfig, servers: usize, report: &TrafficReport) -> String {
    let total = report.aggregate();
    let classes = array(report.per_class.iter().enumerate().map(|(i, c)| {
        Obj::new()
            .str("class", city.classes[i].name)
            .num("offered", c.offered)
            .num("served", c.served)
            .num("shed", c.shed)
            .num("failed", c.failed)
            .num("met", c.met)
            .num("goodput_ppm", c.goodput_ppm())
            .num("p50", c.latency.p50())
            .num("p99", c.latency.p99())
            .num("p999", c.latency.p999())
            .build()
    }));
    Obj::new()
        .num("servers", servers as u64)
        .num("offered", total.offered)
        .num("served", total.served)
        .num("shed", total.shed)
        .num("failed", total.failed)
        .num("met", total.met)
        .num("goodput_ppm", total.goodput_ppm())
        .num("p50", total.latency.p50())
        .num("p99", total.latency.p99())
        .num("p999", total.latency.p999())
        .num("makespan", report.makespan)
        .num("virtual_rps", report.virtual_rps(city.clock_hz))
        .num("max_queue", report.max_queue as u64)
        .num("batches", report.batches)
        .num("served_cycles", report.served_cycles)
        .str("outputs_fnv", &format!("{:016x}", report.outputs_fnv))
        .raw("classes", classes)
        .build()
}

/// Runs the [`VIRTUAL_SERVERS`] sweep of `city` over `pool` and returns
/// `(servers, report)` per configuration. Each pass regenerates the
/// arrival stream (it is deterministic) rather than materializing it.
pub fn virtual_sweep(city: &CityConfig, pool: &EnginePool) -> Vec<(usize, TrafficReport)> {
    VIRTUAL_SERVERS
        .iter()
        .map(|&servers| {
            let report = Front::new(pool, overload_front(servers)).serve(CityTraffic::new(city));
            (servers, report)
        })
        .collect()
}

/// Serializes a sweep as the JSON array the `"virtual"` key carries.
pub fn virtual_section(city: &CityConfig, rows: &[(usize, TrafficReport)]) -> String {
    array(rows.iter().map(|(v, r)| virtual_row(city, *v, r)))
}

/// Extracts the exact `"virtual":[...]` substring from a report
/// document, brackets balanced (no string field in the section contains
/// a bracket, so counting is safe).
pub fn extract_virtual(text: &str) -> Option<&str> {
    let start = text.find("\"virtual\":[")?;
    let rest = &text[start..];
    let mut depth = 0usize;
    for (i, b) in rest.bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_virtual_balances_nested_arrays() {
        let doc =
            "{\"bench\":\"t\",\"virtual\":[{\"servers\":1,\"classes\":[{\"p50\":3}]}],\"wall\":[]}";
        assert_eq!(
            extract_virtual(doc),
            Some("\"virtual\":[{\"servers\":1,\"classes\":[{\"p50\":3}]}]")
        );
        assert_eq!(extract_virtual("{\"wall\":[]}"), None);
    }

    #[test]
    fn overload_front_matches_the_documented_shape() {
        let cfg = overload_front(4);
        assert_eq!(cfg.servers, 4);
        assert_eq!(cfg.queue_cap, 512);
        assert_eq!(cfg.max_batch, 64);
        assert_eq!(cfg.policy, OverloadPolicy::ShedOldest);
    }
}
