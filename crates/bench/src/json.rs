//! Minimal hand-rolled JSON emission for the binaries' `--json` modes.
//!
//! The offline toolchain carries no serde; the machine-readable reports
//! only need flat objects, arrays, strings, and numbers, so a tiny
//! builder is all that's required.

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object; fields appear in insertion order.
#[derive(Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escaped and quoted).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a float field; `None` or non-finite values serialize as
    /// `null` (JSON has no NaN/Infinity).
    pub fn float(mut self, key: &str, value: Option<f64>) -> Self {
        let raw = match value {
            Some(v) if v.is_finite() => format!("{v:.3}"),
            _ => "null".to_string(),
        };
        self.fields.push(format!("\"{}\":{raw}", escape(key)));
        self
    }

    /// Adds an already-serialized JSON value verbatim.
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Serializes already-encoded JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_nested_objects() {
        let inner = array([Obj::new().num("x", 1).build()]);
        let text = Obj::new()
            .str("name", "pl.sdotsp")
            .num("cycles", 42)
            .float("mips", Some(1.25))
            .float("missing", None)
            .raw("rows", inner)
            .build();
        assert_eq!(
            text,
            "{\"name\":\"pl.sdotsp\",\"cycles\":42,\"mips\":1.250,\
             \"missing\":null,\"rows\":[{\"x\":1}]}"
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(
            Obj::new().float("v", Some(f64::NAN)).build(),
            "{\"v\":null}"
        );
    }
}
