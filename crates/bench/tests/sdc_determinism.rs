//! Determinism and acceptance contract of the SDC campaign: the same
//! [`CampaignConfig`] must reproduce byte-identical results across
//! repeated runs, no output-corrupting flip into a guarded word may
//! escape detection, the clean suite must never trip a guard, and the
//! analytic guard surcharge must stay within its budget.
//!
//! The tests sweep single cells (`sdc::cell`) on the smallest suite
//! network rather than the full campaign, so they stay fast in debug
//! builds; the full-sweep equivalent is the CI `sdc_campaign --smoke
//! --check` step against the committed baseline.

use rnnasip_bench::sdc::{cell, coverage_ppm, to_json, CampaignConfig, Verdict};
use rnnasip_core::{FaultRecord, OptLevel};

/// Smallest suite network (eisen2019 MLP) — same pick as the core
/// crate's resilience tests.
const SMALL_NET: usize = 3;

#[test]
fn same_seed_reproduces_identical_cells() {
    let cfg = CampaignConfig { seed: 7, trials: 6 };
    let first = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    let second = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    assert_eq!(first, second);
    assert_eq!(
        to_json(&cfg, "smoke", &[first]),
        to_json(&cfg, "smoke", std::slice::from_ref(&second))
    );
    // The flip generator actually varies across trials.
    assert!(
        second
            .trials
            .iter()
            .any(|t| (t.site, &t.record) != (second.trials[0].site, &second.trials[0].record)),
        "trial plans degenerate: {:?}",
        second.trials
    );
}

#[test]
fn every_corrupting_flip_is_detected_and_clean_runs_never_trip() {
    for level in [OptLevel::Baseline, OptLevel::IfmTile] {
        let cfg = CampaignConfig { seed: 9, trials: 8 };
        let c = cell(&cfg, SMALL_NET, level);
        assert_eq!(c.clean_trips, 0, "{level:?}: false positive on clean run");
        assert_eq!(
            c.count(Verdict::Missed),
            0,
            "{level:?}: an output-corrupting flip escaped the guards: {:?}",
            c.trials
        );
        assert_eq!(coverage_ppm(&[c]), 1_000_000);
    }
}

#[test]
fn guard_overhead_stays_within_budget_at_the_top_levels() {
    // The acceptance bar: ≤ 5% analytic surcharge at levels d and e
    // (the paper's headline configurations).
    let cfg = CampaignConfig { seed: 7, trials: 1 };
    for level in [OptLevel::SdotSp, OptLevel::IfmTile] {
        let c = cell(&cfg, SMALL_NET, level);
        assert!(c.guard_regions > 0, "{level:?}: nothing guarded");
        assert!(c.guard_entries > 0, "{level:?}: guards never fired");
        assert!(
            c.overhead_ppm <= 50_000,
            "{level:?}: guard overhead {} ppm exceeds 5%",
            c.overhead_ppm
        );
    }
}

#[test]
fn trial_records_are_stable_fault_lines() {
    // Satellite contract: campaign logs serialize applied faults via
    // the pinned `FaultRecord` line format, so every record in a cell
    // parses back (`FromStr` round-trip).
    let cfg = CampaignConfig { seed: 7, trials: 6 };
    let c = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    for t in &c.trials {
        let parsed: FaultRecord = t
            .record
            .parse()
            .unwrap_or_else(|e| panic!("unparseable record {:?}: {e}", t.record));
        assert_eq!(parsed.to_string(), t.record, "round-trip drift");
    }
}
