//! Differential + golden test over the full Table I suite.
//!
//! For every optimization level a–e this runs the complete RRM suite and
//! checks the dense indexed [`Stats`] against the string-keyed `BTreeMap`
//! reporting the seed repository used:
//!
//! 1. **Report equivalence** — CSV and Display output must byte-match a
//!    reference rebuilt from the same rows with the old `BTreeMap`
//!    sort-and-format algorithm.
//! 2. **Total consistency** — aggregate cycle/instruction totals must
//!    equal the sum over per-mnemonic rows (stall cycles are charged to
//!    the producing load's row, so rows account for every cycle).
//! 3. **Golden pinning** — totals must match the values captured from
//!    the seed simulator, proving the fetch-table / indexed-stats /
//!    block-run fast path changed nothing architecturally.

use rnnasip_bench::run_suite;
use rnnasip_core::OptLevel;
use rnnasip_sim::{Row, Stats};
use std::collections::BTreeMap;

/// `(level, cycles, instrs, stall_cycles, mac_ops)` for the full suite,
/// captured from the simulator and cross-checked against Table I's
/// speedup ladder (a/e ≈ 15×).
const GOLDEN: [(&str, u64, u64, u64, u64); 5] = [
    ("a", 12_114_333, 10_755_216, 13_886, 1_316_954),
    ("b", 2_853_979, 2_181_922, 658_070, 1_316_954),
    ("c", 1_478_218, 1_474_902, 3_198, 1_312_432),
    ("d", 894_156, 822_188, 71_850, 1_316_748),
    ("e", 825_766, 822_188, 3_460, 1_316_748),
];

/// Rebuilds the CSV with the seed's `BTreeMap`-based algorithm.
fn reference_csv(rows: &BTreeMap<&'static str, Row>, cycles: u64, instrs: u64) -> String {
    let mut sorted: Vec<_> = rows.iter().map(|(&k, &r)| (k, r)).collect();
    sorted.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    let mut out = String::from("mnemonic,cycles,instrs\n");
    for (name, row) in &sorted {
        out.push_str(&format!("{},{},{}\n", name, row.cycles, row.instrs));
    }
    out.push_str(&format!("TOTAL,{cycles},{instrs}\n"));
    out
}

/// Rebuilds the Display breakdown with the seed's algorithm.
fn reference_display(rows: &BTreeMap<&'static str, Row>, cycles: u64, instrs: u64) -> String {
    let mut sorted: Vec<_> = rows.iter().map(|(&k, &r)| (k, r)).collect();
    sorted.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    let mut out = format!("{:<12} {:>12} {:>12}\n", "Instr.", "cycles", "instrs");
    for (name, row) in &sorted {
        out.push_str(&format!(
            "{:<12} {:>12} {:>12}\n",
            name, row.cycles, row.instrs
        ));
    }
    out.push_str(&format!("{:<12} {:>12} {:>12}\n", "Total", cycles, instrs));
    out
}

fn check_level(level: OptLevel, golden: (&str, u64, u64, u64, u64)) {
    let stats: Stats = run_suite(level);

    // The name-keyed view the old implementation stored directly.
    let rows: BTreeMap<&'static str, Row> = stats.iter().collect();

    // 1. Report equivalence against the BTreeMap algorithm.
    assert_eq!(
        stats.to_csv(),
        reference_csv(&rows, stats.cycles(), stats.instrs()),
        "level {}: CSV diverges from BTreeMap reference",
        level.tag()
    );
    assert_eq!(
        stats.to_string(),
        reference_display(&rows, stats.cycles(), stats.instrs()),
        "level {}: Display diverges from BTreeMap reference",
        level.tag()
    );

    // 2. Rows must account for every cycle and instruction (stall cycles
    //    live inside the producing load's row).
    let row_cycles: u64 = rows.values().map(|r| r.cycles).sum();
    let row_instrs: u64 = rows.values().map(|r| r.instrs).sum();
    assert_eq!(row_cycles, stats.cycles(), "level {}", level.tag());
    assert_eq!(row_instrs, stats.instrs(), "level {}", level.tag());

    // 3. Golden totals.
    let actual = (
        level.tag(),
        stats.cycles(),
        stats.instrs(),
        stats.stall_cycles(),
        stats.mac_ops(),
    );
    println!("golden capture: {actual:?}");
    assert_eq!(actual, golden, "level {} totals moved", level.tag());
}

#[test]
fn suite_level_a_matches_golden() {
    check_level(OptLevel::Baseline, GOLDEN[0]);
}

#[test]
fn suite_level_b_matches_golden() {
    check_level(OptLevel::Xpulp, GOLDEN[1]);
}

#[test]
fn suite_level_c_matches_golden() {
    check_level(OptLevel::OfmTile, GOLDEN[2]);
}

#[test]
fn suite_level_d_matches_golden() {
    check_level(OptLevel::SdotSp, GOLDEN[3]);
}

#[test]
fn suite_level_e_matches_golden() {
    check_level(OptLevel::IfmTile, GOLDEN[4]);
}

#[test]
fn golden_ladder_matches_paper_shape() {
    // The pinned totals must reproduce the paper's speedup ladder: each
    // level strictly faster, ~15x overall (Table I reports 15.0x).
    for w in GOLDEN.windows(2) {
        assert!(w[0].1 > w[1].1, "{:?} not faster than {:?}", w[1], w[0]);
    }
    let overall = GOLDEN[0].1 as f64 / GOLDEN[4].1 as f64;
    assert!(
        (13.0..17.0).contains(&overall),
        "a/e speedup {overall:.2} out of Table I range"
    );
}
