//! Three-way differential for the kernel-shortcut execution tier.
//!
//! Every network of the RRM suite at every optimization level a–e runs
//! on all three tiers:
//!
//! * **shortcut** — the default engine, executing installed kernel
//!   regions as native Rust,
//! * **uop** — a [`CompiledNetwork::without_shortcuts`] engine, the
//!   pre-decoded micro-op path alone,
//! * **legacy** — the per-step reference interpreter
//!   (`Engine::run_reference`).
//!
//! All three must agree bit-for-bit on the Q3.12 outputs, the total
//! cycle count, and every per-mnemonic statistics row (including the
//! rendered CSV, which pins row ordering). A second randomized pass
//! compiles 400 seeded random FC stacks and repeats the comparison, so
//! the walker's admission decisions are exercised far outside the
//! hand-picked suite shapes.

use rnnasip_bench::par;
use rnnasip_core::{CompiledNetwork, KernelBackend, NetworkRun, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, FcLayer, Matrix, Network, Stage};
use rnnasip_rng::StdRng;

/// Seeded random-network cases for the randomized pass.
const RANDOM_SEEDS: u64 = 400;

fn csv(run: &NetworkRun) -> String {
    run.report.stats().to_csv()
}

/// Runs one compiled network on all three tiers and returns the error
/// strings (empty = bit-identical). Also returns the shortcut tier's
/// retired-native-instruction count for engagement assertions.
fn diff_three_way(
    tag: &str,
    compiled: &CompiledNetwork,
    input: &[Vec<Q3p12>],
) -> (Vec<String>, u64) {
    let mut sc_engine = compiled.engine();
    let mut uop_engine = compiled.without_shortcuts().engine();

    let shortcut = sc_engine
        .run(input)
        .unwrap_or_else(|e| panic!("{tag}: shortcut run failed: {e}"));
    let shortcut_instrs = sc_engine.machine().shortcut_instrs();
    let uop = uop_engine
        .run(input)
        .unwrap_or_else(|e| panic!("{tag}: uop run failed: {e}"));
    let legacy = sc_engine
        .run_reference(input)
        .unwrap_or_else(|e| panic!("{tag}: legacy run failed: {e}"));

    let mut errs = Vec::new();
    if shortcut.outputs != uop.outputs || shortcut.outputs != legacy.outputs {
        errs.push(format!("{tag}: outputs diverge"));
    }
    if shortcut.report.cycles() != uop.report.cycles()
        || shortcut.report.cycles() != legacy.report.cycles()
    {
        errs.push(format!(
            "{tag}: cycles diverge (shortcut {} / uop {} / legacy {})",
            shortcut.report.cycles(),
            uop.report.cycles(),
            legacy.report.cycles()
        ));
    }
    if shortcut.report.instrs() != uop.report.instrs()
        || shortcut.report.instrs() != legacy.report.instrs()
    {
        errs.push(format!(
            "{tag}: instruction totals diverge (shortcut {} / uop {} / legacy {})",
            shortcut.report.instrs(),
            uop.report.instrs(),
            legacy.report.instrs()
        ));
    }
    if csv(&shortcut) != csv(&uop) || csv(&shortcut) != csv(&legacy) {
        errs.push(format!("{tag}: per-mnemonic stats rows diverge"));
    }
    if uop_engine.machine().shortcut_instrs() != 0 {
        errs.push(format!(
            "{tag}: without_shortcuts engine retired shortcut instructions"
        ));
    }
    (errs, shortcut_instrs)
}

#[test]
fn suite_three_way_bit_identical_and_engaged() {
    let suite = rnnasip_rrm::suite();
    let cases: Vec<(usize, OptLevel)> = (0..suite.len())
        .flat_map(|i| OptLevel::ALL.into_iter().map(move |level| (i, level)))
        .collect();

    let failures: Vec<String> = par::par_map(&cases, |&(i, level)| {
        let net = &suite[i];
        let input = net.input();
        let tag = format!("{} level {}", net.id, level.tag());
        let compiled = KernelBackend::new(level)
            .compile_network(&net.network)
            .unwrap_or_else(|e| panic!("{tag}: compile failed: {e}"));
        let (mut errs, shortcut_instrs) = diff_three_way(&tag, &compiled, &input);
        // Engagement: at the tiled levels every suite network contains at
        // least one FC-shaped kernel the walker must admit. Level a's
        // spilled-accumulator code and level b's branchy software-PLA
        // kernels are legitimately rejected for some networks, so only
        // c/d/e assert coverage.
        if matches!(
            level,
            OptLevel::OfmTile | OptLevel::SdotSp | OptLevel::IfmTile
        ) && shortcut_instrs == 0
        {
            errs.push(format!("{tag}: shortcut tier never engaged"));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A seeded random FC stack: 1–3 layers, widths 1–40, random
/// activations. Shapes are deliberately allowed to be odd/degenerate —
/// the compiler pads and the walker must either admit the region exactly
/// or leave it interpreted.
fn random_net(seed: u64) -> (Network, Vec<Vec<Q3p12>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dim = |lo: usize, hi: usize| lo + (rng.gen::<f64>() * (hi - lo) as f64) as usize;
    let depth = dim(1, 4);
    let n_in0 = dim(1, 41);
    let acts = [Act::None, Act::Relu, Act::Tanh, Act::Sigmoid];
    let mut stages = Vec::new();
    let mut n_in = n_in0;
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    for _ in 0..depth {
        let n_out = dim(1, 41);
        let act = acts[dim(0, 4).min(3)];
        let w: Vec<Q3p12> = (0..n_out * n_in)
            .map(|_| Q3p12::from_f64(rng2.gen::<f64>() * 0.5 - 0.25))
            .collect();
        let b: Vec<Q3p12> = (0..n_out)
            .map(|_| Q3p12::from_f64(rng2.gen::<f64>() * 0.5 - 0.25))
            .collect();
        stages.push(Stage::Fc(FcLayer::new(Matrix::new(n_out, n_in, w), b, act)));
        n_in = n_out;
    }
    let input: Vec<Q3p12> = (0..n_in0)
        .map(|_| Q3p12::from_f64(rng2.gen::<f64>() * 2.0 - 1.0))
        .collect();
    (Network::new(format!("rand{seed}"), stages), vec![input])
}

#[test]
fn randomized_networks_three_way_bit_identical() {
    let seeds: Vec<u64> = (0..RANDOM_SEEDS).collect();
    let failures: Vec<String> = par::par_map(&seeds, |&seed| {
        let (net, input) = random_net(seed);
        // Rotate through all five levels across the seed space.
        let level = OptLevel::ALL[(seed % 5) as usize];
        let tag = format!("seed {seed} level {}", level.tag());
        let compiled = KernelBackend::new(level)
            .compile_network(&net)
            .unwrap_or_else(|e| panic!("{tag}: compile failed: {e}"));
        diff_three_way(&tag, &compiled, &input).0
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
