//! Tier-selection tests for the kernel-shortcut execution tier.
//!
//! The shortcut tier must be *transparent*: it engages only when its
//! preconditions hold and silently yields to the micro-op or legacy
//! tiers otherwise, always bit-identically. These tests pin the three
//! disarm rules:
//!
//! 1. an armed [`FaultPlan`] (even one whose faults never fire) keeps
//!    every retired instruction on the per-op path,
//! 2. tracing (`run_with_trace`) drives the legacy interpreter and never
//!    retires shortcut instructions,
//! 3. a network with no admissible kernel regions (optimization level
//!    a's spilled-accumulator code) installs zero regions, so the uop
//!    stream carries no shortcut marks at all.

use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_sim::{Fault, FaultPlan, FaultSite, Machine, Memory};

fn policy_net() -> rnnasip_rrm::BenchmarkNet {
    rnnasip_rrm::suite()
        .into_iter()
        .find(|n| n.id == "eisen2019")
        .expect("policy net in suite")
}

#[test]
fn armed_fault_plan_disarms_shortcut_bit_identically() {
    let net = policy_net();
    let input = net.input();
    let compiled = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net.network)
        .expect("compile");
    let mut engine = compiled.engine();

    // Clean run: the shortcut tier must engage on this network.
    let clean = engine.run(&input).expect("clean run");
    assert!(
        engine.machine().shortcut_instrs() > 0,
        "shortcut tier should engage on the clean run"
    );

    // Armed-but-never-firing plan: the fault trigger is unreachable, so
    // the architectural results cannot change — but the armed plan must
    // force every instruction onto the interpreted path.
    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: u64::MAX,
        site: FaultSite::RegBit {
            reg: rnnasip_isa::Reg::A0,
            bit: 0,
        },
    });
    engine.inject_faults(&plan);
    let faulted = engine.run(&input).expect("armed run");
    assert_eq!(
        engine.machine().shortcut_instrs(),
        0,
        "armed fault plan must disarm the shortcut tier"
    );
    assert_eq!(clean.outputs, faulted.outputs);
    assert_eq!(clean.report.cycles(), faulted.report.cycles());
    assert_eq!(
        clean.report.stats().to_csv(),
        faulted.report.stats().to_csv()
    );

    // Disarmed again: the tier comes back.
    let healed = engine.run(&input).expect("healed run");
    assert!(
        engine.machine().shortcut_instrs() > 0,
        "shortcut tier should re-engage once the plan is gone"
    );
    assert_eq!(clean.outputs, healed.outputs);
}

#[test]
fn tracing_runs_the_legacy_tier() {
    let net = policy_net();
    let compiled = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net.network)
        .expect("compile");

    // Engine run with zero inputs — identical memory to the staged
    // image, so a fresh traced machine must reproduce it exactly.
    let zeros = vec![vec![Q3p12::ZERO; compiled.input().width()]; compiled.input().steps()];
    let mut engine = compiled.engine();
    let run = engine.run(&zeros).expect("engine run");
    assert!(engine.machine().shortcut_instrs() > 0);

    let mut traced = Machine::with_memory(Memory::from_image(compiled.image()));
    traced.load_program_shared(compiled.program(), compiled.uop_program().clone());
    let mut retired = 0u64;
    traced
        .run_with_trace(compiled.max_cycles(), |_| retired += 1)
        .expect("traced run");

    assert_eq!(
        traced.shortcut_instrs(),
        0,
        "tracing must stay on the per-step legacy tier"
    );
    assert_eq!(retired, run.report.instrs(), "traced instruction count");
    assert_eq!(traced.stats().cycles(), run.report.cycles());
    let out = compiled.output();
    let traced_outputs = traced
        .mem()
        .read_q3p12_slice(out.base(), out.len())
        .expect("traced outputs");
    assert_eq!(traced_outputs, run.outputs);
}

#[test]
fn unrecognized_network_installs_no_regions() {
    let net = policy_net();
    let input = net.input();
    // Level a spills the accumulator to memory inside the inner loop;
    // the walker rejects that store, so no region may install.
    let compiled = KernelBackend::new(OptLevel::Baseline)
        .compile_network(&net.network)
        .expect("compile");
    assert_eq!(
        compiled.uop_program().shortcut_regions(),
        0,
        "level a must not install shortcut regions"
    );
    let mut engine = compiled.engine();
    let run = engine.run(&input).expect("run");
    assert_eq!(engine.machine().shortcut_instrs(), 0);
    assert!(run.report.instrs() > 0);

    // The compiled artifact and its shortcut-free control are the same
    // translation when nothing installs: same uop count, zero regions —
    // the per-step overhead of the disabled tier is a single integer
    // compare per op.
    let control = compiled.without_shortcuts();
    assert_eq!(control.uop_program().shortcut_regions(), 0);
}
