//! Differential test for the compile-once / run-many engine.
//!
//! For every network of the RRM suite at every optimization level a–e,
//! one warm [`Engine`] runs the same inference **twice** (the second run
//! exercises the dirty-block restore path) and the legacy one-shot
//! [`KernelBackend::run_network`] runs it once from a fresh machine.
//! All three runs must agree bit-for-bit on:
//!
//! * the Q3.12 output vector,
//! * total cycles, and
//! * every per-mnemonic statistics row (name, cycles, instructions).
//!
//! This is the proof that the compile/execute split and the memory
//! rewind are architecturally invisible: reusing a machine is
//! indistinguishable from rebuilding one.

use rnnasip_bench::par;
use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_sim::Row;
use std::collections::BTreeMap;

/// Per-mnemonic rows in a canonical (name-sorted) form for comparison.
fn rows(run: &rnnasip_core::NetworkRun) -> BTreeMap<&'static str, Row> {
    run.report.stats().iter().collect()
}

#[test]
fn engine_reuse_is_bit_identical_to_fresh_runs() {
    let suite = rnnasip_rrm::suite();
    let cases: Vec<(usize, OptLevel)> = (0..suite.len())
        .flat_map(|i| OptLevel::ALL.into_iter().map(move |level| (i, level)))
        .collect();

    let failures: Vec<String> = par::par_map(&cases, |&(i, level)| {
        let net = &suite[i];
        let input = net.input();
        let tag = format!("{} level {}", net.id, level.tag());

        let compiled = KernelBackend::new(level)
            .compile_network(&net.network)
            .unwrap_or_else(|e| panic!("{tag}: compile failed: {e}"));
        let mut engine = compiled.engine();
        let first = engine
            .run(&input)
            .unwrap_or_else(|e| panic!("{tag}: first engine run failed: {e}"));
        let second = engine
            .run(&input)
            .unwrap_or_else(|e| panic!("{tag}: second engine run failed: {e}"));
        let fresh = KernelBackend::new(level)
            .run_network(&net.network, &input)
            .unwrap_or_else(|e| panic!("{tag}: legacy run failed: {e}"));

        let mut errs = Vec::new();
        if first.outputs != second.outputs || first.outputs != fresh.outputs {
            errs.push(format!("{tag}: outputs diverge"));
        }
        if first.report.cycles() != second.report.cycles()
            || first.report.cycles() != fresh.report.cycles()
        {
            errs.push(format!(
                "{tag}: cycles diverge ({} / {} / {})",
                first.report.cycles(),
                second.report.cycles(),
                fresh.report.cycles()
            ));
        }
        let (r1, r2, rf) = (rows(&first), rows(&second), rows(&fresh));
        if r1 != r2 || r1 != rf {
            errs.push(format!("{tag}: per-mnemonic stats rows diverge"));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
