//! Determinism contract of the fault campaign: the same
//! [`CampaignConfig`] must reproduce byte-identical results across
//! repeated runs and across the micro-op / legacy execution paths.
//!
//! The tests sweep single cells (`faults::cell`) on the smallest suite
//! network rather than the full campaign, so they stay fast in debug
//! builds; the full-sweep equivalent is the CI `fault_campaign --smoke
//! --check` step against the committed baseline.

use rnnasip_bench::faults::{cell, to_json, CampaignConfig, Classification};
use rnnasip_core::OptLevel;

/// Smallest suite network (eisen2019 MLP) — same pick as the core
/// crate's resilience tests.
const SMALL_NET: usize = 3;

#[test]
fn same_seed_reproduces_identical_cells() {
    let cfg = CampaignConfig {
        seed: 7,
        trials: 4,
        reference: false,
    };
    let first = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    let second = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    assert_eq!(first, second);
    assert_eq!(
        to_json(&cfg, "smoke", &[first]),
        to_json(&cfg, "smoke", std::slice::from_ref(&second))
    );
    // The plan generator actually varies across trials: four trials
    // from one seed should not all pick the same injection point.
    assert!(
        second
            .trials
            .iter()
            .any(|t| (t.site, t.at_instret) != (second.trials[0].site, second.trials[0].at_instret)),
        "trial plans degenerate: {:?}",
        second.trials
    );
}

#[test]
fn legacy_path_reports_identically() {
    let uop = CampaignConfig {
        seed: 11,
        trials: 4,
        reference: false,
    };
    let legacy = CampaignConfig {
        reference: true,
        ..uop
    };
    for level in [OptLevel::Baseline, OptLevel::IfmTile] {
        let a = cell(&uop, SMALL_NET, level);
        let b = cell(&legacy, SMALL_NET, level);
        assert_eq!(a, b, "uop and legacy paths diverged at {level:?}");
        assert_eq!(
            to_json(&uop, "smoke", &[a]),
            to_json(&legacy, "smoke", &[b])
        );
    }
}

#[test]
fn detected_failures_always_record_a_recovery_rung() {
    // This seed deterministically yields one crash and one hang among
    // the eight trials, so both detected classes exercise the ladder.
    let cfg = CampaignConfig {
        seed: 9,
        trials: 8,
        reference: false,
    };
    let c = cell(&cfg, SMALL_NET, OptLevel::IfmTile);
    let mut detected = 0;
    for t in &c.trials {
        match t.class {
            Classification::Crash | Classification::Hang => {
                detected += 1;
                assert!(
                    t.recovery == "rewind" || t.recovery == "rebuild",
                    "detected failure without recovery rung: {t:?}"
                );
                assert!(t.error.is_some(), "detected failure without error: {t:?}");
            }
            Classification::Masked | Classification::Sdc => {
                assert_eq!(
                    t.recovery, "none",
                    "undetected trial claims recovery: {t:?}"
                );
                assert!(
                    t.error.is_none(),
                    "undetected trial carries an error: {t:?}"
                );
            }
        }
    }
    assert!(
        detected >= 2 && c.trials.iter().any(|t| t.class == Classification::Crash),
        "seed no longer produces both detected classes: {:?}",
        c.trials
    );
}
