//! Differential and determinism tests for the multi-core cluster path.
//!
//! Three contracts from the cluster refactor:
//!
//! 1. **N=1 bit-identity** — compiling with `with_cores(1)` routes
//!    through the cluster program/engine machinery, yet must be
//!    architecturally indistinguishable from the classic single-machine
//!    path: same outputs, same cycle count, same instret, same
//!    per-mnemonic statistics rows, on the full 10-net suite at all
//!    five optimization levels.
//! 2. **Multi-core output identity + run determinism** — partitioned
//!    clusters must reproduce the single-core outputs bit-for-bit, and
//!    repeated runs of a warm cluster engine must agree on every
//!    simulated figure (latency, DMA, barriers, per-core stalls).
//! 3. **Bench byte-determinism** — the `BENCH_cluster.json` pipeline
//!    (seeded suite inputs, 2-core cluster) must serialize to the
//!    identical byte string across repeated measurements, which is what
//!    entitles `cluster_scaling --check` to exact string comparison.

use rnnasip_bench::{cluster, par};
use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_sim::Row;
use std::collections::BTreeMap;

/// Per-mnemonic rows in canonical (name-sorted) form for comparison.
fn rows(run: &rnnasip_core::NetworkRun) -> BTreeMap<&'static str, Row> {
    run.report.stats().iter().collect()
}

#[test]
fn n1_cluster_is_bit_identical_to_single_core_path() {
    let suite = rnnasip_rrm::suite();
    let cases: Vec<(usize, OptLevel)> = (0..suite.len())
        .flat_map(|i| OptLevel::ALL.into_iter().map(move |level| (i, level)))
        .collect();

    let failures: Vec<String> = par::par_map(&cases, |&(i, level)| {
        let net = &suite[i];
        let input = net.input();
        let tag = format!("{} level {}", net.id, level.tag());

        let single = KernelBackend::new(level)
            .compile_network(&net.network)
            .unwrap_or_else(|e| panic!("{tag}: compile failed: {e}"))
            .engine()
            .run(&input)
            .unwrap_or_else(|e| panic!("{tag}: single-core run failed: {e}"));
        let compiled = KernelBackend::new(level)
            .with_cores(1)
            .compile_network(&net.network)
            .unwrap_or_else(|e| panic!("{tag}: cluster compile failed: {e}"));
        assert_eq!(compiled.cores(), 1, "{tag}: cores knob");
        let clustered = compiled
            .engine()
            .run(&input)
            .unwrap_or_else(|e| panic!("{tag}: 1-core cluster run failed: {e}"));

        let mut problems = Vec::new();
        if clustered.outputs != single.outputs {
            problems.push("outputs");
        }
        if clustered.report.cycles() != single.report.cycles() {
            problems.push("cycles");
        }
        if clustered.report.instrs() != single.report.instrs() {
            problems.push("instret");
        }
        if rows(&clustered) != rows(&single) {
            problems.push("per-mnemonic rows");
        }
        if problems.is_empty() {
            None
        } else {
            Some(format!("{tag}: diverged on {}", problems.join(", ")))
        }
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn multi_core_outputs_match_and_warm_runs_are_deterministic() {
    let suite = rnnasip_rrm::suite();
    // Baseline exercises the software-PLA/spill kernels, IfmTile the
    // fully-extended ones — the two ends of the codegen spectrum.
    let levels = [OptLevel::Baseline, OptLevel::IfmTile];
    let cases: Vec<(usize, OptLevel)> = (0..suite.len())
        .flat_map(|i| levels.into_iter().map(move |level| (i, level)))
        .collect();

    let failures: Vec<String> = par::par_map(&cases, |&(i, level)| {
        let net = &suite[i];
        let input = net.input();
        let single = KernelBackend::new(level)
            .compile_network(&net.network)
            .unwrap()
            .engine()
            .run(&input)
            .unwrap();
        let mut problems = Vec::new();
        for cores in [2usize, 4] {
            let tag = format!("{} level {} x{cores}", net.id, level.tag());
            let mut engine = KernelBackend::new(level)
                .with_cores(cores)
                .compile_network(&net.network)
                .unwrap_or_else(|e| panic!("{tag}: compile failed: {e}"))
                .engine();
            let first = engine
                .run(&input)
                .unwrap_or_else(|e| panic!("{tag}: first run failed: {e}"));
            let second = engine
                .run(&input)
                .unwrap_or_else(|e| panic!("{tag}: second run failed: {e}"));
            if first.outputs != single.outputs {
                problems.push(format!("{tag}: outputs diverge from single-core"));
            }
            if first.report.per_core().len() != cores {
                problems.push(format!("{tag}: missing per-core rows"));
            }
            let same = second.outputs == first.outputs
                && second.report.latency_cycles() == first.report.latency_cycles()
                && second.report.dma_cycles() == first.report.dma_cycles()
                && second.report.barrier_cycles() == first.report.barrier_cycles()
                && rows(&second) == rows(&first)
                && second
                    .report
                    .per_core()
                    .iter()
                    .zip(first.report.per_core())
                    .all(|(a, b)| {
                        a.conflict_stalls == b.conflict_stalls
                            && a.stats.cycles() == b.stats.cycles()
                    });
            if !same {
                problems.push(format!("{tag}: warm rerun not deterministic"));
            }
        }
        problems
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn two_core_bench_json_is_byte_identical_across_runs() {
    let counts = [1usize, 2];
    let first = cluster::to_json(&cluster::measure(&counts), &counts);
    let second = cluster::to_json(&cluster::measure(&counts), &counts);
    assert_eq!(
        first, second,
        "BENCH_cluster.json document must be byte-deterministic"
    );
    assert!(first.contains("\"cores\":2"), "2-core points present");
    assert!(first.contains("\"conflict_stalls\""), "stall rows present");
}
