//! The traffic front-end's determinism contract, differentially:
//!
//! - the virtual-time fields of a [`TrafficReport`] — and their
//!   serialized JSON rows, the exact bytes `--check` pins — are
//!   identical across repeated runs and across pools of 1, 2 and 8
//!   workers, *including* under overload where requests are shed;
//! - every served request's outputs are bit-identical to the serial
//!   warm-engine golden path (spot-checked through the serve sink
//!   against an [`EngineCache`]);
//! - the admission queue never exceeds its configured cap.
//!
//! The city here is the debug-sized [`CityConfig::demo_city`] (a few
//! hundred requests) so the test stays fast without optimizations; the
//! bench binary applies the same machinery to the ~100k-request
//! [`bench_city`](rnnasip_bench::traffic::bench_city).
//!
//! [`TrafficReport`]: rnnasip_core::serve::TrafficReport
//! [`EngineCache`]: rnnasip_rrm::EngineCache

use rnnasip_bench::traffic::{overload_front, virtual_row};
use rnnasip_core::serve::{EnginePool, Front, TrafficReport};
use rnnasip_rrm::traffic::{CityConfig, CityTraffic};
use rnnasip_rrm::EngineCache;

/// One overloaded city pass: a single virtual server behind a 2-slot
/// queue against demo-city load — deliberately starved so shedding and
/// the EDF policy are on the tested path.
fn overloaded_pass(city: &CityConfig, workers: usize) -> TrafficReport {
    let mut cfg = overload_front(1);
    cfg.queue_cap = 2;
    cfg.max_batch = 2;
    let pool = EnginePool::with_workers(workers);
    Front::new(&pool, cfg).serve(CityTraffic::new(city))
}

#[test]
fn virtual_fields_are_byte_identical_across_runs_and_worker_counts() {
    let city = CityConfig::demo_city(11);
    let first = overloaded_pass(&city, 1);
    let again = overloaded_pass(&city, 1);
    let two = overloaded_pass(&city, 2);
    let eight = overloaded_pass(&city, 8);

    let total = first.aggregate();
    assert!(
        total.offered > 100,
        "demo city too small: {}",
        total.offered
    );
    assert!(
        total.shed > 0,
        "overload config did not shed — not testing backpressure"
    );
    assert!(
        first.max_queue <= 2,
        "queue exceeded cap: {}",
        first.max_queue
    );

    // Structural equality of the full report (counters, histograms,
    // makespan, checksum) — then byte equality of the serialized rows,
    // the exact representation the committed baseline pins.
    assert_eq!(first, again, "same pool width, different report");
    assert_eq!(first, two, "1 vs 2 workers diverged");
    assert_eq!(first, eight, "1 vs 8 workers diverged");
    let row = virtual_row(&city, 2, &first);
    assert_eq!(row, virtual_row(&city, 2, &again));
    assert_eq!(row, virtual_row(&city, 2, &two));
    assert_eq!(row, virtual_row(&city, 2, &eight));
}

#[test]
fn served_outputs_match_the_serial_warm_engine_golden() {
    let city = CityConfig::demo_city(5);
    let cache = EngineCache::new();
    let pool = EnginePool::with_workers(2);
    let mut cfg = overload_front(4);
    cfg.queue_cap = 1 << 16; // serve everything: the whole city is checked
    let mut served = 0u64;
    let report = Front::new(&pool, cfg).serve_with(CityTraffic::new(&city), |arrival, run| {
        // Spot-check a deterministic sample of served requests against
        // the serial warm-engine path (every 7th, plus the first).
        if served.is_multiple_of(7) {
            let golden = cache
                .run(&arrival.net, arrival.level, &arrival.sequence)
                .expect("serial golden run");
            assert_eq!(
                run.outputs, golden.outputs,
                "ue {} of class {} diverged from serial",
                arrival.ue, arrival.class
            );
            assert_eq!(run.report.cycles(), golden.report.cycles());
        }
        served += 1;
    });
    let total = report.aggregate();
    assert_eq!(total.shed, 0);
    assert_eq!(total.failed, 0);
    assert_eq!(total.served, served);
    assert!(served > 100, "demo city too small: {served}");
    // The cache compiled each (network, level) shard exactly once.
    assert_eq!(cache.compiles(), city.classes.len() as u64);
}
