//! Engine-reuse bench: compile-once / run-many vs recompile-per-call.
//!
//! An RRM decision loop runs the *same* network every scheduling
//! interval. The legacy path re-assembles the program and re-stages
//! every weight matrix per call; a warm [`Engine`] pays only a
//! dirty-block memory restore, input patching, and the simulation
//! itself. This bench measures the per-inference host latency of both
//! paths on a representative subset of the suite at level e and asserts
//! the headline claim: on a small policy network (eisen2019) the reused
//! engine is at least 5x faster per inference.
//!
//! Pass `--json` to also write `BENCH_engine.json` (hand-rolled JSON,
//! [`rnnasip_bench::json`]) with the raw numbers for CI artifacts.

use rnnasip_bench::json::{array, Obj};
use rnnasip_core::{Engine, KernelBackend, OptLevel};
use rnnasip_rrm::BenchmarkNet;
use std::hint::black_box;
use std::time::Instant;

/// Timed samples per measurement; the fastest is reported.
const SAMPLES: usize = 3;

/// Inference iterations per timed sample.
const ITERS: u32 = 8;

/// Networks measured: a tiny MLP (the headline case), a mid-size MLP,
/// a large MLP, and an LSTM (restore cost includes the state buffers).
const NETS: [&str; 4] = ["eisen2019", "ahmed2019", "wang2018", "challita2017"];

/// The reused path must beat recompile-per-call by at least this factor
/// on the small policy network, where compile cost dominates.
const MIN_SPEEDUP: f64 = 5.0;

/// Best-of-[`SAMPLES`] wall time of `f`, in ns per call.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

struct Row {
    id: &'static str,
    compile_ns: u64,
    fresh_ns: f64,
    reused_ns: f64,
    restored_bytes: u64,
    image_bytes: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fresh_ns / self.reused_ns
    }
}

fn measure(net: &BenchmarkNet, level: OptLevel) -> Row {
    let input = net.input();

    let compiled = KernelBackend::new(level)
        .compile_network(&net.network)
        .unwrap_or_else(|e| panic!("{}: {e}", net.id));
    let compile_ns = compiled.compile_nanos();
    let image_bytes = compiled.image().len() as u64;

    // Recompile-per-call: the legacy one-shot path, program assembly and
    // weight staging paid on every inference.
    let fresh_ns = time_ns(|| {
        KernelBackend::new(level)
            .run_network(&net.network, &input)
            .unwrap_or_else(|e| panic!("{}: {e}", net.id))
            .outputs
    });

    // Compile-once: one warm engine, dirty-restore + patch + run per call.
    let mut engine = Engine::new(compiled);
    let reused_ns = time_ns(|| {
        engine
            .run(&input)
            .unwrap_or_else(|e| panic!("{}: {e}", net.id))
            .outputs
    });
    let restored_bytes = engine.last_restored_bytes() as u64;

    Row {
        id: net.id,
        compile_ns,
        fresh_ns,
        reused_ns,
        restored_bytes,
        image_bytes,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let level = OptLevel::IfmTile;
    let suite = rnnasip_rrm::suite();

    println!(
        "engine-reuse: per-inference host latency, level {} (best of {SAMPLES} x {ITERS} iters)",
        level.tag()
    );
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>9} {:>14}",
        "network", "compile us", "recompile us", "reused us", "speedup", "restored KiB"
    );

    let mut rows = Vec::new();
    for id in NETS {
        let net = suite
            .iter()
            .find(|n| n.id == id)
            .unwrap_or_else(|| panic!("{id} not in suite"));
        let row = measure(net, level);
        println!(
            "{:<14} {:>12.1} {:>14.1} {:>14.1} {:>8.1}x {:>14.1}",
            row.id,
            row.compile_ns as f64 / 1e3,
            row.fresh_ns / 1e3,
            row.reused_ns / 1e3,
            row.speedup(),
            row.restored_bytes as f64 / 1024.0
        );
        rows.push(row);
    }

    let eisen = rows
        .iter()
        .find(|r| r.id == "eisen2019")
        .expect("eisen2019 measured");
    assert!(
        eisen.speedup() >= MIN_SPEEDUP,
        "engine reuse speedup regressed: {:.1}x < {MIN_SPEEDUP}x on eisen2019",
        eisen.speedup()
    );
    println!(
        "\nheadline: eisen2019 reuse is {:.1}x faster than recompile-per-call (floor {MIN_SPEEDUP}x)",
        eisen.speedup()
    );

    if json {
        let items = rows.iter().map(|r| {
            Obj::new()
                .str("network", r.id)
                .str("level", level.tag())
                .num("compile_ns", r.compile_ns)
                .float("recompile_per_call_ns", Some(r.fresh_ns))
                .float("reused_ns", Some(r.reused_ns))
                .float("speedup", Some(r.speedup()))
                .num("restored_bytes", r.restored_bytes)
                .num("image_bytes", r.image_bytes)
                .build()
        });
        let doc = Obj::new()
            .str("bench", "engine_reuse")
            .num("samples", SAMPLES as u64)
            .num("iters", u64::from(ITERS))
            .raw("rows", array(items))
            .build();
        std::fs::write("BENCH_engine.json", doc + "\n").expect("write BENCH_engine.json");
        println!("wrote BENCH_engine.json");
    }
}
