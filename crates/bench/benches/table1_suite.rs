//! Bench backing **Table I**: simulates the whole RRM suite at each
//! optimization level. The measured wall time is the simulator's own
//! cost; the interesting *architectural* output (cycle counts per
//! level) is printed once per level alongside.

use rnnasip_bench::{harness::bench, run_suite};
use rnnasip_core::OptLevel;
use std::hint::black_box;

fn main() {
    for level in OptLevel::ALL {
        // Report the architectural result once.
        let stats = run_suite(level);
        eprintln!(
            "[table1] level {}: {} kcycles, {} kinstr, {} kMAC",
            level.tag(),
            stats.cycles() / 1000,
            stats.instrs() / 1000,
            stats.mac_ops() / 1000
        );
        bench(&format!("table1_suite/level_{}", level.tag()), || {
            black_box(run_suite(level).cycles())
        });
    }
}
