//! Criterion bench backing **Table I**: simulates the whole RRM suite
//! at each optimization level. The measured wall time is the simulator's
//! own cost; the interesting *architectural* output (cycle counts per
//! level) is printed once per level alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use rnnasip_bench::run_suite;
use rnnasip_core::OptLevel;
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_suite");
    group.sample_size(10);
    for level in OptLevel::ALL {
        // Report the architectural result once.
        let stats = run_suite(level);
        eprintln!(
            "[table1] level {}: {} kcycles, {} kinstr, {} kMAC",
            level.tag(),
            stats.cycles() / 1000,
            stats.instrs() / 1000,
            stats.mac_ops() / 1000
        );
        group.bench_function(format!("level_{}", level.tag()), |b| {
            b.iter(|| black_box(run_suite(level).cycles()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
