//! Serving-layer throughput bench: requests per second through the
//! sharded [`EnginePool`] versus the serial warm-engine path.
//!
//! Two workloads, both at level e (the paper's fully-optimized kernels):
//!
//! - **suite** — a batch over the full 10-network RRM suite
//!   ([`SUITE_REPS`] requests per network), the base-station-controller
//!   shape: many users, several policies, one scheduling tick. Reported
//!   as a scaling curve at 1, 2, 4, … and `available_parallelism()`
//!   workers (worker counts above the hardware thread count are
//!   skipped); with ≥ 4 hardware threads the pooled path must beat
//!   serial by [`MIN_POOL_SPEEDUP`]x at the widest configuration
//!   (asserted).
//! - **policy** — [`POLICY_REQS`] back-to-back requests against the
//!   small `eisen2019` policy net, the single-hot-shard worst case the
//!   regression gate is keyed on.
//!
//! Every pooled run is verified bit-identical to the serial golden
//! before its timing is accepted — the throughput numbers are only
//! meaningful if the pool changes nothing architecturally.
//!
//! Flags:
//!
//! - `--json` — also write `BENCH_serve.json` with the raw numbers for
//!   CI artifacts.
//! - `--check` — compare against the committed
//!   `BENCH_serve_baseline.json` and fail on a >10% regression of the
//!   pooled-vs-serial req/s ratio on the policy workload. Raw req/s are
//!   machine-dependent; the *ratio measured on the same host* is
//!   portable across CI runners (the same convention as
//!   `sim_throughput`).

use rnnasip_bench::json::{array, Obj};
use rnnasip_core::serve::{BatchRequest, BatchResponse, EnginePool};
use rnnasip_core::{Engine, KernelBackend, NetworkRun, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use std::sync::Arc;
use std::time::Instant;

/// Timed samples per configuration; the best (highest-req/s) sample is
/// reported, minimizing scheduler noise.
const SAMPLES: usize = 5;

/// Requests per network in the suite workload.
const SUITE_REPS: usize = 4;

/// Requests in the single-network policy workload.
const POLICY_REQS: usize = 256;

/// With at least this many hardware threads available, the pooled suite
/// workload must beat the serial path by [`MIN_POOL_SPEEDUP`]x.
const MIN_PARALLELISM_FOR_ASSERT: usize = 4;

/// Required pooled-vs-serial speedup on the suite workload when the
/// host has [`MIN_PARALLELISM_FOR_ASSERT`] hardware threads.
const MIN_POOL_SPEEDUP: f64 = 3.0;

/// `--check` fails when the policy-workload speedup falls below this
/// fraction of the committed baseline's (>10% regression).
const MAX_REGRESSION: f64 = 0.9;

/// The small policy network the regression gate is keyed on.
const POLICY_NET: &str = "eisen2019";

/// One request template: the shared network, its input window, and the
/// serial golden run every pooled answer must reproduce bit-for-bit.
struct Req {
    id: &'static str,
    net: Arc<Network>,
    input: Vec<Vec<Q3p12>>,
    golden: NetworkRun,
}

/// The full suite as request templates with serial goldens.
fn suite_reqs(level: OptLevel) -> Vec<Req> {
    rnnasip_rrm::suite()
        .into_iter()
        .map(|bench| {
            let input = bench.input();
            let golden = KernelBackend::new(level)
                .compile_network(&bench.network)
                .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", bench.id))
                .engine()
                .run(&input)
                .unwrap();
            Req {
                id: bench.id,
                net: Arc::new(bench.network),
                input,
                golden,
            }
        })
        .collect()
}

/// `reps` requests per template, templates interleaved (the arrival
/// order a round-robin scheduler would produce).
fn build_batch(reqs: &[Req], reps: usize, level: OptLevel) -> BatchRequest {
    let mut batch = BatchRequest::new();
    for _ in 0..reps {
        for req in reqs {
            batch.push(req.net.clone(), level, req.input.clone());
        }
    }
    batch
}

/// Asserts every pooled answer matches its template's serial golden.
fn verify(response: &BatchResponse, reqs: &[Req], label: &str) {
    assert!(response.all_ok(), "{label}: a request failed");
    for (slot, outcome) in response.outcomes().iter().enumerate() {
        let golden = &reqs[slot % reqs.len()].golden;
        let run = outcome.result.as_ref().unwrap();
        assert_eq!(run.outputs, golden.outputs, "{label}: slot {slot} outputs");
        assert_eq!(
            run.report.cycles(),
            golden.report.cycles(),
            "{label}: slot {slot} cycles"
        );
    }
}

/// Best-of-[`SAMPLES`] serial req/s: every request of the batch run
/// back-to-back on warm per-network engines (the `EngineCache` shape —
/// compile paid once, rewind amortized, but one request at a time).
fn serial_rps(reqs: &[Req], reps: usize, level: OptLevel) -> f64 {
    let mut engines: Vec<Engine> = reqs
        .iter()
        .map(|req| {
            KernelBackend::new(level)
                .compile_network(&req.net)
                .unwrap()
                .engine()
        })
        .collect();
    let total = (reqs.len() * reps) as f64;
    let mut best = f64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..reps {
            for (req, engine) in reqs.iter().zip(&mut engines) {
                let run = engine.run(&req.input).unwrap();
                assert_eq!(run.outputs, req.golden.outputs);
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    total / best
}

/// Best-of-[`SAMPLES`] pooled req/s at `workers`, verifying bit-identity
/// on every sample. The pool is warmed (compile + first-touch engines)
/// by an untimed verification batch first, so the timing measures the
/// steady serving state, matching the serial side's warm engines.
fn pooled_rps(reqs: &[Req], reps: usize, level: OptLevel, workers: usize) -> f64 {
    let pool = EnginePool::with_workers(workers);
    let warm = pool.run_batch(build_batch(reqs, 1, level));
    verify(&warm, reqs, &format!("{workers}-worker warmup"));

    let batch = build_batch(reqs, reps, level);
    let total = batch.len() as f64;
    let mut best = f64::MAX;
    for _ in 0..SAMPLES {
        let sample = batch.clone();
        let t = Instant::now();
        let response = pool.run_batch(sample);
        best = best.min(t.elapsed().as_secs_f64());
        verify(&response, reqs, &format!("{workers} workers"));
    }
    total / best
}

/// Pulls the policy speedup out of a baseline document — minimal field
/// extraction for our own flat emitter's output: the `"policy"` object
/// and the first `"speedup":` after it.
fn extract_policy_speedup(text: &str) -> Option<f64> {
    let rest = &text[text.find("\"policy\"")?..];
    let num = &rest[rest.find("\"speedup\":")? + "\"speedup\":".len()..];
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let check = std::env::args().any(|a| a == "--check");

    let level = OptLevel::IfmTile;
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // Suite workload.
    let reqs = suite_reqs(level);
    let n_suite = reqs.len() * SUITE_REPS;
    let serial = serial_rps(&reqs, SUITE_REPS, level);
    println!(
        "serve-throughput: level {} suite, {n_suite} requests, {hw} hardware threads",
        level.tag()
    );
    println!(
        "{:<16} {:>10} {:>12} {:>9}",
        "config", "requests", "req/s", "speedup"
    );
    println!(
        "{:<16} {:>10} {:>12.0} {:>8.2}x",
        "serial", n_suite, serial, 1.0
    );

    // Scaling curve: powers of two up to the hardware thread count,
    // plus the full width itself (1, 2, 4, …, N).
    let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |w| w.checked_mul(2))
        .take_while(|&w| w <= hw)
        .collect();
    counts.push(hw);
    counts.sort_unstable();
    counts.dedup();
    let suite_rows: Vec<(usize, f64)> = counts
        .iter()
        .map(|&workers| {
            let rps = pooled_rps(&reqs, SUITE_REPS, level, workers);
            println!(
                "{:<16} {:>10} {:>12.0} {:>8.2}x",
                format!("pool x{workers}"),
                n_suite,
                rps,
                rps / serial
            );
            (workers, rps)
        })
        .collect();

    if hw >= MIN_PARALLELISM_FOR_ASSERT {
        let (workers, rps) = *suite_rows.last().unwrap();
        let speedup = rps / serial;
        assert!(
            speedup >= MIN_POOL_SPEEDUP,
            "pooled suite speedup regressed: {speedup:.2}x at {workers} workers \
             < {MIN_POOL_SPEEDUP}x (hw threads: {hw})"
        );
    } else {
        println!(
            "(< {MIN_PARALLELISM_FOR_ASSERT} hardware threads: suite speedup floor not asserted)"
        );
    }

    // Policy workload: one hot shard.
    let policy_reqs: Vec<Req> = reqs.into_iter().filter(|r| r.id == POLICY_NET).collect();
    assert_eq!(policy_reqs.len(), 1, "{POLICY_NET} in suite");
    let policy_serial = serial_rps(&policy_reqs, POLICY_REQS, level);
    let policy_pooled = pooled_rps(&policy_reqs, POLICY_REQS, level, hw);
    let policy_speedup = policy_pooled / policy_serial;
    println!(
        "\npolicy net ({POLICY_NET}, {POLICY_REQS} requests): serial {policy_serial:.0} req/s, \
         pool x{hw} {policy_pooled:.0} req/s, {policy_speedup:.2}x"
    );

    if json {
        let items = suite_rows.iter().map(|&(workers, rps)| {
            Obj::new()
                .num("workers", workers as u64)
                .num("requests", n_suite as u64)
                .float("rps", Some(rps))
                .float("speedup", Some(rps / serial))
                .build()
        });
        let policy_obj = Obj::new()
            .str("network", POLICY_NET)
            .str("level", level.tag())
            .num("requests", POLICY_REQS as u64)
            .num("workers", hw as u64)
            .float("serial_rps", Some(policy_serial))
            .float("pooled_rps", Some(policy_pooled))
            .float("speedup", Some(policy_speedup))
            .build();
        let doc = Obj::new()
            .str("bench", "serve_throughput")
            .str("level", level.tag())
            .num("samples", SAMPLES as u64)
            .num("hw_threads", hw as u64)
            .float("serial_rps", Some(serial))
            .raw("pool", array(items))
            .raw("policy", policy_obj)
            .build();
        std::fs::write("BENCH_serve.json", doc + "\n").expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_serve_baseline.json")
            .expect("read BENCH_serve_baseline.json");
        let baseline_speedup =
            extract_policy_speedup(&baseline).expect("policy speedup in baseline");
        let floor = MAX_REGRESSION * baseline_speedup;
        assert!(
            policy_speedup >= floor,
            "serving regression on {POLICY_NET}: pooled/serial {policy_speedup:.2}x \
             < {floor:.2}x (90% of committed baseline {baseline_speedup:.2}x)"
        );
        println!(
            "check: {POLICY_NET} pooled/serial {policy_speedup:.2}x vs baseline \
             {baseline_speedup:.2}x — ok"
        );
    }
}
