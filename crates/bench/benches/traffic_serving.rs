//! Deadline-aware traffic bench: a simulated city of UEs served through
//! the [`Front`] over the [`EnginePool`].
//!
//! The city ([`rnnasip_bench::traffic::bench_city`]) models ~2.6 million
//! UEs across the three RRM environments — spectrum sensing
//! (`naparstek2019`, 1 ms slots), power control (`eisen2019`, 2 ms
//! intervals), LTE-U coexistence (`challita2017`, 10 ms frames) — whose
//! seeded non-homogeneous Poisson arrivals (diurnal curve × MMPP bursts)
//! offer over 100k requests across 3 virtual seconds (one compressed
//! diurnal day) at a 200 MHz virtual clock.
//!
//! Two result sections:
//!
//! - **virtual** — the deterministic scaling curve: the overload
//!   front-end configuration (bounded 512-slot queue, shed-oldest, EDF
//!   dispatch) at 1, 2, 4 and 8 *virtual servers*. Offered/served/shed
//!   counts, deadline goodput, p50/p99/p999 latency and the output
//!   checksum are pure virtual-time quantities: byte-identical on every
//!   host and at every pool worker count. `--check` compares this
//!   section as an exact string against the committed
//!   `BENCH_traffic_baseline.json`.
//! - **wall** — the host-dependent scaling curve: wall-clock requests/s
//!   of the full city through pools of 1, 2, 4, … workers (powers of two
//!   up to the hardware thread count), in a no-shed configuration whose
//!   served set is the whole city. Before a sample's timing is accepted,
//!   its whole-run output checksum, served count and served cycles must
//!   equal the serial warm-engine reference — the pooled front changes
//!   nothing architecturally.
//!
//! Asserted floors: the 8-virtual-server goodput must beat the
//! 1-server goodput (always — it is deterministic), and with ≥ 4
//! hardware threads the widest pool must serve the city at ≥ 3× the
//! serial wall-clock rate (gated on the core count, like the other
//! serving benches).
//!
//! Flags: `--json` writes `BENCH_traffic.json`; `--check` compares the
//! virtual section against `BENCH_traffic_baseline.json`.
//!
//! [`Front`]: rnnasip_core::serve::Front
//! [`EnginePool`]: rnnasip_core::serve::EnginePool

use rnnasip_bench::json::{array, Obj};
use rnnasip_bench::traffic::{
    bench_city, extract_virtual, overload_front, virtual_section, virtual_sweep, CITY_SEED,
};
use rnnasip_core::serve::{output_fingerprint, EnginePool, Front, FrontConfig, TrafficReport};
use rnnasip_core::{Engine, KernelBackend};
use rnnasip_rrm::traffic::{CityConfig, CityTraffic};
use std::time::Instant;

/// With at least this many hardware threads, the widest pool must beat
/// the serial path by [`MIN_FRONT_SPEEDUP`]x on the wall-clock curve.
const MIN_PARALLELISM_FOR_ASSERT: usize = 4;

/// Required pooled-front-vs-serial wall-clock speedup at the widest
/// configuration when the host has enough hardware threads.
const MIN_FRONT_SPEEDUP: f64 = 3.0;

/// The serial warm-engine reference over one city pass: every arrival
/// run back-to-back on one warm engine per class (compile paid once).
/// Returns `(requests, summed cycles, whole-run output checksum,
/// elapsed seconds)`.
fn serial_reference(city: &CityConfig) -> (u64, u64, u64, f64) {
    let mut engines: Vec<Engine> = city
        .classes
        .iter()
        .map(|class| {
            KernelBackend::new(class.level)
                .compile_network(&class.net)
                .unwrap_or_else(|e| panic!("{} at {:?}: {e}", class.name, class.level))
                .engine()
        })
        .collect();
    let t = Instant::now();
    let mut count = 0u64;
    let mut cycles = 0u64;
    let mut fnv = 0u64;
    for arrival in CityTraffic::new(city) {
        let run = engines[arrival.class].run(&arrival.sequence).unwrap();
        count += 1;
        cycles += run.report.cycles();
        fnv = fnv.wrapping_add(output_fingerprint(&run.outputs));
    }
    (count, cycles, fnv, t.elapsed().as_secs_f64())
}

/// The no-shed verification/timing configuration: enough virtual
/// capacity and queue depth that the whole city is served, so the run's
/// checksum is comparable to the serial reference.
fn no_shed_front() -> FrontConfig {
    FrontConfig {
        queue_cap: 1 << 20,
        ..overload_front(8)
    }
}

/// One timed full-city pass through a `workers`-wide pool, verified
/// against the serial reference before the timing is accepted.
fn timed_city_pass(
    city: &CityConfig,
    workers: usize,
    serial: (u64, u64, u64),
) -> (TrafficReport, f64) {
    let (count, cycles, fnv) = serial;
    let pool = EnginePool::with_workers(workers);
    let t = Instant::now();
    let report = Front::new(&pool, no_shed_front()).serve(CityTraffic::new(city));
    let elapsed = t.elapsed().as_secs_f64();
    let total = report.aggregate();
    assert_eq!(total.shed, 0, "{workers} workers: no-shed config shed");
    assert_eq!(total.failed, 0, "{workers} workers: failures");
    assert_eq!(total.served, count, "{workers} workers: served count");
    assert_eq!(
        report.served_cycles, cycles,
        "{workers} workers: served cycles"
    );
    assert_eq!(
        report.outputs_fnv, fnv,
        "{workers} workers: outputs diverged from the serial reference"
    );
    (report, elapsed)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let check = std::env::args().any(|a| a == "--check");

    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let city = bench_city();
    println!(
        "traffic-serving: seed {CITY_SEED:#x}, {:.1} virtual s at {} MHz, \
         {:.0} req/s nominal peak, {hw} hardware threads",
        city.horizon_s,
        city.clock_hz / 1_000_000,
        city.peak_rate()
    );

    // Serial warm-engine reference (also the bit-exactness witness).
    let (count, cycles, fnv, serial_s) = serial_reference(&city);
    let serial_rps = count as f64 / serial_s;
    println!(
        "serial: {count} requests, {cycles} simulated cycles, {serial_rps:.0} req/s wall-clock"
    );

    // Deterministic virtual-server sweep (overload config, sheds).
    let pool = EnginePool::with_workers(hw);
    let rows = virtual_sweep(&city, &pool);
    drop(pool);
    println!(
        "\n{:<10} {:>8} {:>8} {:>7} {:>12} {:>10} {:>10} {:>10}",
        "virtual", "served", "shed", "good%", "p50", "p99", "p999", "rps"
    );
    for (servers, report) in &rows {
        let total = report.aggregate();
        println!(
            "{:<10} {:>8} {:>8} {:>6.1}% {:>12} {:>10} {:>10} {:>10}",
            format!("servers x{servers}"),
            total.served,
            total.shed,
            total.goodput_ppm() as f64 / 10_000.0,
            total.latency.p50(),
            total.latency.p99(),
            total.latency.p999(),
            report.virtual_rps(city.clock_hz)
        );
    }
    let offered = rows[0].1.aggregate().offered;
    assert_eq!(offered, count, "virtual sweep offered != generated");
    let goodput_1 = rows.first().unwrap().1.aggregate().goodput_ppm();
    let goodput_8 = rows.last().unwrap().1.aggregate().goodput_ppm();
    assert!(
        goodput_8 > goodput_1,
        "virtual scaling is flat: {goodput_8} ppm at 8 servers vs {goodput_1} ppm at 1"
    );

    // Wall-clock scaling curve (no-shed config, verified per pass).
    let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |w| w.checked_mul(2))
        .take_while(|&w| w <= hw)
        .collect();
    counts.push(hw);
    counts.sort_unstable();
    counts.dedup();
    println!(
        "\n{:<10} {:>10} {:>12} {:>9}",
        "wall", "requests", "req/s", "speedup"
    );
    println!(
        "{:<10} {:>10} {:>12.0} {:>8.2}x",
        "serial", count, serial_rps, 1.0
    );
    let wall_rows: Vec<(usize, f64)> = counts
        .iter()
        .map(|&workers| {
            let (_, elapsed) = timed_city_pass(&city, workers, (count, cycles, fnv));
            let rps = count as f64 / elapsed;
            println!(
                "{:<10} {:>10} {:>12.0} {:>8.2}x",
                format!("pool x{workers}"),
                count,
                rps,
                rps / serial_rps
            );
            (workers, rps)
        })
        .collect();

    if hw >= MIN_PARALLELISM_FOR_ASSERT {
        let (workers, rps) = *wall_rows.last().unwrap();
        let speedup = rps / serial_rps;
        assert!(
            speedup >= MIN_FRONT_SPEEDUP,
            "front throughput regressed: {speedup:.2}x at {workers} workers \
             < {MIN_FRONT_SPEEDUP}x (hw threads: {hw})"
        );
    } else {
        println!(
            "(< {MIN_PARALLELISM_FOR_ASSERT} hardware threads: wall speedup floor not asserted)"
        );
    }

    let virtual_json = virtual_section(&city, &rows);

    if json {
        let wall = array(wall_rows.iter().map(|&(workers, rps)| {
            Obj::new()
                .num("workers", workers as u64)
                .num("requests", count)
                .float("rps", Some(rps))
                .float("speedup", Some(rps / serial_rps))
                .build()
        }));
        let doc = Obj::new()
            .str("bench", "traffic_serving")
            .num("seed", CITY_SEED)
            .num("clock_hz", city.clock_hz)
            .float("horizon_s", Some(city.horizon_s))
            .num("hw_threads", hw as u64)
            .num("offered", offered)
            .num("serial_cycles", cycles)
            .str("serial_fnv", &format!("{fnv:016x}"))
            .float("serial_rps", Some(serial_rps))
            .raw("virtual", virtual_json.clone())
            .raw("wall", wall)
            .build();
        std::fs::write("BENCH_traffic.json", doc + "\n").expect("write BENCH_traffic.json");
        println!("wrote BENCH_traffic.json");
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_traffic_baseline.json")
            .expect("read BENCH_traffic_baseline.json");
        let pinned = extract_virtual(&baseline).expect("virtual section in baseline");
        let current = format!("\"virtual\":{virtual_json}");
        assert_eq!(
            current, pinned,
            "virtual-time results diverged from the committed baseline \
             (they are byte-deterministic: any difference is a real behavior change)"
        );
        println!("check: virtual section byte-identical to committed baseline — ok");
    }
}
