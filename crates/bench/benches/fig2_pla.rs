//! Bench backing **Fig. 2**: fitting and evaluating the piecewise-linear
//! activation tables across the design space.

use rnnasip_bench::harness::bench;
use rnnasip_fixed::pla::{FitMode, PlaFunc, PlaTable};
use rnnasip_fixed::Q3p12;
use std::hint::black_box;

fn main() {
    bench("fig2_pla/fit_design_point", || {
        black_box(PlaTable::fit(
            PlaFunc::Tanh,
            black_box(32),
            black_box(9),
            FitMode::LeastSquares,
        ))
    });

    let table = PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::LeastSquares);
    bench("fig2_pla/eval_full_grid", || {
        let mut acc = 0i32;
        for raw in (i16::MIN..=i16::MAX).step_by(16) {
            acc = acc.wrapping_add(table.eval(Q3p12::from_raw(raw)).raw() as i32);
        }
        black_box(acc)
    });

    bench("fig2_pla/mse_design_point", || black_box(table.mse()));
}
