//! Criterion bench backing **Fig. 2**: fitting and evaluating the
//! piecewise-linear activation tables across the design space.

use criterion::{criterion_group, criterion_main, Criterion};
use rnnasip_fixed::pla::{FitMode, PlaFunc, PlaTable};
use rnnasip_fixed::Q3p12;
use std::hint::black_box;

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_pla");

    group.bench_function("fit_design_point", |b| {
        b.iter(|| {
            black_box(PlaTable::fit(
                PlaFunc::Tanh,
                black_box(32),
                black_box(9),
                FitMode::LeastSquares,
            ))
        })
    });

    let table = PlaTable::fit(PlaFunc::Tanh, 32, 9, FitMode::LeastSquares);
    group.bench_function("eval_full_grid", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for raw in (i16::MIN..=i16::MAX).step_by(16) {
                acc = acc.wrapping_add(table.eval(Q3p12::from_raw(raw)).raw() as i32);
            }
            black_box(acc)
        })
    });

    group.bench_function("mse_design_point", |b| b.iter(|| black_box(table.mse())));

    group.finish();
}

criterion_group!(benches, bench_pla);
criterion_main!(benches);
