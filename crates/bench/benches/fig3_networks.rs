//! Criterion bench backing **Fig. 3**: per-network inference simulation
//! at the baseline and the fully-extended level. Speedups are printed
//! once per network; the benched quantity is the simulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rnnasip_bench::run_net;
use rnnasip_core::OptLevel;
use std::hint::black_box;

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_networks");
    group.sample_size(10);
    for net in rnnasip_rrm::suite() {
        let base = run_net(&net, OptLevel::Baseline).cycles();
        let best = run_net(&net, OptLevel::IfmTile).cycles();
        eprintln!(
            "[fig3] {} {}: {} -> {} cycles ({:.2}x)",
            net.tag,
            net.id,
            base,
            best,
            base as f64 / best as f64
        );
        group.bench_function(format!("{}_extended", net.id), |b| {
            b.iter(|| black_box(run_net(&net, OptLevel::IfmTile).cycles()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
