//! Bench backing **Fig. 3**: per-network inference simulation at the
//! baseline and the fully-extended level. Speedups are printed once per
//! network; the benched quantity is the simulation itself.

use rnnasip_bench::{harness::bench, run_net};
use rnnasip_core::OptLevel;
use std::hint::black_box;

fn main() {
    for net in rnnasip_rrm::suite() {
        let base = run_net(&net, OptLevel::Baseline).cycles();
        let best = run_net(&net, OptLevel::IfmTile).cycles();
        eprintln!(
            "[fig3] {} {}: {} -> {} cycles ({:.2}x)",
            net.tag,
            net.id,
            base,
            best,
            base as f64 / best as f64
        );
        bench(&format!("fig3_networks/{}_extended", net.id), || {
            black_box(run_net(&net, OptLevel::IfmTile).cycles())
        });
    }
}
