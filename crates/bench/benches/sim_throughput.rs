//! Simulator-throughput bench: how fast does the ISS itself run?
//!
//! Reports simulated MIPS (millions of simulated instructions per host
//! second) for the full Table I suite — per-core (summed host CPU time
//! of the per-network runs) and wall-clock (all networks simulated in
//! parallel). This is the number the fetch-table / indexed-stats /
//! block-run-loop fast path is measured by; the architectural outputs
//! (cycle counts, histograms) are bit-identical by construction and
//! pinned by the differential tests, so this bench tracks host speed
//! only.

use rnnasip_bench::run_suite_split;
use rnnasip_core::OptLevel;
use rnnasip_isa::MnemonicId;
use rnnasip_sim::Stats;
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;
use std::time::Instant;

/// Timed samples per level; the best (highest-MIPS) sample is reported,
/// minimizing scheduler noise as in any min-of-N timing harness.
const SAMPLES: usize = 5;

fn main() {
    println!("sim-throughput: full RRM suite per optimization level");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "level", "instrs", "per-core MIPS", "wall MIPS", "wall ms", "compile ms", "execute ms"
    );
    for level in OptLevel::ALL {
        let mut best_core = 0.0f64;
        let mut best_wall = 0.0f64;
        let mut best_ms = f64::MAX;
        let mut best_compile_ms = f64::MAX;
        let mut best_execute_ms = f64::MAX;
        let mut instrs = 0u64;
        for _ in 0..SAMPLES {
            let t = Instant::now();
            let (compile_nanos, report) = run_suite_split(level);
            let wall = t.elapsed();
            instrs = report.instrs();
            let wall_mips = report.instrs() as f64 / wall.as_secs_f64() / 1e6;
            best_core = best_core.max(report.sim_mips().unwrap_or(0.0));
            best_wall = best_wall.max(wall_mips);
            best_ms = best_ms.min(wall.as_secs_f64() * 1e3);
            best_compile_ms = best_compile_ms.min(compile_nanos as f64 / 1e6);
            best_execute_ms = best_execute_ms.min(report.host_nanos() as f64 / 1e6);
        }
        println!(
            "{:<10} {:>12} {:>14.1} {:>14.1} {:>12.2} {:>12.2} {:>12.2}",
            level.tag(),
            instrs,
            best_core,
            best_wall,
            best_ms,
            best_compile_ms,
            best_execute_ms
        );
    }
    hot_path_comparison();
}

/// Best-of-SAMPLES wall time of `f` over `iters` iterations, in ns/iter.
fn time_ns_per_iter<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Micro-comparison of the two retire-path data structures against the
/// map-based versions they replaced, reproduced locally: fetch through
/// the dense slot table vs a `HashMap<u32, u32>` address index, and
/// statistics recording into the `MnemonicId`-indexed array vs a
/// name-keyed `BTreeMap` upsert. This is the apples-to-apples evidence
/// for the fast path, independent of kernel staging overheads.
fn hot_path_comparison() {
    use rnnasip_isa::{AluImmOp, Instr, Reg};
    use rnnasip_sim::Program;

    println!("\nhot-path comparison (per-event cost, best of {SAMPLES})");

    // A program the size of a realistic kernel (4-byte instructions).
    let n = 4096u32;
    let prog = Program::from_instrs(
        0x100,
        (0..n).map(|i| Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: (i & 0x7FF) as i32,
        }),
    );
    let by_addr: HashMap<u32, u32> = (0..n).map(|i| (0x100 + 4 * i, i)).collect();
    let addrs: Vec<u32> = (0..n).map(|i| 0x100 + 4 * ((i * 7) % n)).collect();

    let dense = time_ns_per_iter(64, || {
        let mut acc = 0u32;
        for &a in &addrs {
            acc = acc.wrapping_add(prog.fetch(a).map(|it| it.size as u32).unwrap_or(0));
        }
        acc
    }) / addrs.len() as f64;
    let hashed = time_ns_per_iter(64, || {
        let mut acc = 0u32;
        for &a in &addrs {
            acc = acc.wrapping_add(by_addr.get(&a).copied().unwrap_or(0));
        }
        acc
    }) / addrs.len() as f64;
    println!(
        "  fetch : dense table {dense:.2} ns vs HashMap {hashed:.2} ns  ({:.1}x)",
        hashed / dense
    );

    // The retire-path event stream: a realistic mnemonic mix.
    let mix: Vec<MnemonicId> = [
        "pl.sdotsp",
        "p.lw!",
        "addi",
        "pv.sdotsp",
        "lp.setup",
        "p.sh!",
    ]
    .iter()
    .map(|name| MnemonicId::from_name(name).expect("stable mnemonic"))
    .collect();
    let events: Vec<MnemonicId> = (0..4096).map(|i| mix[i % mix.len()]).collect();

    let indexed = time_ns_per_iter(64, || {
        let mut s = Stats::new();
        for &id in &events {
            s.record(id, 1, 2);
        }
        s.cycles()
    }) / events.len() as f64;
    let mapped = time_ns_per_iter(64, || {
        let mut rows: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut total = 0u64;
        for &id in &events {
            let row = rows.entry(id.name()).or_default();
            row.0 += 1;
            row.1 += 1;
            total += 1;
        }
        total
    }) / events.len() as f64;
    println!(
        "  record: indexed array {indexed:.2} ns vs BTreeMap {mapped:.2} ns  ({:.1}x)",
        mapped / indexed
    );
}
