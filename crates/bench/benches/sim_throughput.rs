//! Simulator-throughput bench: how fast does the ISS itself run?
//!
//! Reports simulated MIPS (millions of simulated instructions per host
//! second) for the full Table I suite, on *all three* execution tiers:
//! the per-step reference interpreter (`Machine::run_legacy`, the
//! bit-identity oracle), the pre-decoded micro-op path with
//! hardware-loop specialization (a `CompiledNetwork::without_shortcuts`
//! engine), and the kernel-shortcut tier that executes recognized
//! FC/LSTM/conv inner loops as native Rust (the default
//! `CompiledNetwork::engine`). The architectural outputs (cycle counts,
//! histograms) are identical by construction and pinned by the
//! differential tests, so this bench tracks host speed only; the
//! `speedup` column is the micro-op translation's payoff over legacy and
//! the `sc/uop` column is the shortcut tier's payoff on top of it.
//!
//! Flags:
//!
//! - `--json` — also write `BENCH_sim.json` (hand-rolled JSON,
//!   [`rnnasip_bench::json`]) with the raw numbers for CI artifacts.
//! - `--check` — compare against the committed
//!   `BENCH_sim_baseline.json` and fail on a >10% regression of the
//!   micro-op speedup on the small policy network. Raw MIPS are
//!   machine-dependent, so the regression gate is the uop-vs-legacy
//!   *ratio measured on the same host*, which is portable across CI
//!   runners.

use rnnasip_bench::json::{array, Obj};
use rnnasip_bench::run_suite_split;
use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_isa::MnemonicId;
use rnnasip_sim::Stats;
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;
use std::time::Instant;

/// Timed samples per level; the best (highest-MIPS) sample is reported,
/// minimizing scheduler noise as in any min-of-N timing harness.
const SAMPLES: usize = 5;

/// The micro-op path must beat the per-step interpreter by at least this
/// factor on the O3 kernels (levels d and e), whose hardware-loop bodies
/// the specialized block runner executes in bulk.
const MIN_O3_SPEEDUP: f64 = 2.0;

/// The shortcut tier must beat the micro-op path by at least this factor
/// on the O3 kernels (levels d and e), where the suite's inner loops are
/// near-fully covered by installed kernel regions. Measured serially on
/// warm, reused engines (same protocol as the uop/legacy ratio).
const MIN_SHORTCUT_SPEEDUP: f64 = 10.0;

/// `--check` fails when the policy-network speedup falls below this
/// fraction of the committed baseline's (>10% regression).
const MAX_REGRESSION: f64 = 0.9;

/// The small policy network the regression gate is keyed on.
const POLICY_NET: &str = "eisen2019";

/// Runs aggregated per policy sample: one inference of [`POLICY_NET`] is
/// only a few hundred instructions (~tens of microseconds), which is
/// timer-noise territory, so each sample sums the simulate time of this
/// many back-to-back runs.
const POLICY_REPS: usize = 32;

struct LevelRow {
    tag: &'static str,
    instrs: u64,
    legacy_mips: f64,
    uop_mips: f64,
    shortcut_mips: f64,
    wall_mips: f64,
    wall_ms: f64,
    compile_ms: f64,
}

impl LevelRow {
    fn speedup(&self) -> f64 {
        self.uop_mips / self.legacy_mips
    }

    fn shortcut_speedup(&self) -> f64 {
        self.shortcut_mips / self.uop_mips
    }
}

fn measure_level(level: OptLevel) -> LevelRow {
    // Wall-clock and compile columns come from the parallel suite runner
    // — the shape users actually invoke. They are informational only:
    // parallel wall time is scheduler-noisy, so nothing asserts on it.
    let mut wall_mips = 0.0f64;
    let mut wall_ms = f64::MAX;
    let mut compile_ms = f64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let (compile_nanos, report) = run_suite_split(level);
        let wall = t.elapsed();
        wall_mips = wall_mips.max(report.instrs() as f64 / wall.as_secs_f64() / 1e6);
        wall_ms = wall_ms.min(wall.as_secs_f64() * 1e3);
        compile_ms = compile_ms.min(compile_nanos as f64 / 1e6);
    }

    // The legacy/uop/shortcut columns feed the asserted speedup ratios,
    // so they are measured serially (no par_map CPU contention) on one
    // reused engine per network and tier, with the tiers' samples
    // interleaved so scheduler and thermal drift hit all equally.
    // Best-of-SAMPLES per network and tier, summed across the suite.
    // The micro-op tier runs on a `without_shortcuts` engine: the
    // default engine executes recognized kernel regions natively, so it
    // measures the shortcut tier.
    let mut instrs = 0u64;
    let mut legacy_nanos = 0u64;
    let mut uop_nanos = 0u64;
    let mut shortcut_nanos = 0u64;
    for net in rnnasip_rrm::suite() {
        let compiled = KernelBackend::new(level)
            .compile_network(&net.network)
            .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
        let mut sc_engine = compiled.engine();
        let mut uop_engine = compiled.without_shortcuts().engine();
        let input = net.input();
        let mut best_legacy = u64::MAX;
        let mut best_uop = u64::MAX;
        let mut best_shortcut = u64::MAX;
        let mut net_instrs = 0u64;
        for _ in 0..SAMPLES {
            let run = sc_engine.run_reference(&input).unwrap();
            best_legacy = best_legacy.min(run.report.host_nanos());
            let run = uop_engine.run(&input).unwrap();
            best_uop = best_uop.min(run.report.host_nanos());
            let run = sc_engine.run(&input).unwrap();
            best_shortcut = best_shortcut.min(run.report.host_nanos());
            net_instrs = run.report.instrs();
        }
        instrs += net_instrs;
        legacy_nanos += best_legacy;
        uop_nanos += best_uop;
        shortcut_nanos += best_shortcut;
    }
    LevelRow {
        tag: level.tag(),
        instrs,
        legacy_mips: instrs as f64 * 1e3 / legacy_nanos as f64,
        uop_mips: instrs as f64 * 1e3 / uop_nanos as f64,
        shortcut_mips: instrs as f64 * 1e3 / shortcut_nanos as f64,
        wall_mips,
        wall_ms,
        compile_ms,
    }
}

struct PolicyRow {
    instrs: u64,
    legacy_mips: f64,
    uop_mips: f64,
    shortcut_mips: f64,
}

impl PolicyRow {
    fn speedup(&self) -> f64 {
        self.uop_mips / self.legacy_mips
    }

    fn shortcut_speedup(&self) -> f64 {
        self.shortcut_mips / self.uop_mips
    }
}

/// Per-core MIPS of one network on both paths — serial, one reused
/// engine, interleaved samples, best of [`SAMPLES`] per path (same
/// protocol as [`measure_level`]'s ratio columns).
fn measure_policy(level: OptLevel) -> PolicyRow {
    let suite = rnnasip_rrm::suite();
    let net = suite
        .iter()
        .find(|n| n.id == POLICY_NET)
        .unwrap_or_else(|| panic!("{POLICY_NET} not in suite"));
    let compiled = KernelBackend::new(level)
        .compile_network(&net.network)
        .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
    let mut sc_engine = compiled.engine();
    let mut uop_engine = compiled.without_shortcuts().engine();
    let input = net.input();
    let mut legacy_mips = 0.0f64;
    let mut uop_mips = 0.0f64;
    let mut shortcut_mips = 0.0f64;
    let mut instrs = 0u64;
    for _ in 0..SAMPLES {
        let mut legacy_nanos = 0u64;
        let mut uop_nanos = 0u64;
        let mut shortcut_nanos = 0u64;
        for _ in 0..POLICY_REPS {
            let r = sc_engine.run_reference(&input).unwrap();
            legacy_nanos += r.report.host_nanos();
            let r = uop_engine.run(&input).unwrap();
            uop_nanos += r.report.host_nanos();
            let r = sc_engine.run(&input).unwrap();
            shortcut_nanos += r.report.host_nanos();
            instrs = r.report.instrs();
        }
        let total = (instrs * POLICY_REPS as u64) as f64;
        legacy_mips = legacy_mips.max(total * 1e3 / legacy_nanos as f64);
        uop_mips = uop_mips.max(total * 1e3 / uop_nanos as f64);
        shortcut_mips = shortcut_mips.max(total * 1e3 / shortcut_nanos as f64);
    }
    PolicyRow {
        instrs,
        legacy_mips,
        uop_mips,
        shortcut_mips,
    }
}

/// Pulls the policy speedup out of a baseline document. This is a
/// minimal field extraction for our own flat emitter's output, not a
/// JSON parser: it finds the `"policy"` object and the first
/// `"speedup":` after it.
fn extract_policy_speedup(text: &str) -> Option<f64> {
    let rest = &text[text.find("\"policy\"")?..];
    let num = &rest[rest.find("\"speedup\":")? + "\"speedup\":".len()..];
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || ".-+e".contains(c)))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let check = std::env::args().any(|a| a == "--check");

    println!(
        "sim-throughput: full RRM suite per optimization level, legacy vs micro-op vs shortcut"
    );
    println!(
        "{:<10} {:>12} {:>13} {:>13} {:>9} {:>13} {:>8} {:>12} {:>10} {:>11}",
        "level",
        "instrs",
        "legacy MIPS",
        "uop MIPS",
        "speedup",
        "sc MIPS",
        "sc/uop",
        "wall MIPS",
        "wall ms",
        "compile ms"
    );
    let rows: Vec<LevelRow> = OptLevel::ALL
        .iter()
        .map(|&level| {
            let row = measure_level(level);
            println!(
                "{:<10} {:>12} {:>13.1} {:>13.1} {:>8.1}x {:>13.1} {:>7.1}x {:>12.1} {:>10.2} {:>11.2}",
                row.tag,
                row.instrs,
                row.legacy_mips,
                row.uop_mips,
                row.speedup(),
                row.shortcut_mips,
                row.shortcut_speedup(),
                row.wall_mips,
                row.wall_ms,
                row.compile_ms
            );
            row
        })
        .collect();

    for row in &rows {
        if row.tag == "d" || row.tag == "e" {
            assert!(
                row.speedup() >= MIN_O3_SPEEDUP,
                "micro-op speedup regressed on level {}: {:.2}x < {MIN_O3_SPEEDUP}x",
                row.tag,
                row.speedup()
            );
            assert!(
                row.shortcut_speedup() >= MIN_SHORTCUT_SPEEDUP,
                "shortcut speedup regressed on level {}: {:.2}x < {MIN_SHORTCUT_SPEEDUP}x",
                row.tag,
                row.shortcut_speedup()
            );
        }
    }

    let policy_level = OptLevel::IfmTile;
    let policy = measure_policy(policy_level);
    println!(
        "\npolicy net ({POLICY_NET}, level {}): legacy {:.1} MIPS, uop {:.1} MIPS ({:.1}x), \
         shortcut {:.1} MIPS ({:.1}x over uop)",
        policy_level.tag(),
        policy.legacy_mips,
        policy.uop_mips,
        policy.speedup(),
        policy.shortcut_mips,
        policy.shortcut_speedup()
    );

    hot_path_comparison();

    if json {
        let items = rows.iter().map(|r| {
            Obj::new()
                .str("level", r.tag)
                .num("instrs", r.instrs)
                .float("legacy_mips", Some(r.legacy_mips))
                .float("uop_mips", Some(r.uop_mips))
                .float("speedup", Some(r.speedup()))
                .float("shortcut_mips", Some(r.shortcut_mips))
                .float("shortcut_speedup", Some(r.shortcut_speedup()))
                .float("wall_mips", Some(r.wall_mips))
                .float("wall_ms", Some(r.wall_ms))
                .float("compile_ms", Some(r.compile_ms))
                .build()
        });
        let policy_obj = Obj::new()
            .str("network", POLICY_NET)
            .str("level", policy_level.tag())
            .num("instrs", policy.instrs)
            .float("legacy_mips", Some(policy.legacy_mips))
            .float("uop_mips", Some(policy.uop_mips))
            .float("speedup", Some(policy.speedup()))
            .float("shortcut_mips", Some(policy.shortcut_mips))
            .float("shortcut_speedup", Some(policy.shortcut_speedup()))
            .build();
        let doc = Obj::new()
            .str("bench", "sim_throughput")
            .num("samples", SAMPLES as u64)
            .raw("levels", array(items))
            .raw("policy", policy_obj)
            .build();
        std::fs::write("BENCH_sim.json", doc + "\n").expect("write BENCH_sim.json");
        println!("wrote BENCH_sim.json");
    }

    if check {
        let baseline = std::fs::read_to_string("BENCH_sim_baseline.json")
            .expect("read BENCH_sim_baseline.json");
        let baseline_speedup =
            extract_policy_speedup(&baseline).expect("policy speedup in baseline");
        let floor = MAX_REGRESSION * baseline_speedup;
        assert!(
            policy.speedup() >= floor,
            "sim-MIPS regression on {POLICY_NET}: uop speedup {:.2}x < {floor:.2}x \
             (90% of committed baseline {baseline_speedup:.2}x)",
            policy.speedup()
        );
        println!(
            "check: {POLICY_NET} speedup {:.1}x vs baseline {baseline_speedup:.1}x — ok",
            policy.speedup()
        );
    }
}

/// Best-of-SAMPLES wall time of `f` over `iters` iterations, in ns/iter.
fn time_ns_per_iter<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Micro-comparison of the two retire-path data structures against the
/// map-based versions they replaced, reproduced locally: fetch through
/// the dense slot table vs a `HashMap<u32, u32>` address index, and
/// statistics recording into the `MnemonicId`-indexed array vs a
/// name-keyed `BTreeMap` upsert. This is the apples-to-apples evidence
/// for the fast path, independent of kernel staging overheads.
fn hot_path_comparison() {
    use rnnasip_isa::{AluImmOp, Instr, Reg};
    use rnnasip_sim::Program;

    println!("\nhot-path comparison (per-event cost, best of {SAMPLES})");

    // A program the size of a realistic kernel (4-byte instructions).
    let n = 4096u32;
    let prog = Program::from_instrs(
        0x100,
        (0..n).map(|i| Instr::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: (i & 0x7FF) as i32,
        }),
    );
    let by_addr: HashMap<u32, u32> = (0..n).map(|i| (0x100 + 4 * i, i)).collect();
    let addrs: Vec<u32> = (0..n).map(|i| 0x100 + 4 * ((i * 7) % n)).collect();

    let dense = time_ns_per_iter(64, || {
        let mut acc = 0u32;
        for &a in &addrs {
            acc = acc.wrapping_add(prog.fetch(a).map(|it| it.size as u32).unwrap_or(0));
        }
        acc
    }) / addrs.len() as f64;
    let hashed = time_ns_per_iter(64, || {
        let mut acc = 0u32;
        for &a in &addrs {
            acc = acc.wrapping_add(by_addr.get(&a).copied().unwrap_or(0));
        }
        acc
    }) / addrs.len() as f64;
    println!(
        "  fetch : dense table {dense:.2} ns vs HashMap {hashed:.2} ns  ({:.1}x)",
        hashed / dense
    );

    // The retire-path event stream: a realistic mnemonic mix.
    let mix: Vec<MnemonicId> = [
        "pl.sdotsp",
        "p.lw!",
        "addi",
        "pv.sdotsp",
        "lp.setup",
        "p.sh!",
    ]
    .iter()
    .map(|name| MnemonicId::from_name(name).expect("stable mnemonic"))
    .collect();
    let events: Vec<MnemonicId> = (0..4096).map(|i| mix[i % mix.len()]).collect();

    let indexed = time_ns_per_iter(64, || {
        let mut s = Stats::new();
        for &id in &events {
            s.record(id, 1, 2);
        }
        s.cycles()
    }) / events.len() as f64;
    let mapped = time_ns_per_iter(64, || {
        let mut rows: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut total = 0u64;
        for &id in &events {
            let row = rows.entry(id.name()).or_default();
            row.0 += 1;
            row.1 += 1;
            total += 1;
        }
        total
    }) / events.len() as f64;
    println!(
        "  record: indexed array {indexed:.2} ns vs BTreeMap {mapped:.2} ns  ({:.1}x)",
        mapped / indexed
    );
}
