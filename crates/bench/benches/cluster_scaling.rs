//! Cluster-scaling bench: simulated single-inference latency of every
//! RRM suite network across 1/2/4/8-core PULP clusters at Table I's
//! levels d and e.
//!
//! Unlike `serve_throughput` (request-level throughput on host
//! threads), the speedups here are *architectural*: one inference is
//! tiled across simulated cores, and the latency is the cluster's
//! critical path in cycles — per-phase slowest core plus analytic
//! banking-conflict stalls, DMA, and barriers. Every multi-core run is
//! verified bit-identical to the single-core outputs before its latency
//! is accepted.
//!
//! The floor assert (≥ [`MIN_SPEEDUP`]x at [`ASSERT_CORES`] cores on
//! FC/LSTM nets large enough to tile) is gated on
//! `available_parallelism()` the same way `serve_throughput` gates its
//! pool-speedup floor — the simulated numbers themselves are
//! host-independent, but the gate keeps the two benches' assert
//! conventions aligned on constrained CI runners.
//!
//! Flags:
//!
//! - `--json` — write `BENCH_cluster.json` with the full curves,
//!   per-core Table-I histograms, and conflict-stall rates.
//! - `--check` — compare against the committed
//!   `BENCH_cluster_baseline.json`. The document is byte-deterministic
//!   (simulated numbers only), so the check is exact string equality: a
//!   cycle-model change must regenerate the baseline deliberately.

use rnnasip_bench::cluster::{
    measure, to_json, NetCurve, ASSERT_CORES, CORE_COUNTS, LEVELS, MIN_SPEEDUP,
};

/// Floor assert is skipped below this many hardware threads (the
/// `serve_throughput` convention).
const MIN_PARALLELISM_FOR_ASSERT: usize = 4;

fn print_curve(nc: &NetCurve) {
    let mut line = format!("{:<14}", nc.id);
    for p in &nc.curve {
        line.push_str(&format!(
            " | x{}: {:>8} ({:>5.2}x)",
            p.cores,
            p.latency,
            nc.speedup(p.cores).unwrap_or(1.0)
        ));
    }
    let widest = nc.curve.last().unwrap();
    let stalls: u64 = widest.per_core.iter().map(|c| c.conflict_stalls).sum();
    let busy: u64 = widest.per_core.iter().map(|c| c.cycles).sum();
    line.push_str(&format!(
        " | x{} stalls {:.2}%",
        widest.cores,
        100.0 * stalls as f64 / (busy + stalls).max(1) as f64
    ));
    println!("{line}");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let check = std::env::args().any(|a| a == "--check");
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let curves = measure(&CORE_COUNTS);

    for level in LEVELS {
        println!(
            "cluster-scaling: level {}, simulated latency (cycles) per core count",
            level.tag()
        );
        for nc in curves.iter().filter(|nc| nc.level == level) {
            print_curve(nc);
        }
        println!();
    }

    if hw >= MIN_PARALLELISM_FOR_ASSERT {
        for nc in curves.iter().filter(|nc| nc.assertable()) {
            let speedup = nc.speedup(ASSERT_CORES).expect("4-core point measured");
            assert!(
                speedup >= MIN_SPEEDUP,
                "{} at level {}: {ASSERT_CORES}-core latency speedup {speedup:.2}x \
                 < {MIN_SPEEDUP}x floor",
                nc.id,
                nc.level.tag()
            );
        }
        println!("floor: every assertable FC/LSTM net ≥ {MIN_SPEEDUP}x at {ASSERT_CORES} cores");
    } else {
        println!(
            "(< {MIN_PARALLELISM_FOR_ASSERT} hardware threads: cluster speedup floor not asserted)"
        );
    }

    if json || check {
        let doc = to_json(&curves, &CORE_COUNTS) + "\n";
        if json {
            std::fs::write("BENCH_cluster.json", &doc).expect("write BENCH_cluster.json");
            println!("wrote BENCH_cluster.json");
        }
        if check {
            let baseline = std::fs::read_to_string("BENCH_cluster_baseline.json")
                .expect("read BENCH_cluster_baseline.json");
            assert_eq!(
                doc, baseline,
                "BENCH_cluster.json diverges from the committed baseline; \
                 regenerate BENCH_cluster_baseline.json if the cycle model changed"
            );
            println!("check: byte-identical to committed baseline — ok");
        }
    }
}
