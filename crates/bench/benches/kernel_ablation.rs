//! Ablation bench: one 100×100 FC matvec at every optimization level,
//! isolating each HW/SW technique's contribution (the factored gains the
//! paper quotes: 4.4× Xpulp, 1.9× OFM tiling, 1.7× pl.sdotsp, 1.05×
//! IFM tiling), plus LSTM with and without the activation extension
//! (Section III-D's 13% claim).

use rnnasip_bench::harness::bench;
use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_rrm::{seeded_fc_layer, seeded_input};
use std::hint::black_box;

fn main() {
    let layer = seeded_fc_layer(100, 100, 1);
    let input = seeded_input(100, 2);

    let mut base = 0u64;
    for level in OptLevel::ALL {
        let cycles = KernelBackend::new(level)
            .run_fc(&layer, &input)
            .expect("fc runs")
            .report
            .cycles();
        if base == 0 {
            base = cycles;
        }
        eprintln!(
            "[ablation] fc100x100 {}: {} cycles ({:.2}x)",
            level.tag(),
            cycles,
            base as f64 / cycles as f64
        );
        bench(
            &format!("kernel_ablation/fc100x100_{}", level.tag()),
            || {
                black_box(
                    KernelBackend::new(level)
                        .run_fc(&layer, &input)
                        .expect("fc runs")
                        .report
                        .cycles(),
                )
            },
        );
    }
}
