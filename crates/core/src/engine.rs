//! The run phase of the compile-once / run-many split.
//!
//! An [`Engine`] owns a reusable [`Machine`] seeded from a
//! [`CompiledNetwork`]'s staged image. Each [`run`](Engine::run) rewinds
//! the machine (restoring only the memory blocks the previous run
//! dirtied — see `rnnasip_sim::Memory::restore_image`), patches the new
//! input window, simulates, and reads the outputs back. Per-request host
//! cost is therefore simulation plus a restore proportional to the
//! kernel's write footprint, not re-staging megabytes of weights or
//! re-assembling the program.
//!
//! Runs are bit-identical to the legacy fresh-session path: same Q3.12
//! outputs, same cycle counts, same per-mnemonic histograms.

use crate::compile::CompiledNetwork;
use crate::error::CoreError;
use crate::report::RunReport;
use crate::runner::NetworkRun;
use rnnasip_fixed::Q3p12;
use rnnasip_sim::{Machine, Memory};

/// A reusable executor for one [`CompiledNetwork`].
///
/// # Example
///
/// ```
/// use rnnasip_core::{KernelBackend, OptLevel};
///
/// let net = rnnasip_rrm::suite().remove(3).network; // eisen2019 MLP
/// let compiled = KernelBackend::new(OptLevel::IfmTile).compile_network(&net)?;
/// let mut engine = compiled.engine();
/// let input = vec![rnnasip_rrm::seeded_input(net.n_in(), 1)];
/// let first = engine.run(&input)?;
/// let second = engine.run(&input)?;
/// assert_eq!(first.outputs, second.outputs);
/// assert_eq!(first.report.cycles(), second.report.cycles());
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    compiled: CompiledNetwork,
    machine: Machine,
    last_restored: usize,
}

impl Engine {
    /// Builds an engine around `compiled`: one machine, its memory
    /// loaded from the staged image, the program loaded once — sharing
    /// the artifact's micro-op translation instead of re-translating.
    pub fn new(compiled: CompiledNetwork) -> Self {
        let mut machine = Machine::with_memory(Memory::from_image(compiled.image()));
        machine.load_program_shared(compiled.program(), compiled.uop_program().clone());
        Self {
            compiled,
            machine,
            last_restored: 0,
        }
    }

    /// The artifact this engine executes.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Read-only view of the underlying machine — cycle counters,
    /// statistics, and block-runner coverage diagnostics
    /// (`Machine::bulk_instrs`).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Memory bytes the last [`run`](Self::run) had to restore from the
    /// staged image (0 before the first run; small relative to the TCDM
    /// because only kernel-written blocks are dirty).
    pub fn last_restored_bytes(&self) -> usize {
        self.last_restored
    }

    /// Runs one inference: rewind, patch inputs, simulate, read outputs.
    ///
    /// `sequence` must have the network's `seq_len` steps of `n_in`
    /// elements each (non-recurrent networks take a single step).
    ///
    /// # Errors
    ///
    /// [`CoreError::Shape`] on sequence length/width mismatch, or any
    /// simulation error (the engine stays reusable afterwards — the next
    /// run's rewind restores whatever a faulted run wrote).
    pub fn run(&mut self, sequence: &[Vec<Q3p12>]) -> Result<NetworkRun, CoreError> {
        self.run_inner(sequence, false)
    }

    /// Like [`run`](Self::run), but simulating through the reference
    /// per-step interpreter (`Machine::run_legacy`) instead of the
    /// micro-op path. Outputs, cycle counts and per-mnemonic rows are
    /// bit-identical to [`run`](Self::run); only host time differs. Used
    /// by the differential tests and the `sim_throughput` benchmark's
    /// legacy column.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_reference(&mut self, sequence: &[Vec<Q3p12>]) -> Result<NetworkRun, CoreError> {
        self.run_inner(sequence, true)
    }

    fn run_inner(
        &mut self,
        sequence: &[Vec<Q3p12>],
        reference: bool,
    ) -> Result<NetworkRun, CoreError> {
        let input = self.compiled.input();
        if sequence.len() != input.steps() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                input.steps()
            )));
        }
        for x in sequence {
            if x.len() != input.width() {
                return Err(CoreError::Shape(format!(
                    "input width {} != network input width {}",
                    x.len(),
                    input.width()
                )));
            }
        }
        self.last_restored = self.machine.rewind(self.compiled.image());
        for (t, x) in sequence.iter().enumerate() {
            self.machine
                .mem_mut()
                .write_q3p12_slice(input.base() + (t * input.width() * 2) as u32, x)?;
        }
        let started = std::time::Instant::now();
        if reference {
            self.machine.run_legacy(self.compiled.max_cycles())?;
        } else {
            self.machine.run(self.compiled.max_cycles())?;
        }
        let host_nanos = started.elapsed().as_nanos() as u64;
        let out = self.compiled.output();
        let outputs = self.machine.mem().read_q3p12_slice(out.base(), out.len())?;
        Ok(NetworkRun {
            outputs,
            report: RunReport::new(self.machine.stats().clone()).with_host_nanos(host_nanos),
        })
    }
}
