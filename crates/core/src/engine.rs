//! The run phase of the compile-once / run-many split.
//!
//! An [`Engine`] owns a reusable [`Machine`] seeded from a
//! [`CompiledNetwork`]'s staged image. Each [`run`](Engine::run) rewinds
//! the machine (restoring only the memory blocks the previous run
//! dirtied — see `rnnasip_sim::Memory::restore_image`), patches the new
//! input window, simulates, and reads the outputs back. Per-request host
//! cost is therefore simulation plus a restore proportional to the
//! kernel's write footprint, not re-staging megabytes of weights or
//! re-assembling the program.
//!
//! Runs are bit-identical to the legacy fresh-session path: same Q3.12
//! outputs, same cycle counts, same per-mnemonic histograms.

use crate::compile::CompiledNetwork;
use crate::error::CoreError;
use crate::report::{CoreReport, RunReport};
use crate::runner::NetworkRun;
use rnnasip_fixed::Q3p12;
use rnnasip_sim::{Cluster, FaultPlan, FaultRecord, Machine, Memory};
use std::sync::Arc;

/// The engine's execution substrate: one machine, or a simulated
/// multi-core cluster when the artifact carries a cluster lowering.
#[derive(Debug)]
enum Exec {
    Single(Box<Machine>),
    Cluster(Cluster),
}

/// A reusable executor for one [`CompiledNetwork`].
///
/// # Example
///
/// ```
/// use rnnasip_core::{KernelBackend, OptLevel};
///
/// let net = rnnasip_rrm::suite().remove(3).network; // eisen2019 MLP
/// let compiled = KernelBackend::new(OptLevel::IfmTile).compile_network(&net)?;
/// let mut engine = compiled.engine();
/// let input = vec![rnnasip_rrm::seeded_input(net.n_in(), 1)];
/// let first = engine.run(&input)?;
/// let second = engine.run(&input)?;
/// assert_eq!(first.outputs, second.outputs);
/// assert_eq!(first.report.cycles(), second.report.cycles());
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    compiled: CompiledNetwork,
    exec: Exec,
    last_restored: usize,
    last_fault_log: Vec<FaultRecord>,
    last_faulted_core: Option<usize>,
    /// Which cluster core the next injected plan arms on (cluster
    /// engines only).
    fault_core: usize,
    /// Reusable input-patch staging: the request sequence flattened to
    /// little-endian halfword bytes, written into the TCDM in one bulk
    /// copy. Hoisted out of `run` so back-to-back inferences (the
    /// serving hot path) allocate nothing per request.
    patch: Vec<u8>,
    /// Whether ABFT guards are armed on the machine (single-machine
    /// engines only; cluster substrates have no guard monitor).
    guards_on: bool,
    /// Whether the most recent successful run tripped a guard.
    last_guard_failed: bool,
}

impl Engine {
    /// Builds an engine around `compiled`: one machine (or one cluster,
    /// when the artifact carries a cluster lowering), its memory loaded
    /// from the staged image, the program loaded once — sharing the
    /// artifact's micro-op translation instead of re-translating.
    pub fn new(compiled: CompiledNetwork) -> Self {
        let exec = Self::build_exec(&compiled);
        let patch_capacity = 2 * compiled.input().width() * compiled.input().steps();
        Self {
            compiled,
            exec,
            last_restored: 0,
            last_fault_log: Vec::new(),
            last_faulted_core: None,
            fault_core: 0,
            patch: Vec::with_capacity(patch_capacity),
            guards_on: false,
            last_guard_failed: false,
        }
    }

    fn build_exec(compiled: &CompiledNetwork) -> Exec {
        match compiled.cluster() {
            Some(cluster) => Exec::Cluster(Cluster::new(
                Arc::clone(cluster),
                Memory::from_image(compiled.image()),
            )),
            None => {
                let mut machine = Machine::with_memory(Memory::from_image(compiled.image()));
                machine.load_program_shared(compiled.program(), compiled.uop_program().clone());
                Exec::Single(Box::new(machine))
            }
        }
    }

    /// The artifact this engine executes.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Read-only view of the underlying machine — cycle counters,
    /// statistics, and block-runner coverage diagnostics
    /// (`Machine::bulk_instrs`). For a cluster engine this is core 0;
    /// use [`cluster`](Self::cluster) for the full picture.
    pub fn machine(&self) -> &Machine {
        match &self.exec {
            Exec::Single(m) => m,
            Exec::Cluster(c) => c.machine(0),
        }
    }

    /// The cluster substrate, when this engine executes a clustered
    /// artifact.
    pub fn cluster(&self) -> Option<&Cluster> {
        match &self.exec {
            Exec::Single(_) => None,
            Exec::Cluster(c) => Some(c),
        }
    }

    /// Memory bytes the last [`run`](Self::run) had to restore from the
    /// staged image (0 before the first run; small relative to the TCDM
    /// because only kernel-written blocks are dirty).
    pub fn last_restored_bytes(&self) -> usize {
        self.last_restored
    }

    /// Runs one inference: rewind, patch inputs, simulate, read outputs.
    ///
    /// `sequence` must have the network's `seq_len` steps of `n_in`
    /// elements each (non-recurrent networks take a single step). The
    /// simulation is bounded by the compiled watchdog budget
    /// ([`CompiledNetwork::max_cycles`], by default
    /// [`DEFAULT_WATCHDOG_CYCLES`](crate::DEFAULT_WATCHDOG_CYCLES)).
    ///
    /// # Errors
    ///
    /// [`CoreError::Shape`] on sequence length/width mismatch, or any
    /// simulation error. A failed run **heals eagerly**: the engine
    /// disarms any remaining injected faults and rewinds its memory
    /// before returning, so the next run behaves bit-identically to a
    /// fresh engine (unless the failure corrupted state the dirty-block
    /// bitmap cannot see — then [`heal_rebuild`](Self::heal_rebuild)).
    pub fn run(&mut self, sequence: &[Vec<Q3p12>]) -> Result<NetworkRun, CoreError> {
        let mut outputs = Vec::with_capacity(self.compiled.output().len());
        let report = self.run_inner(sequence, false, None, &mut outputs)?;
        Ok(NetworkRun { outputs, report })
    }

    /// Allocation-lean twin of [`run`](Self::run): outputs land in a
    /// caller-owned buffer (cleared first) instead of a fresh `Vec`, so
    /// a tight serving loop that recycles its buffers pays no per-request
    /// output allocation. Same semantics and bit-identical results
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); `outputs` is cleared on error.
    pub fn run_into(
        &mut self,
        sequence: &[Vec<Q3p12>],
        outputs: &mut Vec<Q3p12>,
    ) -> Result<RunReport, CoreError> {
        self.run_inner(sequence, false, None, outputs)
    }

    /// Like [`run`](Self::run), but simulating through the reference
    /// per-step interpreter (`Machine::run_legacy`) instead of the
    /// micro-op path. Outputs, cycle counts and per-mnemonic rows are
    /// bit-identical to [`run`](Self::run); only host time differs. Used
    /// by the differential tests and the `sim_throughput` benchmark's
    /// legacy column.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_reference(&mut self, sequence: &[Vec<Q3p12>]) -> Result<NetworkRun, CoreError> {
        let mut outputs = Vec::with_capacity(self.compiled.output().len());
        let report = self.run_inner(sequence, true, None, &mut outputs)?;
        Ok(NetworkRun { outputs, report })
    }

    /// Like [`run`](Self::run) with the watchdog budget overridden for
    /// this run only — tighter for latency-bounded callers, looser for
    /// deliberately slow experiments. An injected plan's forced watchdog
    /// ([`FaultPlan::with_watchdog`]) still caps the effective budget
    /// when smaller.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); exceeding `max_cycles` is
    /// `CoreError::Sim(SimError::Watchdog { .. })`.
    pub fn run_budgeted(
        &mut self,
        sequence: &[Vec<Q3p12>],
        max_cycles: u64,
    ) -> Result<NetworkRun, CoreError> {
        let mut outputs = Vec::with_capacity(self.compiled.output().len());
        let report = self.run_inner(sequence, false, Some(max_cycles), &mut outputs)?;
        Ok(NetworkRun { outputs, report })
    }

    /// [`run_budgeted`](Self::run_budgeted) through the reference
    /// per-step interpreter — the legacy column of the fault campaign's
    /// cross-path determinism check.
    ///
    /// # Errors
    ///
    /// Same as [`run_budgeted`](Self::run_budgeted).
    pub fn run_reference_budgeted(
        &mut self,
        sequence: &[Vec<Q3p12>],
        max_cycles: u64,
    ) -> Result<NetworkRun, CoreError> {
        let mut outputs = Vec::with_capacity(self.compiled.output().len());
        let report = self.run_inner(sequence, true, Some(max_cycles), &mut outputs)?;
        Ok(NetworkRun { outputs, report })
    }

    /// Arms a [`FaultPlan`] for the **next run only**. The plan's faults
    /// fire at their `instret` triggers during that run (on either
    /// execution path); whatever the outcome, the engine disarms the
    /// plan afterwards and keeps the applied-fault records readable via
    /// [`last_fault_log`](Self::last_fault_log).
    ///
    /// # Example
    ///
    /// ```
    /// use rnnasip_core::{FaultPlan, KernelBackend, OptLevel};
    ///
    /// let net = rnnasip_rrm::suite().remove(3).network; // eisen2019 MLP
    /// let compiled = KernelBackend::new(OptLevel::IfmTile).compile_network(&net)?;
    /// let mut engine = compiled.engine();
    /// let input = vec![rnnasip_rrm::seeded_input(net.n_in(), 1)];
    /// let golden = engine.run(&input)?;
    ///
    /// engine.inject_faults(&FaultPlan::new().with_watchdog(10));
    /// assert!(engine.run(&input).is_err()); // hangs the next run
    ///
    /// let healed = engine.run(&input)?; // auto-rewound: fresh again
    /// assert_eq!(healed.outputs, golden.outputs);
    /// assert_eq!(healed.report.cycles(), golden.report.cycles());
    /// # Ok::<(), rnnasip_core::CoreError>(())
    /// ```
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        match &mut self.exec {
            Exec::Single(m) => m.arm_faults(plan),
            Exec::Cluster(c) => {
                let core = self.fault_core.min(c.cores().saturating_sub(1));
                c.arm_faults(plan, core);
            }
        }
    }

    /// Selects which cluster core the next [`inject_faults`] plan arms
    /// on (ignored by single-machine engines; clamped to the cluster
    /// width).
    ///
    /// [`inject_faults`]: Self::inject_faults
    pub fn set_fault_core(&mut self, core: usize) {
        self.fault_core = core;
    }

    /// The core that faulted or raised the error on the most recent run
    /// — `None` when the run succeeded with no fault activity. A
    /// single-machine engine reports core 0 when an injected fault
    /// contributed to a failed run.
    pub fn last_faulted_core(&self) -> Option<usize> {
        self.last_faulted_core
    }

    /// The fault records of the most recent run (empty when nothing was
    /// injected or no fault fired) — preserved across the post-run
    /// disarm/heal so campaigns can attribute an outcome to what was
    /// actually hit.
    pub fn last_fault_log(&self) -> &[FaultRecord] {
        &self.last_fault_log
    }

    /// Arms (or disarms) the compiled artifact's ABFT guards on the
    /// underlying machine. Guarded runs verify every kernel region's
    /// column checksum natively at region exit and attach a
    /// [`GuardReport`](rnnasip_sim::GuardReport) to the
    /// [`RunReport`]; outputs, cycle counts and per-mnemonic rows stay
    /// bit-identical to unguarded runs on clean inputs (the analytic
    /// guard surcharge lives in the report's separate
    /// `guard_cycles` counter). No-op for cluster engines and for the
    /// reference interpreter path, neither of which the guard monitor
    /// observes.
    pub fn set_guards(&mut self, on: bool) {
        self.guards_on = on && self.compiled.cluster().is_none();
        if let Exec::Single(m) = &mut self.exec {
            if self.guards_on {
                m.arm_guards(Arc::clone(self.compiled.guards()));
            } else {
                m.disarm_guards();
            }
        }
    }

    /// Whether ABFT guards are currently armed on this engine.
    pub fn guards_enabled(&self) -> bool {
        self.guards_on
    }

    /// Whether the most recent successful guarded run tripped a guard
    /// (`false` after unguarded, reference, or failed runs). Engine
    /// pools use this to quarantine a possibly-corrupted engine instead
    /// of recycling it.
    pub fn last_guard_failed(&self) -> bool {
        self.last_guard_failed
    }

    /// Rebuilds the machine from the compiled artifact: fresh memory
    /// loaded from the full staged image, program reloaded (clearing any
    /// instruction-word corruption), all fault state gone.
    ///
    /// This is the heavy rung of the recovery ladder: the eager rewind
    /// after a failed run undoes *tracked* writes, but a fault that
    /// evaded the dirty-block bitmap (a silent memory upset) or that
    /// corrupted the program image itself survives rewinds — only a full
    /// rebuild restores the engine's invariants. Cost is proportional to
    /// the whole image rather than the last run's write footprint.
    pub fn heal_rebuild(&mut self) {
        self.exec = Self::build_exec(&self.compiled);
        self.last_restored = self.compiled.image().len();
        self.last_guard_failed = false;
        // `build_exec` reloads the program, which drops any armed guard
        // unit; restore the caller's guard setting on the fresh machine.
        if self.guards_on {
            if let Exec::Single(m) = &mut self.exec {
                m.arm_guards(Arc::clone(self.compiled.guards()));
            }
        }
    }

    fn run_inner(
        &mut self,
        sequence: &[Vec<Q3p12>],
        reference: bool,
        budget: Option<u64>,
        outputs: &mut Vec<Q3p12>,
    ) -> Result<RunReport, CoreError> {
        let input = self.compiled.input();
        if sequence.len() != input.steps() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                input.steps()
            )));
        }
        for x in sequence {
            if x.len() != input.width() {
                return Err(CoreError::Shape(format!(
                    "input width {} != network input width {}",
                    x.len(),
                    input.width()
                )));
            }
        }
        let result = self.attempt(sequence, reference, budget, outputs);
        // One-shot injection semantics: stash what the plan actually did,
        // then disarm so the next run is unaffected; on failure also
        // rewind eagerly so a poisoned engine heals before the caller
        // ever observes it again (DESIGN.md, "Fault model & recovery").
        match &mut self.exec {
            Exec::Single(m) => {
                self.last_fault_log = m.fault_log().to_vec();
                self.last_faulted_core = if result.is_err() && !self.last_fault_log.is_empty() {
                    Some(0)
                } else {
                    None
                };
                m.clear_faults();
                if result.is_err() {
                    outputs.clear();
                    self.last_restored = m.rewind(self.compiled.image());
                }
            }
            Exec::Cluster(c) => {
                self.last_fault_log.clear();
                for core in 0..c.cores() {
                    self.last_fault_log.extend_from_slice(c.fault_log(core));
                }
                self.last_faulted_core = c.last_faulted_core();
                c.clear_faults();
                if result.is_err() {
                    outputs.clear();
                    self.last_restored = c.rewind(self.compiled.image());
                }
            }
        }
        result
    }

    fn attempt(
        &mut self,
        sequence: &[Vec<Q3p12>],
        reference: bool,
        budget: Option<u64>,
        outputs: &mut Vec<Q3p12>,
    ) -> Result<RunReport, CoreError> {
        let input = self.compiled.input();
        self.last_guard_failed = false;
        // The sequence is contiguous in the staged layout (step t at
        // base + 2*t*width), so it flattens into the reusable patch
        // scratch and lands in one bulk write.
        self.patch.clear();
        for x in sequence {
            for v in x {
                self.patch
                    .extend_from_slice(&(v.raw() as u16).to_le_bytes());
            }
        }
        let max_cycles = budget.unwrap_or_else(|| self.compiled.max_cycles());
        match &mut self.exec {
            Exec::Single(machine) => {
                self.last_restored = machine.rewind(self.compiled.image());
                machine.mem_mut().write_bytes(input.base(), &self.patch)?;
                // Seed the guard ledger with the freshly patched input
                // window, so the first region's input-sum check covers
                // flips that land before the kernel ever reads it.
                machine.guard_note_range(input.base(), (self.patch.len() / 2) as u32);
                let started = std::time::Instant::now();
                if reference {
                    machine.run_legacy(max_cycles)?;
                } else {
                    machine.run(max_cycles)?;
                }
                let host_nanos = started.elapsed().as_nanos() as u64;
                let out = self.compiled.output();
                machine
                    .mem()
                    .read_q3p12_into(out.base(), out.len(), outputs)?;
                let mut report =
                    RunReport::new(machine.stats().clone()).with_host_nanos(host_nanos);
                // The guard monitor only observes the micro-op path; a
                // reference run with guards armed reports nothing.
                if !reference {
                    if let Some(mut guard) = machine.guard_report() {
                        // Final rung of the ledger chain: the output
                        // window as read back must still sum to what the
                        // last region wrote there.
                        if machine.guard_verify_range(out.base(), out.len() as u32) == Some(false) {
                            guard.output_check_failed = true;
                        }
                        self.last_guard_failed = guard.failed();
                        report = report.with_guard(guard);
                    }
                }
                Ok(report)
            }
            Exec::Cluster(cluster) => {
                self.last_restored = cluster.rewind(self.compiled.image());
                cluster.mem_mut().write_bytes(input.base(), &self.patch)?;
                let started = std::time::Instant::now();
                cluster.run_with(max_cycles, reference)?;
                let host_nanos = started.elapsed().as_nanos() as u64;
                let out = self.compiled.output();
                cluster
                    .mem()
                    .read_q3p12_into(out.base(), out.len(), outputs)?;
                let per_core = (0..cluster.cores())
                    .map(|c| CoreReport {
                        core: c,
                        stats: cluster.machine(c).stats().clone(),
                        conflict_stalls: cluster.conflict_stalls(c),
                    })
                    .collect();
                Ok(RunReport::new(cluster.merged_stats())
                    .with_host_nanos(host_nanos)
                    .with_cluster(
                        per_core,
                        cluster.dma_cycles(),
                        cluster.barrier_cycles(),
                        cluster.latency_cycles(),
                    ))
            }
        }
    }
}
