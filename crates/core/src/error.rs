//! Error type for kernel generation and execution.

use core::fmt;
use rnnasip_asm::AsmError;
use rnnasip_sim::SimError;

/// Errors raised while compiling or running a kernel.
#[derive(Debug)]
pub enum CoreError {
    /// Program assembly failed (almost always a generator bug).
    Asm(AsmError),
    /// The simulation faulted or ran out of cycles.
    Sim(SimError),
    /// A layer shape the kernels cannot handle (after padding).
    Shape(String),
    /// A network topology the compiler does not implement (e.g. an LSTM
    /// stage after the first stage) — structurally valid, just not
    /// supported by the current code generator.
    Unsupported(String),
    /// A serving-pool worker panicked twice on one request — the panic
    /// was contained (engine quarantined, thread survived) but the
    /// request could not be answered.
    WorkerPanic,
    /// The memory layout did not fit in the configured TCDM size.
    OutOfMemory {
        /// Bytes requested beyond the TCDM capacity.
        needed: usize,
        /// Configured TCDM size.
        capacity: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Asm(e) => write!(f, "assembly failed: {e}"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Shape(msg) => write!(f, "unsupported layer shape: {msg}"),
            CoreError::Unsupported(msg) => write!(f, "unsupported network topology: {msg}"),
            CoreError::WorkerPanic => {
                write!(f, "pool worker panicked repeatedly serving the request")
            }
            CoreError::OutOfMemory { needed, capacity } => {
                write!(f, "data layout needs {needed} bytes, TCDM has {capacity}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Asm(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for CoreError {
    fn from(e: AsmError) -> Self {
        CoreError::Asm(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}
