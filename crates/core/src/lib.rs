//! The paper's contribution: RNN-optimized kernels for the extended
//! RISC-V core, at all five optimization levels of Table I.
//!
//! | Level | Table I column | What it adds |
//! |---|---|---|
//! | [`OptLevel::Baseline`] | a | straightforward RV32IMC code (accumulator spilled to memory, byte-wise pointer bumps, software PLA activations) |
//! | [`OptLevel::Xpulp`]    | b | packed-SIMD `pv.sdotsp.h`, hardware loops, post-increment loads |
//! | [`OptLevel::OfmTile`]  | c | output feature-map tiling (one input load shared by N outputs) **and** the `pl.tanh`/`pl.sig` instructions |
//! | [`OptLevel::SdotSp`]   | d | the merged load-and-compute `pl.sdotsp.h.0/1` instruction (Table II schedule) |
//! | [`OptLevel::IfmTile`]  | e | input feature-map tiling (two input pairs per loop iteration, removing the load-use bubble) |
//!
//! [`KernelBackend`] compiles a golden-model layer or [`Network`] into a
//! RISC-V program via [`rnnasip_asm`], stages weights and inputs into the
//! simulator's TCDM, runs it on [`rnnasip_sim`], and returns both the
//! outputs and the per-mnemonic cycle statistics. Every level is
//! **bit-exact** against the [`rnnasip_nn`] fixed-point golden models —
//! the property the integration tests enforce.
//!
//! [`Network`]: rnnasip_nn::Network
//!
//! # Example
//!
//! ```
//! use rnnasip_core::{KernelBackend, OptLevel};
//! use rnnasip_fixed::Q3p12;
//! use rnnasip_nn::{Act, FcLayer, Matrix};
//!
//! # fn main() -> Result<(), rnnasip_core::CoreError> {
//! let layer = FcLayer::new(
//!     Matrix::from_f64(4, 8, &vec![0.125; 32]),
//!     vec![Q3p12::from_f64(0.5); 4],
//!     Act::Relu,
//! );
//! let input = vec![Q3p12::from_f64(1.0); 8];
//!
//! let run = KernelBackend::new(OptLevel::SdotSp).run_fc(&layer, &input)?;
//! assert_eq!(run.outputs, layer.forward_fixed(&input)); // bit-exact
//! println!("{} cycles", run.report.cycles());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod engine;
mod error;
pub mod kernels;
mod layout;
mod optlevel;
mod partition;
mod report;
mod resilience;
mod runner;
pub mod serve;

pub use compile::{CompiledNetwork, InputDesc, OutputDesc};
pub use engine::Engine;
pub use error::CoreError;
pub use kernels::fc8::Int8Kernel;
pub use layout::DataLayout;
pub use optlevel::OptLevel;
pub use partition::{Partition, StageSplit};
pub use report::{CoreReport, RunReport};
pub use resilience::{
    Attempt, RecoveryAction, ResilientEngine, RetryPolicy, RunOutcome, SdcVerdict,
};
pub use runner::{
    KernelBackend, Layer8Run, LayerRun, NetworkRun, StageRun, DEFAULT_WATCHDOG_CYCLES,
};
pub use serve::{
    Arrival, BatchRequest, BatchResponse, EnginePool, Front, FrontConfig, LatencyHistogram,
    OverloadPolicy, TrafficReport,
};
// Fault-injection vocabulary, re-exported so campaign code can target an
// `Engine` without depending on `rnnasip-sim` directly.
pub use rnnasip_sim::{
    Fault, FaultEffect, FaultPlan, FaultRecord, FaultSite, GuardReport, GuardSpec, KernelRegion,
    ParseFaultError, RegionGuard, ShortcutPtr, SimError,
};
