//! The five optimization levels of the paper's Table I.

use core::fmt;

/// Optimization level of the generated kernels, matching Table I's
/// columns a–e.
///
/// Levels are cumulative: each one keeps everything the previous level
/// added. The ISA surface grows along the way — `Baseline` restricts
/// itself to RV32IMC (plus the single-cycle `p.mac` the RI5CY multiplier
/// exposes to the compiler, which the paper's baseline column also
/// counts), `Xpulp` unlocks the stock RI5CY extensions, and `OfmTile`
/// onward use the paper's new RNN instructions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OptLevel {
    /// (a) Straightforward RV32IMC implementation.
    Baseline,
    /// (b) + packed SIMD, hardware loops, post-increment loads.
    Xpulp,
    /// (c) + output feature-map tiling and `pl.tanh`/`pl.sig`.
    OfmTile,
    /// (d) + the merged load-and-compute `pl.sdotsp.h` instruction.
    SdotSp,
    /// (e) + input feature-map tiling.
    IfmTile,
}

impl OptLevel {
    /// All levels in Table I order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::Baseline,
        OptLevel::Xpulp,
        OptLevel::OfmTile,
        OptLevel::SdotSp,
        OptLevel::IfmTile,
    ];

    /// The paper's column label.
    pub const fn column(self) -> &'static str {
        match self {
            OptLevel::Baseline => "a) w/o opt (RV32IMC)",
            OptLevel::Xpulp => "b) +SIMD/HWL (Xpulp)",
            OptLevel::OfmTile => "c) +Out-FM Tile./tanh/sig",
            OptLevel::SdotSp => "d) +pl.sdotsp instruction",
            OptLevel::IfmTile => "e) +Input FM Tiling",
        }
    }

    /// Short machine-friendly tag (`"a"`–`"e"`).
    pub const fn tag(self) -> &'static str {
        match self {
            OptLevel::Baseline => "a",
            OptLevel::Xpulp => "b",
            OptLevel::OfmTile => "c",
            OptLevel::SdotSp => "d",
            OptLevel::IfmTile => "e",
        }
    }

    /// Whether the level may use the single-cycle `pl.tanh`/`pl.sig`
    /// instructions (levels c–e); below that, activations run the
    /// software PLA routine.
    pub const fn has_act_ext(self) -> bool {
        matches!(
            self,
            OptLevel::OfmTile | OptLevel::SdotSp | OptLevel::IfmTile
        )
    }

    /// Whether the level may use Xpulp SIMD / hardware loops /
    /// post-increment addressing (levels b–e).
    pub const fn has_xpulp(self) -> bool {
        !matches!(self, OptLevel::Baseline)
    }

    /// Whether the level uses the merged load-and-compute
    /// `pl.sdotsp.h` instruction (levels d–e).
    pub const fn has_sdotsp_ext(self) -> bool {
        matches!(self, OptLevel::SdotSp | OptLevel::IfmTile)
    }

    /// Whether the level tiles the output feature map (levels c–e).
    pub const fn has_ofm_tiling(self) -> bool {
        self.has_act_ext()
    }

    /// Whether the level tiles the input feature map (level e).
    pub const fn has_ifm_tiling(self) -> bool {
        matches!(self, OptLevel::IfmTile)
    }

    /// The next level down the Table I ladder, or `None` at `Baseline`.
    ///
    /// This is the degradation path of the self-healing engine
    /// ([`ResilientEngine`](crate::ResilientEngine)): when retries at one
    /// level keep faulting, the engine recompiles one rung lower —
    /// shedding the most recently added ISA extension first — until it
    /// reaches plain RV32IMC. All levels are bit-exact against the golden
    /// models, so a degraded run still produces the reference outputs.
    pub const fn lower(self) -> Option<OptLevel> {
        match self {
            OptLevel::Baseline => None,
            OptLevel::Xpulp => Some(OptLevel::Baseline),
            OptLevel::OfmTile => Some(OptLevel::Xpulp),
            OptLevel::SdotSp => Some(OptLevel::OfmTile),
            OptLevel::IfmTile => Some(OptLevel::SdotSp),
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.column())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_cumulative() {
        assert!(OptLevel::Baseline < OptLevel::Xpulp);
        assert!(OptLevel::Xpulp < OptLevel::OfmTile);
        assert!(OptLevel::OfmTile < OptLevel::SdotSp);
        assert!(OptLevel::SdotSp < OptLevel::IfmTile);
        for pair in OptLevel::ALL.windows(2) {
            // Feature sets only grow.
            assert!(pair[1].has_xpulp() >= pair[0].has_xpulp());
            assert!(pair[1].has_act_ext() >= pair[0].has_act_ext());
            assert!(pair[1].has_sdotsp_ext() >= pair[0].has_sdotsp_ext());
        }
    }

    #[test]
    fn lowering_walks_the_ladder_to_baseline() {
        let mut level = OptLevel::IfmTile;
        let mut seen = vec![level];
        while let Some(next) = level.lower() {
            assert!(next < level, "lower() must strictly descend");
            level = next;
            seen.push(level);
        }
        assert_eq!(level, OptLevel::Baseline);
        seen.reverse();
        assert_eq!(seen, OptLevel::ALL);
    }

    #[test]
    fn tags_match_columns() {
        for level in OptLevel::ALL {
            assert!(level.column().starts_with(level.tag()));
        }
    }
}
