//! TCDM data-layout planning and staging.

use crate::error::CoreError;
use rnnasip_fixed::pla::{hw_table, PlaFunc};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Matrix;
use rnnasip_sim::Memory;

/// Bytes of slack after each weight region: the `pl.sdotsp` schedule
/// prefetches one packed pair past the end of the first two rows of the
/// final output tile (the fetched values are never consumed), so regions
/// streamed by it need read-valid padding.
pub const STREAM_SLACK: u32 = 8;

/// A bump allocator planning where weights, biases, activations and
/// look-up tables live in the TCDM, plus staging helpers that copy the
/// values into a [`Memory`].
///
/// All regions are word-aligned, so packed `lw`/`pl.sdotsp` streams stay
/// aligned for any even element count.
///
/// # Example
///
/// ```
/// use rnnasip_core::DataLayout;
/// use rnnasip_sim::Memory;
///
/// let mut mem = Memory::new(4096);
/// let mut layout = DataLayout::new(0x100, 4096);
/// let addr = layout.alloc_halves(8)?; // room for 8 Q3.12 values
/// assert_eq!(addr % 4, 0);
/// layout.stage_q(&mut mem, addr, &[rnnasip_fixed::Q3p12::from_f64(1.0); 8])?;
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataLayout {
    cursor: u32,
    capacity: u32,
}

impl DataLayout {
    /// Creates a layout allocating upward from `base` within a TCDM of
    /// `capacity` bytes.
    pub fn new(base: u32, capacity: usize) -> Self {
        Self {
            cursor: (base + 3) & !3,
            capacity: capacity as u32,
        }
    }

    /// First unallocated address.
    pub fn cursor(&self) -> u32 {
        self.cursor
    }

    /// Allocates `bytes` bytes, word-aligned.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`] if the region does not fit.
    pub fn alloc(&mut self, bytes: u32) -> Result<u32, CoreError> {
        let addr = self.cursor;
        let end = addr
            .checked_add((bytes + 3) & !3)
            .ok_or(CoreError::OutOfMemory {
                needed: bytes as usize,
                capacity: self.capacity as usize,
            })?;
        if end > self.capacity {
            return Err(CoreError::OutOfMemory {
                needed: end as usize,
                capacity: self.capacity as usize,
            });
        }
        self.cursor = end;
        Ok(addr)
    }

    /// Allocates room for `n` Q3.12 halfwords.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`] if the region does not fit.
    pub fn alloc_halves(&mut self, n: usize) -> Result<u32, CoreError> {
        self.alloc((n as u32) * 2)
    }

    /// Allocates room for `n` 32-bit words.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`] if the region does not fit.
    pub fn alloc_words(&mut self, n: usize) -> Result<u32, CoreError> {
        self.alloc((n as u32) * 4)
    }

    /// Allocates a weight region for a matrix with streaming slack.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfMemory`] if the region does not fit.
    pub fn alloc_matrix(&mut self, m: &Matrix) -> Result<u32, CoreError> {
        self.alloc((m.rows() * m.cols()) as u32 * 2 + STREAM_SLACK)
    }

    /// Writes Q3.12 values as consecutive halfwords.
    ///
    /// # Errors
    ///
    /// Propagates simulator memory errors.
    pub fn stage_q(&self, mem: &mut Memory, addr: u32, values: &[Q3p12]) -> Result<(), CoreError> {
        mem.write_q3p12_slice(addr, values)?;
        Ok(())
    }

    /// Writes a matrix row-major (the weight-stream layout).
    ///
    /// # Errors
    ///
    /// Propagates simulator memory errors.
    pub fn stage_matrix(&self, mem: &mut Memory, addr: u32, m: &Matrix) -> Result<(), CoreError> {
        mem.write_q3p12_slice(addr, m.data())?;
        Ok(())
    }

    /// Writes a bias vector pre-shifted left by 12 as 32-bit words — the
    /// accumulator-seed format the tiled kernels `lw` directly.
    ///
    /// # Errors
    ///
    /// Propagates simulator memory errors.
    pub fn stage_bias32(
        &self,
        mem: &mut Memory,
        addr: u32,
        bias: &[Q3p12],
    ) -> Result<(), CoreError> {
        for (k, b) in bias.iter().enumerate() {
            mem.write_u32(addr + 4 * k as u32, ((b.raw() as i32) << 12) as u32)?;
        }
        Ok(())
    }

    /// Stages the four PLA look-up tables (tanh/sig × slope/intercept)
    /// used by the software activation routine of levels a–b, and returns
    /// their base addresses `(tanh_m, tanh_q, sig_m, sig_q)`. Entries are
    /// i16: slopes in Q1.14, intercepts in Q3.12 — identical values to
    /// the hardware unit, which keeps all levels bit-exact.
    ///
    /// # Errors
    ///
    /// Allocation or memory staging failure.
    pub fn stage_pla_luts(&mut self, mem: &mut Memory) -> Result<(u32, u32, u32, u32), CoreError> {
        let mut stage = |func: PlaFunc| -> Result<(u32, u32), CoreError> {
            let table = hw_table(func);
            let n = table.intervals() as usize;
            let m_addr = self.alloc_halves(n)?;
            let q_addr = self.alloc_halves(n)?;
            for i in 0..n {
                let m = table.slope(i as u32);
                let q = table.intercept(i as u32);
                mem.write_u16(m_addr + 2 * i as u32, m as i16 as u16)?;
                mem.write_u16(q_addr + 2 * i as u32, q as i16 as u16)?;
            }
            Ok((m_addr, q_addr))
        };
        let (tm, tq) = stage(PlaFunc::Tanh)?;
        let (sm, sq) = stage(PlaFunc::Sigmoid)?;
        Ok((tm, tq, sm, sq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_word_aligned() {
        let mut l = DataLayout::new(0x102, 4096);
        let a = l.alloc_halves(3).unwrap(); // 6 bytes, rounded to 8
        let b = l.alloc_halves(1).unwrap();
        assert_eq!(a % 4, 0);
        assert_eq!(b % 4, 0);
        assert_eq!(b - a, 8);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut l = DataLayout::new(0, 64);
        assert!(l.alloc(60).is_ok());
        assert!(matches!(l.alloc(8), Err(CoreError::OutOfMemory { .. })));
    }

    #[test]
    fn bias32_staging_preshifts() {
        let mut mem = Memory::new(256);
        let l = DataLayout::new(0, 256);
        let bias = [Q3p12::from_f64(1.0), Q3p12::from_f64(-0.5)];
        l.stage_bias32(&mut mem, 16, &bias).unwrap();
        assert_eq!(mem.read_u32(16).unwrap() as i32, 4096 << 12);
        assert_eq!(mem.read_u32(20).unwrap() as i32, (-2048) << 12);
    }

    #[test]
    fn pla_luts_match_hardware_tables() {
        let mut mem = Memory::new(1024);
        let mut l = DataLayout::new(0, 1024);
        let (tm, tq, _sm, _sq) = l.stage_pla_luts(&mut mem).unwrap();
        let table = hw_table(PlaFunc::Tanh);
        for i in 0..table.intervals() {
            assert_eq!(
                mem.read_u16(tm + 2 * i).unwrap() as i16 as i32,
                table.slope(i)
            );
            assert_eq!(
                mem.read_u16(tq + 2 * i).unwrap() as i16 as i32,
                table.intercept(i)
            );
        }
    }
}
