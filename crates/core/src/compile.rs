//! The compile phase of the compile-once / run-many split.
//!
//! [`KernelBackend::compile_network`] lowers a [`Network`] into a
//! [`CompiledNetwork`]: the assembled [`Program`], the fully staged
//! initial TCDM image (weights, biases, LUTs, gather tables — with the
//! input window zero-filled), and typed descriptors saying where one
//! inference's inputs go and where its outputs come out. The artifact is
//! immutable and cheap to clone (the image is `Arc`-shared), so it can be
//! compiled once per `(network, OptLevel, max_tile)` and handed to any
//! number of [`Engine`](crate::engine::Engine)s.
//!
//! Compilation stages a zero-filled input window; because the memory
//! layout is purely shape-dependent, the staged image plus a patched
//! input is byte-for-byte the memory a fresh single-shot session would
//! have seen, which is what keeps engine runs bit-identical to the
//! legacy path (cycle counts, per-mnemonic histograms and Q3.12 outputs
//! alike — asserted by `crates/bench/tests/engine_differential.rs`).

use crate::error::CoreError;
use crate::kernels::conv::{emit_conv, ConvSpec};
use crate::kernels::fc::emit_matvec;
use crate::kernels::lstm::{emit_lstm, LstmSpec};
use crate::kernels::{KernelCtx, MatvecSpec, PtrSrc};
use crate::layout::DataLayout;
use crate::optlevel::OptLevel;
use crate::runner::KernelBackend;
use rnnasip_asm::Asm;
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, Conv2dLayer, FcLayer, LstmLayer, Matrix, Network, Stage};
use rnnasip_sim::{ClusterProgram, GuardSpec, Machine, MemImage, Program, UopProgram};
use std::sync::Arc;

/// First data address in the TCDM (code addresses live below it; the
/// simulator fetches from the decoded program image, so the split is a
/// realism convention, not a correctness requirement).
pub(crate) const DATA_BASE: u32 = 0x10000;

/// Where one inference's input sequence lives in the staged image.
///
/// The sequence is contiguous: step `t`, element `k` is the halfword at
/// `base + 2 * (t * width + k)`. Networks without an LSTM front have
/// `steps == 1`.
#[derive(Clone, Copy, Debug)]
pub struct InputDesc {
    pub(crate) base: u32,
    pub(crate) width: usize,
    pub(crate) steps: usize,
}

impl InputDesc {
    /// Byte address of the input window.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Elements per sequence step (the network's `n_in`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sequence steps per inference (the network's `seq_len`).
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// Where one inference's outputs are read from.
#[derive(Clone, Copy, Debug)]
pub struct OutputDesc {
    pub(crate) base: u32,
    pub(crate) len: usize,
}

impl OutputDesc {
    /// Byte address of the output buffer.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of Q3.12 output elements (the network's `n_out`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the network produces no outputs (never true for networks
    /// built from non-degenerate layers).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A network compiled for one `(OptLevel, max_tile)` configuration:
/// assembled program, staged initial TCDM image, and input/output
/// descriptors.
///
/// Produce with [`KernelBackend::compile_network`]; execute with an
/// [`Engine`](crate::engine::Engine). Cloning is cheap — the image bytes
/// are shared — so one artifact can fan out to per-worker engines.
#[derive(Clone, Debug)]
pub struct CompiledNetwork {
    pub(crate) program: Program,
    /// The program's micro-op translation, built once here so every
    /// engine instantiated from this artifact skips re-translation
    /// (`Machine::load_program_shared`).
    pub(crate) uops: Arc<UopProgram>,
    pub(crate) image: MemImage,
    /// The cluster lowering, present when the backend was configured
    /// with [`KernelBackend::with_cores`]: per-core phase programs plus
    /// DMA descriptors. `None` means the classic single-machine artifact.
    pub(crate) cluster: Option<Arc<ClusterProgram>>,
    /// Compile-time ABFT guard specs, one per recorded kernel region:
    /// the column-checksum row of each region's weight matrix, folded
    /// from the clean staged image. Engines arm these on demand
    /// ([`Engine::set_guards`](crate::engine::Engine::set_guards));
    /// empty for cluster artifacts, whose kernels run on per-core
    /// machines the guard monitor does not observe.
    pub(crate) guards: Arc<Vec<GuardSpec>>,
    pub(crate) input: InputDesc,
    pub(crate) output: OutputDesc,
    pub(crate) level: OptLevel,
    pub(crate) max_tile: usize,
    pub(crate) max_cycles: u64,
    pub(crate) name: String,
    pub(crate) compile_nanos: u64,
}

impl CompiledNetwork {
    /// The assembled kernel program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's shared micro-op translation.
    pub fn uop_program(&self) -> &Arc<UopProgram> {
        &self.uops
    }

    /// The staged initial memory image (weights loaded, inputs zeroed).
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// Where inputs are patched before each run.
    pub fn input(&self) -> InputDesc {
        self.input
    }

    /// Where outputs are read after each run.
    pub fn output(&self) -> OutputDesc {
        self.output
    }

    /// The optimization level this network was compiled for.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The cluster lowering, when compiled with
    /// [`KernelBackend::with_cores`].
    pub fn cluster(&self) -> Option<&Arc<ClusterProgram>> {
        self.cluster.as_ref()
    }

    /// The compile-time ABFT guard specs (empty for cluster artifacts).
    pub fn guards(&self) -> &Arc<Vec<GuardSpec>> {
        &self.guards
    }

    /// How many cluster cores this artifact executes on (1 for the
    /// classic single-machine path).
    pub fn cores(&self) -> usize {
        self.cluster.as_ref().map_or(1, |c| c.cores)
    }

    /// The output-tile cap this network was compiled with.
    pub fn max_tile(&self) -> usize {
        self.max_tile
    }

    /// The watchdog budget engines will run with.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// The source network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Host nanoseconds spent compiling (layout + staging + assembly).
    pub fn compile_nanos(&self) -> u64 {
        self.compile_nanos
    }

    /// Convenience: a fresh [`Engine`](crate::engine::Engine) over a
    /// clone of this artifact.
    pub fn engine(&self) -> crate::engine::Engine {
        crate::engine::Engine::new(self.clone())
    }

    /// A clone of this artifact whose micro-op translation carries **no**
    /// shortcut regions, so engines built from it always execute the
    /// plain micro-op tier. This is the control arm for the
    /// shortcut-vs-uop differential tests and benchmarks.
    pub fn without_shortcuts(&self) -> Self {
        let mut clone = self.clone();
        clone.uops = Arc::new(UopProgram::translate(&clone.program));
        if let Some(cluster) = &self.cluster {
            let mut plain = (**cluster).clone();
            for phase in &mut plain.phases {
                for kernel in phase.kernels.iter_mut().flatten() {
                    kernel.uops = Arc::new(UopProgram::translate(&kernel.program));
                }
            }
            clone.cluster = Some(Arc::new(plain));
        }
        clone
    }
}

impl KernelBackend {
    /// Compiles a network once for this backend's `(level, max_tile)`:
    /// emits and assembles all stage kernels, stages every weight
    /// matrix, bias vector and lookup table into a fresh TCDM image, and
    /// records where inputs are patched and outputs read.
    ///
    /// The input window is staged zero-filled; the memory layout depends
    /// only on shapes, so an [`Engine`](crate::engine::Engine) patching
    /// real inputs reproduces the legacy single-shot path bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`CoreError::Shape`] for empty networks or kernel-incompatible
    /// shapes, [`CoreError::Unsupported`] for LSTM stages after the
    /// first, plus layout/assembly errors.
    pub fn compile_network(&self, net: &Network) -> Result<CompiledNetwork, CoreError> {
        if self.cores == 0 {
            compile_stages(self, net.name(), net.stages())
        } else {
            crate::partition::compile_clustered(self, net.name(), net.stages(), self.cores)
        }
    }
}

/// The compile pipeline over a raw stage list.
///
/// Split out from [`KernelBackend::compile_network`] so the empty-network
/// guard is unit-testable: [`Network::new`] itself rejects empty stage
/// lists, making the error unreachable through the public `Network` API.
pub(crate) fn compile_stages(
    backend: &KernelBackend,
    name: &str,
    stages: &[Stage],
) -> Result<CompiledNetwork, CoreError> {
    let started = std::time::Instant::now();
    let mut s = Session::new(backend)?;
    let mut iter = stages.iter();
    let Some(first) = iter.next() else {
        return Err(CoreError::Shape("network has no stages".into()));
    };
    // The first stage owns the input window; it is staged zero-filled
    // at exactly the layout position the legacy path staged real inputs.
    let (input, mut cur_addr, mut cur_width) = match first {
        Stage::Lstm { layer, steps } => {
            let zeros = vec![vec![Q3p12::ZERO; layer.n_in()]; *steps];
            let (h_addr, x_seq) = s.emit_lstm_stage(layer, &zeros)?;
            (
                InputDesc {
                    base: x_seq,
                    width: layer.n_in(),
                    steps: *steps,
                },
                h_addr,
                layer.n_hidden(),
            )
        }
        Stage::Fc(layer) => {
            let zeros = vec![Q3p12::ZERO; layer.n_in()];
            let (out, x_addr) = s.emit_fc_stage(layer, StageInput::Staged(zeros))?;
            (
                InputDesc {
                    base: x_addr,
                    width: layer.n_in(),
                    steps: 1,
                },
                out,
                layer.n_out(),
            )
        }
        Stage::Conv(conv) => {
            let zeros = vec![Q3p12::ZERO; conv.n_in()];
            let src = s.stage_vector(&zeros)?;
            let out = s.emit_conv_stage(conv, src, zeros.len())?;
            (
                InputDesc {
                    base: src,
                    width: conv.n_in(),
                    steps: 1,
                },
                out,
                conv.n_out(),
            )
        }
    };
    for stage in iter {
        match stage {
            Stage::Fc(layer) => {
                cur_addr = s.emit_fc_stage(layer, StageInput::Buffer(cur_addr))?.0;
                cur_width = layer.n_out();
            }
            Stage::Conv(conv) => {
                cur_addr = s.emit_conv_stage(conv, cur_addr, cur_width)?;
                cur_width = conv.n_out();
            }
            Stage::Lstm { .. } => {
                // The code generator chains stages through a single
                // activation buffer; an LSTM needs a whole buffered
                // sequence, which no mid-network stage produces. See
                // DESIGN.md ("Compile/execute split") for the contract.
                return Err(CoreError::Unsupported(
                    "LSTM stages are only supported as the first stage".into(),
                ));
            }
        }
    }
    let regions = std::mem::take(&mut s.regions);
    let (program, machine) = s.into_program()?;
    let image = machine.mem().image();
    // Fold the guard checksums from the *clean* staged weights, before
    // any input patching or fault injection can touch the image: this
    // is what makes the run-time check sensitive to later corruption.
    let guards = Arc::new(
        regions
            .iter()
            .filter_map(|r| GuardSpec::from_region(machine.mem(), r))
            .collect::<Vec<_>>(),
    );
    let uops = Arc::new(UopProgram::translate_with_shortcuts(&program, &regions));
    Ok(CompiledNetwork {
        program,
        uops,
        image,
        cluster: None,
        guards,
        input,
        output: OutputDesc {
            base: cur_addr,
            len: cur_width,
        },
        level: backend.level(),
        max_tile: backend.max_tile,
        max_cycles: backend.max_cycles,
        name: name.to_string(),
        compile_nanos: started.elapsed().as_nanos() as u64,
    })
}

/// Where an FC stage's input comes from.
pub(crate) enum StageInput {
    /// Values staged by the host into a fresh buffer.
    Staged(Vec<Q3p12>),
    /// An existing buffer produced by a previous stage.
    Buffer(u32),
}

/// Where one FC stage's data landed in the staged image: everything
/// needed to emit the matvec kernel — whole, or sliced by output rows
/// for cluster partitioning.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FcPlacement {
    pub(crate) w_base: u32,
    pub(crate) bias32: u32,
    pub(crate) x_addr: u32,
    pub(crate) out: u32,
    /// Padded input width (even at packed-SIMD levels).
    pub(crate) n_in: usize,
    pub(crate) n_out: usize,
    pub(crate) act: Act,
}

impl FcPlacement {
    /// The matvec spec covering output rows `[row0, row0 + rows)`.
    ///
    /// Rows are independent: slicing only offsets the weight, bias and
    /// output bases, so a full-range slice emits exactly the single-core
    /// kernel.
    pub(crate) fn matvec_rows(&self, row0: usize, rows: usize, scratch: u32) -> MatvecSpec {
        MatvecSpec {
            w_base: self.w_base + (row0 * self.n_in * 2) as u32,
            bias32: self.bias32 + (row0 * 4) as u32,
            x: PtrSrc::Const(self.x_addr),
            out: PtrSrc::Const(self.out + (row0 * 2) as u32),
            out_stride: 2,
            n_in: self.n_in,
            n_out: rows,
            act: self.act,
            scratch,
        }
    }
}

/// A compilation session: one assembler, one bump layout, one machine
/// whose memory doubles as the staging area.
pub(crate) struct Session {
    pub(crate) machine: Machine,
    pub(crate) asm: Asm,
    pub(crate) layout: DataLayout,
    pub(crate) luts: (u32, u32, u32, u32),
    pub(crate) scratch: u32,
    pub(crate) level: OptLevel,
    pub(crate) max_tile: usize,
    pub(crate) regions: Vec<rnnasip_sim::KernelRegion>,
}

impl Session {
    pub(crate) fn new(backend: &KernelBackend) -> Result<Self, CoreError> {
        let mut machine = Machine::new(backend.mem_bytes);
        let mut layout = DataLayout::new(DATA_BASE, backend.mem_bytes);
        let luts = layout.stage_pla_luts(machine.mem_mut())?;
        let scratch = layout.alloc_words(1)?;
        Ok(Self {
            machine,
            asm: Asm::new(0),
            layout,
            luts,
            scratch,
            level: backend.level(),
            max_tile: backend.max_tile,
            regions: Vec::new(),
        })
    }

    pub(crate) fn ctx(&mut self) -> KernelCtx<'_> {
        KernelCtx {
            asm: &mut self.asm,
            level: self.level,
            luts: self.luts,
            max_tile: self.max_tile,
            regions: &mut self.regions,
        }
    }

    /// Stages a vector with one trailing zero halfword of padding slack.
    pub(crate) fn stage_vector(&mut self, values: &[Q3p12]) -> Result<u32, CoreError> {
        let addr = self.layout.alloc_halves(values.len() + 1)?;
        self.layout.stage_q(self.machine.mem_mut(), addr, values)?;
        Ok(addr)
    }

    /// Allocates an output buffer with one trailing zero halfword.
    fn alloc_buffer(&mut self, len: usize) -> Result<u32, CoreError> {
        self.layout.alloc_halves(len + 1)
    }

    /// Pads a weight matrix to an even column count (appending a zero
    /// column whose input counterpart is the buffer's trailing zero).
    fn pad_even(m: &Matrix) -> Matrix {
        if m.cols().is_multiple_of(2) {
            return m.clone();
        }
        let mut data = Vec::with_capacity(m.rows() * (m.cols() + 1));
        for r in 0..m.rows() {
            data.extend_from_slice(m.row(r));
            data.push(Q3p12::ZERO);
        }
        Matrix::new(m.rows(), m.cols() + 1, data)
    }

    /// Stages one FC stage's data (weights, bias, input and output
    /// buffers) without emitting any code; the placement is enough to
    /// emit the kernel — whole or as per-core row slices.
    pub(crate) fn stage_fc_data(
        &mut self,
        layer: &FcLayer,
        input: StageInput,
    ) -> Result<FcPlacement, CoreError> {
        let weights = Self::pad_even(layer.weights());
        let w_base = self.layout.alloc_matrix(&weights)?;
        self.layout
            .stage_matrix(self.machine.mem_mut(), w_base, &weights)?;
        let bias32 = self.layout.alloc_words(layer.n_out())?;
        self.layout
            .stage_bias32(self.machine.mem_mut(), bias32, layer.bias())?;
        let x_addr = match input {
            StageInput::Staged(values) => self.stage_vector(&values)?,
            StageInput::Buffer(addr) => addr,
        };
        let out = self.alloc_buffer(layer.n_out())?;
        Ok(FcPlacement {
            w_base,
            bias32,
            x_addr,
            out,
            n_in: weights.cols(),
            n_out: layer.n_out(),
            act: layer.act(),
        })
    }

    /// Emits one FC stage; returns `(output buffer, input buffer)`
    /// addresses.
    pub(crate) fn emit_fc_stage(
        &mut self,
        layer: &FcLayer,
        input: StageInput,
    ) -> Result<(u32, u32), CoreError> {
        let p = self.stage_fc_data(layer, input)?;
        let spec = p.matvec_rows(0, p.n_out, self.scratch);
        let mut ctx = self.ctx();
        emit_matvec(&mut ctx, &spec)?;
        Ok((p.out, p.x_addr))
    }

    /// Stages one LSTM stage's data (combined gate matrices, biases,
    /// gate/state buffers, input sequence, loop globals) without
    /// emitting code; the returned spec places every buffer the kernel
    /// — whole or partitioned — needs.
    pub(crate) fn stage_lstm_data(
        &mut self,
        layer: &LstmLayer,
        sequence: &[Vec<Q3p12>],
    ) -> Result<LstmSpec, CoreError> {
        let (m, n) = (layer.n_in(), layer.n_hidden());
        if m % 2 != 0 || n % 2 != 0 {
            return Err(CoreError::Shape(format!(
                "LSTM widths must be even, got {m}x{n}"
            )));
        }
        if sequence.is_empty() {
            return Err(CoreError::Shape("empty LSTM sequence".into()));
        }
        for x in sequence {
            if x.len() != m {
                return Err(CoreError::Shape("LSTM sequence width mismatch".into()));
            }
        }
        // Combined per-gate weight matrices [Wx ‖ Wh].
        let mut gates_w = [0u32; 4];
        let mut gates_b32 = [0u32; 4];
        let mut gate_bufs = [0u32; 4];
        for g in 0..4 {
            let mut data = Vec::with_capacity(n * (m + n));
            for j in 0..n {
                data.extend_from_slice(layer.wx(g).row(j));
                data.extend_from_slice(layer.wh(g).row(j));
            }
            let combined = Matrix::new(n, m + n, data);
            let w = self.layout.alloc_matrix(&combined)?;
            self.layout
                .stage_matrix(self.machine.mem_mut(), w, &combined)?;
            gates_w[g] = w;
            let b = self.layout.alloc_words(n)?;
            self.layout
                .stage_bias32(self.machine.mem_mut(), b, layer.bias(g))?;
            gates_b32[g] = b;
            gate_bufs[g] = self.alloc_buffer(n)?;
        }
        let xh = self.alloc_buffer(m + n)?;
        let c_buf = self.alloc_buffer(n)?;
        // The whole sequence, contiguous.
        let x_seq = self.layout.alloc_halves(sequence.len() * m)?;
        for (t, x) in sequence.iter().enumerate() {
            self.layout
                .stage_q(self.machine.mem_mut(), x_seq + (t * m * 2) as u32, x)?;
        }
        let g_xptr = self.layout.alloc_words(1)?;
        let g_steps = self.layout.alloc_words(1)?;
        let spec = LstmSpec {
            gates_w,
            gates_b32,
            gate_bufs,
            xh,
            c_buf,
            x_seq,
            g_xptr,
            g_steps,
            steps: sequence.len(),
            n_in: m,
            n_hidden: n,
            scratch: self.scratch,
        };
        Ok(spec)
    }

    /// Emits one LSTM stage; returns `(final hidden state, staged input
    /// sequence)` addresses.
    pub(crate) fn emit_lstm_stage(
        &mut self,
        layer: &LstmLayer,
        sequence: &[Vec<Q3p12>],
    ) -> Result<(u32, u32), CoreError> {
        let spec = self.stage_lstm_data(layer, sequence)?;
        let mut ctx = self.ctx();
        emit_lstm(&mut ctx, &spec)?;
        Ok((spec.h_addr(), spec.x_seq))
    }

    /// Stages one convolution stage's data (weights, bias, gather index
    /// table, im2col column buffer, output buffer, pixel-loop globals)
    /// without emitting code.
    pub(crate) fn stage_conv_data(
        &mut self,
        conv: &Conv2dLayer,
        src: u32,
        src_len: usize,
    ) -> Result<ConvSpec, CoreError> {
        if src_len != conv.n_in() {
            return Err(CoreError::Shape(format!(
                "conv input width {} != staged buffer {}",
                conv.n_in(),
                src_len
            )));
        }
        let weights = Self::pad_even(conv.weights());
        let taps = weights.cols();
        let n_pix = conv.out_h() * conv.out_w();
        if 2 * (src_len + 1) > 32767 {
            return Err(CoreError::Shape(
                "conv source exceeds the 16-bit gather-offset range".into(),
            ));
        }
        let w_base = self.layout.alloc_matrix(&weights)?;
        self.layout
            .stage_matrix(self.machine.mem_mut(), w_base, &weights)?;
        let bias32 = self.layout.alloc_words(conv.out_ch())?;
        self.layout
            .stage_bias32(self.machine.mem_mut(), bias32, conv.bias())?;

        // Gather index table (+1 slack entry for the software pipeline).
        let offsets = conv_gather_offsets(conv, taps, src_len);
        let idx_base = self.layout.alloc_halves(offsets.len() + 1)?;
        for (k, off) in offsets.iter().enumerate() {
            self.machine
                .mem_mut()
                .write_u16(idx_base + 2 * k as u32, *off)?;
        }
        let cols_base = self.layout.alloc_halves(n_pix * taps)?;
        let out = self.alloc_buffer(conv.out_ch() * n_pix)?;
        let g_pix = self.layout.alloc_words(1)?;
        let g_out = self.layout.alloc_words(1)?;
        let g_cnt = self.layout.alloc_words(1)?;
        let spec = ConvSpec {
            w_base,
            bias32,
            src,
            idx_base,
            cols_base,
            out_base: out,
            g_pix,
            g_out,
            g_cnt,
            n_pix,
            taps,
            out_ch: conv.out_ch(),
            act: conv.act(),
            scratch: self.scratch,
        };
        Ok(spec)
    }

    /// Emits one convolution stage reading from `src` (a buffer of
    /// `src_len` halfwords with a zeroed trailing slack element);
    /// returns the output buffer address.
    pub(crate) fn emit_conv_stage(
        &mut self,
        conv: &Conv2dLayer,
        src: u32,
        src_len: usize,
    ) -> Result<u32, CoreError> {
        let spec = self.stage_conv_data(conv, src, src_len)?;
        let mut ctx = self.ctx();
        emit_conv(&mut ctx, &spec)?;
        Ok(spec.out_base)
    }

    /// Appends the halt and assembles, handing back the program and the
    /// machine whose memory holds the staged image.
    pub(crate) fn into_program(mut self) -> Result<(Program, Machine), CoreError> {
        self.asm.ecall();
        let prog = self.asm.assemble()?;
        Ok((prog, self.machine))
    }

    /// Appends the halt, assembles, runs, and reads the result.
    pub(crate) fn finish(
        self,
        out_addr: u32,
        out_len: usize,
        max_cycles: u64,
    ) -> Result<(Vec<Q3p12>, crate::report::RunReport), CoreError> {
        let (prog, mut machine) = self.into_program()?;
        machine.load_program(&prog);
        let started = std::time::Instant::now();
        machine.run(max_cycles)?;
        let host_nanos = started.elapsed().as_nanos() as u64;
        let outputs = machine.mem().read_q3p12_slice(out_addr, out_len)?;
        Ok((
            outputs,
            crate::report::RunReport::new(machine.stats().clone()).with_host_nanos(host_nanos),
        ))
    }
}

/// Builds the im2col gather offsets (bytes into the source buffer),
/// pixel-major, in exactly the tap order of the golden model's
/// [`Conv2dLayer::im2col`]; padded taps point at the source's trailing
/// zero element.
fn conv_gather_offsets(conv: &Conv2dLayer, taps: usize, src_len: usize) -> Vec<u16> {
    let (oh, ow) = (conv.out_h(), conv.out_w());
    let real_taps = conv.weights().cols();
    let zero_off = (2 * src_len) as u16;
    let mut offsets = Vec::with_capacity(oh * ow * taps);
    let (stride, pad) = (conv.stride() as isize, conv.pad() as isize);
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..conv.in_ch() {
                for ky in 0..conv.kh() {
                    for kx in 0..conv.kw() {
                        let iy = oy as isize * stride + ky as isize - pad;
                        let ix = ox as isize * stride + kx as isize - pad;
                        if iy < 0
                            || ix < 0
                            || iy >= conv.in_h() as isize
                            || ix >= conv.in_w() as isize
                        {
                            // Padded tap: gather the staged zero element.
                            offsets.push(zero_off);
                        } else {
                            let idx = (c * conv.in_h() + iy as usize) * conv.in_w() + ix as usize;
                            offsets.push((2 * idx) as u16);
                        }
                    }
                }
            }
            for _ in real_taps..taps {
                offsets.push(zero_off);
            }
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc(n_out: usize, n_in: usize) -> FcLayer {
        FcLayer::new(
            Matrix::zeros(n_out, n_in),
            vec![Q3p12::ZERO; n_out],
            Act::Relu,
        )
    }

    fn lstm(m: usize, n: usize) -> LstmLayer {
        LstmLayer::new(
            std::array::from_fn(|_| Matrix::zeros(n, m)),
            std::array::from_fn(|_| Matrix::zeros(n, n)),
            std::array::from_fn(|_| vec![Q3p12::ZERO; n]),
        )
    }

    #[test]
    fn empty_network_is_a_shape_error_not_a_panic() {
        let backend = KernelBackend::new(OptLevel::Baseline);
        match compile_stages(&backend, "empty", &[]) {
            Err(CoreError::Shape(msg)) => assert!(msg.contains("no stages"), "{msg}"),
            other => panic!("expected Shape error, got {other:?}"),
        }
    }

    #[test]
    fn mid_network_lstm_is_unsupported_not_shape() {
        let stages = vec![
            Stage::Fc(fc(8, 8)),
            Stage::Lstm {
                layer: lstm(8, 8),
                steps: 2,
            },
        ];
        let backend = KernelBackend::new(OptLevel::Baseline);
        match compile_stages(&backend, "mid-lstm", &stages) {
            Err(CoreError::Unsupported(msg)) => assert!(msg.contains("LSTM"), "{msg}"),
            other => panic!("expected Unsupported error, got {other:?}"),
        }
    }

    #[test]
    fn compiled_descriptors_match_network_shape() {
        let net = Network::new(
            "probe",
            vec![
                Stage::Lstm {
                    layer: lstm(8, 16),
                    steps: 3,
                },
                Stage::Fc(fc(4, 16)),
            ],
        );
        let compiled = KernelBackend::new(OptLevel::IfmTile)
            .compile_network(&net)
            .unwrap();
        assert_eq!(compiled.input().width(), 8);
        assert_eq!(compiled.input().steps(), 3);
        assert_eq!(compiled.output().len(), 4);
        assert_eq!(compiled.name(), "probe");
        assert!(compiled.image().len() >= DATA_BASE as usize);
    }
}
