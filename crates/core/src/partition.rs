//! Partitioning one network across the cores of a simulated PULP
//! cluster.
//!
//! A [`Partition`] declares, per stage, how the stage's parallel axis is
//! sliced across cores — output neurons for FC and LSTM stages, output
//! pixels for convolutions. [`compile_clustered`] then lowers the
//! network into a [`ClusterProgram`]: data staged *once* into the shared
//! TCDM (the same bump layout the single-core compiler uses), a DMA
//! descriptor that moves each inference's input from an L2 staging area
//! into the kernel's input window, and one small phase program per
//! `(phase, core)` whose address constants point at that core's slice.
//!
//! Phase boundaries are exactly the data dependencies:
//!
//! * an FC or convolution stage is one phase — every core reads the
//!   previous stage's full output (written before the phase started) and
//!   writes a disjoint slice of the stage output;
//! * an LSTM stage is two phases per time step: core 0 copies `x_t` into
//!   the combined `[x‖h]` buffer (every core reads it next phase), then
//!   each core computes its hidden-row slice — four gate matvec slices
//!   plus the element-wise update — writing disjoint `c`/`h` rows.
//!
//! Within a phase, writes are disjoint and reads touch only pre-phase
//! data (plus the core's own writes), so running cores one after another
//! over the shared memory produces bit-identical results to true
//! lockstep execution; the cluster's timing model layers conflict
//! stalls, DMA and barrier costs on top without touching the data path.

use crate::compile::{compile_stages, CompiledNetwork, InputDesc, OutputDesc, Session, StageInput};
use crate::error::CoreError;
use crate::kernels::conv::{emit_gather_range, emit_pixel_loop_range};
use crate::kernels::fc::emit_matvec;
use crate::kernels::lstm::{emit_update_rows, emit_word_copy};
use crate::optlevel::OptLevel;
use crate::runner::KernelBackend;
use rnnasip_asm::Asm;
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Stage;
use rnnasip_sim::{ClusterKernel, ClusterPhase, ClusterProgram, DmaXfer, UopProgram};
use std::sync::Arc;

/// How one stage's parallel axis is split across cluster cores.
#[derive(Clone, Debug)]
pub struct StageSplit {
    /// Human-readable stage label (`"fc 500->82"`, `"lstm 32x64 x10"`).
    pub label: String,
    /// Per-core `[start, end)` ranges over the stage's parallel axis:
    /// output neurons for FC stages, hidden rows for LSTM stages, output
    /// pixels for convolutions. Cores past the axis get empty ranges
    /// (and no kernel).
    pub ranges: Vec<(usize, usize)>,
}

impl StageSplit {
    /// The number of cores with non-empty slices.
    pub fn active_cores(&self) -> usize {
        self.ranges.iter().filter(|(a, b)| b > a).count()
    }
}

/// The declared layer/tile partition of a network over an `N`-core
/// cluster: one [`StageSplit`] per network stage.
///
/// Built by [`Partition::plan`] with a balanced contiguous split —
/// every core gets `⌊axis/N⌋` or `⌈axis/N⌉` consecutive rows/pixels —
/// and consumed by [`compile_clustered`], which turns each range into a
/// per-core phase program.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Cluster width the plan was built for.
    pub cores: usize,
    /// One split per network stage, in stage order.
    pub stages: Vec<StageSplit>,
}

impl Partition {
    /// Plans a balanced contiguous split of every stage across `cores`.
    pub fn plan(stages: &[Stage], cores: usize) -> Self {
        let cores = cores.max(1);
        let stages = stages
            .iter()
            .map(|stage| {
                let (label, axis) = match stage {
                    Stage::Fc(l) => (format!("fc {}->{}", l.n_in(), l.n_out()), l.n_out()),
                    Stage::Lstm { layer, steps } => (
                        format!("lstm {}x{} x{}", layer.n_in(), layer.n_hidden(), steps),
                        layer.n_hidden(),
                    ),
                    Stage::Conv(c) => (
                        format!(
                            "conv {}x{}x{} -> {}",
                            c.in_ch(),
                            c.in_h(),
                            c.in_w(),
                            c.out_ch()
                        ),
                        c.out_h() * c.out_w(),
                    ),
                };
                StageSplit {
                    label,
                    ranges: split_even(axis, cores),
                }
            })
            .collect();
        Self { cores, stages }
    }
}

/// Balanced contiguous `[start, end)` ranges covering `0..n` across
/// `cores` slots; the first `n % cores` slots get one extra element.
fn split_even(n: usize, cores: usize) -> Vec<(usize, usize)> {
    let base = n / cores;
    let rem = n % cores;
    let mut start = 0;
    (0..cores)
        .map(|c| {
            let len = base + usize::from(c < rem);
            let range = (start, start + len);
            start += len;
            range
        })
        .collect()
}

/// Assembles one per-core phase kernel: fresh assembler, fresh shortcut
/// region list, halt appended, micro-ops translated with shortcuts.
fn build_kernel<F>(
    level: OptLevel,
    luts: (u32, u32, u32, u32),
    max_tile: usize,
    emit: F,
) -> Result<ClusterKernel, CoreError>
where
    F: FnOnce(&mut crate::kernels::KernelCtx<'_>) -> Result<(), CoreError>,
{
    let mut asm = Asm::new(0);
    let mut regions = Vec::new();
    {
        let mut ctx = crate::kernels::KernelCtx {
            asm: &mut asm,
            level,
            luts,
            max_tile,
            regions: &mut regions,
        };
        emit(&mut ctx)?;
    }
    asm.ecall();
    let program = asm.assemble()?;
    let uops = Arc::new(UopProgram::translate_with_shortcuts(&program, &regions));
    Ok(ClusterKernel::new(Arc::new(program), uops))
}

/// Compiles a network for an `cores`-core cluster.
///
/// `cores == 1` wraps the *unchanged* single-core artifact — same
/// program, same image, no DMA — in a one-phase cluster, so executing
/// it through the cluster path is bit-identical to the classic
/// single-machine engine. `cores >= 2` stages data once and emits
/// per-core phase programs following the [`Partition`] plan, with the
/// input relocated behind an L2 staging area and a DMA descriptor.
///
/// # Errors
///
/// Everything [`compile_stages`] can raise, for the same shapes.
pub(crate) fn compile_clustered(
    backend: &KernelBackend,
    name: &str,
    stages: &[Stage],
    cores: usize,
) -> Result<CompiledNetwork, CoreError> {
    if cores <= 1 {
        let mut compiled = compile_stages(backend, name, stages)?;
        let kernel = ClusterKernel::new(
            Arc::new(compiled.program.clone()),
            Arc::clone(&compiled.uops),
        );
        compiled.cluster = Some(Arc::new(ClusterProgram {
            cores: 1,
            dma: Vec::new(),
            phases: vec![ClusterPhase {
                label: "whole network".into(),
                kernels: vec![Some(kernel)],
            }],
        }));
        return Ok(compiled);
    }

    let started = std::time::Instant::now();
    let mut s = Session::new(backend)?;
    let plan = Partition::plan(stages, cores);
    // Per-core baseline spill scratch: one shared cell would be a
    // same-phase write collision under true lockstep.
    let mut scratches = vec![s.scratch];
    for _ in 1..cores {
        scratches.push(s.layout.alloc_words(1)?);
    }
    let (level, luts, max_tile) = (s.level, s.luts, s.max_tile);
    let kernel =
        |emit: &mut dyn FnMut(&mut crate::kernels::KernelCtx<'_>) -> Result<(), CoreError>| {
            build_kernel(level, luts, max_tile, |ctx| emit(ctx))
        };

    let mut phases: Vec<ClusterPhase> = Vec::new();
    let mut iter = stages.iter().zip(&plan.stages);
    let Some((first, first_split)) = iter.next() else {
        return Err(CoreError::Shape("network has no stages".into()));
    };
    // Stage the first stage's data and emit its phases; remember where
    // the per-inference input window lives so the DMA can target it.
    let (window, width, steps, mut cur_addr, mut cur_width) = match first {
        Stage::Lstm { layer, steps } => {
            let zeros = vec![vec![Q3p12::ZERO; layer.n_in()]; *steps];
            let spec = s.stage_lstm_data(layer, &zeros)?;
            emit_lstm_phases(&mut phases, &spec, first_split, &scratches, &kernel)?;
            (
                spec.x_seq,
                layer.n_in(),
                *steps,
                spec.h_addr(),
                layer.n_hidden(),
            )
        }
        Stage::Fc(layer) => {
            let zeros = vec![Q3p12::ZERO; layer.n_in()];
            let p = s.stage_fc_data(layer, StageInput::Staged(zeros))?;
            emit_fc_phase(&mut phases, &p, first_split, &scratches, &kernel)?;
            (p.x_addr, layer.n_in(), 1, p.out, layer.n_out())
        }
        Stage::Conv(conv) => {
            let zeros = vec![Q3p12::ZERO; conv.n_in()];
            let src = s.stage_vector(&zeros)?;
            let spec = s.stage_conv_data(conv, src, zeros.len())?;
            let globals = conv_core_globals(&mut s, &spec, cores)?;
            emit_conv_phase(
                &mut phases,
                &spec,
                &globals,
                first_split,
                &scratches,
                &kernel,
            )?;
            (src, conv.n_in(), 1, spec.out_base, conv.n_out())
        }
    };
    for (stage, split) in iter {
        match stage {
            Stage::Fc(layer) => {
                let p = s.stage_fc_data(layer, StageInput::Buffer(cur_addr))?;
                emit_fc_phase(&mut phases, &p, split, &scratches, &kernel)?;
                cur_addr = p.out;
                cur_width = layer.n_out();
            }
            Stage::Conv(conv) => {
                let spec = s.stage_conv_data(conv, cur_addr, cur_width)?;
                let globals = conv_core_globals(&mut s, &spec, cores)?;
                emit_conv_phase(&mut phases, &spec, &globals, split, &scratches, &kernel)?;
                cur_addr = spec.out_base;
                cur_width = conv.n_out();
            }
            Stage::Lstm { .. } => {
                return Err(CoreError::Unsupported(
                    "LSTM stages are only supported as the first stage".into(),
                ));
            }
        }
    }

    // L2 staging area: engines patch inputs here; the DMA engine moves
    // them into the kernel's input window before phase 0.
    let l2_base = s.layout.alloc_halves(width * steps)?;
    let dma = vec![DmaXfer {
        src: l2_base,
        dst: window,
        len: (2 * width * steps) as u32,
    }];

    let image = s.machine.mem().image();
    // The flat single-machine program is empty for a clustered artifact;
    // the executable code lives in the per-phase kernels.
    let program = {
        let mut asm = Asm::new(0);
        asm.ecall();
        asm.assemble()?
    };
    let uops = Arc::new(UopProgram::translate(&program));
    Ok(CompiledNetwork {
        program,
        uops,
        image,
        cluster: Some(Arc::new(ClusterProgram { cores, dma, phases })),
        // Guards watch the single-machine uop stream; cluster kernels
        // run on per-core machines outside the monitor's view.
        guards: Arc::new(Vec::new()),
        input: InputDesc {
            base: l2_base,
            width,
            steps,
        },
        output: OutputDesc {
            base: cur_addr,
            len: cur_width,
        },
        level: backend.level(),
        max_tile: backend.max_tile,
        max_cycles: backend.max_cycles,
        name: name.to_string(),
        compile_nanos: started.elapsed().as_nanos() as u64,
    })
}

type KernelBuilder<'a> = dyn Fn(
        &mut dyn FnMut(&mut crate::kernels::KernelCtx<'_>) -> Result<(), CoreError>,
    ) -> Result<ClusterKernel, CoreError>
    + 'a;

/// One FC stage phase: each active core runs its output-row slice of
/// the matvec.
fn emit_fc_phase(
    phases: &mut Vec<ClusterPhase>,
    p: &crate::compile::FcPlacement,
    split: &StageSplit,
    scratches: &[u32],
    kernel: &KernelBuilder<'_>,
) -> Result<(), CoreError> {
    let mut kernels = Vec::with_capacity(split.ranges.len());
    for (c, &(r0, r1)) in split.ranges.iter().enumerate() {
        if r1 == r0 {
            kernels.push(None);
            continue;
        }
        let spec = p.matvec_rows(r0, r1 - r0, scratches[c]);
        kernels.push(Some(kernel(&mut |ctx| emit_matvec(ctx, &spec))?));
    }
    phases.push(ClusterPhase {
        label: split.label.clone(),
        kernels,
    });
    Ok(())
}

/// One LSTM stage: per time step, an `x_t` copy phase (core 0) followed
/// by a gates+update phase where each active core computes its hidden
/// rows.
fn emit_lstm_phases(
    phases: &mut Vec<ClusterPhase>,
    spec: &crate::kernels::lstm::LstmSpec,
    split: &StageSplit,
    scratches: &[u32],
    kernel: &KernelBuilder<'_>,
) -> Result<(), CoreError> {
    let cores = split.ranges.len();
    let words = spec.n_in / 2;
    for t in 0..spec.steps {
        let src = spec.x_seq + (t * spec.n_in * 2) as u32;
        let mut copy = vec![None; cores];
        copy[0] = Some(kernel(&mut |ctx| {
            emit_word_copy(ctx, src, spec.xh, words);
            Ok(())
        })?);
        phases.push(ClusterPhase {
            label: format!("{} step {t} x-copy", split.label),
            kernels: copy,
        });
        // Gates and update are separate phases: the update writes h_t
        // back into the combined buffer, which every core's gate
        // matvecs still read as h_{t-1} — a barrier must sit between.
        let mut gates = Vec::with_capacity(cores);
        let mut update = Vec::with_capacity(cores);
        for (c, &(r0, r1)) in split.ranges.iter().enumerate() {
            if r1 == r0 {
                gates.push(None);
                update.push(None);
                continue;
            }
            let mut sc = *spec;
            sc.scratch = scratches[c];
            gates.push(Some(kernel(&mut |ctx| {
                for g in 0..4 {
                    emit_matvec(ctx, &sc.gate_matvec_rows(g, r0, r1 - r0))?;
                }
                Ok(())
            })?));
            update.push(Some(kernel(&mut |ctx| {
                emit_update_rows(ctx, &sc, r0, r1 - r0);
                Ok(())
            })?));
        }
        phases.push(ClusterPhase {
            label: format!("{} step {t} gates", split.label),
            kernels: gates,
        });
        phases.push(ClusterPhase {
            label: format!("{} step {t} update", split.label),
            kernels: update,
        });
    }
    Ok(())
}

/// Allocates the per-core pixel-loop global cells for one convolution
/// stage (core 0 reuses the staged spec's cells).
fn conv_core_globals(
    s: &mut Session,
    spec: &crate::kernels::conv::ConvSpec,
    cores: usize,
) -> Result<Vec<(u32, u32, u32)>, CoreError> {
    let mut globals = vec![(spec.g_pix, spec.g_out, spec.g_cnt)];
    for _ in 1..cores {
        globals.push((
            s.layout.alloc_words(1)?,
            s.layout.alloc_words(1)?,
            s.layout.alloc_words(1)?,
        ));
    }
    Ok(globals)
}

/// One convolution stage phase: each active core gathers and convolves
/// its output-pixel slice, with private loop globals.
fn emit_conv_phase(
    phases: &mut Vec<ClusterPhase>,
    spec: &crate::kernels::conv::ConvSpec,
    globals: &[(u32, u32, u32)],
    split: &StageSplit,
    scratches: &[u32],
    kernel: &KernelBuilder<'_>,
) -> Result<(), CoreError> {
    spec.validate()?;
    let mut kernels = Vec::with_capacity(split.ranges.len());
    for (c, &(p0, p1)) in split.ranges.iter().enumerate() {
        if p1 == p0 {
            kernels.push(None);
            continue;
        }
        let mut sc = *spec;
        sc.scratch = scratches[c];
        (sc.g_pix, sc.g_out, sc.g_cnt) = globals[c];
        kernels.push(Some(kernel(&mut |ctx| {
            emit_gather_range(ctx, &sc, p0, p1 - p0);
            emit_pixel_loop_range(ctx, &sc, p0, p1 - p0)
        })?));
    }
    phases.push(ClusterPhase {
        label: split.label.clone(),
        kernels,
    });
    Ok(())
}
