//! Self-healing execution: watchdog-bounded runs with a recovery ladder.
//!
//! A [`ResilientEngine`] wraps an [`Engine`] and treats every
//! [`SimError`] as a recoverable event rather than a dead process. The
//! ladder, climbed one rung per failed attempt under a [`RetryPolicy`]:
//!
//! 0. **Verify** — a run that *succeeded* but tripped an ABFT guard
//!    ([`Engine::set_guards`]) re-executes the whole net on rewound
//!    memory. A clean repeat classifies the corruption as
//!    [`SdcVerdict::Transient`]; a repeat trip as
//!    [`SdcVerdict::Sticky`], which climbs straight to rebuild.
//! 1. **Rewind** — the engine's eager post-failure heal already restored
//!    every tracked write from the staged image and disarmed leftover
//!    fault state, so a retry costs only the dirty-block restore. This
//!    clears transient corruption: flipped registers, tracked memory
//!    upsets, a stuck forced watchdog.
//! 2. **Rebuild** — [`Engine::heal_rebuild`]: fresh memory from the full
//!    staged image and a program reload. This is the answer when the
//!    dirty-block bitmap itself cannot be trusted — a *silent* memory
//!    flip the write tracking never saw, or a corrupted instruction
//!    word, survives any number of rewinds but not a rebuild.
//! 3. **Degrade** — recompile one [`OptLevel`] rung lower
//!    ([`OptLevel::lower`]) and rebuild the engine from the new
//!    artifact. Every level is bit-exact against the golden models, so a
//!    degraded run still produces reference outputs — just in more
//!    cycles, on a smaller ISA surface. This models falling back to
//!    plain RV32IMC when the custom extensions are suspect.
//!
//! Non-simulation errors (shape mismatches, layout overflows) are not
//! recoverable by re-execution and abort the ladder immediately.
//!
//! Every attempt — including the successful one — is recorded in the
//! returned [`RunOutcome`], so fault campaigns can report not just
//! *whether* a trial recovered but *which rung* recovered it.
//!
//! # Example
//!
//! ```
//! use rnnasip_core::{
//!     FaultPlan, KernelBackend, OptLevel, RecoveryAction, ResilientEngine,
//! };
//!
//! let net = rnnasip_rrm::suite().remove(3).network; // eisen2019 MLP
//! let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile))?;
//! let input = vec![rnnasip_rrm::seeded_input(net.n_in(), 1)];
//!
//! let golden = engine.run(&input);
//! assert!(golden.result.is_ok());
//!
//! // A forced watchdog hangs the first attempt; the retry recovers.
//! engine.inject_faults(&FaultPlan::new().with_watchdog(10));
//! let outcome = engine.run(&input);
//! assert!(outcome.recovered());
//! assert_eq!(outcome.attempts.len(), 2);
//! assert_eq!(outcome.attempts[1].action, RecoveryAction::Rewind);
//! assert_eq!(
//!     outcome.result.unwrap().outputs,
//!     golden.result.unwrap().outputs,
//! );
//! # Ok::<(), rnnasip_core::CoreError>(())
//! ```

use crate::engine::Engine;
use crate::error::CoreError;
use crate::optlevel::OptLevel;
use crate::runner::{KernelBackend, NetworkRun};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use rnnasip_sim::{FaultPlan, SimError};

/// How many recovery rungs a [`ResilientEngine`] may climb per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Verify re-runs after a *successful* attempt whose ABFT guards
    /// flagged silent data corruption (rung 0, below rewind). The
    /// re-run costs one dirty-block restore plus the run itself; its
    /// guard verdict classifies the corruption as
    /// [`SdcVerdict::Transient`] (the retry healed it) or
    /// [`SdcVerdict::Sticky`] (climb to rebuild/degrade).
    pub max_verifies: u32,
    /// Retries after the engine's eager rewind (rung 1). Each one costs
    /// a dirty-block restore plus the re-run itself.
    pub max_rewinds: u32,
    /// Whether a full image rebuild (rung 2) is allowed once the rewind
    /// budget is exhausted.
    pub rebuild: bool,
    /// Whether recompiling at lower [`OptLevel`]s (rung 3) is allowed,
    /// walking [`OptLevel::lower`] down to `Baseline` if needed.
    pub degrade: bool,
    /// Run attempts through the reference per-step interpreter instead
    /// of the micro-op path (for differential campaigns; architectural
    /// results are bit-identical).
    pub reference: bool,
}

impl Default for RetryPolicy {
    /// One verify re-run, one rewind retry, then rebuild, then degrade
    /// — the full ladder.
    fn default() -> Self {
        Self {
            max_verifies: 1,
            max_rewinds: 1,
            rebuild: true,
            degrade: true,
            reference: false,
        }
    }
}

impl RetryPolicy {
    /// The full ladder with default budgets ([`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the guard-verify re-run budget.
    #[must_use]
    pub fn with_max_verifies(mut self, n: u32) -> Self {
        self.max_verifies = n;
        self
    }

    /// Sets the rewind-retry budget.
    #[must_use]
    pub fn with_max_rewinds(mut self, n: u32) -> Self {
        self.max_rewinds = n;
        self
    }

    /// Enables or disables the rebuild rung.
    #[must_use]
    pub fn with_rebuild(mut self, on: bool) -> Self {
        self.rebuild = on;
        self
    }

    /// Enables or disables the degradation rung.
    #[must_use]
    pub fn with_degrade(mut self, on: bool) -> Self {
        self.degrade = on;
        self
    }

    /// Selects the reference interpreter for every attempt.
    #[must_use]
    pub fn with_reference(mut self, on: bool) -> Self {
        self.reference = on;
        self
    }
}

/// Which recovery rung produced an attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The initial attempt — no recovery preceded it.
    FirstTry,
    /// Re-run after a *successful* attempt tripped an ABFT guard: the
    /// whole net re-executes on rewound memory and the fresh guard
    /// verdict separates transient from sticky corruption.
    Verify,
    /// Retry after the engine's eager dirty-block rewind.
    Rewind,
    /// Retry after a full rebuild from the staged image.
    Rebuild,
    /// Retry after recompiling one [`OptLevel`] lower.
    Degrade,
}

/// What a [`RecoveryAction::Verify`] re-run concluded about a guard
/// trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdcVerdict {
    /// The re-run came back clean: the corruption lived in state the
    /// rewind restores (a tracked memory flip, a register upset) and is
    /// gone.
    Transient,
    /// The re-run tripped again: the corruption survives rewinds (a
    /// silent memory flip the write tracking never saw) — only the
    /// rebuild/degrade rungs can clear it.
    Sticky,
}

/// One attempt of a resilient run: what recovery preceded it, at which
/// level it ran, and how it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// The rung that set this attempt up.
    pub action: RecoveryAction,
    /// Optimization level the attempt ran at.
    pub level: OptLevel,
    /// The simulation error that ended the attempt, or `None` if it
    /// succeeded.
    pub error: Option<SimError>,
    /// The core whose fault activity ended the attempt — core 0 for a
    /// single-machine engine, the faulting cluster core for a clustered
    /// one, `None` for clean attempts.
    pub faulted_core: Option<usize>,
    /// Whether this attempt succeeded but tripped an ABFT guard.
    pub guard_failed: bool,
    /// Index of the first guarded region that flagged this attempt
    /// (`None` for clean attempts and for trips caught only by the
    /// final-output window check).
    pub guard_region: Option<usize>,
    /// The conclusion of a [`RecoveryAction::Verify`] re-run, on the
    /// verify attempt itself.
    pub verdict: Option<SdcVerdict>,
}

/// The structured result of a resilient run: the final outcome plus the
/// full attempt history.
#[derive(Debug)]
pub struct RunOutcome {
    /// The final result — the successful run, or the error that
    /// exhausted the ladder.
    pub result: Result<NetworkRun, CoreError>,
    /// Every attempt in order; the last entry describes `result`.
    pub attempts: Vec<Attempt>,
    /// Optimization level of the final attempt (lower than the engine
    /// started at if degradation kicked in).
    pub level: OptLevel,
}

impl RunOutcome {
    /// Whether the run succeeded only thanks to recovery (at least one
    /// failed attempt before the successful one).
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.attempts.len() > 1
    }

    /// Whether any attempt's ABFT guards flagged silent data corruption.
    pub fn sdc_detected(&self) -> bool {
        self.attempts.iter().any(|a| a.guard_failed)
    }

    /// Whether guards flagged corruption *and* the final attempt came
    /// back clean — the ladder contained the SDC.
    pub fn sdc_healed(&self) -> bool {
        self.result.is_ok()
            && self.sdc_detected()
            && self.attempts.last().is_some_and(|a| !a.guard_failed)
    }
}

/// A self-healing wrapper around an [`Engine`].
///
/// See the [module docs](self) for the recovery ladder and an example.
#[derive(Debug)]
pub struct ResilientEngine {
    net: Network,
    backend: KernelBackend,
    policy: RetryPolicy,
    engine: Engine,
    guards_on: bool,
}

impl ResilientEngine {
    /// Compiles `net` with `backend` and wraps the engine with the
    /// default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]).
    pub fn new(net: &Network, backend: KernelBackend) -> Result<Self, CoreError> {
        Self::with_policy(net, backend, RetryPolicy::default())
    }

    /// [`new`](Self::new) with an explicit policy.
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]).
    pub fn with_policy(
        net: &Network,
        backend: KernelBackend,
        policy: RetryPolicy,
    ) -> Result<Self, CoreError> {
        let engine = backend.compile_network(net)?.engine();
        Ok(Self {
            net: net.clone(),
            backend,
            policy,
            engine,
            guards_on: false,
        })
    }

    /// Arms (or disarms) ABFT guards on the wrapped engine. The setting
    /// is sticky: it survives rebuilds, degradation and
    /// [`restore_level`](Self::restore_level), all of which re-create
    /// the underlying machine.
    pub fn set_guards(&mut self, on: bool) {
        self.guards_on = on;
        self.engine.set_guards(on);
    }

    /// The wrapped engine (post-mortem state, `last_fault_log`, …).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The level the engine currently runs at — the compiled level, or
    /// lower after degradation. Degradation is sticky: later runs stay
    /// at the degraded level until [`restore_level`](Self::restore_level).
    pub fn level(&self) -> OptLevel {
        self.engine.compiled().level()
    }

    /// Arms a [`FaultPlan`] for the next attempt only (the engine
    /// disarms it after that attempt, so retries run clean — which is
    /// precisely what lets them recover from the injected fault).
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        self.engine.inject_faults(plan);
    }

    /// Recompiles at the originally configured level, undoing any
    /// degradation.
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]).
    pub fn restore_level(&mut self) -> Result<(), CoreError> {
        if self.level() != self.backend.level() {
            self.engine = self.backend.compile_network(&self.net)?.engine();
            self.engine.set_guards(self.guards_on);
        }
        Ok(())
    }

    /// Recompiles one [`OptLevel`] lower and swaps the engine. `None`
    /// when degradation is off-policy or the level is already
    /// `Baseline`; `Some(Err)` surfaces a compile failure.
    fn degrade(&mut self, level: OptLevel) -> Option<Result<(), CoreError>> {
        if !self.policy.degrade {
            return None;
        }
        let lower = level.lower()?;
        Some(
            self.backend
                .clone()
                .with_level(lower)
                .compile_network(&self.net)
                .map(|compiled| {
                    self.engine = compiled.engine();
                    self.engine.set_guards(self.guards_on);
                }),
        )
    }

    /// Runs one inference, climbing the recovery ladder as needed.
    /// Never panics on simulation failures; the returned [`RunOutcome`]
    /// holds the final result and the attempt history.
    pub fn run(&mut self, sequence: &[Vec<Q3p12>]) -> RunOutcome {
        let mut attempts = Vec::new();
        let mut action = RecoveryAction::FirstTry;
        let mut verifies_left = self.policy.max_verifies;
        let mut rewinds_left = self.policy.max_rewinds;
        let mut rebuild_left = self.policy.rebuild;
        loop {
            let level = self.level();
            let result = if self.policy.reference {
                self.engine.run_reference(sequence)
            } else {
                self.engine.run(sequence)
            };
            match result {
                Ok(run) => {
                    let guard_failed = run.report.guard_failed();
                    // A verify re-run's own verdict: a clean repeat
                    // means the rewind healed the corruption; another
                    // trip means it lives in state rewinds cannot reach.
                    let verdict = (action == RecoveryAction::Verify).then_some(if guard_failed {
                        SdcVerdict::Sticky
                    } else {
                        SdcVerdict::Transient
                    });
                    attempts.push(Attempt {
                        action,
                        level,
                        error: None,
                        faulted_core: None,
                        guard_failed,
                        guard_region: run.report.guard().and_then(|g| g.first_failed_region()),
                        verdict,
                    });
                    if !guard_failed {
                        return RunOutcome {
                            result: Ok(run),
                            attempts,
                            level,
                        };
                    }
                    // The run completed but its outputs are suspect:
                    // climb verify → rebuild → degrade. (Rewind adds
                    // nothing here — every run already starts from a
                    // rewound machine, so the verify re-run *is* the
                    // rewind test.)
                    if verifies_left > 0 {
                        verifies_left -= 1;
                        action = RecoveryAction::Verify;
                    } else if rebuild_left {
                        rebuild_left = false;
                        self.engine.heal_rebuild();
                        action = RecoveryAction::Rebuild;
                    } else {
                        match self.degrade(level) {
                            Some(Ok(())) => action = RecoveryAction::Degrade,
                            Some(Err(compile_err)) => {
                                return RunOutcome {
                                    result: Err(compile_err),
                                    attempts,
                                    level,
                                };
                            }
                            // Ladder exhausted: surface the flagged run
                            // — the caller sees both the outputs and the
                            // standing detection in the attempt history.
                            None => {
                                return RunOutcome {
                                    result: Ok(run),
                                    attempts,
                                    level,
                                };
                            }
                        }
                    }
                }
                Err(CoreError::Sim(e)) => {
                    attempts.push(Attempt {
                        action,
                        level,
                        error: Some(e.clone()),
                        faulted_core: self.engine.last_faulted_core(),
                        guard_failed: false,
                        guard_region: None,
                        verdict: None,
                    });
                    if rewinds_left > 0 {
                        // The engine already rewound eagerly on failure;
                        // the retry itself is the recovery.
                        rewinds_left -= 1;
                        action = RecoveryAction::Rewind;
                    } else if rebuild_left {
                        rebuild_left = false;
                        self.engine.heal_rebuild();
                        action = RecoveryAction::Rebuild;
                    } else {
                        match self.degrade(level) {
                            Some(Ok(())) => action = RecoveryAction::Degrade,
                            Some(Err(compile_err)) => {
                                return RunOutcome {
                                    result: Err(compile_err),
                                    attempts,
                                    level,
                                };
                            }
                            None => {
                                return RunOutcome {
                                    result: Err(CoreError::Sim(e)),
                                    attempts,
                                    level,
                                };
                            }
                        }
                    }
                }
                Err(other) => {
                    // Shape/layout/assembly errors are deterministic
                    // properties of the request, not transient faults.
                    attempts.push(Attempt {
                        action,
                        level,
                        error: None,
                        faulted_core: None,
                        guard_failed: false,
                        guard_region: None,
                        verdict: None,
                    });
                    return RunOutcome {
                        result: Err(other),
                        attempts,
                        level,
                    };
                }
            }
        }
    }
}
