//! Run reports: cycles, instructions, MACs, and derived metrics.

use rnnasip_sim::{GuardReport, Stats};

/// One cluster core's share of a run: its per-mnemonic statistics and
/// the banking-conflict stalls the TCDM model charged it.
#[derive(Clone, Debug, Default)]
pub struct CoreReport {
    /// Cluster core index.
    pub core: usize,
    /// This core's per-mnemonic statistics.
    pub stats: Stats,
    /// Analytic TCDM banking-conflict stall cycles charged to this core.
    pub conflict_stalls: u64,
}

/// The outcome metrics of one kernel or network run.
///
/// Wraps the simulator's per-mnemonic [`Stats`] and adds the derived
/// quantities the paper reports: cycles per MAC and MAC throughput at a
/// given clock. When the runner records how long the host took to
/// simulate the run ([`with_host_nanos`](Self::with_host_nanos)), the
/// report can also state the *simulator's* own speed in simulated MIPS
/// ([`sim_mips`](Self::sim_mips)) — the metric the `sim-throughput`
/// bench tracks.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    stats: Stats,
    host_nanos: u64,
    per_core: Vec<CoreReport>,
    dma_cycles: u64,
    barrier_cycles: u64,
    /// Cluster critical-path latency; `None` for single-machine runs,
    /// whose latency is simply [`cycles`](Self::cycles).
    latency_cycles: Option<u64>,
    /// ABFT guard verdicts, when the engine ran with guards armed.
    guard: Option<GuardReport>,
}

impl RunReport {
    /// Wraps simulator statistics.
    pub fn new(stats: Stats) -> Self {
        Self {
            stats,
            ..Self::default()
        }
    }

    /// Attaches a cluster run's breakdown: per-core reports, the DMA and
    /// barrier cycle totals, and the critical-path latency.
    #[must_use]
    pub fn with_cluster(
        mut self,
        per_core: Vec<CoreReport>,
        dma_cycles: u64,
        barrier_cycles: u64,
        latency_cycles: u64,
    ) -> Self {
        self.per_core = per_core;
        self.dma_cycles = dma_cycles;
        self.barrier_cycles = barrier_cycles;
        self.latency_cycles = Some(latency_cycles);
        self
    }

    /// Per-core breakdown of a cluster run (empty for single-machine
    /// runs).
    pub fn per_core(&self) -> &[CoreReport] {
        &self.per_core
    }

    /// DMA engine cycles spent staging inputs (0 for single-machine
    /// runs).
    pub fn dma_cycles(&self) -> u64 {
        self.dma_cycles
    }

    /// Cycles spent in cluster barriers (0 for single-machine runs).
    pub fn barrier_cycles(&self) -> u64 {
        self.barrier_cycles
    }

    /// End-to-end latency of the run: the cluster critical path when the
    /// run was clustered, otherwise the single machine's cycle total.
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles.unwrap_or_else(|| self.cycles())
    }

    /// Attaches the per-region ABFT guard verdicts of a guarded run.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardReport) -> Self {
        self.guard = Some(guard);
        self
    }

    /// The guard verdicts, when the run executed with guards armed.
    pub fn guard(&self) -> Option<&GuardReport> {
        self.guard.as_ref()
    }

    /// Whether any armed guard flagged this run (always `false` for
    /// unguarded runs).
    pub fn guard_failed(&self) -> bool {
        self.guard.as_ref().is_some_and(GuardReport::failed)
    }

    /// Attaches the host wall-clock time the simulation took.
    #[must_use]
    pub fn with_host_nanos(mut self, nanos: u64) -> Self {
        self.host_nanos = nanos;
        self
    }

    /// Host wall-clock nanoseconds spent simulating (0 if not recorded).
    pub fn host_nanos(&self) -> u64 {
        self.host_nanos
    }

    /// Simulator speed in millions of simulated instructions per host
    /// second, or `None` if no host time was recorded.
    pub fn sim_mips(&self) -> Option<f64> {
        if self.host_nanos == 0 {
            return None;
        }
        Some(self.instrs() as f64 / (self.host_nanos as f64 / 1e9) / 1e6)
    }

    /// The per-mnemonic statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles()
    }

    /// Total retired instructions.
    pub fn instrs(&self) -> u64 {
        self.stats.instrs()
    }

    /// Total 16-bit MAC operations.
    pub fn mac_ops(&self) -> u64 {
        self.stats.mac_ops()
    }

    /// Cycles per MAC (lower is better; the extended core approaches 0.5
    /// because `pl.sdotsp.h` retires two MACs per cycle).
    pub fn cycles_per_mac(&self) -> f64 {
        if self.mac_ops() == 0 {
            f64::NAN
        } else {
            self.cycles() as f64 / self.mac_ops() as f64
        }
    }

    /// Throughput in MMAC/s at clock frequency `f_hz`.
    ///
    /// At the paper's 380 MHz operating point the extended core reaches
    /// 566 MMAC/s on the benchmark suite.
    pub fn mmacs_at(&self, f_hz: f64) -> f64 {
        if self.cycles() == 0 {
            return 0.0;
        }
        self.mac_ops() as f64 / self.cycles() as f64 * f_hz / 1e6
    }

    /// Merges another report into this one. Host times add up, so an
    /// aggregate report's [`sim_mips`](Self::sim_mips) is the overall
    /// rate across its parts.
    pub fn merge(&mut self, other: &RunReport) {
        // Latency falls back to the cycle total, which is about to
        // change — resolve both sides first.
        let latency = match (self.latency_cycles, other.latency_cycles) {
            (None, None) => None,
            _ => Some(self.latency_cycles() + other.latency_cycles()),
        };
        self.stats.merge(&other.stats);
        self.host_nanos += other.host_nanos;
        self.dma_cycles += other.dma_cycles;
        self.barrier_cycles += other.barrier_cycles;
        self.latency_cycles = latency;
        match (&mut self.guard, &other.guard) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.guard = Some(theirs.clone()),
            _ => {}
        }
        // Per-core rows merge by core index, so the result is the same
        // whichever order the parts arrive in.
        for row in &other.per_core {
            match self.per_core.iter_mut().find(|r| r.core == row.core) {
                Some(mine) => {
                    mine.stats.merge(&row.stats);
                    mine.conflict_stalls += row.conflict_stalls;
                }
                None => self.per_core.push(row.clone()),
            }
        }
        self.per_core.sort_by_key(|r| r.core);
    }

    /// Aggregates any number of reports into one (suite totals,
    /// staged-run totals). The empty iterator yields the default report.
    ///
    /// # Example
    ///
    /// ```
    /// use rnnasip_core::RunReport;
    ///
    /// let parts: Vec<RunReport> = Vec::new();
    /// assert_eq!(RunReport::merged(&parts).cycles(), 0);
    /// ```
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a RunReport>) -> RunReport {
        let mut total = RunReport::default();
        for part in parts {
            total.merge(part);
        }
        total
    }
}

impl From<Stats> for RunReport {
    fn from(stats: Stats) -> Self {
        Self::new(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = Stats::new();
        // Two pl.sdotsp at 1 cycle each: 4 MACs in 2 cycles.
        s.record_name("pl.sdotsp", 1, 2);
        s.record_name("pl.sdotsp", 1, 2);
        let r = RunReport::new(s);
        assert_eq!(r.cycles_per_mac(), 0.5);
        // 2 MAC/cycle * 380 MHz = 760 MMAC/s.
        assert!((r.mmacs_at(380e6) - 760.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_nan_not_panic() {
        let r = RunReport::default();
        assert!(r.cycles_per_mac().is_nan());
        assert_eq!(r.mmacs_at(380e6), 0.0);
        assert_eq!(r.sim_mips(), None);
    }

    #[test]
    fn cluster_merge_is_order_independent_and_sums_stall_rows() {
        let core_row = |core: usize, mnemonic: &str, stalls: u64| {
            let mut s = Stats::new();
            s.record_name(mnemonic, 1, 2);
            CoreReport {
                core,
                stats: s,
                conflict_stalls: stalls,
            }
        };
        let mut sa = Stats::new();
        sa.record_name("lw", 3, 4);
        let a = RunReport::new(sa).with_cluster(
            vec![core_row(0, "lw", 5), core_row(1, "sw", 7)],
            10,
            16,
            100,
        );
        let mut sb = Stats::new();
        sb.record_name("sw", 2, 2);
        let b = RunReport::new(sb).with_cluster(vec![core_row(1, "sw", 3)], 4, 8, 50);
        // A plain (non-cluster) part: its latency contribution is its
        // cycle total.
        let mut sc = Stats::new();
        sc.record_name("addi", 6, 6);
        let c = RunReport::new(sc);

        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut ba = c.clone();
        ba.merge(&b);
        ba.merge(&a);

        for r in [&ab, &ba] {
            assert_eq!(r.dma_cycles(), 14);
            assert_eq!(r.barrier_cycles(), 24);
            // 100 + 50 + 6 (the plain part's cycles).
            assert_eq!(r.latency_cycles(), 156);
            assert_eq!(r.per_core().len(), 2);
            assert_eq!(r.per_core()[0].core, 0);
            assert_eq!(r.per_core()[0].conflict_stalls, 5);
            assert_eq!(r.per_core()[1].core, 1);
            assert_eq!(r.per_core()[1].conflict_stalls, 10);
            assert_eq!(r.per_core()[1].stats.row("sw").instrs, 2);
        }
        // Merging no cluster parts leaves the latency implicit.
        let mut plain = c.clone();
        plain.merge(&c);
        assert_eq!(plain.latency_cycles(), plain.cycles());
    }

    #[test]
    fn sim_mips_from_host_time() {
        let mut s = Stats::new();
        for _ in 0..1000 {
            s.record_name("addi", 1, 0);
        }
        // 1000 instructions in 1 ms -> 1 MIPS.
        let r = RunReport::new(s).with_host_nanos(1_000_000);
        assert!((r.sim_mips().unwrap() - 1.0).abs() < 1e-9);
        // Merging two such reports keeps the rate (2000 instrs / 2 ms).
        let mut a = r.clone();
        a.merge(&r);
        assert!((a.sim_mips().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(a.host_nanos(), 2_000_000);
    }
}
