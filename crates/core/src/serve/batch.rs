//! Batch vocabulary for the serving layer: a slab of inference requests
//! in, per-request results plus an order-independent aggregate out.

use crate::error::CoreError;
use crate::optlevel::OptLevel;
use crate::report::RunReport;
use crate::resilience::RecoveryAction;
use crate::runner::NetworkRun;
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use rnnasip_sim::FaultPlan;
use std::sync::Arc;

/// One inference request inside a [`BatchRequest`]: which network at
/// which optimization level, and the input window to score.
///
/// The network rides behind an `Arc` so a slab of thousands of requests
/// against one policy net shares a single copy of the weights.
#[derive(Clone, Debug)]
pub struct BatchItem {
    pub(crate) net: Arc<Network>,
    pub(crate) level: OptLevel,
    pub(crate) sequence: Vec<Vec<Q3p12>>,
    pub(crate) fault: Option<FaultPlan>,
}

impl BatchItem {
    /// The network this request targets.
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// The optimization level this request runs at.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// The input window (`seq_len` steps of `n_in` elements).
    pub fn sequence(&self) -> &[Vec<Q3p12>] {
        &self.sequence
    }
}

/// A slab of inference requests submitted to an
/// [`EnginePool`](crate::serve::EnginePool) as one unit.
///
/// Responses come back in **submission order** regardless of how the
/// pool schedules the work, so index `i` of the response always answers
/// item `i` of the request.
#[derive(Clone, Debug, Default)]
pub struct BatchRequest {
    pub(crate) items: Vec<BatchItem>,
}

impl BatchRequest {
    /// An empty batch (valid to submit; completes immediately).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one request for `net` at `level` with input `sequence`.
    pub fn push(&mut self, net: Arc<Network>, level: OptLevel, sequence: Vec<Vec<Q3p12>>) {
        self.items.push(BatchItem {
            net,
            level,
            sequence,
            fault: None,
        });
    }

    /// Like [`push`](Self::push), but arming `plan` for the request's
    /// first attempt — the fault-injection hook the resilience tests use
    /// to prove a worker heals in place without stalling the batch.
    pub fn push_with_faults(
        &mut self,
        net: Arc<Network>,
        level: OptLevel,
        sequence: Vec<Vec<Q3p12>>,
        plan: FaultPlan,
    ) {
        self.items.push(BatchItem {
            net,
            level,
            sequence,
            fault: Some(plan),
        });
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of one batch item: the run (or the error that exhausted
/// the worker's in-place recovery ladder) plus which recovery rung, if
/// any, the worker had to climb to produce it.
#[derive(Debug)]
pub struct ItemOutcome {
    /// The inference result, bit-identical to a serial
    /// [`Engine::run`](crate::Engine::run) of the same request.
    pub result: Result<NetworkRun, CoreError>,
    /// `FirstTry` when the request ran clean; `Verify`/`Rewind`/
    /// `Rebuild` when the worker healed its engine in place before
    /// succeeding (or before giving up, for an `Err` result).
    pub recovery: RecoveryAction,
    /// Whether an ABFT guard flagged silent data corruption on any
    /// attempt of this request (guarded pools only).
    pub sdc_detected: bool,
    /// Whether a flagged request's final attempt came back clean — the
    /// worker's verify/rebuild ladder contained the corruption.
    pub sdc_healed: bool,
}

impl ItemOutcome {
    /// Whether the request succeeded only thanks to in-place recovery.
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.recovery != RecoveryAction::FirstTry
    }
}

/// The completed batch: one [`ItemOutcome`] per request, in submission
/// order.
#[derive(Debug)]
pub struct BatchResponse {
    pub(crate) outcomes: Vec<ItemOutcome>,
}

impl BatchResponse {
    /// Per-request outcomes, index-aligned with the submitted batch.
    pub fn outcomes(&self) -> &[ItemOutcome] {
        &self.outcomes
    }

    /// Consumes the response into its outcomes.
    pub fn into_outcomes(self) -> Vec<ItemOutcome> {
        self.outcomes
    }

    /// Number of requests answered.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch held no requests.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Whether every request succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// How many requests needed in-place recovery to succeed.
    pub fn recovered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.recovered()).count()
    }

    /// Aggregate statistics over the successful runs, merged in
    /// submission order via [`RunReport::merged`]. Per-mnemonic rows are
    /// sums of `u64` counters, so the aggregate is identical for every
    /// worker count and arrival order — the determinism the pool tests
    /// pin against the serial suite golden.
    pub fn merged_report(&self) -> RunReport {
        RunReport::merged(
            self.outcomes
                .iter()
                .filter_map(|o| o.result.as_ref().ok())
                .map(|run| &run.report),
        )
    }
}
