//! Fixed-bucket log-linear latency accounting for the traffic front-end.
//!
//! Request latencies under the deadline model are **virtual cycles** —
//! exact `u64`s produced by the deterministic simulator — so the
//! histogram is built for byte-determinism first: integer-only
//! recording, integer-only percentile extraction, and a merge that is
//! associative and commutative (plain counter addition). Two runs of the
//! same city on any host, at any worker count, produce identical
//! histograms and therefore identical reported percentiles.
//!
//! The bucket layout is the classic log-linear scheme (as used by
//! HdrHistogram): values below [`SUB`] get one bucket each (exact), and
//! every power-of-two range above that is split into [`SUB`] linear
//! sub-buckets, bounding the relative quantization error of any reported
//! percentile at `1/SUB` (6.25%) while keeping the whole table a flat
//! 976-slot array.

/// Log2 of the sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 4;

/// Sub-buckets per power-of-two range; also the top of the exact range.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: one group of [`SUB`] exact buckets for `0..SUB`,
/// then 16 sub-buckets for each of the 60 power-of-two ranges
/// `[2^4, 2^64)`.
const NBUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Index of the bucket holding `v`.
fn bucket(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        group * SUB as usize + sub
    }
}

/// Largest value mapped to bucket `index` — the value percentiles
/// report, making every reported percentile an upper bound on the true
/// one (a latency number that errs pessimistic).
fn bucket_high(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let group = (index / SUB as usize) as u32;
        let sub = (index % SUB as usize) as u64;
        let msb = group + SUB_BITS - 1;
        let width = 1u64 << (msb - SUB_BITS);
        (1u64 << msb) + sub * width + (width - 1)
    }
}

/// A deterministic fixed-size latency histogram over `u64` values
/// (virtual cycles).
///
/// # Example
///
/// ```
/// use rnnasip_core::serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.percentile_ppm(500_000), 51); // p50, bucket upper bound
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (sum / count, truncating; 0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// The value at quantile `ppm` parts-per-million (e.g. `500_000` for
    /// p50, `990_000` for p99, `999_000` for p999), computed entirely in
    /// integers: the rank is `ceil(count * ppm / 1e6)` clamped to
    /// `[1, count]`, and the returned value is the upper bound of the
    /// bucket containing that rank, clamped into the observed
    /// `[min, max]` range. Returns 0 on an empty histogram.
    pub fn percentile_ppm(&self, ppm: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(ppm))
            .div_ceil(1_000_000)
            .clamp(1, u128::from(self.count)) as u64;
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile_ppm(500_000)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile_ppm(990_000)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile_ppm(999_000)
    }

    /// Adds every value of `other` into `self`. Counter addition
    /// commutes and associates, so merging per-class (or per-shard)
    /// histograms in any grouping yields the identical aggregate — the
    /// property the merge-associativity test pins.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_rng::StdRng;

    #[test]
    fn buckets_are_exact_below_sub_and_within_bounds_above() {
        for v in 0..SUB {
            assert_eq!(bucket(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
        // Every value lands in a bucket whose [low, high] contains it,
        // with width <= v / SUB.
        for &v in &[16u64, 31, 32, 33, 100, 1000, 65535, 1 << 40, u64::MAX] {
            let i = bucket(v);
            let high = bucket_high(i);
            assert!(high >= v, "v={v} high={high}");
            assert!(high - v <= v / SUB, "v={v} high={high}");
        }
        assert_eq!(bucket(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn exact_percentiles_on_known_distributions() {
        // Values 0..16 are exact buckets: percentiles are exact order
        // statistics (rank = ceil(q * n)).
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_ppm(500_000), 7); // rank 8 -> value 7
        assert_eq!(h.percentile_ppm(1_000_000), 15);
        assert_eq!(h.percentile_ppm(62_500), 0); // rank 1
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.mean(), 7); // 120/16 truncated

        // A point mass: every percentile is that point.
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(42);
        }
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.p999(), 42);

        // 1..=100 uniform: p99 = rank 99 -> value 99, bucket [96,99].
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p99(), 99);
        assert_eq!(h.p999(), 100);
        assert_eq!(h.mean(), 50);
    }

    #[test]
    fn percentiles_clamp_into_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000); // wide bucket; upper bound > 1_000_000
        assert_eq!(h.p999(), 1_000_000);
        assert_eq!(h.p50(), 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        // Seeded property test: any grouping of merges equals recording
        // every value into one histogram.
        let mut rng = StdRng::seed_from_u64(0x1a7e);
        for trial in 0..20 {
            let parts: Vec<Vec<u64>> = (0..4)
                .map(|_| {
                    (0..50 + trial * 7)
                        .map(|_| rng.next_u64() >> (rng.next_u64() % 50))
                        .collect()
                })
                .collect();
            let hists: Vec<LatencyHistogram> = parts
                .iter()
                .map(|vs| {
                    let mut h = LatencyHistogram::new();
                    for &v in vs {
                        h.record(v);
                    }
                    h
                })
                .collect();

            // ((a+b)+c)+d
            let mut left = hists[0].clone();
            for h in &hists[1..] {
                left.merge(h);
            }
            // a+((b+(c+d))) — a different grouping and merge order.
            let mut cd = hists[2].clone();
            cd.merge(&hists[3]);
            let mut bcd = hists[1].clone();
            bcd.merge(&cd);
            let mut right = hists[0].clone();
            right.merge(&bcd);

            let mut flat = LatencyHistogram::new();
            for vs in &parts {
                for &v in vs {
                    flat.record(v);
                }
            }
            assert_eq!(left, flat, "trial {trial}: left grouping");
            assert_eq!(right, flat, "trial {trial}: right grouping");
        }
    }
}
