//! Deadline-aware traffic front-end over the [`EnginePool`]: micro-
//! batching, EDF admission, backpressure, and virtual-time latency
//! accounting.
//!
//! The paper's deployment constraint is that RRM decisions happen
//! *within fixed deadlines* on the baseband chip; a pool that only runs
//! pre-assembled batches says nothing about that. This module closes the
//! gap with a discrete-event front-end:
//!
//! - **Arrivals** ([`Arrival`]) carry a virtual arrival time and an
//!   absolute deadline in virtual cycles (derived from the traffic
//!   class's decision period — `rnnasip-rrm`'s `traffic` module is the
//!   canonical generator). The front consumes them in nondecreasing
//!   arrival order.
//! - **Micro-batching**: pending requests accumulate in a bounded
//!   admission queue; a batch dispatches when the batching window
//!   expires (or the queue reaches the batch size cap), *and* a virtual
//!   server is free — so under overload the admission queue, not an
//!   unbounded server backlog, absorbs the excess. Dispatch pops
//!   requests in **EDF order** (earliest absolute deadline first,
//!   admission order as the tie-break).
//! - **Backpressure**: when the queue is at [`FrontConfig::queue_cap`],
//!   [`OverloadPolicy::ShedOldest`] drops the queued request closest to
//!   its deadline (the least salvageable under backlog) while
//!   [`OverloadPolicy::RejectNew`] refuses the incoming one. Either way
//!   the queue never exceeds its cap ([`TrafficReport::max_queue`] is
//!   the proof).
//! - **Virtual-time service model**: deadline and latency accounting
//!   runs against [`FrontConfig::servers`] *virtual servers*, each
//!   serving one request at a time for exactly the request's
//!   deterministic simulated cycle count. The real [`EnginePool`] is
//!   only the compute substrate — more workers finish the same city
//!   sooner in wall-clock, but every virtual-time quantity (latencies,
//!   percentiles, goodput, shed counts, output checksum) is
//!   byte-identical at any worker count, on any host. That is what lets
//!   `BENCH_traffic.json`'s virtual section be `--check`ed as an exact
//!   string against a committed baseline.
//!
//! [`EnginePool`]: crate::serve::EnginePool

use crate::optlevel::OptLevel;
use crate::runner::NetworkRun;
use crate::serve::latency::LatencyHistogram;
use crate::serve::{BatchRequest, EnginePool};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// One inference request arriving at the front-end at a point in
/// virtual time.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// The network to score (shared, like [`BatchRequest`] items).
    pub net: Arc<Network>,
    /// Optimization level to serve at.
    pub level: OptLevel,
    /// The input window.
    pub sequence: Vec<Vec<Q3p12>>,
    /// Arrival time in virtual cycles.
    pub arrival: u64,
    /// Absolute deadline in virtual cycles (arrival + the traffic
    /// class's decision period).
    pub deadline: u64,
    /// Traffic-class index for per-class accounting (environment kind).
    pub class: usize,
    /// Simulated UE identity (reporting only).
    pub ue: u64,
}

/// What to do with a new arrival when the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Drop the queued request with the earliest deadline (the EDF
    /// head): under backlog it is the least likely to be served in
    /// time, so shedding it frees capacity for requests that can still
    /// meet theirs.
    ShedOldest,
    /// Refuse the incoming request and keep the queue as-is.
    RejectNew,
}

/// Front-end configuration. All times are virtual cycles.
#[derive(Clone, Debug)]
pub struct FrontConfig {
    /// Virtual servers in the deadline model (≥ 1). Fixed per
    /// configuration and independent of the pool's worker count —
    /// see the module docs for why.
    pub servers: usize,
    /// How long the batcher waits after the first queued request before
    /// dispatching, in virtual cycles.
    pub batch_window: u64,
    /// Maximum requests per dispatched batch (≥ 1).
    pub max_batch: usize,
    /// Admission-queue capacity (≥ 1); the queue never grows past this.
    pub queue_cap: usize,
    /// What to shed when the queue is full.
    pub policy: OverloadPolicy,
    /// Number of traffic classes to account separately; arrivals with
    /// `class >= classes` fold into the last class.
    pub classes: usize,
}

impl Default for FrontConfig {
    /// Four virtual servers, a 100k-cycle batching window, 64-request
    /// batches, a 512-slot queue shedding oldest, three classes (the
    /// three RRM environments).
    fn default() -> Self {
        Self {
            servers: 4,
            batch_window: 100_000,
            max_batch: 64,
            queue_cap: 512,
            policy: OverloadPolicy::ShedOldest,
            classes: 3,
        }
    }
}

/// Per-class (and, merged, aggregate) accounting of one serve run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests that arrived (served + shed + failed).
    pub offered: u64,
    /// Requests served to completion by the pool.
    pub served: u64,
    /// Requests dropped by admission control.
    pub shed: u64,
    /// Requests whose simulation failed terminally (a served slot with
    /// an error after the pool's in-place recovery ladder).
    pub failed: u64,
    /// Served requests whose virtual completion met their deadline.
    pub met: u64,
    /// Served requests on which an ABFT guard flagged silent data
    /// corruption (guarded pools only; always 0 on unguarded pools).
    pub sdc_detected: u64,
    /// Flagged requests whose final attempt came back guard-clean — the
    /// pool's verify/rebuild ladder contained the corruption before the
    /// answer shipped.
    pub sdc_healed: u64,
    /// Virtual-cycle latency (completion − arrival) of served requests.
    pub latency: LatencyHistogram,
}

impl ClassStats {
    /// Deadline-met fraction of *offered* traffic, in parts-per-million
    /// (shed and failed requests count as misses). Integer math, so the
    /// value is byte-stable in reports.
    pub fn goodput_ppm(&self) -> u64 {
        if self.offered == 0 {
            0
        } else {
            (u128::from(self.met) * 1_000_000 / u128::from(self.offered)) as u64
        }
    }

    /// Folds `other` into `self` (counter addition + histogram merge —
    /// associative and order-independent).
    pub fn merge(&mut self, other: &Self) {
        self.offered += other.offered;
        self.served += other.served;
        self.shed += other.shed;
        self.failed += other.failed;
        self.met += other.met;
        self.sdc_detected += other.sdc_detected;
        self.sdc_healed += other.sdc_healed;
        self.latency.merge(&other.latency);
    }
}

/// The outcome of serving one traffic stream through the front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficReport {
    /// Per-class accounting, indexed by [`Arrival::class`].
    pub per_class: Vec<ClassStats>,
    /// Virtual time the last served request completed.
    pub makespan: u64,
    /// High-water mark of the admission queue (≤ the configured cap).
    pub max_queue: usize,
    /// Batches dispatched to the pool.
    pub batches: u64,
    /// Total simulated service cycles of served requests.
    pub served_cycles: u64,
    /// Order-independent checksum over every served request's outputs
    /// (wrapping sum of per-request FNV-1a hashes): equal across worker
    /// counts, and equal to a serial run over the same served set —
    /// the whole-run bit-exactness witness.
    pub outputs_fnv: u64,
}

impl TrafficReport {
    /// All classes merged into one aggregate.
    pub fn aggregate(&self) -> ClassStats {
        let mut total = ClassStats::default();
        for c in &self.per_class {
            total.merge(c);
        }
        total
    }

    /// Served requests per virtual second at `clock_hz`, integer
    /// (0 when nothing was served).
    pub fn virtual_rps(&self, clock_hz: u64) -> u64 {
        let served = self.aggregate().served;
        if self.makespan == 0 {
            0
        } else {
            (u128::from(served) * u128::from(clock_hz) / u128::from(self.makespan)) as u64
        }
    }
}

/// FNV-1a over the raw bits of an output vector — the per-request
/// fingerprint [`TrafficReport::outputs_fnv`] accumulates. Public so a
/// serial reference pass (e.g. the `traffic_serving` bench) can compute
/// the same whole-run checksum to compare against.
pub fn output_fingerprint(outputs: &[Q3p12]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for q in outputs {
        for b in q.raw().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// An admission-queue entry, ordered by (deadline, admission sequence)
/// so the EDF pop order is total and deterministic.
struct QEntry {
    deadline: u64,
    seq: u64,
    arrival: Arrival,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// The deadline-aware request front-end over an [`EnginePool`].
///
/// # Example
///
/// ```
/// use rnnasip_core::serve::{Arrival, EnginePool, Front, FrontConfig};
/// use rnnasip_core::OptLevel;
/// use std::sync::Arc;
///
/// let net = Arc::new(rnnasip_rrm::suite().remove(3).network); // eisen2019
/// let input = rnnasip_rrm::seeded_sequence(net.n_in(), net.seq_len(), 1);
/// let arrivals = (0..8u64).map(|i| Arrival {
///     net: net.clone(),
///     level: OptLevel::IfmTile,
///     sequence: input.clone(),
///     arrival: i * 1_000,
///     deadline: i * 1_000 + 400_000,
///     class: 0,
///     ue: i,
/// });
///
/// let pool = EnginePool::with_workers(2);
/// let report = Front::new(&pool, FrontConfig::default()).serve(arrivals);
/// let total = report.aggregate();
/// assert_eq!(total.served, 8);
/// assert_eq!(total.met, 8);
/// ```
pub struct Front<'a> {
    pool: &'a EnginePool,
    cfg: FrontConfig,
}

impl<'a> Front<'a> {
    /// A front-end over `pool` with `cfg` (zero-valued knobs are
    /// clamped up to 1).
    pub fn new(pool: &'a EnginePool, mut cfg: FrontConfig) -> Self {
        cfg.servers = cfg.servers.max(1);
        cfg.max_batch = cfg.max_batch.max(1);
        cfg.queue_cap = cfg.queue_cap.max(1);
        cfg.classes = cfg.classes.max(1);
        Self { pool, cfg }
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> &FrontConfig {
        &self.cfg
    }

    /// Serves `arrivals` (nondecreasing [`Arrival::arrival`] order) to
    /// completion and returns the accounting.
    pub fn serve(&self, arrivals: impl Iterator<Item = Arrival>) -> TrafficReport {
        self.serve_with(arrivals, |_, _| {})
    }

    /// Like [`serve`](Self::serve), invoking `sink` for every served
    /// request with its arrival metadata and bit-exact run result — the
    /// hook the differential tests use to spot-check pooled outputs
    /// against the serial warm-engine golden path.
    pub fn serve_with(
        &self,
        mut arrivals: impl Iterator<Item = Arrival>,
        mut sink: impl FnMut(&Arrival, &NetworkRun),
    ) -> TrafficReport {
        let cfg = &self.cfg;
        let mut report = TrafficReport {
            per_class: vec![ClassStats::default(); cfg.classes],
            makespan: 0,
            max_queue: 0,
            batches: 0,
            served_cycles: 0,
            outputs_fnv: 0,
        };
        // Virtual servers: the cycle at which each becomes free.
        let mut free = vec![0u64; cfg.servers];
        let mut queue: BinaryHeap<Reverse<QEntry>> = BinaryHeap::new();
        // Virtual time the current batching window opened (first
        // request admitted into an empty queue, or the last dispatch
        // that left a remainder).
        let mut open: Option<u64> = None;
        // Latest admitted arrival time: a full batch dispatches no
        // earlier than the request that filled it (causality — without
        // this the waived window could time-stamp a dispatch before one
        // of its members arrived).
        let mut last_admit = 0u64;
        let mut seq = 0u64;
        let mut pending = arrivals.next();

        loop {
            // The next dispatch opportunity: window expiry (waived once
            // the queue holds a full batch), but never before a virtual
            // server is free — that coupling is the backpressure that
            // pushes overload into the bounded admission queue.
            let dispatch_at = open.map(|opened| {
                let gate = if queue.len() >= cfg.max_batch {
                    opened.max(last_admit)
                } else {
                    opened + cfg.batch_window
                };
                gate.max(free.iter().copied().min().unwrap_or(0))
            });

            match (&pending, dispatch_at) {
                (None, None) => break,
                // Admit strictly before dispatching at equal times, so
                // a request arriving exactly at the dispatch edge can
                // still make this batch if its deadline warrants.
                (Some(a), d) if d.is_none_or(|d| a.arrival <= d) => {
                    let arrival = pending.take().unwrap();
                    last_admit = last_admit.max(arrival.arrival);
                    self.admit(arrival, &mut queue, &mut open, &mut seq, &mut report);
                    pending = arrivals.next();
                }
                (_, Some(d)) => {
                    self.dispatch(d, &mut queue, &mut open, &mut free, &mut report, &mut sink);
                }
                (Some(_), None) => unreachable!("the admit guard covers a no-dispatch state"),
            }
        }
        report
    }

    /// Admission control: bounded queue plus overload policy.
    fn admit(
        &self,
        arrival: Arrival,
        queue: &mut BinaryHeap<Reverse<QEntry>>,
        open: &mut Option<u64>,
        seq: &mut u64,
        report: &mut TrafficReport,
    ) {
        let cfg = &self.cfg;
        let class = arrival.class.min(cfg.classes - 1);
        report.per_class[class].offered += 1;
        if queue.len() >= cfg.queue_cap {
            match cfg.policy {
                OverloadPolicy::RejectNew => {
                    report.per_class[class].shed += 1;
                    return;
                }
                OverloadPolicy::ShedOldest => {
                    let victim = queue.pop().expect("full queue has a head").0;
                    let vclass = victim.arrival.class.min(cfg.classes - 1);
                    report.per_class[vclass].shed += 1;
                }
            }
        }
        if queue.is_empty() {
            *open = Some(arrival.arrival);
        }
        queue.push(Reverse(QEntry {
            deadline: arrival.deadline,
            seq: *seq,
            arrival,
        }));
        *seq += 1;
        report.max_queue = report.max_queue.max(queue.len());
    }

    /// Pops up to `max_batch` requests in EDF order, runs them on the
    /// pool, and performs the virtual-server deadline accounting.
    fn dispatch(
        &self,
        vnow: u64,
        queue: &mut BinaryHeap<Reverse<QEntry>>,
        open: &mut Option<u64>,
        free: &mut [u64],
        report: &mut TrafficReport,
        sink: &mut impl FnMut(&Arrival, &NetworkRun),
    ) {
        let cfg = &self.cfg;
        let n = queue.len().min(cfg.max_batch);
        let entries: Vec<QEntry> = (0..n)
            .map(|_| queue.pop().expect("sized above").0)
            .collect();
        debug_assert!(
            entries.iter().all(|e| e.arrival.arrival <= vnow),
            "dispatch time-stamped before a member arrived"
        );
        let mut batch = BatchRequest::new();
        for entry in &entries {
            batch.push(
                entry.arrival.net.clone(),
                entry.arrival.level,
                entry.arrival.sequence.clone(),
            );
        }
        let response = self.pool.run_batch(batch);
        report.batches += 1;

        for (entry, outcome) in entries.iter().zip(response.outcomes()) {
            let class = entry.arrival.class.min(cfg.classes - 1);
            match &outcome.result {
                Err(_) => report.per_class[class].failed += 1,
                Ok(run) => {
                    // Earliest-free virtual server, lowest index on
                    // ties — a deterministic assignment.
                    let server = (0..free.len())
                        .min_by_key(|&s| (free[s], s))
                        .expect("at least one server");
                    let start = free[server].max(vnow);
                    let cycles = run.report.cycles();
                    let done = start + cycles;
                    free[server] = done;

                    let stats = &mut report.per_class[class];
                    stats.served += 1;
                    stats.sdc_detected += u64::from(outcome.sdc_detected);
                    stats.sdc_healed += u64::from(outcome.sdc_healed);
                    stats.latency.record(done - entry.arrival.arrival);
                    if done <= entry.arrival.deadline {
                        stats.met += 1;
                    }
                    report.makespan = report.makespan.max(done);
                    report.served_cycles += cycles;
                    report.outputs_fnv = report
                        .outputs_fnv
                        .wrapping_add(output_fingerprint(&run.outputs));
                    sink(&entry.arrival, run);
                }
            }
        }
        *open = if queue.is_empty() { None } else { Some(vnow) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_net() -> (Arc<Network>, Vec<Vec<Q3p12>>) {
        let net = Arc::new(rnnasip_rrm::suite().remove(3).network); // eisen2019
        let seq = rnnasip_rrm::seeded_sequence(net.n_in(), net.seq_len(), 7);
        (net, seq)
    }

    fn arrival(
        net: &Arc<Network>,
        seq: &[Vec<Q3p12>],
        at: u64,
        deadline: u64,
        class: usize,
    ) -> Arrival {
        Arrival {
            net: net.clone(),
            level: OptLevel::IfmTile,
            sequence: seq.to_vec(),
            arrival: at,
            deadline,
            class,
            ue: at,
        }
    }

    #[test]
    fn serves_everything_and_accounts_deadlines() {
        let (net, seq) = policy_net();
        // eisen2019 runs in 796 cycles; a 10k-cycle deadline is met, a
        // zero-cycle one cannot be.
        let arrivals = vec![
            arrival(&net, &seq, 0, 100_000, 0),
            arrival(&net, &seq, 10, 10, 1), // already hopeless
            arrival(&net, &seq, 20, 100_000, 2),
        ];
        let pool = EnginePool::with_workers(2);
        let front = Front::new(
            &pool,
            FrontConfig {
                batch_window: 1_000,
                ..FrontConfig::default()
            },
        );
        let report = front.serve(arrivals.into_iter());
        let total = report.aggregate();
        assert_eq!(total.offered, 3);
        assert_eq!(total.served, 3);
        assert_eq!(total.shed, 0);
        assert_eq!(total.met, 2);
        assert_eq!(report.per_class[1].met, 0);
        assert_eq!(report.per_class[1].served, 1);
        assert!(report.makespan > 0);
        assert_eq!(report.batches, 1);
        assert!(total.latency.count() == 3);
    }

    #[test]
    fn shed_oldest_drops_the_edf_head() {
        let (net, seq) = policy_net();
        // Three arrivals at t=0 into a 2-slot queue: the one with the
        // earliest deadline is shed.
        let arrivals = vec![
            arrival(&net, &seq, 0, 1_000, 0), // earliest deadline -> shed
            arrival(&net, &seq, 0, 5_000, 1),
            arrival(&net, &seq, 0, 9_000, 2),
        ];
        let pool = EnginePool::with_workers(1);
        let front = Front::new(
            &pool,
            FrontConfig {
                queue_cap: 2,
                batch_window: 100,
                ..FrontConfig::default()
            },
        );
        let report = front.serve(arrivals.into_iter());
        assert_eq!(report.per_class[0].shed, 1);
        assert_eq!(report.per_class[0].served, 0);
        assert_eq!(report.per_class[1].served, 1);
        assert_eq!(report.per_class[2].served, 1);
        assert_eq!(report.max_queue, 2);
    }

    #[test]
    fn reject_new_refuses_the_incoming_request() {
        let (net, seq) = policy_net();
        let arrivals = vec![
            arrival(&net, &seq, 0, 1_000, 0),
            arrival(&net, &seq, 0, 5_000, 1),
            arrival(&net, &seq, 0, 9_000, 2), // arrives at a full queue
        ];
        let pool = EnginePool::with_workers(1);
        let front = Front::new(
            &pool,
            FrontConfig {
                queue_cap: 2,
                batch_window: 100,
                policy: OverloadPolicy::RejectNew,
                ..FrontConfig::default()
            },
        );
        let report = front.serve(arrivals.into_iter());
        assert_eq!(report.per_class[2].shed, 1);
        assert_eq!(report.per_class[0].served, 1);
        assert_eq!(report.per_class[1].served, 1);
    }

    #[test]
    fn queue_never_exceeds_cap_and_reports_are_deterministic() {
        let (net, seq) = policy_net();
        let make = || {
            (0..200u64)
                .map(|i| arrival(&net, &seq, i * 37, i * 37 + 50_000, (i % 3) as usize))
                .collect::<Vec<_>>()
        };
        let cfg = FrontConfig {
            queue_cap: 16,
            max_batch: 8,
            batch_window: 500,
            servers: 2,
            ..FrontConfig::default()
        };
        let pool = EnginePool::with_workers(2);
        let a = Front::new(&pool, cfg.clone()).serve(make().into_iter());
        let pool_b = EnginePool::with_workers(1);
        let b = Front::new(&pool_b, cfg).serve(make().into_iter());
        assert!(a.max_queue <= 16);
        // Identical virtual-time accounting at different worker counts.
        assert_eq!(a, b);
        assert_eq!(a.aggregate().offered, 200);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let pool = EnginePool::with_workers(1);
        let report = Front::new(&pool, FrontConfig::default()).serve(std::iter::empty());
        assert_eq!(report.aggregate().offered, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.makespan, 0);
        assert_eq!(report.outputs_fnv, 0);
    }

    #[test]
    fn sink_sees_bit_exact_runs() {
        let (net, seq) = policy_net();
        let golden = crate::KernelBackend::new(OptLevel::IfmTile)
            .compile_network(&net)
            .unwrap()
            .engine()
            .run(&seq)
            .unwrap();
        let arrivals = (0..5u64)
            .map(|i| arrival(&net, &seq, i * 100, i * 100 + 100_000, 0))
            .collect::<Vec<_>>();
        let pool = EnginePool::with_workers(2);
        let mut seen = 0;
        Front::new(&pool, FrontConfig::default()).serve_with(arrivals.into_iter(), |a, run| {
            assert_eq!(run.outputs, golden.outputs, "ue {}", a.ue);
            assert_eq!(run.report.cycles(), golden.report.cycles());
            seen += 1;
        });
        assert_eq!(seen, 5);
    }
}
