//! The work-stealing task scheduler under the [`EnginePool`].
//!
//! Std-only MPMC: one `Mutex<VecDeque>` per worker plus a shared
//! condvar-guarded gate counting pending tasks. Producers push onto a
//! *hinted* worker's deque (the pool hints by engine-shard key, so
//! consecutive requests for one compiled program land on the worker
//! whose engine is already warm); an idle worker first drains its own
//! deque from the front, then steals from the *back* of its neighbours'
//! deques, and only then parks on the condvar.
//!
//! Stealing from the back keeps the victim's front — the oldest, most
//! likely already-warm work — with its preferred worker, while the thief
//! takes the newest task, which is the one whose state is least likely
//! to be cached anywhere yet. None of this affects results: every task
//! is bit-exact on any worker; placement is throughput policy only.
//!
//! # Routing invariant
//!
//! The pool's producer hint is `FNV-1a(network name, OptLevel)` — a
//! **deterministic, worker-count-independent** hash. Two properties are
//! load-bearing and pinned by tests:
//!
//! 1. **Stability** — the same shard key always hints the same deque
//!    (for a fixed worker count), so consecutive requests against one
//!    compiled program land where its engine is already warm. The hash
//!    must not depend on process-seeded state (`std::collections`'s
//!    default hasher is disqualified) or placement would vary run to
//!    run.
//! 2. **Balance** — distinct keys spread near-uniformly across deques
//!    at every worker count (`fnv_routing_balances_across_worker_counts`
//!    asserts max/min load ≤ 1.5 over 10k keys at 1/2/8 workers), so no
//!    worker becomes a structural hot spot. Residual imbalance (many
//!    requests to *one* shard) is handled dynamically by stealing, not
//!    by the router.
//!
//! [`EnginePool`]: crate::serve::EnginePool

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Recovers the guard from a poisoned lock: a panicking worker must not
/// wedge the whole pool, and every queue/gate invariant here is a plain
/// counter or deque that stays consistent across a panic boundary.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Pending-task count plus the shutdown latch, guarded together so a
/// parked worker can atomically decide "nothing to do *and* not shutting
/// down" before sleeping.
struct Gate {
    pending: usize,
    closed: bool,
}

/// A fixed-width work-stealing queue set.
pub(crate) struct Scheduler<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    gate: Mutex<Gate>,
    cv: Condvar,
}

impl<T> Scheduler<T> {
    /// A scheduler for `workers` consumers (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                pending: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of worker slots.
    pub(crate) fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a task on worker `hint % workers`'s local deque and
    /// wakes a sleeper. The pending count is raised *before* the task
    /// becomes visible so a concurrent pop can never drive it negative.
    pub(crate) fn push(&self, hint: usize, task: T) {
        lock(&self.gate).pending += 1;
        lock(&self.queues[hint % self.queues.len()]).push_back(task);
        self.cv.notify_all();
    }

    /// Blocking dequeue for worker `id`: own deque front, then steal
    /// from the other deques' backs, then park. Returns `None` once the
    /// scheduler is [`close`](Self::close)d and fully drained.
    pub(crate) fn next(&self, id: usize) -> Option<T> {
        loop {
            if let Some(task) = lock(&self.queues[id]).pop_front() {
                lock(&self.gate).pending -= 1;
                return Some(task);
            }
            let n = self.queues.len();
            for offset in 1..n {
                if let Some(task) = lock(&self.queues[(id + offset) % n]).pop_back() {
                    lock(&self.gate).pending -= 1;
                    return Some(task);
                }
            }
            let mut gate = lock(&self.gate);
            loop {
                if gate.pending > 0 {
                    // Pushed (or still being claimed by another worker)
                    // since our scan — rescan the deques.
                    break;
                }
                if gate.closed {
                    return None;
                }
                gate = self
                    .cv
                    .wait(gate)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Latches shutdown and wakes every parked worker; tasks already
    /// queued still drain before the workers see `None`.
    pub(crate) fn close(&self) {
        lock(&self.gate).closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn drains_everything_across_workers_exactly_once() {
        let sched = Arc::new(Scheduler::new(4));
        let total = 200usize;
        for i in 0..total {
            sched.push(i, i); // spread hints across all deques
        }
        sched.close();
        let seen = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for id in 0..sched.workers() {
                let (sched, seen, sum) = (sched.clone(), seen.clone(), sum.clone());
                s.spawn(move || {
                    while let Some(task) = sched.next(id) {
                        seen.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(task, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }

    #[test]
    fn steals_work_hinted_at_a_parked_worker() {
        // Everything is hinted at worker 0, but only worker 1 consumes:
        // all tasks must arrive via stealing.
        let sched = Arc::new(Scheduler::new(2));
        for i in 0..32 {
            sched.push(0, i);
        }
        sched.close();
        let mut got = Vec::new();
        while let Some(task) = sched.next(1) {
            got.push(task);
        }
        assert_eq!(got.len(), 32);
    }

    #[test]
    fn steal_order_is_fair_to_the_owner() {
        // The thief must take the *newest* task (back of the victim's
        // deque) while the owner keeps draining its oldest-first — the
        // fairness contract that keeps warm-shard work with its
        // preferred worker. Single-threaded, so the order is exact.
        let sched = Scheduler::new(2);
        for i in 0..4 {
            sched.push(0, i); // all hinted at worker 0
        }
        sched.close();
        assert_eq!(sched.next(1), Some(3), "thief steals from the back");
        assert_eq!(sched.next(0), Some(0), "owner pops its front");
        assert_eq!(sched.next(1), Some(2), "thief keeps taking newest");
        assert_eq!(sched.next(0), Some(1));
        assert_eq!(sched.next(0), None);
        assert_eq!(sched.next(1), None);
    }

    #[test]
    fn close_wakes_parked_workers() {
        let sched = Arc::new(Scheduler::<usize>::new(2));
        let handle = {
            let sched = sched.clone();
            thread::spawn(move || sched.next(0))
        };
        // Give the worker a moment to park, then close with nothing
        // queued: it must return None rather than sleep forever.
        thread::sleep(std::time::Duration::from_millis(20));
        sched.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn push_after_close_still_drains() {
        let sched = Scheduler::new(1);
        sched.close();
        sched.push(0, 7u32);
        assert_eq!(sched.next(0), Some(7));
        assert_eq!(sched.next(0), None);
    }
}
