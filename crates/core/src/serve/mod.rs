//! Concurrent batch serving: a sharded pool of warm engines behind a
//! work-stealing scheduler.
//!
//! The paper's deployment story is a base-station controller scoring
//! many users per scheduling tick; PRs 2–4 built the single-request
//! machinery (compile-once artifacts, warm [`Engine`]s, self-healing),
//! and this module turns that warm-engine reuse into aggregate
//! throughput:
//!
//! - [`EnginePool`] owns N `std::thread` workers. Each worker keeps its
//!   own warm [`Engine`] per **shard** — a `(network name, OptLevel)`
//!   pair — seeded from a pool-wide compile-once cache of
//!   [`CompiledNetwork`](crate::CompiledNetwork) artifacts, so a network
//!   is compiled exactly once per level no matter how many workers serve
//!   it.
//! - [`BatchRequest`] carries a slab of input windows (each against any
//!   network/level); [`BatchResponse`] returns per-request results in
//!   **submission order** plus an order-independent aggregate
//!   ([`BatchResponse::merged_report`]).
//! - The scheduler routes each request to the worker owning its shard
//!   (deterministic FNV hash) and lets idle workers **steal** from busy
//!   ones, so consecutive requests against one compiled program mostly
//!   stay on one worker — paying only the amortized dirty-block rewind
//!   and a bulk input patch per request, no re-compile, no image clone,
//!   no per-request buffer churn — without a hot shard ever serializing
//!   the pool.
//! - A worker whose run fails a simulation heals **in place** (the
//!   rewind → rebuild ladder of the resilience module) and keeps
//!   serving; the batch still completes, and the outcome records which
//!   rung recovered it.
//! - [`Front`] puts a deadline-aware traffic front-end over the pool:
//!   EDF-ordered admission from a bounded queue with shed/reject
//!   backpressure, micro-batching under a virtual-time window, and
//!   p50/p99/p999 latency accounting ([`LatencyHistogram`]) against a
//!   fixed virtual-server deadline model — byte-deterministic at any
//!   worker count (see [`Front`]).
//!
//! # Determinism
//!
//! Pooled results are bit-identical to serial execution at every worker
//! count and submission order, because every ingredient is:
//! every run starts from a full rewind of the same staged image
//! (engine runs are bit-exact regardless of history — the PR 2
//! differential property), workers never share mutable state, responses
//! are indexed by submission slot rather than completion order, and the
//! aggregate merges `u64` counters, which commute. The
//! `serve_pool_determinism` test pins all of this against the serial
//! suite golden from PR 1 at 1, 2, and 8 workers with shuffled
//! submission.
//!
//! [`Engine`]: crate::Engine

mod batch;
mod front;
mod latency;
mod pool;
mod scheduler;

pub use batch::{BatchItem, BatchRequest, BatchResponse, ItemOutcome};
pub use front::{
    output_fingerprint, Arrival, ClassStats, Front, FrontConfig, OverloadPolicy, TrafficReport,
};
pub use latency::LatencyHistogram;
pub use pool::{BatchTicket, EnginePool};

// The pool moves networks, fault plans and engines across threads; keep
// that property pinned at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BatchRequest>();
    assert_send::<BatchResponse>();
    assert_send::<crate::Engine>();
};
