//! The sharded engine pool: worker threads with warm per-shard engines.

use crate::compile::CompiledNetwork;
use crate::engine::Engine;
use crate::error::CoreError;
use crate::optlevel::OptLevel;
use crate::resilience::RecoveryAction;
use crate::runner::KernelBackend;
use crate::serve::batch::{BatchItem, BatchRequest, BatchResponse, ItemOutcome};
use crate::serve::scheduler::Scheduler;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// One engine shard: a `(network name, OptLevel)` pair. The name stands
/// in for the weights — the same contract as `rnnasip-rrm`'s
/// `EngineCache`: one name, one fixed set of weights.
type ShardKey = (String, OptLevel);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV-1a over the shard key — a *deterministic* router (the std
/// `HashMap` hasher is seeded per process, which would make placement,
/// and therefore warm-engine behaviour, vary run to run).
fn route(key_name: &str, level: OptLevel) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key_name.bytes().chain([level as u8]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

/// One queued unit of work: which batch slot to fill, with what request.
struct Task {
    state: Arc<BatchState>,
    index: usize,
    item: BatchItem,
}

/// Shared completion state of one in-flight batch.
struct BatchState {
    slots: Mutex<Vec<Option<ItemOutcome>>>,
    progress: Mutex<usize>,
    cv: Condvar,
    total: usize,
}

impl BatchState {
    fn new(total: usize) -> Self {
        let mut slots = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        Self {
            slots: Mutex::new(slots),
            progress: Mutex::new(0),
            cv: Condvar::new(),
            total,
        }
    }

    fn complete(&self, index: usize, outcome: ItemOutcome) {
        lock(&self.slots)[index] = Some(outcome);
        let mut done = lock(&self.progress);
        *done += 1;
        if *done == self.total {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Vec<ItemOutcome> {
        let mut done = lock(&self.progress);
        while *done < self.total {
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(done);
        self.collect()
    }

    fn is_complete(&self) -> bool {
        *lock(&self.progress) >= self.total
    }

    fn collect(&self) -> Vec<ItemOutcome> {
        lock(&self.slots)
            .drain(..)
            .map(|slot| slot.expect("completed batch has every slot filled"))
            .collect()
    }
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    sched: Scheduler<Task>,
    /// Compile-once cache: one [`CompiledNetwork`] per shard, cloned out
    /// (cheaply — the image is `Arc`-shared) to seed per-worker engines.
    /// Compilation happens under the lock, so concurrent first requests
    /// for one shard compile exactly once.
    compiled: Mutex<HashMap<ShardKey, CompiledNetwork>>,
    /// Simulated cluster cores per engine (0 = classic single-machine
    /// artifacts; `n >= 1` compiles every shard with
    /// [`KernelBackend::with_cores`]).
    cores: usize,
    /// Whether worker engines arm ABFT guards
    /// ([`Engine::set_guards`]) and climb the SDC containment ladder.
    guards: bool,
    /// Test hook: pending worker panics to inject. Each claim panics one
    /// `serve_item` call mid-request, exercising the quarantine path.
    inject_panics: AtomicUsize,
    /// Worker panics caught and contained (engine quarantined +
    /// respawned; the worker thread survived).
    panics_caught: AtomicUsize,
}

/// A ticket for a submitted batch; [`wait`](Self::wait) blocks until
/// every item has been answered.
#[must_use = "a submitted batch completes in the background; wait() collects it"]
pub struct BatchTicket {
    state: Arc<BatchState>,
}

impl BatchTicket {
    /// Blocks until the batch completes and returns the response, items
    /// in submission order.
    pub fn wait(self) -> BatchResponse {
        BatchResponse {
            outcomes: self.state.wait(),
        }
    }

    /// Whether every item of the batch has been answered (a completed
    /// ticket's [`wait`](Self::wait) returns without blocking).
    pub fn is_complete(&self) -> bool {
        self.state.is_complete()
    }

    /// Non-blocking drain: the response if the batch has completed,
    /// otherwise the ticket back — the poll hook a front-end uses to
    /// overlap useful work with an in-flight batch.
    pub fn try_wait(self) -> Result<BatchResponse, BatchTicket> {
        if self.state.is_complete() {
            Ok(BatchResponse {
                outcomes: self.state.collect(),
            })
        } else {
            Err(self)
        }
    }
}

/// A pool of worker threads serving batched RNN inference from warm,
/// sharded [`Engine`]s.
///
/// See the [module docs](crate::serve) for topology and the determinism
/// argument.
///
/// # Example
///
/// ```
/// use rnnasip_core::serve::{BatchRequest, EnginePool};
/// use rnnasip_core::{KernelBackend, OptLevel};
/// use std::sync::Arc;
///
/// let net = Arc::new(rnnasip_rrm::suite().remove(3).network); // eisen2019
/// let input = vec![rnnasip_rrm::seeded_input(net.n_in(), 1)];
///
/// let mut batch = BatchRequest::new();
/// for _ in 0..4 {
///     batch.push(net.clone(), OptLevel::IfmTile, input.clone());
/// }
/// let pool = EnginePool::with_workers(2);
/// let response = pool.run_batch(batch);
/// assert!(response.all_ok());
///
/// // Bit-identical to the serial engine path, for every request.
/// let serial = KernelBackend::new(OptLevel::IfmTile)
///     .compile_network(&net)?
///     .engine()
///     .run(&input)?;
/// for outcome in response.outcomes() {
///     let run = outcome.result.as_ref().unwrap();
///     assert_eq!(run.outputs, serial.outputs);
///     assert_eq!(run.report.cycles(), serial.report.cycles());
/// }
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
pub struct EnginePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl EnginePool {
    /// A pool with one worker per available hardware thread.
    pub fn new() -> Self {
        Self::with_workers(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }

    /// A pool with exactly `workers` worker threads (at least one).
    pub fn with_workers(workers: usize) -> Self {
        Self::with_workers_and_cores(workers, 0)
    }

    /// A pool whose engines execute on simulated `cores`-core clusters:
    /// every shard is compiled with [`KernelBackend::with_cores`], so
    /// each request's report carries per-core rows and a cluster
    /// latency. `cores == 0` (the [`with_workers`](Self::with_workers)
    /// default) keeps the classic single-machine artifacts.
    pub fn with_workers_and_cores(workers: usize, cores: usize) -> Self {
        Self::build(workers, cores, false)
    }

    /// A pool whose engines run with ABFT guards armed: every request's
    /// outcome carries `sdc_detected`/`sdc_healed`, and a guard trip
    /// climbs the worker's in-place verify → rebuild ladder before the
    /// answer ships. Clean-input results stay bit-identical to an
    /// unguarded pool.
    pub fn with_workers_guarded(workers: usize) -> Self {
        Self::build(workers, 0, true)
    }

    fn build(workers: usize, cores: usize, guards: bool) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            sched: Scheduler::new(workers),
            compiled: Mutex::new(HashMap::new()),
            cores,
            guards,
            inject_panics: AtomicUsize::new(0),
            panics_caught: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rnnasip-serve-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.sched.workers()
    }

    /// Test hook: arms `n` one-shot worker panics. Each of the next `n`
    /// `serve` calls across the pool panics mid-request, exercising the
    /// containment path (engine quarantined + respawned, request
    /// retried, worker thread survives).
    pub fn inject_worker_panics(&self, n: usize) {
        self.shared.inject_panics.fetch_add(n, Ordering::Relaxed);
    }

    /// How many worker panics the pool has caught and contained.
    pub fn worker_panics_caught(&self) -> usize {
        self.shared.panics_caught.load(Ordering::Relaxed)
    }

    /// Enqueues a batch and returns immediately; each item is routed to
    /// the worker owning its engine shard (idle workers steal, so a hot
    /// shard never serializes the whole pool).
    pub fn submit(&self, batch: BatchRequest) -> BatchTicket {
        let state = Arc::new(BatchState::new(batch.items.len()));
        for (index, item) in batch.items.into_iter().enumerate() {
            let hint = route(item.net.name(), item.level);
            self.shared.sched.push(
                hint,
                Task {
                    state: state.clone(),
                    index,
                    item,
                },
            );
        }
        BatchTicket { state }
    }

    /// [`submit`](Self::submit) + [`BatchTicket::wait`]: runs the batch
    /// to completion and returns per-request results in submission
    /// order.
    pub fn run_batch(&self, batch: BatchRequest) -> BatchResponse {
        self.submit(batch).wait()
    }
}

impl Default for EnginePool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EnginePool {
    /// Drains queued work, then stops and joins every worker.
    fn drop(&mut self) {
        self.shared.sched.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker body: pull tasks, serve them from this worker's warm
/// engines, fill the batch slots.
fn worker_loop(shared: &PoolShared, id: usize) {
    let mut engines: HashMap<ShardKey, Engine> = HashMap::new();
    while let Some(task) = shared.sched.next(id) {
        let outcome = serve_item(shared, &mut engines, &task.item);
        task.state.complete(task.index, outcome);
    }
}

/// Looks up (or compiles + instantiates) the worker-local engine for the
/// item's shard.
fn warm_engine<'a>(
    shared: &PoolShared,
    engines: &'a mut HashMap<ShardKey, Engine>,
    item: &BatchItem,
) -> Result<&'a mut Engine, CoreError> {
    let key = (item.net.name().to_string(), item.level);
    match engines.entry(key) {
        std::collections::hash_map::Entry::Occupied(entry) => Ok(entry.into_mut()),
        std::collections::hash_map::Entry::Vacant(entry) => {
            let mut cache = lock(&shared.compiled);
            let compiled = match cache.entry(entry.key().clone()) {
                std::collections::hash_map::Entry::Occupied(hit) => hit.get().clone(),
                std::collections::hash_map::Entry::Vacant(miss) => {
                    let mut backend = KernelBackend::new(item.level);
                    if shared.cores >= 1 {
                        backend = backend.with_cores(shared.cores);
                    }
                    let compiled = backend.compile_network(&item.net)?;
                    miss.insert(compiled).clone()
                }
            };
            drop(cache);
            let mut engine = Engine::new(compiled);
            engine.set_guards(shared.guards);
            Ok(entry.insert(engine))
        }
    }
}

/// Claims one pending injected panic (test hook). The decrement is a
/// lock-free CAS so concurrent workers never double-claim: exactly `n`
/// calls panic after `inject_worker_panics(n)`.
fn claim_injected_panic(shared: &PoolShared) -> bool {
    shared
        .inject_panics
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Panic-containment wrapper around [`serve_item_inner`]: a panicked
/// serve call must not poison the pool. The worker thread survives
/// (`catch_unwind`), the shard's engine — whose state the panic may have
/// left mid-run — is quarantined and respawned from the compile cache,
/// and the request retries once on the fresh engine. A second panic
/// fails the single request with [`CoreError::WorkerPanic`]; the batch
/// and the other workers keep flowing either way.
fn serve_item(
    shared: &PoolShared,
    engines: &mut HashMap<ShardKey, Engine>,
    item: &BatchItem,
) -> ItemOutcome {
    let key: ShardKey = (item.net.name().to_string(), item.level);
    match catch_unwind(AssertUnwindSafe(|| serve_item_inner(shared, engines, item))) {
        Ok(outcome) => outcome,
        Err(_) => {
            shared.panics_caught.fetch_add(1, Ordering::Relaxed);
            engines.remove(&key); // quarantine: drop the suspect engine
            match catch_unwind(AssertUnwindSafe(|| serve_item_inner(shared, engines, item))) {
                Ok(mut outcome) => {
                    // The retry ran on a respawned engine: surface the
                    // heaviest rung so `recovered()` reports it.
                    outcome.recovery = RecoveryAction::Rebuild;
                    outcome
                }
                Err(_) => {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                    engines.remove(&key);
                    ItemOutcome {
                        result: Err(CoreError::WorkerPanic),
                        recovery: RecoveryAction::Rebuild,
                        sdc_detected: false,
                        sdc_healed: false,
                    }
                }
            }
        }
    }
}

/// Runs one request on this worker, climbing the in-place recovery
/// ladder on simulation failures: the engine's eager post-failure rewind
/// makes the first retry free of special handling, and a second failure
/// escalates to a full [`Engine::heal_rebuild`]. On a guarded pool, an
/// ABFT guard trip on a *successful* run climbs the same ladder — verify
/// re-run first (a transient flip rewinds away), then rebuild (sticky
/// corruption needs the staged image). Recovery never touches the
/// queue — other requests keep flowing on the remaining workers while
/// this one heals.
fn serve_item_inner(
    shared: &PoolShared,
    engines: &mut HashMap<ShardKey, Engine>,
    item: &BatchItem,
) -> ItemOutcome {
    let engine = match warm_engine(shared, engines, item) {
        Ok(engine) => engine,
        Err(e) => {
            return ItemOutcome {
                result: Err(e),
                recovery: RecoveryAction::FirstTry,
                sdc_detected: false,
                sdc_healed: false,
            }
        }
    };
    if claim_injected_panic(shared) {
        panic!("injected worker panic (serve-pool test hook)");
    }
    if let Some(plan) = &item.fault {
        engine.inject_faults(plan);
    }
    let mut recovery = RecoveryAction::FirstTry;
    let mut result = engine.run(&item.sequence);
    if matches!(result, Err(CoreError::Sim(_))) {
        // Rung 1: the failed run already healed eagerly (dirty-block
        // rewind + fault disarm), so the retry itself is the recovery.
        recovery = RecoveryAction::Rewind;
        result = engine.run(&item.sequence);
    }
    if matches!(result, Err(CoreError::Sim(_))) {
        // Rung 2: rebuild from the staged image — clears corruption the
        // dirty-block bitmap cannot see.
        engine.heal_rebuild();
        recovery = RecoveryAction::Rebuild;
        result = engine.run(&item.sequence);
    }
    let mut sdc_detected = false;
    if result.is_ok() && engine.last_guard_failed() {
        // Guard rung 0 (verify): every run starts from a rewound image,
        // so the re-run doubles as the rewind test — a transient flip is
        // gone, a sticky one trips again.
        sdc_detected = true;
        recovery = RecoveryAction::Verify;
        result = engine.run(&item.sequence);
    }
    if result.is_ok() && sdc_detected && engine.last_guard_failed() {
        // Sticky corruption: restore from the compile-time staged image.
        engine.heal_rebuild();
        recovery = RecoveryAction::Rebuild;
        result = engine.run(&item.sequence);
    }
    let sdc_healed = sdc_detected && result.is_ok() && !engine.last_guard_failed();
    ItemOutcome {
        result,
        recovery,
        sdc_detected,
        sdc_healed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_level_sensitive() {
        assert_eq!(
            route("eisen2019", OptLevel::IfmTile),
            route("eisen2019", OptLevel::IfmTile)
        );
        assert_ne!(
            route("eisen2019", OptLevel::IfmTile),
            route("eisen2019", OptLevel::Baseline),
            "levels are separate shards"
        );
    }

    #[test]
    fn fnv_routing_balances_across_worker_counts() {
        // 10k distinct shard keys must spread near-uniformly over every
        // pool width the repo tests at: the max/min per-worker load
        // ratio stays under 1.5 (a skewed router would starve warm
        // engines on some workers and hot-spot others).
        for &workers in &[1usize, 2, 8] {
            let mut loads = vec![0u64; workers];
            for i in 0..10_000 {
                let key = format!("ue-net-{i}");
                loads[route(&key, OptLevel::IfmTile) % workers] += 1;
            }
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            assert!(min > 0, "{workers} workers: a shard got no load");
            assert!(
                max as f64 / min as f64 <= 1.5,
                "{workers} workers: shard skew {max}/{min} exceeds 1.5"
            );
        }
    }

    #[test]
    fn ticket_try_wait_drains_without_blocking() {
        let suite = rnnasip_rrm::suite();
        let net = Arc::new(suite[3].network.clone());
        let mut batch = BatchRequest::new();
        for _ in 0..4 {
            batch.push(net.clone(), OptLevel::IfmTile, suite[3].input());
        }
        let pool = EnginePool::with_workers(2);
        let mut ticket = pool.submit(batch);
        // Poll until the workers finish; each failed poll returns the
        // ticket intact.
        let response = loop {
            match ticket.try_wait() {
                Ok(response) => break response,
                Err(t) => {
                    ticket = t;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(response.len(), 4);
        assert!(response.all_ok());

        // A completed ticket reports completion before the drain.
        let ticket = pool.submit(BatchRequest::new());
        assert!(ticket.is_complete());
        assert!(ticket.try_wait().is_ok());
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = EnginePool::with_workers(2);
        let response = pool.run_batch(BatchRequest::new());
        assert!(response.is_empty());
        assert!(response.all_ok());
        assert_eq!(response.merged_report().cycles(), 0);
    }

    #[test]
    fn shape_error_fails_its_slot_but_not_the_batch() {
        let suite = rnnasip_rrm::suite();
        let net = Arc::new(suite[3].network.clone());
        let good = suite[3].input();
        let mut batch = BatchRequest::new();
        batch.push(net.clone(), OptLevel::IfmTile, good.clone());
        batch.push(net.clone(), OptLevel::IfmTile, Vec::new()); // wrong seq_len
        batch.push(net.clone(), OptLevel::IfmTile, good);
        let pool = EnginePool::with_workers(2);
        let response = pool.run_batch(batch);
        assert_eq!(response.len(), 3);
        assert!(response.outcomes()[0].result.is_ok());
        assert!(matches!(
            response.outcomes()[1].result,
            Err(CoreError::Shape(_))
        ));
        assert!(response.outcomes()[2].result.is_ok());
        assert!(!response.all_ok());
    }
}
