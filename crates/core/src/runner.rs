//! Compile-stage-run harness: golden-model layers in, simulated outputs
//! and cycle statistics out.

use crate::error::CoreError;
use crate::kernels::conv::{emit_conv, ConvSpec};
use crate::kernels::fc::emit_matvec;
use crate::kernels::fc8::{emit_matvec8, Int8Kernel, Matvec8Spec};
use crate::kernels::lstm::{emit_lstm, LstmSpec};
use crate::kernels::{KernelCtx, MatvecSpec, PtrSrc};
use crate::layout::DataLayout;
use crate::optlevel::OptLevel;
use crate::report::RunReport;
use rnnasip_asm::Asm;
use rnnasip_fixed::{Q1p6, Q3p12};
use rnnasip_nn::{Conv2dLayer, FcLayer, FcLayer8, LstmLayer, Matrix, Network, Stage};
use rnnasip_sim::Machine;

/// First data address in the TCDM (code addresses live below it; the
/// simulator fetches from the decoded program image, so the split is a
/// realism convention, not a correctness requirement).
const DATA_BASE: u32 = 0x10000;

/// One executed layer: outputs plus statistics.
#[derive(Clone, Debug)]
pub struct LayerRun {
    /// The layer outputs read back from simulated memory.
    pub outputs: Vec<Q3p12>,
    /// Cycle/instruction statistics of the run.
    pub report: RunReport,
}

/// One executed INT8 layer: Q1.6 outputs plus statistics.
#[derive(Clone, Debug)]
pub struct Layer8Run {
    /// The layer outputs read back from simulated memory.
    pub outputs: Vec<Q1p6>,
    /// Cycle/instruction statistics of the run.
    pub report: RunReport,
}

/// One executed network: final outputs plus statistics.
#[derive(Clone, Debug)]
pub struct NetworkRun {
    /// The network outputs.
    pub outputs: Vec<Q3p12>,
    /// Cycle/instruction statistics of the whole inference.
    pub report: RunReport,
}

/// The kernel execution backend for one optimization level.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct KernelBackend {
    level: OptLevel,
    mem_bytes: usize,
    max_cycles: u64,
    max_tile: usize,
}

impl KernelBackend {
    /// Creates a backend with 4 MiB of TCDM and a 2-billion-cycle
    /// watchdog.
    pub fn new(level: OptLevel) -> Self {
        Self {
            level,
            mem_bytes: 4 << 20,
            max_cycles: 2_000_000_000,
            max_tile: crate::kernels::MAX_TILE,
        }
    }

    /// Caps the output-tile size (1–10) — the paper's register-budget
    /// knob, exposed for the tiling ablation bench.
    #[must_use]
    pub fn with_max_tile(mut self, n: usize) -> Self {
        self.max_tile = n.clamp(1, crate::kernels::MAX_TILE);
        self
    }

    /// Overrides the TCDM size.
    #[must_use]
    pub fn with_memory(mut self, bytes: usize) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Overrides the watchdog budget.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// The backend's optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Runs a fully-connected layer.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_fc(&self, layer: &FcLayer, input: &[Q3p12]) -> Result<LayerRun, CoreError> {
        if input.len() != layer.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != layer n_in {}",
                input.len(),
                layer.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        let out_addr = s.emit_fc_stage(layer, StageInput::Staged(input.to_vec()))?;
        let (outputs, report) = s.finish(out_addr, layer.n_out(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Runs an LSTM layer over a sequence, returning the final hidden
    /// state.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_lstm(
        &self,
        layer: &LstmLayer,
        sequence: &[Vec<Q3p12>],
    ) -> Result<LayerRun, CoreError> {
        let mut s = Session::new(self)?;
        let out_addr = s.emit_lstm_stage(layer, sequence)?;
        let (outputs, report) = s.finish(out_addr, layer.n_hidden(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Runs a convolution layer on a flattened feature map.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_conv(&self, conv: &Conv2dLayer, input: &[Q3p12]) -> Result<LayerRun, CoreError> {
        if input.len() != conv.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != conv n_in {}",
                input.len(),
                conv.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        let src = s.stage_vector(input)?;
        let out_addr = s.emit_conv_stage(conv, src, input.len())?;
        let (outputs, report) = s.finish(out_addr, conv.n_out(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Compiles a fully-connected layer to its program *without* running
    /// it — for disassembly inspection and the code-size metric (tiled
    /// levels trade code size for cycles by unrolling per-tile code).
    ///
    /// # Errors
    ///
    /// Shape, layout or assembly errors ([`CoreError`]).
    pub fn compile_fc(&self, layer: &FcLayer) -> Result<rnnasip_sim::Program, CoreError> {
        let mut s = Session::new(self)?;
        let zeros = vec![Q3p12::ZERO; layer.n_in()];
        s.emit_fc_stage(layer, StageInput::Staged(zeros))?;
        s.asm.ecall();
        Ok(s.asm.assemble()?)
    }

    /// Runs an INT8 fully-connected layer (the future-work path) with
    /// the chosen inner-loop schedule.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_fc8(
        &self,
        layer: &FcLayer8,
        input: &[Q1p6],
        kernel: Int8Kernel,
    ) -> Result<Layer8Run, CoreError> {
        if input.len() != layer.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != layer n_in {}",
                input.len(),
                layer.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        // Pad the input width to a multiple of four bytes.
        let n_in = (layer.n_in() + 3) & !3;
        let w_base = s
            .layout
            .alloc(((layer.n_out() * n_in) as u32) + crate::layout::STREAM_SLACK)?;
        for o in 0..layer.n_out() {
            for (i, w) in layer.row(o).iter().enumerate() {
                s.machine
                    .mem_mut()
                    .write_u8(w_base + (o * n_in + i) as u32, w.raw() as u8)?;
            }
        }
        let bias32 = s.layout.alloc_words(layer.n_out())?;
        for (k, b) in layer.bias().iter().enumerate() {
            s.machine
                .mem_mut()
                .write_u32(bias32 + 4 * k as u32, ((b.raw() as i32) << 6) as u32)?;
        }
        let x_base = s.layout.alloc(n_in as u32 + 4)?;
        for (i, x) in input.iter().enumerate() {
            s.machine
                .mem_mut()
                .write_u8(x_base + i as u32, x.raw() as u8)?;
        }
        let out_base = s.layout.alloc(layer.n_out() as u32 + 4)?;
        let spec = Matvec8Spec {
            w_base,
            bias32,
            x_base,
            out_base,
            n_in,
            n_out: layer.n_out(),
            act: layer.act(),
        };
        let mut ctx = s.ctx();
        emit_matvec8(&mut ctx, &spec, kernel)?;
        s.asm.ecall();
        let prog = s.asm.assemble()?;
        s.machine.load_program(&prog);
        let started = std::time::Instant::now();
        s.machine.run(self.max_cycles)?;
        let host_nanos = started.elapsed().as_nanos() as u64;
        let outputs = (0..layer.n_out())
            .map(|o| {
                s.machine
                    .mem()
                    .read_u8(out_base + o as u32)
                    .map(|b| Q1p6::from_raw(b as i8))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Layer8Run {
            outputs,
            report: RunReport::new(s.machine.stats().clone()).with_host_nanos(host_nanos),
        })
    }

    /// Runs a whole network inference.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_network(
        &self,
        net: &Network,
        sequence: &[Vec<Q3p12>],
    ) -> Result<NetworkRun, CoreError> {
        if sequence.len() != net.seq_len() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                net.seq_len()
            )));
        }
        let mut s = Session::new(self)?;
        let mut stages = net.stages().iter();
        // First stage consumes the staged input.
        let first = stages.next().expect("networks are non-empty");
        let (mut cur_addr, mut cur_width) = match first {
            Stage::Lstm { layer, .. } => {
                let addr = s.emit_lstm_stage(layer, sequence)?;
                (addr, layer.n_hidden())
            }
            Stage::Fc(layer) => {
                let addr = s.emit_fc_stage(layer, StageInput::Staged(sequence[0].clone()))?;
                (addr, layer.n_out())
            }
            Stage::Conv(conv) => {
                let src = s.stage_vector(&sequence[0])?;
                let addr = s.emit_conv_stage(conv, src, sequence[0].len())?;
                (addr, conv.n_out())
            }
        };
        for stage in stages {
            match stage {
                Stage::Fc(layer) => {
                    cur_addr = s.emit_fc_stage(layer, StageInput::Buffer(cur_addr))?;
                    cur_width = layer.n_out();
                }
                Stage::Conv(conv) => {
                    cur_addr = s.emit_conv_stage(conv, cur_addr, cur_width)?;
                    cur_width = conv.n_out();
                }
                Stage::Lstm { .. } => {
                    return Err(CoreError::Shape(
                        "LSTM stages are only supported first".into(),
                    ))
                }
            }
        }
        let (outputs, report) = s.finish(cur_addr, cur_width, self.max_cycles)?;
        Ok(NetworkRun { outputs, report })
    }
}

/// One profiled stage of a [`KernelBackend::run_network_staged`] run.
#[derive(Clone, Debug)]
pub struct StageRun {
    /// Stage label (`"fc 120x360"`, `"lstm 32x64 x10"`, `"conv ..."`).
    pub label: String,
    /// Statistics of this stage alone.
    pub report: RunReport,
}

impl KernelBackend {
    /// Runs a network one stage at a time (each stage as its own
    /// program), returning the final outputs and a per-stage cycle
    /// profile. Outputs are identical to [`run_network`]
    /// (same kernels, same staging), which the integration tests assert.
    ///
    /// [`run_network`]: KernelBackend::run_network
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_network_staged(
        &self,
        net: &Network,
        sequence: &[Vec<Q3p12>],
    ) -> Result<(Vec<Q3p12>, Vec<StageRun>), CoreError> {
        if sequence.len() != net.seq_len() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                net.seq_len()
            )));
        }
        let mut stages = Vec::new();
        let mut cur: Option<Vec<Q3p12>> = None;
        for stage in net.stages() {
            let (label, run) = match stage {
                Stage::Lstm { layer, steps } => {
                    let run = self.run_lstm(layer, sequence)?;
                    (
                        format!("lstm {}x{} x{}", layer.n_in(), layer.n_hidden(), steps),
                        run,
                    )
                }
                Stage::Fc(layer) => {
                    let input = cur.as_deref().unwrap_or(&sequence[0]);
                    let run = self.run_fc(layer, input)?;
                    (format!("fc {}->{}", layer.n_in(), layer.n_out()), run)
                }
                Stage::Conv(conv) => {
                    let input = cur.as_deref().unwrap_or(&sequence[0]);
                    let run = self.run_conv(conv, input)?;
                    (
                        format!(
                            "conv {}x{}x{} -> {} ({}x{})",
                            conv.in_ch(),
                            conv.in_h(),
                            conv.in_w(),
                            conv.out_ch(),
                            conv.kh(),
                            conv.kw()
                        ),
                        run,
                    )
                }
            };
            cur = Some(run.outputs.clone());
            stages.push(StageRun {
                label,
                report: run.report,
            });
        }
        Ok((cur.expect("networks are non-empty"), stages))
    }
}

/// Where an FC stage's input comes from.
enum StageInput {
    /// Values staged by the host into a fresh buffer.
    Staged(Vec<Q3p12>),
    /// An existing buffer produced by a previous stage.
    Buffer(u32),
}

/// A compilation + simulation session.
struct Session {
    machine: Machine,
    asm: Asm,
    layout: DataLayout,
    luts: (u32, u32, u32, u32),
    scratch: u32,
    level: OptLevel,
    max_tile: usize,
}

impl Session {
    fn new(backend: &KernelBackend) -> Result<Self, CoreError> {
        let mut machine = Machine::new(backend.mem_bytes);
        let mut layout = DataLayout::new(DATA_BASE, backend.mem_bytes);
        let luts = layout.stage_pla_luts(machine.mem_mut())?;
        let scratch = layout.alloc_words(1)?;
        Ok(Self {
            machine,
            asm: Asm::new(0),
            layout,
            luts,
            scratch,
            level: backend.level,
            max_tile: backend.max_tile,
        })
    }

    fn ctx(&mut self) -> KernelCtx<'_> {
        KernelCtx {
            asm: &mut self.asm,
            level: self.level,
            luts: self.luts,
            max_tile: self.max_tile,
        }
    }

    /// Stages a vector with one trailing zero halfword of padding slack.
    fn stage_vector(&mut self, values: &[Q3p12]) -> Result<u32, CoreError> {
        let addr = self.layout.alloc_halves(values.len() + 1)?;
        self.layout.stage_q(self.machine.mem_mut(), addr, values)?;
        Ok(addr)
    }

    /// Allocates an output buffer with one trailing zero halfword.
    fn alloc_buffer(&mut self, len: usize) -> Result<u32, CoreError> {
        self.layout.alloc_halves(len + 1)
    }

    /// Pads a weight matrix to an even column count (appending a zero
    /// column whose input counterpart is the buffer's trailing zero).
    fn pad_even(m: &Matrix) -> Matrix {
        if m.cols().is_multiple_of(2) {
            return m.clone();
        }
        let mut data = Vec::with_capacity(m.rows() * (m.cols() + 1));
        for r in 0..m.rows() {
            data.extend_from_slice(m.row(r));
            data.push(Q3p12::ZERO);
        }
        Matrix::new(m.rows(), m.cols() + 1, data)
    }

    /// Emits one FC stage; returns the output buffer address.
    fn emit_fc_stage(&mut self, layer: &FcLayer, input: StageInput) -> Result<u32, CoreError> {
        let weights = Self::pad_even(layer.weights());
        let w_base = self.layout.alloc_matrix(&weights)?;
        self.layout
            .stage_matrix(self.machine.mem_mut(), w_base, &weights)?;
        let bias32 = self.layout.alloc_words(layer.n_out())?;
        self.layout
            .stage_bias32(self.machine.mem_mut(), bias32, layer.bias())?;
        let x_addr = match input {
            StageInput::Staged(values) => self.stage_vector(&values)?,
            StageInput::Buffer(addr) => addr,
        };
        let out = self.alloc_buffer(layer.n_out())?;
        let spec = MatvecSpec {
            w_base,
            bias32,
            x: PtrSrc::Const(x_addr),
            out: PtrSrc::Const(out),
            out_stride: 2,
            n_in: weights.cols(),
            n_out: layer.n_out(),
            act: layer.act(),
            scratch: self.scratch,
        };
        let mut ctx = self.ctx();
        emit_matvec(&mut ctx, &spec)?;
        Ok(out)
    }

    /// Emits one LSTM stage; returns the address of the final hidden
    /// state.
    fn emit_lstm_stage(
        &mut self,
        layer: &LstmLayer,
        sequence: &[Vec<Q3p12>],
    ) -> Result<u32, CoreError> {
        let (m, n) = (layer.n_in(), layer.n_hidden());
        if m % 2 != 0 || n % 2 != 0 {
            return Err(CoreError::Shape(format!(
                "LSTM widths must be even, got {m}x{n}"
            )));
        }
        if sequence.is_empty() {
            return Err(CoreError::Shape("empty LSTM sequence".into()));
        }
        for x in sequence {
            if x.len() != m {
                return Err(CoreError::Shape("LSTM sequence width mismatch".into()));
            }
        }
        // Combined per-gate weight matrices [Wx ‖ Wh].
        let mut gates_w = [0u32; 4];
        let mut gates_b32 = [0u32; 4];
        let mut gate_bufs = [0u32; 4];
        for g in 0..4 {
            let mut data = Vec::with_capacity(n * (m + n));
            for j in 0..n {
                data.extend_from_slice(layer.wx(g).row(j));
                data.extend_from_slice(layer.wh(g).row(j));
            }
            let combined = Matrix::new(n, m + n, data);
            let w = self.layout.alloc_matrix(&combined)?;
            self.layout
                .stage_matrix(self.machine.mem_mut(), w, &combined)?;
            gates_w[g] = w;
            let b = self.layout.alloc_words(n)?;
            self.layout
                .stage_bias32(self.machine.mem_mut(), b, layer.bias(g))?;
            gates_b32[g] = b;
            gate_bufs[g] = self.alloc_buffer(n)?;
        }
        let xh = self.alloc_buffer(m + n)?;
        let c_buf = self.alloc_buffer(n)?;
        // The whole sequence, contiguous.
        let x_seq = self.layout.alloc_halves(sequence.len() * m)?;
        for (t, x) in sequence.iter().enumerate() {
            self.layout
                .stage_q(self.machine.mem_mut(), x_seq + (t * m * 2) as u32, x)?;
        }
        let g_xptr = self.layout.alloc_words(1)?;
        let g_steps = self.layout.alloc_words(1)?;
        let spec = LstmSpec {
            gates_w,
            gates_b32,
            gate_bufs,
            xh,
            c_buf,
            x_seq,
            g_xptr,
            g_steps,
            steps: sequence.len(),
            n_in: m,
            n_hidden: n,
            scratch: self.scratch,
        };
        let mut ctx = self.ctx();
        emit_lstm(&mut ctx, &spec)?;
        Ok(spec.h_addr())
    }

    /// Emits one convolution stage reading from `src` (a buffer of
    /// `src_len` halfwords with a zeroed trailing slack element);
    /// returns the output buffer address.
    fn emit_conv_stage(
        &mut self,
        conv: &Conv2dLayer,
        src: u32,
        src_len: usize,
    ) -> Result<u32, CoreError> {
        if src_len != conv.n_in() {
            return Err(CoreError::Shape(format!(
                "conv input width {} != staged buffer {}",
                conv.n_in(),
                src_len
            )));
        }
        let weights = Self::pad_even(conv.weights());
        let taps = weights.cols();
        let n_pix = conv.out_h() * conv.out_w();
        if 2 * (src_len + 1) > 32767 {
            return Err(CoreError::Shape(
                "conv source exceeds the 16-bit gather-offset range".into(),
            ));
        }
        let w_base = self.layout.alloc_matrix(&weights)?;
        self.layout
            .stage_matrix(self.machine.mem_mut(), w_base, &weights)?;
        let bias32 = self.layout.alloc_words(conv.out_ch())?;
        self.layout
            .stage_bias32(self.machine.mem_mut(), bias32, conv.bias())?;

        // Gather index table (+1 slack entry for the software pipeline).
        let offsets = conv_gather_offsets(conv, taps, src_len);
        let idx_base = self.layout.alloc_halves(offsets.len() + 1)?;
        for (k, off) in offsets.iter().enumerate() {
            self.machine
                .mem_mut()
                .write_u16(idx_base + 2 * k as u32, *off)?;
        }
        let cols_base = self.layout.alloc_halves(n_pix * taps)?;
        let out = self.alloc_buffer(conv.out_ch() * n_pix)?;
        let g_pix = self.layout.alloc_words(1)?;
        let g_out = self.layout.alloc_words(1)?;
        let g_cnt = self.layout.alloc_words(1)?;
        let spec = ConvSpec {
            w_base,
            bias32,
            src,
            idx_base,
            cols_base,
            out_base: out,
            g_pix,
            g_out,
            g_cnt,
            n_pix,
            taps,
            out_ch: conv.out_ch(),
            act: conv.act(),
            scratch: self.scratch,
        };
        let mut ctx = self.ctx();
        emit_conv(&mut ctx, &spec)?;
        Ok(out)
    }

    /// Appends the halt, assembles, runs, and reads the result.
    fn finish(
        mut self,
        out_addr: u32,
        out_len: usize,
        max_cycles: u64,
    ) -> Result<(Vec<Q3p12>, RunReport), CoreError> {
        self.asm.ecall();
        let prog = self.asm.assemble()?;
        self.machine.load_program(&prog);
        let started = std::time::Instant::now();
        self.machine.run(max_cycles)?;
        let host_nanos = started.elapsed().as_nanos() as u64;
        let outputs = self.machine.mem().read_q3p12_slice(out_addr, out_len)?;
        Ok((
            outputs,
            RunReport::new(self.machine.stats().clone()).with_host_nanos(host_nanos),
        ))
    }
}

/// Builds the im2col gather offsets (bytes into the source buffer),
/// pixel-major, in exactly the tap order of the golden model's
/// [`Conv2dLayer::im2col`]; padded taps point at the source's trailing
/// zero element.
fn conv_gather_offsets(conv: &Conv2dLayer, taps: usize, src_len: usize) -> Vec<u16> {
    let (oh, ow) = (conv.out_h(), conv.out_w());
    let real_taps = conv.weights().cols();
    let zero_off = (2 * src_len) as u16;
    let mut offsets = Vec::with_capacity(oh * ow * taps);
    let (stride, pad) = (conv.stride() as isize, conv.pad() as isize);
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..conv.in_ch() {
                for ky in 0..conv.kh() {
                    for kx in 0..conv.kw() {
                        let iy = oy as isize * stride + ky as isize - pad;
                        let ix = ox as isize * stride + kx as isize - pad;
                        if iy < 0
                            || ix < 0
                            || iy >= conv.in_h() as isize
                            || ix >= conv.in_w() as isize
                        {
                            // Padded tap: gather the staged zero element.
                            offsets.push(zero_off);
                        } else {
                            let idx = (c * conv.in_h() + iy as usize) * conv.in_w() + ix as usize;
                            offsets.push((2 * idx) as u16);
                        }
                    }
                }
            }
            for _ in real_taps..taps {
                offsets.push(zero_off);
            }
        }
    }
    offsets
}
