//! Compatibility facade over the compile/execute split: golden-model
//! layers in, simulated outputs and cycle statistics out.
//!
//! [`KernelBackend::run_network`] is now a thin wrapper that
//! [compiles](KernelBackend::compile_network) the network and executes
//! it through a one-shot [`Engine`](crate::engine::Engine); callers that
//! run the same network repeatedly should hold on to the
//! [`CompiledNetwork`](crate::compile::CompiledNetwork) and reuse one
//! engine instead. Outputs, cycle counts and per-mnemonic histograms are
//! bit-identical either way. The per-layer entry points (`run_fc`,
//! `run_lstm`, `run_conv`, `run_fc8`) keep their single-shot sessions —
//! they exist for kernel-level experiments where compile cost is not on
//! the measured path.

use crate::compile::{compile_stages, Session, StageInput};
use crate::engine::Engine;
use crate::error::CoreError;
use crate::kernels::fc8::{emit_matvec8, Int8Kernel, Matvec8Spec};
use crate::optlevel::OptLevel;
use crate::report::RunReport;
use rnnasip_fixed::{Q1p6, Q3p12};
use rnnasip_nn::{Conv2dLayer, FcLayer, FcLayer8, LstmLayer, Network, Stage};

/// One executed layer: outputs plus statistics.
#[derive(Clone, Debug)]
pub struct LayerRun {
    /// The layer outputs read back from simulated memory.
    pub outputs: Vec<Q3p12>,
    /// Cycle/instruction statistics of the run.
    pub report: RunReport,
}

/// One executed INT8 layer: Q1.6 outputs plus statistics.
#[derive(Clone, Debug)]
pub struct Layer8Run {
    /// The layer outputs read back from simulated memory.
    pub outputs: Vec<Q1p6>,
    /// Cycle/instruction statistics of the run.
    pub report: RunReport,
}

/// One executed network: final outputs plus statistics.
#[derive(Clone, Debug)]
pub struct NetworkRun {
    /// The network outputs.
    pub outputs: Vec<Q3p12>,
    /// Cycle/instruction statistics of the whole inference.
    pub report: RunReport,
}

/// Default watchdog budget, in cycles, for every public run path.
///
/// 64 million cycles is ~6× the whole ten-network suite at the baseline
/// level (the slowest configuration), so no legitimate inference comes
/// near it, while a wedged kernel — a corrupted loop bound, a branch
/// flipped into an infinite spin — is detected in well under a second of
/// host time instead of simulating two billion cycles before giving up.
/// Every run through [`KernelBackend`], [`Engine`](crate::Engine) or the
/// `rnnasip-rrm` `EngineCache` is bounded by this budget unless the
/// caller overrides it ([`KernelBackend::with_max_cycles`],
/// [`Engine::run_budgeted`](crate::Engine::run_budgeted)).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 64_000_000;

/// The kernel execution backend for one optimization level.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct KernelBackend {
    level: OptLevel,
    pub(crate) mem_bytes: usize,
    pub(crate) max_cycles: u64,
    pub(crate) max_tile: usize,
    pub(crate) cores: usize,
}

impl KernelBackend {
    /// Creates a backend with 4 MiB of TCDM and the default watchdog
    /// ([`DEFAULT_WATCHDOG_CYCLES`]).
    pub fn new(level: OptLevel) -> Self {
        Self {
            level,
            mem_bytes: 4 << 20,
            max_cycles: DEFAULT_WATCHDOG_CYCLES,
            max_tile: crate::kernels::MAX_TILE,
            cores: 0,
        }
    }

    /// Targets an `n`-core cluster: [`compile_network`] emits a
    /// partitioned [`ClusterProgram`](rnnasip_sim::ClusterProgram)
    /// instead of the classic single-machine artifact (`n = 1` produces
    /// a one-core cluster wrapping the identical single-core program,
    /// bit-identical to the default path).
    ///
    /// [`compile_network`]: KernelBackend::compile_network
    #[must_use]
    pub fn with_cores(mut self, n: usize) -> Self {
        self.cores = n.max(1);
        self
    }

    /// The cluster-core target (1 when not configured with
    /// [`with_cores`](KernelBackend::with_cores)).
    pub fn cores(&self) -> usize {
        self.cores.max(1)
    }

    /// Switches the optimization level, keeping every other knob — the
    /// recompile step of the self-healing engine's degradation ladder.
    #[must_use]
    pub fn with_level(mut self, level: OptLevel) -> Self {
        self.level = level;
        self
    }

    /// Caps the output-tile size (1–10) — the paper's register-budget
    /// knob, exposed for the tiling ablation bench.
    #[must_use]
    pub fn with_max_tile(mut self, n: usize) -> Self {
        self.max_tile = n.clamp(1, crate::kernels::MAX_TILE);
        self
    }

    /// Overrides the TCDM size.
    #[must_use]
    pub fn with_memory(mut self, bytes: usize) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Overrides the watchdog budget.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// The backend's optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Runs a fully-connected layer.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_fc(&self, layer: &FcLayer, input: &[Q3p12]) -> Result<LayerRun, CoreError> {
        if input.len() != layer.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != layer n_in {}",
                input.len(),
                layer.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        let (out_addr, _) = s.emit_fc_stage(layer, StageInput::Staged(input.to_vec()))?;
        let (outputs, report) = s.finish(out_addr, layer.n_out(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Runs an LSTM layer over a sequence, returning the final hidden
    /// state.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_lstm(
        &self,
        layer: &LstmLayer,
        sequence: &[Vec<Q3p12>],
    ) -> Result<LayerRun, CoreError> {
        let mut s = Session::new(self)?;
        let (out_addr, _) = s.emit_lstm_stage(layer, sequence)?;
        let (outputs, report) = s.finish(out_addr, layer.n_hidden(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Runs a convolution layer on a flattened feature map.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_conv(&self, conv: &Conv2dLayer, input: &[Q3p12]) -> Result<LayerRun, CoreError> {
        if input.len() != conv.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != conv n_in {}",
                input.len(),
                conv.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        let src = s.stage_vector(input)?;
        let out_addr = s.emit_conv_stage(conv, src, input.len())?;
        let (outputs, report) = s.finish(out_addr, conv.n_out(), self.max_cycles)?;
        Ok(LayerRun { outputs, report })
    }

    /// Compiles a fully-connected layer to its program *without* running
    /// it — for disassembly inspection and the code-size metric (tiled
    /// levels trade code size for cycles by unrolling per-tile code).
    ///
    /// # Errors
    ///
    /// Shape, layout or assembly errors ([`CoreError`]).
    pub fn compile_fc(&self, layer: &FcLayer) -> Result<rnnasip_sim::Program, CoreError> {
        let mut s = Session::new(self)?;
        let zeros = vec![Q3p12::ZERO; layer.n_in()];
        s.emit_fc_stage(layer, StageInput::Staged(zeros))?;
        let (prog, _machine) = s.into_program()?;
        Ok(prog)
    }

    /// Runs an INT8 fully-connected layer (the future-work path) with
    /// the chosen inner-loop schedule.
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_fc8(
        &self,
        layer: &FcLayer8,
        input: &[Q1p6],
        kernel: Int8Kernel,
    ) -> Result<Layer8Run, CoreError> {
        if input.len() != layer.n_in() {
            return Err(CoreError::Shape(format!(
                "input length {} != layer n_in {}",
                input.len(),
                layer.n_in()
            )));
        }
        let mut s = Session::new(self)?;
        // Pad the input width to a multiple of four bytes.
        let n_in = (layer.n_in() + 3) & !3;
        let w_base = s
            .layout
            .alloc(((layer.n_out() * n_in) as u32) + crate::layout::STREAM_SLACK)?;
        for o in 0..layer.n_out() {
            for (i, w) in layer.row(o).iter().enumerate() {
                s.machine
                    .mem_mut()
                    .write_u8(w_base + (o * n_in + i) as u32, w.raw() as u8)?;
            }
        }
        let bias32 = s.layout.alloc_words(layer.n_out())?;
        for (k, b) in layer.bias().iter().enumerate() {
            s.machine
                .mem_mut()
                .write_u32(bias32 + 4 * k as u32, ((b.raw() as i32) << 6) as u32)?;
        }
        let x_base = s.layout.alloc(n_in as u32 + 4)?;
        for (i, x) in input.iter().enumerate() {
            s.machine
                .mem_mut()
                .write_u8(x_base + i as u32, x.raw() as u8)?;
        }
        let out_base = s.layout.alloc(layer.n_out() as u32 + 4)?;
        let spec = Matvec8Spec {
            w_base,
            bias32,
            x_base,
            out_base,
            n_in,
            n_out: layer.n_out(),
            act: layer.act(),
        };
        let mut ctx = s.ctx();
        emit_matvec8(&mut ctx, &spec, kernel)?;
        let (prog, mut machine) = s.into_program()?;
        machine.load_program(&prog);
        let started = std::time::Instant::now();
        machine.run(self.max_cycles)?;
        let host_nanos = started.elapsed().as_nanos() as u64;
        let outputs = (0..layer.n_out())
            .map(|o| {
                machine
                    .mem()
                    .read_u8(out_base + o as u32)
                    .map(|b| Q1p6::from_raw(b as i8))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Layer8Run {
            outputs,
            report: RunReport::new(machine.stats().clone()).with_host_nanos(host_nanos),
        })
    }

    /// Runs a whole network inference.
    ///
    /// Equivalent to compiling with [`compile_network`] and running a
    /// one-shot [`Engine`](crate::engine::Engine); callers in inference
    /// loops should do that explicitly to pay compile cost once.
    ///
    /// [`compile_network`]: KernelBackend::compile_network
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]);
    /// [`CoreError::Shape`] for empty networks,
    /// [`CoreError::Unsupported`] for LSTM stages after the first.
    pub fn run_network(
        &self,
        net: &Network,
        sequence: &[Vec<Q3p12>],
    ) -> Result<NetworkRun, CoreError> {
        if sequence.len() != net.seq_len() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                net.seq_len()
            )));
        }
        let compiled = compile_stages(self, net.name(), net.stages())?;
        Engine::new(compiled).run(sequence)
    }
}

/// One profiled stage of a [`KernelBackend::run_network_staged`] run.
#[derive(Clone, Debug)]
pub struct StageRun {
    /// Stage label (`"fc 120x360"`, `"lstm 32x64 x10"`, `"conv ..."`).
    pub label: String,
    /// Statistics of this stage alone.
    pub report: RunReport,
}

impl KernelBackend {
    /// Runs a network one stage at a time (each stage as its own
    /// program), returning the final outputs and a per-stage cycle
    /// profile. Outputs are identical to [`run_network`]
    /// (same kernels, same staging), which the integration tests assert.
    ///
    /// [`run_network`]: KernelBackend::run_network
    ///
    /// # Errors
    ///
    /// Shape, layout, assembly or simulation errors ([`CoreError`]).
    pub fn run_network_staged(
        &self,
        net: &Network,
        sequence: &[Vec<Q3p12>],
    ) -> Result<(Vec<Q3p12>, Vec<StageRun>), CoreError> {
        if sequence.len() != net.seq_len() {
            return Err(CoreError::Shape(format!(
                "sequence length {} != network seq_len {}",
                sequence.len(),
                net.seq_len()
            )));
        }
        let mut stages = Vec::new();
        let mut cur: Option<Vec<Q3p12>> = None;
        for stage in net.stages() {
            let (label, run) = match stage {
                Stage::Lstm { layer, steps } => {
                    let run = self.run_lstm(layer, sequence)?;
                    (
                        format!("lstm {}x{} x{}", layer.n_in(), layer.n_hidden(), steps),
                        run,
                    )
                }
                Stage::Fc(layer) => {
                    let input = cur.as_deref().unwrap_or(&sequence[0]);
                    let run = self.run_fc(layer, input)?;
                    (format!("fc {}->{}", layer.n_in(), layer.n_out()), run)
                }
                Stage::Conv(conv) => {
                    let input = cur.as_deref().unwrap_or(&sequence[0]);
                    let run = self.run_conv(conv, input)?;
                    (
                        format!(
                            "conv {}x{}x{} -> {} ({}x{})",
                            conv.in_ch(),
                            conv.in_h(),
                            conv.in_w(),
                            conv.out_ch(),
                            conv.kh(),
                            conv.kw()
                        ),
                        run,
                    )
                }
            };
            stages.push(StageRun {
                label,
                report: run.report,
            });
            // Move, don't clone: `run` is consumed field by field.
            cur = Some(run.outputs);
        }
        match cur {
            Some(outputs) => Ok((outputs, stages)),
            None => Err(CoreError::Shape("network has no stages".into())),
        }
    }
}
